//! Quickstart: build a tiny uncertainty-aware pipeline by hand.
//!
//! A stream of temperature readings, each an uncertain (Gaussian) value,
//! flows through a probabilistic selection (P(temp > 60 °C)) into a
//! windowed average whose *result distribution* and confidence interval
//! we inspect — the end-to-end idea of the paper in ~60 lines.
//!
//! Run: `cargo run --release --example quickstart`

use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Operator;
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::{confidence_region, GroupKey, Tuple, Updf, Value};
use uncertain_streams::prob::dist::Dist;

fn main() {
    // Schema: one certain sensor id, one uncertain temperature.
    let schema = Schema::builder()
        .field("sensor", DataType::Int)
        .field("temp", DataType::Uncertain)
        .build();

    // A probabilistic selection: keep tuples that are plausibly hot,
    // conditioning the distribution on the event (truncation).
    let mut select = Select::new(Predicate::UncertainAbove("temp".into(), 60.0), 0.05);

    // A 10-second tumbling window averaging the surviving temperatures.
    let mut agg = WindowedAggregate::new(
        WindowKind::Tumbling(10_000),
        |_t: &Tuple| GroupKey::Unit,
        vec![AggSpec {
            field: "temp".into(),
            func: AggFunc::Avg,
            out: "avg_temp".into(),
            strategy: Strategy::Auto,
        }],
    );

    // Feed readings: means ramp from 55 to 70 °C with ±3 °C sensor noise.
    let mut results = Vec::new();
    for i in 0..20u64 {
        let mean = 55.0 + i as f64;
        let tuple = Tuple::new(
            schema.clone(),
            vec![
                Value::Int(1),
                Value::from(Updf::Parametric(Dist::gaussian(mean, 3.0))),
            ],
            i * 1000,
        );
        for survivor in select.process(0, tuple) {
            println!(
                "t={:>5}ms  mean={:>5.1}°C  P(hot)={:.2}",
                survivor.ts,
                survivor.updf("temp").unwrap().mean(),
                survivor.existence
            );
            results.extend(agg.process(0, survivor));
        }
    }
    results.extend(agg.flush());

    println!("\nWindowed averages (result distributions):");
    for r in &results {
        let avg = r.updf("avg_temp").unwrap();
        let region = confidence_region(avg, 0.95);
        println!(
            "  window [{}, {}]ms  n={}  avg = {:.1} ± {:.2} °C  95% region: {:?}",
            r.get("window_start").unwrap().as_time().unwrap(),
            r.get("window_end").unwrap().as_time().unwrap(),
            r.int("n_tuples").unwrap(),
            avg.mean(),
            avg.std_dev(),
            region
        );
    }
}
