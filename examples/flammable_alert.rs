//! Q2 — flammable-object alerting (paper §2.1):
//!
//! ```sql
//! Select Rstream(R.tag_id, R.(x,y,z), T.temp)
//! From RFIDStream [Range 3 seconds] as R,
//!      TempStream [Range 3 seconds] as T
//! Where object_type(R.tag_id) = 'flammable' and
//!       T.temp > 60 ℃ and
//!       loc_equals(R.(x,y,z), T.(x,y,z))
//! ```
//!
//! The RFID T operator produces uncertain object locations; the
//! temperature grid produces uncertain temperatures at known sensor
//! positions; a hot spot ignites mid-run. Selection keeps flammable
//! objects and probably-hot readings (conditioning the temperature pdf),
//! and the probabilistic `loc_equals` join multiplies the match
//! probability into each alert's existence.
//!
//! Run: `cargo run --release --example flammable_alert`

use uncertain_streams::core::ops::join::{JoinCondition, WindowJoin};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Operator;
use uncertain_streams::core::schema::{DataType, Field, Schema};
use uncertain_streams::core::toperator::TransformOperator;
use uncertain_streams::core::{ConversionPolicy, Tuple, Updf, Value};
use uncertain_streams::inference::{FactoredConfig, MotionModel, ObservationModel, RfidTOperator};
use uncertain_streams::prob::dist::{Dist, MvGaussian};
use uncertain_streams::rfid::{
    HotSpot, ObjectKind, SensingModel, TempField, TempSensorGrid, TraceConfig, TraceGenerator,
    WorldConfig,
};

fn main() {
    // --- RFID side ------------------------------------------------------
    let tc = TraceConfig {
        world: WorldConfig {
            shelf_rows: 6,
            shelf_cols: 6,
            num_objects: 80,
            move_prob: 0.0,
            seed: 3,
            ..Default::default()
        },
        sensing: SensingModel::clean(),
        seed: 5,
        ..Default::default()
    };
    let mut gen = TraceGenerator::new(tc);
    let extent = gen.world.extent();
    let shelf_xy: Vec<[f64; 2]> = gen
        .world
        .shelves()
        .iter()
        .map(|s| [s.pos[0], s.pos[1]])
        .collect();
    let cfg = FactoredConfig {
        num_particles: 120,
        extent,
        motion: MotionModel {
            diffusion: 0.05,
            move_prob: 0.0,
            shelf_xy,
            placement_jitter: 0.8,
        },
        obs: ObservationModel::new(*gen.sensing()),
        use_spatial_index: true,
        compression: None,
        negative_evidence: true,
        resample_fraction: 0.5,
        seed: 13,
    };
    let mut t_op = RfidTOperator::new(80, cfg, ConversionPolicy::FitGaussian);
    let kinds: Vec<ObjectKind> = gen.world.objects().iter().map(|o| o.kind).collect();

    // Enrich location tuples with object_type(tag_id).
    let enriched_schema_of =
        |s: &std::sync::Arc<Schema>| s.extend(vec![Field::new("kind", DataType::Str)]);

    // --- Temperature side -----------------------------------------------
    // A hot spot develops at 20 s over a flammable-heavy corner.
    let field = TempField {
        ambient: 22.0,
        hot_spots: vec![HotSpot {
            center: [9.0, 9.0],
            peak: 70.0,
            sigma: 8.0,
            onset_ms: 20_000,
            ramp_ms: 30_000,
        }],
    };
    let mut temps = TempSensorGrid::new(field, extent, 12.0, 1.5, 1_000, 17);
    let temp_schema = Schema::builder()
        .field("sensor_loc", DataType::UncertainVec(2))
        .field("temp", DataType::Uncertain)
        .build();

    // --- Operators --------------------------------------------------------
    let mut select_flammable =
        Select::new(Predicate::StrEq("kind".into(), "flammable".into()), 0.5);
    let mut select_hot = Select::new(Predicate::UncertainAbove("temp".into(), 60.0), 0.3);
    let mut join = WindowJoin::new(
        3_000,
        JoinCondition::LocEquals {
            left_field: "loc".into(),
            right_field: "sensor_loc".into(),
            epsilon: 8.0,
        },
        0.25,
    )
    .with_provenance("temp", 1);

    // --- Drive both streams in time order --------------------------------
    let mut alerts: Vec<Tuple> = Vec::new();
    for step in 0..300u64 {
        // RFID scans every 200 ms.
        let scan = gen.next_scan();
        for loc_tuple in t_op.ingest(scan) {
            let kind = kinds[loc_tuple.int("tag_id").unwrap() as usize];
            let schema = enriched_schema_of(loc_tuple.schema());
            let enriched = loc_tuple.extended(schema, vec![Value::from(kind.as_str())]);
            for flam in select_flammable.process(0, enriched) {
                alerts.extend(join.process(0, flam));
            }
        }
        // Temperature sweeps every 1000 ms.
        if step % 5 == 0 {
            for reading in temps.next_sweep() {
                let t = Tuple::new(
                    temp_schema.clone(),
                    vec![
                        Value::from(Updf::Mv(MvGaussian::isotropic(
                            vec![reading.pos[0], reading.pos[1]],
                            0.1, // sensor positions are known precisely
                        ))),
                        Value::from(Updf::Parametric(Dist::gaussian(
                            reading.temp,
                            reading.noise_sd,
                        ))),
                    ],
                    reading.ts,
                );
                for hot in select_hot.process(0, t) {
                    alerts.extend(join.process(1, hot));
                }
            }
        }
    }

    println!("Q2 flammable-object alerts: {}\n", alerts.len());
    for a in alerts.iter().take(10) {
        let loc = a.updf("loc").unwrap().mean_vec();
        let temp = a.updf("temp").unwrap();
        println!(
            "  t={:>6}ms  tag {:>3} @ ({:>5.1},{:>5.1}) ft  temp≈{:>5.1}°C (>60: {:.2})  P(alert)={:.2}",
            a.ts,
            a.int("tag_id").unwrap(),
            loc[0],
            loc[1],
            temp.mean(),
            temp.prob_above(60.0),
            a.existence
        );
    }
    if alerts.len() > 10 {
        println!("  … and {} more", alerts.len() - 10);
    }
    let before = alerts.iter().filter(|a| a.ts < 20_000).count();
    println!(
        "\nAlerts before the 20 s ignition: {before}; after: {}. Each alert's",
        alerts.len() - before
    );
    println!("existence multiplies the flammable filter, P(temp>60), and the");
    println!("loc_equals match probability; its lineage links both base tuples.");
}
