//! Q1 — fire-code monitoring (paper §2.1):
//!
//! ```sql
//! Select Rstream(R2.area, sum(R2.weight))
//! From (Select Rstream(*, area(R.(x,y,z)) As area,
//!                      weight(R.tag_id) As weight)
//!       From RFIDStream R [Now]) R2 [Range 5 seconds]
//! Group By R2.area
//! Having sum(R2.weight) > 200 pounds
//! ```
//!
//! End to end: the RFID simulator produces raw scans; the particle-filter
//! T operator turns them into uncertain location tuples; each tuple is
//! expanded over the floor cells it might occupy (membership probability
//! from its location pdf — this is where location uncertainty enters the
//! weight totals); a 5-second window groups by area and sums weights; the
//! HAVING clause fires only when P(total > 200 lb) is high enough.
//!
//! Run: `cargo run --release --example fire_monitoring`

use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Having, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::Operator;
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::toperator::TransformOperator;
use uncertain_streams::core::{ConversionPolicy, GroupKey, Tuple, Updf, Value};
use uncertain_streams::inference::{FactoredConfig, MotionModel, ObservationModel, RfidTOperator};
use uncertain_streams::prob::dist::Dist;
use uncertain_streams::rfid::{SensingModel, TraceConfig, TraceGenerator, WorldConfig};

/// Q1's grid: 6×6 ft cells (aligned with shelves for a readable demo).
const CELL_FT: f64 = 6.0;

fn main() {
    // --- World + T operator -------------------------------------------
    let tc = TraceConfig {
        world: WorldConfig {
            shelf_rows: 8,
            shelf_cols: 8,
            num_objects: 600,
            move_prob: 0.0,
            seed: 7,
            ..Default::default()
        },
        sensing: SensingModel::clean(),
        seed: 11,
        ..Default::default()
    };
    let mut gen = TraceGenerator::new(tc);
    let shelf_xy: Vec<[f64; 2]> = gen
        .world
        .shelves()
        .iter()
        .map(|s| [s.pos[0], s.pos[1]])
        .collect();
    let cfg = FactoredConfig {
        num_particles: 150,
        extent: gen.world.extent(),
        motion: MotionModel {
            diffusion: 0.05,
            move_prob: 0.0,
            shelf_xy,
            placement_jitter: 0.8,
        },
        obs: ObservationModel::new(*gen.sensing()),
        use_spatial_index: true,
        compression: None,
        negative_evidence: true,
        resample_fraction: 0.5,
        seed: 13,
    };
    let mut t_op = RfidTOperator::new(600, cfg, ConversionPolicy::FitGaussian);

    // Weights per tag come from the world's registry (Q1's weight()).
    let weights: Vec<f64> = gen.world.objects().iter().map(|o| o.weight).collect();

    // --- Inner query: expand each location tuple over candidate areas --
    // area(R.(x,y,z)) on an uncertain location = membership probability
    // per cell; each (area, weight) output carries that probability as
    // its existence.
    let area_schema = Schema::builder()
        .field("area", DataType::Int)
        .field("weight", DataType::Uncertain)
        .build();
    let expand = |tuple: &Tuple, weights: &[f64]| -> Vec<Tuple> {
        let loc = tuple.updf("loc").unwrap();
        let Updf::Mv(mv) = loc else { return vec![] };
        let tag = tuple.int("tag_id").unwrap() as usize;
        let mean = mv.mean();
        let (cx, cy) = ((mean[0] / CELL_FT).floor(), (mean[1] / CELL_FT).floor());
        let mut out = Vec::new();
        // Consider the 3×3 neighbourhood of cells around the mean.
        for dy in -1..=1i64 {
            for dx in -1..=1i64 {
                let gx = cx as i64 + dx;
                let gy = cy as i64 + dy;
                if gx < 0 || gy < 0 {
                    continue;
                }
                let lo = [gx as f64 * CELL_FT, gy as f64 * CELL_FT];
                let hi = [lo[0] + CELL_FT, lo[1] + CELL_FT];
                let p = mv.prob_in_box(&lo, &hi);
                if p < 0.02 {
                    continue;
                }
                let area_id = gy * 1000 + gx;
                let mut t = Tuple::new(
                    area_schema.clone(),
                    vec![
                        Value::Int(area_id),
                        // Weight is certain; a near-delta Gaussian keeps the
                        // aggregation strategies uniform.
                        Value::from(Updf::Parametric(Dist::gaussian(weights[tag], 1e-3))),
                    ],
                    tuple.ts,
                );
                t.existence = p;
                t.lineage = tuple.lineage.clone();
                out.push(t);
            }
        }
        out
    };

    // --- Outer query: [Range 5s] group-by area, Having sum > 200 lb ----
    let mut agg = WindowedAggregate::new(
        WindowKind::Tumbling(5_000),
        |t: &Tuple| GroupKey::from_value(t.get("area").unwrap()).unwrap(),
        vec![AggSpec {
            field: "weight".into(),
            func: AggFunc::Sum,
            out: "total_weight".into(),
            strategy: Strategy::Clt,
        }],
    )
    .with_having(Having {
        out: "total_weight".into(),
        threshold: 200.0,
        min_prob: 0.5,
    });

    // --- Drive the pipeline -------------------------------------------
    // An object read several times within one window must count once:
    // keep only its first location tuple per 5 s window (the paper's Q1
    // implicitly assumes one tuple per object per window).
    let mut seen: std::collections::HashSet<(i64, u64)> = std::collections::HashSet::new();
    let mut alerts = Vec::new();
    for _ in 0..600 {
        let scan = gen.next_scan();
        for loc_tuple in t_op.ingest(scan) {
            let window_idx = loc_tuple.ts / 5_000;
            let tag = loc_tuple.int("tag_id").unwrap();
            if !seen.insert((tag, window_idx)) {
                continue;
            }
            for area_tuple in expand(&loc_tuple, &weights) {
                alerts.extend(agg.process(0, area_tuple));
            }
        }
    }
    alerts.extend(agg.flush());

    println!(
        "Q1 fire-code monitoring: {} violating (area, window) groups\n",
        alerts.len()
    );
    for a in alerts.iter().take(12) {
        let total = a.updf("total_weight").unwrap();
        println!(
            "  area {:>7}  window end {:>6}ms  E[total] = {:>6.1} lb  P(>200 lb) = {:.2}",
            a.str("group").unwrap(),
            a.ts,
            total.mean(),
            a.float("p_total_weight").unwrap()
        );
    }
    if alerts.len() > 12 {
        println!("  … and {} more", alerts.len() - 12);
    }
    println!("\nThe query text treats locations as precise; the engine carried each");
    println!("object's location pdf into per-area membership probabilities and a");
    println!("full result distribution for every area's total weight.");
}
