//! Hazardous-weather monitoring (paper §2.2): the radar pipeline with the
//! Table 1 averaging knob, plus the §4.4 T operator quantifying the
//! uncertainty of the averaged velocities.
//!
//! One sector scan of a synthetic tornadic storm is processed twice —
//! fine averaging (N=40) and coarse (N=1000) — showing how the velocity
//! couplet and the detection survive or vanish, and what the MA-CLT
//! uncertainty on each voxel's velocity looks like.
//!
//! Run: `cargo run --release --example tornado_detection`

use uncertain_streams::radar::{
    compute_moments, detect_tornados, DetectorConfig, RadarNode, RadarParams, RadarTOperator,
    VelocityUq, WeatherField,
};

fn main() {
    let field = WeatherField::tornadic_default();
    let params = RadarParams::default();
    let radar = RadarNode::new(0, [0.0, 0.0], params);
    println!(
        "Raw stream: {:.2} M items/s = {:.0} Mb/s (paper: 1.66 M items/s ≈ 205 Mb/s)",
        params.prf * params.gates as f64 / 1e6,
        params.raw_bits_per_second() / 1e6
    );

    // Scan the sector containing the vortex (bearing ≈ 36.9°, 15 km).
    let bearing = (9_000.0f64).atan2(12_000.0);
    let pulses = radar.sector_scan(&field, bearing - 0.12, bearing + 0.12, 0.0, 99);
    println!(
        "Sector scan: {} pulses × {} gates ({:.1} MB raw)\n",
        pulses.len(),
        params.gates,
        (pulses.len() * params.gates * 16) as f64 / 1e6
    );

    for n_avg in [40usize, 1000] {
        let moments = compute_moments(&pulses, &params, n_avg);
        let result = detect_tornados(&moments, radar.pos, &DetectorConfig::default());
        println!("— averaging N = {n_avg}:");
        println!(
            "    moment data {:.2} MB ({} radials × {} gates)",
            moments.size_mb(),
            moments.radials.len(),
            params.gates
        );
        match result.detections.first() {
            Some(d) => println!(
                "    DETECTED vortex at ({:.0}, {:.0}) m — truth (12000, 9000); Δv = {:.1} m/s",
                d.position[0], d.position[1], d.strength
            ),
            None => println!("    no detection — couplet smeared away"),
        }
    }

    // §4.4: uncertainty of the averaged velocity via the MA-CLT T operator.
    println!("\n§4.4 T operator on the vortex-core voxels (N = 200 pulses/group):");
    let mut t_op = RadarTOperator::new(params, VelocityUq::MaClt { max_order: 3 });
    // Gates around 15 km: 15000 / 48 ≈ gate 312.
    let gates: Vec<usize> = (308..=316).collect();
    let group = &pulses[0..200];
    for tuple in t_op.transform_group(0, group, &gates) {
        let v = tuple.updf("velocity").unwrap();
        let (lo, hi) = v.confidence_interval(0.95);
        println!(
            "    gate @ {:>6.0} m: v = {:>6.2} m/s, 95% CI [{:>6.2}, {:>6.2}] (σ = {:.3})",
            tuple.float("range").unwrap(),
            v.mean(),
            lo,
            hi,
            v.std_dev()
        );
    }
    println!("\nWith this per-voxel uncertainty available, the system can decide");
    println!("dynamically where aggressive averaging is safe and where detailed");
    println!("analysis is worth the bandwidth (the paper's closing argument for §2.2).");
}
