//! Fault-tolerant serving: a publisher whose connection dies twice
//! mid-stream still delivers every reading exactly once.
//!
//! The publisher talks to the server through a [`ChaosProxy`] scripted
//! to kill its first connection in the middle of a publish frame (the
//! server sees a torn frame) and its second on a frame boundary (a
//! clean reset). The client's retry loop resumes the session with the
//! server-issued token each time, the server replays acks for batches
//! it already merged, and the example proves exactly-once delivery by
//! comparing the streamed windows against `QueryGraph::run_batched`
//! over the same input — the answers must match tuple for tuple.
//!
//! Run: `cargo run --release --example serve_resilient`

use std::time::Duration;

use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Passthrough;
use uncertain_streams::core::query::QueryGraph;
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::{GroupKey, Tuple, Updf, Value};
use uncertain_streams::prob::dist::Dist;
use uncertain_streams::server::{
    ChaosProxy, Client, ClientConfig, Fault, ServedQuery, Server, Severity,
};

/// The demo query: plausibly-hot readings into 1-second tumbling
/// per-sensor averages.
fn build_graph() -> (QueryGraph, uncertain_streams::core::query::NodeId) {
    let select = Select::new(Predicate::UncertainAbove("temp".into(), 60.0), 0.05);
    let agg = WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |t: &Tuple| GroupKey::from_value(t.get("sensor").unwrap()).unwrap(),
        vec![AggSpec {
            field: "temp".into(),
            func: AggFunc::Avg,
            out: "avg_temp".into(),
            strategy: Strategy::Auto,
        }],
    );
    let mut graph = QueryGraph::new();
    let select = graph.add(Box::new(select));
    let agg = graph.add(Box::new(agg));
    let sink = graph.add(Box::new(Passthrough::new("sink")));
    graph.connect(select, agg, 0).unwrap();
    graph.connect(agg, sink, 0).unwrap();
    graph.source("readings", select);
    graph.sink(sink);
    (graph, sink)
}

fn readings() -> Vec<Tuple> {
    let schema = Schema::builder()
        .field("sensor", DataType::Int)
        .field("temp", DataType::Uncertain)
        .build();
    (0..2_000u64)
        .map(|i| {
            let mean = 55.0 + 10.0 * ((i as f64) / 300.0).sin() + (i % 8) as f64;
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Int((i % 8) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 3.0))),
                ],
                i * 10,
            )
        })
        .collect()
}

/// Exact comparison key: timestamp, existence, lineage, and the full
/// debug rendering of every field.
fn fingerprint(t: &Tuple) -> String {
    format!(
        "ts={} ex={:016x} lin={:?} vals={:?}",
        t.ts,
        t.existence.to_bits(),
        t.lineage.ids(),
        t.values()
    )
}

fn main() {
    let all = readings();

    // The ground truth: the same query over the same input, batched.
    let (mut reference, sink) = build_graph();
    let expected = reference
        .run_batched(vec![("readings".into(), 0, all.clone())], 512)
        .unwrap()
        .remove(&sink)
        .unwrap();

    let handle = Server::serve("127.0.0.1:0", ServedQuery::new(build_graph().0)).expect("bind");
    println!("serving on {}", handle.addr());

    // The scripted storm: connection 0 (frames: 0 Hello, 1.. publishes)
    // is torn apart in the middle of its third publish; connection 1
    // (0 Resume, 1.. replay + fresh publishes) is reset on a frame
    // boundary shortly after resuming; connection 2 runs clean.
    let proxy = ChaosProxy::scripted(
        handle.addr(),
        vec![
            vec![Fault::CutMidFrame { frame: 3 }],
            vec![Fault::CutAtFrame { frame: 2 }],
            vec![],
        ],
    )
    .expect("proxy");
    println!("publisher routed through chaos proxy at {}", proxy.addr());

    let mut subscriber = Client::subscriber(handle.addr()).expect("subscribe");
    // Seeded backoff makes the retry schedule reproducible run to run.
    let mut publisher = Client::publisher_manual_with(
        proxy.addr(),
        ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            backoff_seed: Some(42),
            ..ClientConfig::default()
        },
    )
    .expect("connect through proxy");

    for chunk in all.chunks(100) {
        let accepted = publisher.publish("readings", 0, chunk).expect("publish");
        assert_eq!(accepted, chunk.len());
    }
    publisher.finish().expect("finish");

    let collected = subscriber.collect_until_eos().expect("stream to EOS");
    let streamed = &collected[0].1;

    let disconnects = proxy.connections().saturating_sub(1);
    println!(
        "survived {} injected disconnect(s) across {} connection(s)",
        disconnects,
        proxy.connections()
    );
    assert!(
        proxy.connections() >= 3,
        "both scripted cuts must have fired"
    );

    // Exactly-once: the streamed windows are byte-equal to the batched
    // reference despite the torn frame and the reset.
    assert_eq!(streamed.len(), expected.len(), "window count must match");
    for (got, want) in streamed.iter().zip(&expected) {
        assert_eq!(fingerprint(got), fingerprint(want));
    }
    println!(
        "all {} aggregate windows byte-identical to the batched reference",
        expected.len()
    );

    proxy.shutdown();
    let errors = handle.shutdown();
    // The cuts leave scars, but only transient ones: each disconnect is
    // recorded, and every one was healed by a resume.
    assert!(
        errors.iter().all(|e| e.severity() == Severity::Transient),
        "only transient scars expected, got {errors:?}"
    );
    println!(
        "server recorded {} transient disconnect scar(s), zero fatal",
        errors.len()
    );
}
