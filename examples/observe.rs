//! Live observability dashboard: poll the always-on telemetry surface
//! over the wire while a query streams.
//!
//! One process plays every role: it serves a Q1-style windowed
//! aggregation, publishes 4 000 uncertain readings in chunks, and —
//! between chunks — fetches `StatsV2` over the same TCP connection and
//! renders a small dashboard from the returned metric snapshots:
//! ingest counters, watermark-lag quantiles, per-operator busy time,
//! and subscriber queue depth. Once the feed is in it fetches
//! `Explain` (the compiled plan annotated with live telemetry — EXPLAIN
//! ANALYZE over the wire) and `Health` (the watchdog's typed verdict),
//! then after EOS prints the journal tail (the engine's flight
//! recorder) and the full Prometheus-style text exposition a scraper
//! would collect.
//!
//! Run: `cargo run --release --example observe`

use std::collections::BTreeMap;
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Passthrough;
use uncertain_streams::core::query::QueryGraph;
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::{GroupKey, Tuple, Updf, Value};
use uncertain_streams::prob::dist::Dist;
use uncertain_streams::server::{Client, Event, ServedQuery, Server, ServerConfig};
use uncertain_streams::telemetry::{MetricSnapshot, MetricValue};

/// Sum a counter family across its label sets.
fn counter(metrics: &[MetricSnapshot], family: &str) -> u64 {
    metrics
        .iter()
        .filter(|m| m.family == family)
        .map(|m| match &m.value {
            MetricValue::Counter(v) => *v,
            _ => 0,
        })
        .sum()
}

fn label<'a>(m: &'a MetricSnapshot, key: &str) -> &'a str {
    m.labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or("-")
}

fn dashboard(tick: usize, metrics: &[MetricSnapshot]) {
    println!("--- telemetry tick {tick} ---");
    println!(
        "  ingest : {:>6} tuples in {:>3} frames -> engine {:>6} tuples / {:>3} batches",
        counter(metrics, "server_publish_tuples_total"),
        counter(metrics, "server_publish_frames_total"),
        counter(metrics, "engine_tuples_pushed_total"),
        counter(metrics, "engine_batches_pushed_total"),
    );
    for m in metrics
        .iter()
        .filter(|m| m.family == "engine_watermark_lag")
    {
        if let MetricValue::Sketch(s) = &m.value {
            if s.count > 0 {
                println!(
                    "  lag    : stage {} sealed {:>3}x  p50={:>6.0}ms p99={:>6.0}ms max={:>6.0}ms",
                    label(m, "stage"),
                    s.count,
                    s.p50,
                    s.p99,
                    s.max
                );
            }
        }
    }
    // Per-operator busy time, aggregated across stages and shards.
    let mut busy: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for m in metrics {
        let (ns, tuples) = match (m.family.as_str(), &m.value) {
            ("engine_op_busy_ns_total", MetricValue::Counter(v)) => (*v, 0),
            ("engine_op_tuples_in_total", MetricValue::Counter(v)) => (0, *v),
            _ => continue,
        };
        let e = busy.entry(label(m, "op")).or_default();
        e.0 += ns;
        e.1 += tuples;
    }
    for (op, (ns, tuples)) in &busy {
        println!(
            "  op     : {:<10} {:>6} tuples in, {:>8.2} ms busy",
            op,
            tuples,
            *ns as f64 / 1e6
        );
    }
    for m in metrics
        .iter()
        .filter(|m| m.family == "server_subscriber_queue_depth")
    {
        if let MetricValue::Gauge(depth) = &m.value {
            println!(
                "  outbox : subscriber {} queue depth {}",
                label(m, "client"),
                depth
            );
        }
    }
}

fn main() {
    // Q1 in miniature: plausibly-hot selection into a 1-second tumbling
    // per-sensor average.
    let select = Select::new(Predicate::UncertainAbove("temp".into(), 60.0), 0.05);
    let agg = WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |t: &Tuple| GroupKey::from_value(t.get("sensor").unwrap()).unwrap(),
        vec![AggSpec {
            field: "temp".into(),
            func: AggFunc::Avg,
            out: "avg_temp".into(),
            strategy: Strategy::Auto,
        }],
    );
    let mut graph = QueryGraph::new();
    let select = graph.add(Box::new(select));
    let agg = graph.add(Box::new(agg));
    let sink = graph.add(Box::new(Passthrough::new("sink")));
    graph.connect(select, agg, 0).unwrap();
    graph.connect(agg, sink, 0).unwrap();
    graph.source("readings", select);
    graph.sink(sink);

    // Trace 1-in-4 ingest batches and run the health watchdog on a
    // tight interval so the example exercises the whole surface.
    let config = ServerConfig {
        trace_sample_every: 4,
        trace_seed: 7,
        health_interval: std::time::Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let handle =
        Server::serve_with("127.0.0.1:0", ServedQuery::new(graph), config).expect("bind loopback");
    println!(
        "serving on {} — polling StatsV2 between chunks\n",
        handle.addr()
    );

    let mut subscriber = Client::subscriber(handle.addr()).expect("subscribe");
    let mut publisher = Client::publisher(handle.addr()).expect("connect");

    let schema = Schema::builder()
        .field("sensor", DataType::Int)
        .field("temp", DataType::Uncertain)
        .build();
    let readings: Vec<Tuple> = (0..4_000u64)
        .map(|i| {
            let mean = 55.0 + 10.0 * ((i as f64) / 300.0).sin() + (i % 8) as f64;
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Int((i % 8) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 3.0))),
                ],
                i * 10,
            )
        })
        .collect();

    // Publish in chunks; after every few chunks, fetch the metrics
    // surface over the wire and render it — the dashboard an operator's
    // scrape loop would show.
    for (i, chunk) in readings.chunks(500).enumerate() {
        publisher.publish("readings", 0, chunk).expect("publish");
        let (metrics, _text) = publisher.stats_v2().expect("stats_v2");
        dashboard(i, &metrics);
    }
    // EXPLAIN ANALYZE over the wire: the compiled shard plan annotated
    // with the live per-stage and per-operator telemetry.
    let report = publisher.explain().expect("explain");
    println!("\nEXPLAIN ANALYZE:\n{}", report.render());

    // The watchdog's current verdict, served as a typed frame. At this
    // point the publisher has gone quiet without signalling EOS, so the
    // `silent_publisher` check typically reports Degraded — the
    // watchdog catching exactly the hang it exists to catch.
    let health = publisher.health().expect("health");
    println!(
        "health : {:?} after {} evaluations",
        health.status, health.evaluations
    );
    for check in &health.checks {
        println!(
            "  check : {:<16} {:?} value={:.1} threshold={:.1} ({})",
            check.name, check.status, check.value, check.threshold, check.detail
        );
    }

    publisher.finish().expect("finish");

    let mut windows = 0usize;
    while let Event::Results { tuples, .. } = subscriber.next_event().expect("result stream") {
        windows += tuples.len();
    }
    println!("\nEOS after {windows} aggregate windows");

    // The journal is the ordered flight recorder behind the counters.
    let journal = handle.journal();
    println!(
        "\njournal tail ({} events recorded in total):",
        journal.recorded()
    );
    for e in journal.recent(8) {
        println!("  #{:<4} {:?}", e.seq, e.detail);
    }

    // What a Prometheus scrape of this deployment would collect.
    let registry = handle.registry();
    println!("\ntext exposition (first 24 lines):");
    for line in registry.render_text().lines().take(24) {
        println!("  {line}");
    }

    let errors = handle.shutdown();
    assert!(errors.is_empty(), "clean run: {errors:?}");
}
