//! Serving quickstart: run the ingest server and a client on loopback,
//! stream a Q1-style query end to end.
//!
//! One process plays all three roles to stay self-contained: it spawns
//! the server on an ephemeral port, connects a subscriber and a
//! publisher over real TCP, ships 2 000 uncertain temperature readings
//! through the wire codec, and prints each aggregate window as the
//! engine closes it — then the publisher finishes, the subscriber
//! receives EOS, and a `stats` call reports the metered selection's
//! throughput.
//!
//! Run: `cargo run --release --example serve_quickstart`

use uncertain_streams::core::metrics::Metered;
use uncertain_streams::core::ops::aggregate::{
    AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate,
};
use uncertain_streams::core::ops::select::{Predicate, Select};
use uncertain_streams::core::ops::Passthrough;
use uncertain_streams::core::query::QueryGraph;
use uncertain_streams::core::schema::{DataType, Schema};
use uncertain_streams::core::{GroupKey, Tuple, Updf, Value};
use uncertain_streams::prob::dist::Dist;
use uncertain_streams::server::{Client, Event, ServedQuery, Server};

fn main() {
    // Q1 in miniature: probabilistic selection (plausibly hot readings)
    // into a 1-second tumbling per-sensor average.
    let select = Select::new(Predicate::UncertainAbove("temp".into(), 60.0), 0.05);
    let (metered_select, select_metrics) = Metered::new(select);
    let agg = WindowedAggregate::new(
        WindowKind::Tumbling(1_000),
        |t: &Tuple| GroupKey::from_value(t.get("sensor").unwrap()).unwrap(),
        vec![AggSpec {
            field: "temp".into(),
            func: AggFunc::Avg,
            out: "avg_temp".into(),
            strategy: Strategy::Auto,
        }],
    );
    let mut graph = QueryGraph::new();
    let select = graph.add(Box::new(metered_select));
    let agg = graph.add(Box::new(agg));
    let sink = graph.add(Box::new(Passthrough::new("sink")));
    graph.connect(select, agg, 0).unwrap();
    graph.connect(agg, sink, 0).unwrap();
    graph.source("readings", select);
    graph.sink(sink);

    let served = ServedQuery::new(graph).with_metric("select", select_metrics);
    let handle = Server::serve("127.0.0.1:0", served).expect("bind loopback");
    println!("serving on {}", handle.addr());

    // Subscribe before publishing: subscriptions stream results from
    // subscribe time onward.
    let mut subscriber = Client::subscriber(handle.addr()).expect("subscribe");
    let mut publisher = Client::publisher(handle.addr()).expect("connect");

    // Publish 2 000 readings from 8 sensors in timestamp order, 100 at
    // a time — each chunk is one framed batch over TCP.
    let schema = Schema::builder()
        .field("sensor", DataType::Int)
        .field("temp", DataType::Uncertain)
        .build();
    let readings: Vec<Tuple> = (0..2_000u64)
        .map(|i| {
            let mean = 55.0 + 10.0 * ((i as f64) / 300.0).sin() + (i % 8) as f64;
            Tuple::new(
                schema.clone(),
                vec![
                    Value::Int((i % 8) as i64),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 3.0))),
                ],
                i * 10, // one reading per 10 ms
            )
        })
        .collect();
    for chunk in readings.chunks(100) {
        publisher.publish("readings", 0, chunk).expect("publish");
    }
    publisher.finish().expect("finish");

    // Stream windows until EOS.
    let mut windows = 0usize;
    while let Event::Results { tuples, .. } = subscriber.next_event().expect("result stream") {
        for t in &tuples {
            let avg = t.updf("avg_temp").unwrap();
            let (lo, hi) = avg.confidence_interval(0.95);
            println!(
                "window@{:>6}ms  sensor={}  avg={:>5.1}°C  95% CI [{:.1}, {:.1}]  P(exists)={:.2}",
                t.ts,
                t.str("group").unwrap(),
                avg.mean(),
                lo,
                hi,
                t.existence
            );
        }
        windows += tuples.len();
    }
    println!("EOS after {windows} aggregate windows");

    // Engine metrics over the wire.
    for s in publisher.stats().expect("stats") {
        let busy_ms = s.busy_ns as f64 / 1e6;
        println!(
            "op `{}`: {} in / {} out over {} calls, {:.2} ms busy",
            s.name, s.tuples_in, s.tuples_out, s.calls, busy_ms
        );
    }

    let errors = handle.shutdown();
    assert!(errors.is_empty(), "clean run: {errors:?}");
}
