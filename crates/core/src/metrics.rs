//! Operator instrumentation: throughput and latency metering.
//!
//! "Processing of raw data must keep up with stream speed" (§1) — the
//! engine therefore makes per-operator cost observable. Wrap any
//! operator in [`Metered`] and read its [`OpMetrics`] snapshot; the
//! bench harnesses and the examples use this to report tuples/second
//! without hand-rolled timing.

use crate::batch::Batch;
use crate::ops::Operator;
use crate::tuple::Tuple;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A snapshot of an operator's counters.
#[derive(Debug, Clone, Default)]
pub struct OpMetrics {
    pub tuples_in: u64,
    pub tuples_out: u64,
    /// Total time spent inside `process`/`flush`.
    pub busy: Duration,
    /// Number of `process` invocations.
    pub calls: u64,
}

impl OpMetrics {
    /// Input tuples per second of busy time.
    pub fn throughput(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.tuples_in as f64 / secs
        }
    }

    /// Mean busy time per input tuple.
    pub fn mean_latency(&self) -> Duration {
        if self.tuples_in == 0 {
            Duration::ZERO
        } else {
            self.busy.div_f64(self.tuples_in as f64)
        }
    }

    /// Output/input amplification factor.
    pub fn selectivity(&self) -> f64 {
        if self.tuples_in == 0 {
            0.0
        } else {
            self.tuples_out as f64 / self.tuples_in as f64
        }
    }
}

/// Shared handle to an operator's live metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsHandle {
    inner: Arc<Mutex<OpMetrics>>,
}

impl MetricsHandle {
    pub fn snapshot(&self) -> OpMetrics {
        self.inner.lock().clone()
    }
}

/// An operator wrapper that meters its inner operator.
pub struct Metered<O: Operator> {
    inner: O,
    handle: MetricsHandle,
}

impl<O: Operator> Metered<O> {
    /// Wrap an operator; returns the wrapper and a cloneable handle for
    /// reading metrics while the graph runs (also from other threads).
    pub fn new(inner: O) -> (Self, MetricsHandle) {
        let handle = MetricsHandle::default();
        (
            Metered {
                inner,
                handle: handle.clone(),
            },
            handle,
        )
    }
}

impl<O: Operator> Operator for Metered<O> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_ports(&self) -> usize {
        self.inner.num_ports()
    }

    fn process(&mut self, port: usize, tuple: Tuple) -> Vec<Tuple> {
        let t0 = Instant::now();
        let out = self.inner.process(port, tuple);
        let elapsed = t0.elapsed();
        let mut m = self.handle.inner.lock();
        m.tuples_in += 1;
        m.tuples_out += out.len() as u64;
        m.busy += elapsed;
        m.calls += 1;
        out
    }

    /// Meters the *inner operator's* batched path: one lock and one
    /// timestamp pair per batch, `tuples_in` advanced by the batch size.
    fn process_batch(&mut self, port: usize, batch: Batch) -> Batch {
        let n_in = batch.len() as u64;
        let t0 = Instant::now();
        let out = self.inner.process_batch(port, batch);
        let elapsed = t0.elapsed();
        let mut m = self.handle.inner.lock();
        m.tuples_in += n_in;
        m.tuples_out += out.len() as u64;
        m.busy += elapsed;
        m.calls += 1;
        out
    }

    fn flush(&mut self) -> Vec<Tuple> {
        let t0 = Instant::now();
        let out = self.inner.flush();
        let mut m = self.handle.inner.lock();
        m.tuples_out += out.len() as u64;
        m.busy += t0.elapsed();
        out
    }

    fn advance_watermark(&mut self, watermark: u64) -> Vec<Tuple> {
        let t0 = Instant::now();
        let out = self.inner.advance_watermark(watermark);
        let mut m = self.handle.inner.lock();
        m.tuples_out += out.len() as u64;
        m.busy += t0.elapsed();
        out
    }

    // Partitioning is the inner operator's property; without these
    // delegations a metered operator would fall back to the trait's
    // `Global` default and pin the whole sharded plan.
    fn partition_keys(&self) -> crate::ops::Partitioning {
        self.inner.partition_keys()
    }

    fn partition_key(&self, port: usize, tuple: &Tuple) -> Option<crate::value::GroupKey> {
        self.inner.partition_key(port, tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{MapOperator, Passthrough};
    use crate::schema::{DataType, Schema};
    use crate::value::Value;

    fn t(v: i64) -> Tuple {
        let s = Schema::builder().field("v", DataType::Int).build();
        Tuple::new(s, vec![Value::from(v)], 0)
    }

    #[test]
    fn metering_preserves_partitioning() {
        let (op, _) = Metered::new(Passthrough::new("sink"));
        assert_eq!(op.partition_keys(), crate::ops::Partitioning::Any);
    }

    #[test]
    fn counts_in_and_out() {
        let (mut op, handle) = Metered::new(MapOperator::new("dup", |t: Tuple| vec![t.clone(), t]));
        for i in 0..10 {
            op.process(0, t(i));
        }
        let m = handle.snapshot();
        assert_eq!(m.tuples_in, 10);
        assert_eq!(m.tuples_out, 20);
        assert_eq!(m.calls, 10);
        assert!((m.selectivity() - 2.0).abs() < 1e-12);
        assert!(m.throughput() > 0.0);
    }

    #[test]
    fn flush_counts_outputs_only() {
        struct FlushOnly(Vec<Tuple>);
        impl Operator for FlushOnly {
            fn name(&self) -> &str {
                "flush-only"
            }
            fn process(&mut self, _p: usize, tuple: Tuple) -> Vec<Tuple> {
                self.0.push(tuple);
                Vec::new()
            }
            fn flush(&mut self) -> Vec<Tuple> {
                std::mem::take(&mut self.0)
            }
        }
        let (mut op, handle) = Metered::new(FlushOnly(Vec::new()));
        op.process(0, t(1));
        op.process(0, t(2));
        let out = op.flush();
        assert_eq!(out.len(), 2);
        let m = handle.snapshot();
        assert_eq!(m.tuples_in, 2);
        assert_eq!(m.tuples_out, 2);
    }

    #[test]
    fn handle_readable_while_wrapped_in_graph() {
        use crate::query::QueryGraph;
        let (metered, handle) = Metered::new(Passthrough::new("p"));
        let mut g = QueryGraph::new();
        let node = g.add(Box::new(metered));
        g.source("in", node);
        g.sink(node);
        g.run(vec![("in".into(), 0, vec![t(1), t(2), t(3)])])
            .unwrap();
        assert_eq!(handle.snapshot().tuples_in, 3);
    }

    #[test]
    fn name_and_ports_pass_through() {
        let (op, _) = Metered::new(Passthrough::new("inner-name"));
        assert_eq!(op.name(), "inner-name");
        assert_eq!(op.num_ports(), 1);
    }
}
