//! Operator instrumentation: throughput and latency metering.
//!
//! "Processing of raw data must keep up with stream speed" (§1) — the
//! engine therefore makes per-operator cost observable. Wrap any
//! operator in [`Metered`] and read its [`OpMetrics`] snapshot; the
//! bench harnesses and the examples use this to report tuples/second
//! without hand-rolled timing.
//!
//! The counters are `ustream-telemetry` atomic [`Counter`]s, so the
//! per-tuple record path is four relaxed `fetch_add`s — no lock is
//! taken anywhere on the hot path, and a [`MetricsHandle`] can be
//! adopted into a [`ustream_telemetry::MetricsRegistry`] so the same
//! cells a `Metered` wrapper bumps also feed a served metrics surface.

use crate::batch::Batch;
use crate::ops::Operator;
use crate::tuple::Tuple;
use std::time::{Duration, Instant};
use ustream_telemetry::Counter;

/// A snapshot of an operator's counters.
#[derive(Debug, Clone, Default)]
pub struct OpMetrics {
    pub tuples_in: u64,
    pub tuples_out: u64,
    /// Total time spent inside `process`/`flush`.
    pub busy: Duration,
    /// Number of `process` invocations.
    pub calls: u64,
}

impl OpMetrics {
    /// Input tuples per second of busy time, or `None` while the busy
    /// time is still below timer resolution — a rate computed against a
    /// zero denominator is "not yet measurable", not zero.
    pub fn throughput(&self) -> Option<f64> {
        let secs = self.busy.as_secs_f64();
        (secs > 0.0).then(|| self.tuples_in as f64 / secs)
    }

    /// Mean busy time per input tuple, or `None` before any input has
    /// been observed.
    pub fn mean_latency(&self) -> Option<Duration> {
        (self.tuples_in > 0).then(|| self.busy.div_f64(self.tuples_in as f64))
    }

    /// Output/input amplification factor.
    pub fn selectivity(&self) -> f64 {
        if self.tuples_in == 0 {
            0.0
        } else {
            self.tuples_out as f64 / self.tuples_in as f64
        }
    }
}

/// Shared handle to an operator's live metrics: four atomic counter
/// cells, readable from any thread while the operator runs.
#[derive(Debug, Clone, Default)]
pub struct MetricsHandle {
    tuples_in: Counter,
    tuples_out: Counter,
    busy_ns: Counter,
    calls: Counter,
}

impl MetricsHandle {
    /// A consistent-enough point-in-time copy (each cell is read once,
    /// relaxed — counters may be mid-update, but each value is a real
    /// value the counter held).
    pub fn snapshot(&self) -> OpMetrics {
        OpMetrics {
            tuples_in: self.tuples_in.get(),
            tuples_out: self.tuples_out.get(),
            busy: Duration::from_nanos(self.busy_ns.get()),
            calls: self.calls.get(),
        }
    }

    /// The underlying counter cells, in `(tuples_in, tuples_out,
    /// busy_ns, calls)` order — for adopting into a
    /// [`ustream_telemetry::MetricsRegistry`] so a served metrics
    /// surface reads the very cells the wrapper bumps.
    pub fn cells(&self) -> (Counter, Counter, Counter, Counter) {
        (
            self.tuples_in.clone(),
            self.tuples_out.clone(),
            self.busy_ns.clone(),
            self.calls.clone(),
        )
    }
}

/// Always-on per-operator execution counters recorded by the batched
/// executors themselves ([`crate::query::ExecSession`],
/// [`crate::query::QueryGraph::run_batched`]) — no [`Metered`] wrapper
/// needed, no lock taken: every field is a relaxed atomic cell cheap
/// enough to leave enabled on the hot path.
///
/// `columnar_batches` vs `row_batches` is the fast-path hit rate: how
/// often an operator received column input (vectorized kernels) versus
/// row input.
#[derive(Debug, Clone, Default)]
pub struct OpTelemetry {
    pub tuples_in: Counter,
    pub tuples_out: Counter,
    /// Number of `process_batch` invocations.
    pub batches: Counter,
    /// Nanoseconds inside `process_batch`/`flush`/`advance_watermark`.
    pub busy_ns: Counter,
    /// Batches that arrived in the columnar layout.
    pub columnar_batches: Counter,
    /// Batches that arrived as rows.
    pub row_batches: Counter,
}

impl OpTelemetry {
    /// Fraction of batches that hit the columnar fast path, or `None`
    /// before any batch has been processed.
    pub fn columnar_hit_rate(&self) -> Option<f64> {
        let c = self.columnar_batches.get();
        let r = self.row_batches.get();
        (c + r > 0).then(|| c as f64 / (c + r) as f64)
    }
}

/// An operator wrapper that meters its inner operator.
pub struct Metered<O: Operator> {
    inner: O,
    handle: MetricsHandle,
}

impl<O: Operator> Metered<O> {
    /// Wrap an operator; returns the wrapper and a cloneable handle for
    /// reading metrics while the graph runs (also from other threads).
    pub fn new(inner: O) -> (Self, MetricsHandle) {
        let handle = MetricsHandle::default();
        (
            Metered {
                inner,
                handle: handle.clone(),
            },
            handle,
        )
    }
}

impl<O: Operator> Operator for Metered<O> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_ports(&self) -> usize {
        self.inner.num_ports()
    }

    fn process(&mut self, port: usize, tuple: Tuple) -> Vec<Tuple> {
        let t0 = Instant::now();
        let out = self.inner.process(port, tuple);
        let h = &self.handle;
        h.tuples_in.inc();
        h.tuples_out.add(out.len() as u64);
        h.busy_ns.add(t0.elapsed().as_nanos() as u64);
        h.calls.inc();
        out
    }

    /// Meters the *inner operator's* batched path: four relaxed atomic
    /// adds and one timestamp pair per batch, `tuples_in` advanced by
    /// the batch size.
    fn process_batch(&mut self, port: usize, batch: Batch) -> Batch {
        let n_in = batch.len() as u64;
        let t0 = Instant::now();
        let out = self.inner.process_batch(port, batch);
        let h = &self.handle;
        h.tuples_in.add(n_in);
        h.tuples_out.add(out.len() as u64);
        h.busy_ns.add(t0.elapsed().as_nanos() as u64);
        h.calls.inc();
        out
    }

    fn flush(&mut self) -> Vec<Tuple> {
        let t0 = Instant::now();
        let out = self.inner.flush();
        self.handle.tuples_out.add(out.len() as u64);
        self.handle.busy_ns.add(t0.elapsed().as_nanos() as u64);
        out
    }

    fn advance_watermark(&mut self, watermark: u64) -> Vec<Tuple> {
        let t0 = Instant::now();
        let out = self.inner.advance_watermark(watermark);
        self.handle.tuples_out.add(out.len() as u64);
        self.handle.busy_ns.add(t0.elapsed().as_nanos() as u64);
        out
    }

    // Partitioning is the inner operator's property; without these
    // delegations a metered operator would fall back to the trait's
    // `Global` default and pin the whole sharded plan.
    fn partition_keys(&self) -> crate::ops::Partitioning {
        self.inner.partition_keys()
    }

    fn partition_key(&self, port: usize, tuple: &Tuple) -> Option<crate::value::GroupKey> {
        self.inner.partition_key(port, tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{MapOperator, Passthrough};
    use crate::schema::{DataType, Schema};
    use crate::value::Value;

    fn t(v: i64) -> Tuple {
        let s = Schema::builder().field("v", DataType::Int).build();
        Tuple::new(s, vec![Value::from(v)], 0)
    }

    #[test]
    fn metering_preserves_partitioning() {
        let (op, _) = Metered::new(Passthrough::new("sink"));
        assert_eq!(op.partition_keys(), crate::ops::Partitioning::Any);
    }

    #[test]
    fn counts_in_and_out() {
        let (mut op, handle) = Metered::new(MapOperator::new("dup", |t: Tuple| vec![t.clone(), t]));
        for i in 0..10 {
            op.process(0, t(i));
        }
        let m = handle.snapshot();
        assert_eq!(m.tuples_in, 10);
        assert_eq!(m.tuples_out, 20);
        assert_eq!(m.calls, 10);
        assert!((m.selectivity() - 2.0).abs() < 1e-12);
        match m.throughput() {
            Some(rate) => assert!(rate > 0.0),
            // Sub-resolution busy time reports "not measurable", never 0.
            None => assert_eq!(m.busy, Duration::ZERO),
        }
    }

    #[test]
    fn rates_are_none_until_measurable() {
        let m = OpMetrics::default();
        assert_eq!(m.throughput(), None, "zero busy time has no rate");
        assert_eq!(m.mean_latency(), None, "zero input has no latency");
        assert_eq!(m.selectivity(), 0.0);

        let m = OpMetrics {
            tuples_in: 100,
            tuples_out: 50,
            busy: Duration::from_micros(10),
            calls: 1,
        };
        assert!((m.throughput().unwrap() - 1e7).abs() < 1.0);
        assert_eq!(m.mean_latency().unwrap(), Duration::from_nanos(100));
    }

    #[test]
    fn handle_cells_share_the_wrapped_counters() {
        let (mut op, handle) = Metered::new(Passthrough::new("p"));
        let (tuples_in, tuples_out, busy_ns, calls) = handle.cells();
        op.process(0, t(1));
        assert_eq!(tuples_in.get(), 1);
        assert_eq!(tuples_out.get(), 1);
        assert_eq!(calls.get(), 1);
        // busy_ns is whatever the timer said; the cell is live either way.
        assert_eq!(busy_ns.get(), handle.snapshot().busy.as_nanos() as u64);
    }

    #[test]
    fn flush_counts_outputs_only() {
        struct FlushOnly(Vec<Tuple>);
        impl Operator for FlushOnly {
            fn name(&self) -> &str {
                "flush-only"
            }
            fn process(&mut self, _p: usize, tuple: Tuple) -> Vec<Tuple> {
                self.0.push(tuple);
                Vec::new()
            }
            fn flush(&mut self) -> Vec<Tuple> {
                std::mem::take(&mut self.0)
            }
        }
        let (mut op, handle) = Metered::new(FlushOnly(Vec::new()));
        op.process(0, t(1));
        op.process(0, t(2));
        let out = op.flush();
        assert_eq!(out.len(), 2);
        let m = handle.snapshot();
        assert_eq!(m.tuples_in, 2);
        assert_eq!(m.tuples_out, 2);
    }

    #[test]
    fn handle_readable_while_wrapped_in_graph() {
        use crate::query::QueryGraph;
        let (metered, handle) = Metered::new(Passthrough::new("p"));
        let mut g = QueryGraph::new();
        let node = g.add(Box::new(metered));
        g.source("in", node);
        g.sink(node);
        g.run(vec![("in".into(), 0, vec![t(1), t(2), t(3)])])
            .unwrap();
        assert_eq!(handle.snapshot().tuples_in, 3);
    }

    #[test]
    fn name_and_ports_pass_through() {
        let (op, _) = Metered::new(Passthrough::new("inner-name"));
        assert_eq!(op.name(), "inner-name");
        assert_eq!(op.num_ports(), 1);
    }
}
