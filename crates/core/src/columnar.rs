//! Columnar batch storage: per-field typed columns behind the row
//! [`crate::batch::Batch`] API.
//!
//! A [`Columns`] holds one batch's worth of tuples decomposed into
//! per-field arrays — `Vec<i64>`/`Vec<f64>` for certain scalars, a
//! dictionary column for strings, a struct-of-arrays `(mean, sd)` pair
//! for the dominant parametric-Gaussian `Updf` payload — plus the
//! batch-level `ts`/`existence`/`lineage` vectors. Heterogeneous or
//! non-columnar payloads fall back to a row column ([`Column::Rows`])
//! so *any* run of same-schema tuples has a columnar form.
//!
//! The contract that makes this safe to slide underneath the existing
//! engine is **lossless round-tripping**: `Columns::from_rows` followed
//! by `Columns::into_rows` reproduces every tuple exactly — same
//! schema `Arc`, same `Value` variants (an `Int` stays an `Int`), the
//! same Gaussian `(mean, sd)` bits, timestamps, existence, and lineage.
//! Operators with vectorized fast paths read the typed arrays directly;
//! everything else hydrates back to rows and runs unchanged.

use crate::lineage::Lineage;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::updf::Updf;
use crate::value::{GroupKey, Value};
use std::sync::Arc;
use ustream_prob::dist::{Dist, Gaussian};

/// Extract the `(mean, sd)` of a compact parametric-Gaussian payload,
/// the one `Updf` shape that gets a struct-of-arrays column.
fn gaussian_params(v: &Value) -> Option<(f64, f64)> {
    match v {
        Value::Uncertain(u) => match &**u {
            Updf::Parametric(Dist::Gaussian(g)) => Some((g.mean(), g.std_dev())),
            _ => None,
        },
        _ => None,
    }
}

/// Rebuild the exact `Value` a Gaussian column row decomposed from.
pub fn gaussian_value(mean: f64, sd: f64) -> Value {
    Value::Uncertain(Box::new(Updf::Parametric(Dist::Gaussian(Gaussian::new(
        mean, sd,
    )))))
}

/// Drop the entries of `v` whose mask slot is false, in place.
fn retain_by_mask<T>(v: &mut Vec<T>, keep: &[bool]) {
    debug_assert_eq!(v.len(), keep.len());
    let mut i = 0;
    v.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
}

/// One field's storage inside a [`Columns`] batch.
///
/// A fresh column is `Rows(vec![])`; the first pushed value picks the
/// typed variant, and any later value the variant cannot hold demotes
/// the whole column back to rows (exactly reconstructing the prefix).
#[derive(Debug, Clone)]
pub enum Column {
    /// Exact 64-bit integers (`Value::Int`).
    Int(Vec<i64>),
    /// `Value::Float`.
    Float(Vec<f64>),
    /// `Value::Time` (event-time milliseconds).
    Time(Vec<u64>),
    /// Dictionary-encoded strings (`Value::Str`).
    Str { codes: Vec<u32>, dict: Vec<String> },
    /// Struct-of-arrays for parametric-Gaussian `Updf` payloads: the
    /// stored `(mean, sd)` pair of every row, bit-exact.
    Gaussian { mean: Vec<f64>, sd: Vec<f64> },
    /// Row fallback: heterogeneous or non-columnar values, verbatim.
    Rows(Vec<Value>),
}

impl Default for Column {
    fn default() -> Self {
        Column::new()
    }
}

impl Column {
    /// A fresh column with no variant picked yet.
    pub fn new() -> Column {
        Column::Rows(Vec::new())
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Time(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Gaussian { mean, .. } => mean.len(),
            Column::Rows(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The typed variant a first value seeds.
    fn empty_for(v: &Value) -> Column {
        match v {
            Value::Int(_) => Column::Int(Vec::new()),
            Value::Float(_) => Column::Float(Vec::new()),
            Value::Time(_) => Column::Time(Vec::new()),
            Value::Str(_) => Column::Str {
                codes: Vec::new(),
                dict: Vec::new(),
            },
            Value::Uncertain(_) if gaussian_params(v).is_some() => Column::Gaussian {
                mean: Vec::new(),
                sd: Vec::new(),
            },
            _ => Column::Rows(Vec::new()),
        }
    }

    fn accepts(&self, v: &Value) -> bool {
        match (self, v) {
            (Column::Int(_), Value::Int(_)) => true,
            (Column::Float(_), Value::Float(_)) => true,
            (Column::Time(_), Value::Time(_)) => true,
            (Column::Str { .. }, Value::Str(_)) => true,
            (Column::Gaussian { .. }, _) => gaussian_params(v).is_some(),
            (Column::Rows(_), _) => true,
            _ => false,
        }
    }

    /// Demote a typed column to rows, reconstructing the prefix exactly.
    fn demote(&mut self) {
        let rows = std::mem::replace(self, Column::Rows(Vec::new())).into_values();
        *self = Column::Rows(rows);
    }

    /// Append one value, picking/demoting the variant as needed.
    pub fn push_value(&mut self, v: Value) {
        if matches!(self, Column::Rows(rows) if rows.is_empty()) {
            *self = Column::empty_for(&v);
        } else if !self.accepts(&v) {
            self.demote();
        }
        match (self, v) {
            (Column::Int(xs), Value::Int(i)) => xs.push(i),
            (Column::Float(xs), Value::Float(f)) => xs.push(f),
            (Column::Time(xs), Value::Time(t)) => xs.push(t),
            (Column::Str { codes, dict }, Value::Str(s)) => {
                let code = match dict.iter().position(|d| *d == s) {
                    Some(i) => i as u32,
                    None => {
                        dict.push(s);
                        (dict.len() - 1) as u32
                    }
                };
                codes.push(code);
            }
            (Column::Gaussian { mean, sd }, v) => {
                let (m, s) = gaussian_params(&v).expect("accepts() checked");
                mean.push(m);
                sd.push(s);
            }
            (Column::Rows(rows), v) => rows.push(v),
            _ => unreachable!("push_value: variant prepared above"),
        }
    }

    /// Append one parametric-Gaussian payload without materializing a
    /// `Value` — the wire decoder's in-place path.
    pub fn push_gaussian(&mut self, mean: f64, sd: f64) {
        if matches!(self, Column::Rows(rows) if rows.is_empty()) {
            *self = Column::Gaussian {
                mean: Vec::new(),
                sd: Vec::new(),
            };
        }
        match self {
            Column::Gaussian { mean: ms, sd: ss } => {
                ms.push(mean);
                ss.push(sd);
            }
            _ => self.push_value(gaussian_value(mean, sd)),
        }
    }

    /// Materialize row `i` as the exact `Value` it decomposed from.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Time(v) => Value::Time(v[i]),
            Column::Str { codes, dict } => Value::Str(dict[codes[i] as usize].clone()),
            Column::Gaussian { mean, sd } => gaussian_value(mean[i], sd[i]),
            Column::Rows(v) => v[i].clone(),
        }
    }

    /// Consume the column into its exact row values.
    pub fn into_values(self) -> Vec<Value> {
        match self {
            Column::Int(v) => v.into_iter().map(Value::Int).collect(),
            Column::Float(v) => v.into_iter().map(Value::Float).collect(),
            Column::Time(v) => v.into_iter().map(Value::Time).collect(),
            Column::Str { codes, dict } => codes
                .into_iter()
                .map(|c| Value::Str(dict[c as usize].clone()))
                .collect(),
            Column::Gaussian { mean, sd } => mean
                .into_iter()
                .zip(sd)
                .map(|(m, s)| gaussian_value(m, s))
                .collect(),
            Column::Rows(v) => v,
        }
    }

    /// Keep only the rows whose mask slot is true.
    pub fn filter(&mut self, keep: &[bool]) {
        match self {
            Column::Int(v) => retain_by_mask(v, keep),
            Column::Float(v) => retain_by_mask(v, keep),
            Column::Time(v) => retain_by_mask(v, keep),
            Column::Str { codes, .. } => retain_by_mask(codes, keep),
            Column::Gaussian { mean, sd } => {
                retain_by_mask(mean, keep);
                retain_by_mask(sd, keep);
            }
            Column::Rows(v) => retain_by_mask(v, keep),
        }
    }

    /// Moving append: `other`'s rows follow this column's, demoting to
    /// rows when the variants cannot merge.
    pub fn append(&mut self, other: Column) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other;
            return;
        }
        match (&mut *self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend(b),
            (Column::Float(a), Column::Float(b)) => a.extend(b),
            (Column::Time(a), Column::Time(b)) => a.extend(b),
            (
                Column::Str { codes, dict },
                Column::Str {
                    codes: bc,
                    dict: bd,
                },
            ) => {
                // Re-encode against this column's dictionary, moving
                // the other dictionary's strings where they are new.
                let mut remap = Vec::with_capacity(bd.len());
                for s in bd {
                    match dict.iter().position(|d| *d == s) {
                        Some(i) => remap.push(i as u32),
                        None => {
                            dict.push(s);
                            remap.push((dict.len() - 1) as u32);
                        }
                    }
                }
                codes.extend(bc.into_iter().map(|c| remap[c as usize]));
            }
            (Column::Gaussian { mean, sd }, Column::Gaussian { mean: bm, sd: bs }) => {
                mean.extend(bm);
                sd.extend(bs);
            }
            (Column::Rows(a), b) => a.extend(b.into_values()),
            (_, b) => {
                self.demote();
                match self {
                    Column::Rows(a) => a.extend(b.into_values()),
                    _ => unreachable!("demote yields rows"),
                }
            }
        }
    }

    /// Split off the tail starting at row `at` (cf. `Vec::split_off`).
    pub fn split_off(&mut self, at: usize) -> Column {
        match self {
            Column::Int(v) => Column::Int(v.split_off(at)),
            Column::Float(v) => Column::Float(v.split_off(at)),
            Column::Time(v) => Column::Time(v.split_off(at)),
            Column::Str { codes, dict } => Column::Str {
                codes: codes.split_off(at),
                dict: dict.clone(),
            },
            Column::Gaussian { mean, sd } => Column::Gaussian {
                mean: mean.split_off(at),
                sd: sd.split_off(at),
            },
            Column::Rows(v) => Column::Rows(v.split_off(at)),
        }
    }

    /// The `(mean, sd)` arrays of a Gaussian column.
    pub fn as_gaussian(&self) -> Option<(&[f64], &[f64])> {
        match self {
            Column::Gaussian { mean, sd } => Some((mean, sd)),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_time(&self) -> Option<&[u64]> {
        match self {
            Column::Time(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str_dict(&self) -> Option<(&[u32], &[String])> {
        match self {
            Column::Str { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    pub fn as_rows(&self) -> Option<&[Value]> {
        match self {
            Column::Rows(v) => Some(v),
            _ => None,
        }
    }

    /// The group key of row `i`, mirroring `GroupKey::from_value`.
    pub fn group_key_at(&self, i: usize) -> Option<GroupKey> {
        match self {
            Column::Int(v) => Some(GroupKey::Int(v[i])),
            Column::Time(v) => Some(GroupKey::Int(v[i] as i64)),
            Column::Str { codes, dict } => Some(GroupKey::Str(dict[codes[i] as usize].clone())),
            Column::Rows(v) => GroupKey::from_value(&v[i]),
            Column::Float(_) | Column::Gaussian { .. } => None,
        }
    }
}

/// A batch of same-schema tuples in columnar form: one [`Column`] per
/// schema field plus the tuple-level metadata vectors.
#[derive(Debug, Clone)]
pub struct Columns {
    schema: Arc<Schema>,
    cols: Vec<Column>,
    ts: Vec<u64>,
    existence: Vec<f64>,
    lineage: Vec<Lineage>,
}

impl Columns {
    /// An empty columnar batch over `schema`.
    pub fn new(schema: Arc<Schema>) -> Columns {
        let cols = (0..schema.len()).map(|_| Column::new()).collect();
        Columns {
            schema,
            cols,
            ts: Vec::new(),
            existence: Vec::new(),
            lineage: Vec::new(),
        }
    }

    pub fn with_capacity(schema: Arc<Schema>, n: usize) -> Columns {
        let mut c = Columns::new(schema);
        c.ts.reserve(n);
        c.existence.reserve(n);
        c.lineage.reserve(n);
        c
    }

    pub fn len(&self) -> usize {
        self.ts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn ts(&self) -> &[u64] {
        &self.ts
    }

    pub fn existence(&self) -> &[f64] {
        &self.existence
    }

    pub fn existence_mut(&mut self) -> &mut [f64] {
        &mut self.existence
    }

    pub fn lineage(&self) -> &[Lineage] {
        &self.lineage
    }

    pub fn col(&self, i: usize) -> &Column {
        &self.cols[i]
    }

    /// Mutable column access — the in-place wire decoder and the
    /// vectorized operators use this; callers must keep every column at
    /// the metadata length (checked by `debug_assert_consistent`).
    pub fn col_mut(&mut self, i: usize) -> &mut Column {
        &mut self.cols[i]
    }

    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Append tuple-level metadata for one row whose values were pushed
    /// through [`Columns::col_mut`] (the wire decoder's shape).
    pub fn push_meta(&mut self, ts: u64, existence: f64, lineage: Lineage) {
        self.ts.push(ts);
        self.existence.push(existence);
        self.lineage.push(lineage);
    }

    #[cfg(debug_assertions)]
    pub fn debug_assert_consistent(&self) {
        for c in &self.cols {
            debug_assert_eq!(c.len(), self.ts.len());
        }
        debug_assert_eq!(self.existence.len(), self.ts.len());
        debug_assert_eq!(self.lineage.len(), self.ts.len());
    }

    /// Decompose a run of tuples. Every tuple must share the schema
    /// `Arc`; the run is handed back untouched otherwise.
    pub fn from_rows(tuples: Vec<Tuple>) -> std::result::Result<Columns, Vec<Tuple>> {
        let Some(first) = tuples.first() else {
            return Err(tuples);
        };
        let schema = first.schema().clone();
        if !tuples.iter().all(|t| Arc::ptr_eq(t.schema(), &schema)) {
            return Err(tuples);
        }
        let mut out = Columns::with_capacity(schema, tuples.len());
        for t in tuples {
            out.push_row(t);
        }
        Ok(out)
    }

    /// Append one tuple (must share the batch's schema `Arc`).
    pub fn push_row(&mut self, t: Tuple) {
        debug_assert!(Arc::ptr_eq(t.schema(), &self.schema));
        let (_, values, ts, existence, lineage) = t.into_parts();
        for (col, v) in self.cols.iter_mut().zip(values) {
            col.push_value(v);
        }
        self.push_meta(ts, existence, lineage);
    }

    /// Hydrate back to rows — the exact tuples this batch decomposed
    /// from, in order.
    pub fn into_rows(self) -> Vec<Tuple> {
        let n = self.ts.len();
        let mut iters: Vec<std::vec::IntoIter<Value>> = self
            .cols
            .into_iter()
            .map(|c| c.into_values().into_iter())
            .collect();
        let mut out = Vec::with_capacity(n);
        let mut ts = self.ts.into_iter();
        let mut existence = self.existence.into_iter();
        let mut lineage = self.lineage.into_iter();
        for _ in 0..n {
            let values: Vec<Value> = iters
                .iter_mut()
                .map(|it| it.next().expect("column length"))
                .collect();
            out.push(Tuple::derived(
                self.schema.clone(),
                values,
                ts.next().expect("ts length"),
                existence.next().expect("existence length"),
                lineage.next().expect("lineage length"),
            ));
        }
        out
    }

    /// Materialize row `i` as a standalone tuple (clone).
    pub fn row_at(&self, i: usize) -> Tuple {
        let values: Vec<Value> = self.cols.iter().map(|c| c.value_at(i)).collect();
        Tuple::derived(
            self.schema.clone(),
            values,
            self.ts[i],
            self.existence[i],
            self.lineage[i].clone(),
        )
    }

    /// Moving append of another batch over the same schema `Arc`.
    pub fn append(&mut self, other: Columns) {
        assert!(
            Arc::ptr_eq(&self.schema, &other.schema),
            "Columns::append requires the same schema Arc"
        );
        if self.is_empty() {
            *self = other;
            return;
        }
        for (a, b) in self.cols.iter_mut().zip(other.cols) {
            a.append(b);
        }
        self.ts.extend(other.ts);
        self.existence.extend(other.existence);
        self.lineage.extend(other.lineage);
    }

    /// Split off the tail starting at row `at`.
    pub fn split_off(&mut self, at: usize) -> Columns {
        Columns {
            schema: self.schema.clone(),
            cols: self.cols.iter_mut().map(|c| c.split_off(at)).collect(),
            ts: self.ts.split_off(at),
            existence: self.existence.split_off(at),
            lineage: self.lineage.split_off(at),
        }
    }

    /// Keep only the rows whose mask slot is true.
    pub fn filter(&mut self, keep: &[bool]) {
        for c in &mut self.cols {
            c.filter(keep);
        }
        retain_by_mask(&mut self.ts, keep);
        retain_by_mask(&mut self.existence, keep);
        retain_by_mask(&mut self.lineage, keep);
    }

    /// Widen the batch with one derived column under its new schema
    /// (column-at-a-time projection output).
    pub fn add_column(&mut self, schema: Arc<Schema>, col: Column) {
        self.add_columns(schema, vec![col]);
    }

    /// Widen the batch with several derived columns at once under the
    /// final widened schema.
    pub fn add_columns(&mut self, schema: Arc<Schema>, cols: Vec<Column>) {
        for col in &cols {
            assert_eq!(col.len(), self.len(), "derived column length");
        }
        assert_eq!(schema.len(), self.cols.len() + cols.len(), "schema arity");
        self.cols.extend(cols);
        self.schema = schema;
    }

    pub fn max_ts(&self) -> Option<u64> {
        self.ts.iter().copied().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .field("g", DataType::Int)
            .field("name", DataType::Str)
            .field("x", DataType::Uncertain)
            .build()
    }

    fn tuples() -> Vec<Tuple> {
        let s = schema();
        (0..6u64)
            .map(|i| {
                let mut t = Tuple::new(
                    s.clone(),
                    vec![
                        Value::Int(i as i64 % 3),
                        Value::Str(format!("n{}", i % 2)),
                        Value::from(Updf::Parametric(Dist::gaussian(i as f64, 1.0 + i as f64))),
                    ],
                    i * 10,
                );
                t.existence = 1.0 - i as f64 * 0.05;
                t
            })
            .collect()
    }

    fn assert_same(a: &Tuple, b: &Tuple) {
        assert!(Arc::ptr_eq(a.schema(), b.schema()));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn round_trip_is_lossless() {
        let rows = tuples();
        let cols = Columns::from_rows(rows.clone()).unwrap();
        assert_eq!(cols.len(), rows.len());
        assert!(cols.col(0).as_int().is_some());
        assert!(cols.col(1).as_str_dict().is_some());
        assert!(cols.col(2).as_gaussian().is_some());
        let back = cols.into_rows();
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            assert_same(a, b);
        }
    }

    #[test]
    fn heterogeneous_payloads_demote_to_rows() {
        let s = Schema::builder().field("x", DataType::Uncertain).build();
        let g = Tuple::new(
            s.clone(),
            vec![Value::from(Updf::Parametric(Dist::gaussian(1.0, 2.0)))],
            0,
        );
        let u = Tuple::new(
            s.clone(),
            vec![Value::from(Updf::Parametric(Dist::uniform(0.0, 1.0)))],
            1,
        );
        let rows = vec![g, u];
        let cols = Columns::from_rows(rows.clone()).unwrap();
        assert!(cols.col(0).as_rows().is_some(), "mixed payloads fall back");
        for (a, b) in rows.iter().zip(&cols.into_rows()) {
            assert_same(a, b);
        }
    }

    #[test]
    fn mixed_schema_runs_are_rejected() {
        let s1 = Schema::builder().field("v", DataType::Int).build();
        let s2 = Schema::builder().field("v", DataType::Int).build();
        let rows = vec![
            Tuple::new(s1, vec![Value::Int(1)], 0),
            Tuple::new(s2, vec![Value::Int(2)], 1),
        ];
        assert!(Columns::from_rows(rows).is_err());
    }

    #[test]
    fn filter_compacts_all_columns() {
        let mut cols = Columns::from_rows(tuples()).unwrap();
        let keep = [true, false, true, false, true, false];
        cols.filter(&keep);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.ts(), &[0, 20, 40]);
        let back = cols.into_rows();
        assert_eq!(back[2].int("g").unwrap(), 1);
    }

    #[test]
    fn append_and_split_round_trip() {
        let rows = tuples();
        let mut a = Columns::from_rows(rows[..3].to_vec()).unwrap();
        // Rebuild the tail against the same schema Arc.
        let mut b = Columns::with_capacity(a.schema().clone(), 3);
        for t in &rows[3..] {
            let mut t = t.clone();
            // push_row requires pointer-equal schemas.
            t = Tuple::derived(
                a.schema().clone(),
                t.values().to_vec(),
                t.ts,
                t.existence,
                t.lineage.clone(),
            );
            b.push_row(t);
        }
        a.append(b);
        assert_eq!(a.len(), 6);
        let tail = a.split_off(4);
        assert_eq!(a.len(), 4);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.ts(), &[40, 50]);
    }

    #[test]
    fn dictionary_merges_across_appends() {
        let s = Schema::builder().field("name", DataType::Str).build();
        let mk = |names: &[&str], base: u64| -> Columns {
            let rows: Vec<Tuple> = names
                .iter()
                .enumerate()
                .map(|(i, n)| Tuple::new(s.clone(), vec![Value::from(*n)], base + i as u64))
                .collect();
            Columns::from_rows(rows).unwrap()
        };
        let mut a = mk(&["x", "y", "x"], 0);
        let b = mk(&["y", "z"], 10);
        a.append(b);
        let (codes, dict) = a.col(0).as_str_dict().unwrap();
        assert_eq!(dict.len(), 3, "shared entries dedup");
        assert_eq!(codes.len(), 5);
        let back = a.into_rows();
        assert_eq!(back[3].str("name").unwrap(), "y");
        assert_eq!(back[4].str("name").unwrap(), "z");
    }

    #[test]
    fn group_keys_read_without_tuples() {
        let cols = Columns::from_rows(tuples()).unwrap();
        assert_eq!(cols.col(0).group_key_at(4), Some(GroupKey::Int(1)));
        assert_eq!(
            cols.col(1).group_key_at(1),
            Some(GroupKey::Str("n1".into()))
        );
        assert_eq!(cols.col(2).group_key_at(0), None, "uncertain keys refuse");
    }
}
