//! The data capture & transformation (T) operator contract (§3, §4).
//!
//! A T operator is the ingress box of the stream network: "Allocated for
//! each sensor device … it transforms raw data into a format suitable for
//! further processing \[and\] includes a probability density function in
//! each output tuple." The concrete RFID and radar T operators live in
//! the `ustream-inference` and `radar-sim` crates; this module defines
//! the trait they implement plus shared conversion helpers.

use crate::tuple::Tuple;
use crate::updf::{ConversionPolicy, Updf};
use ustream_prob::samples::WeightedSamples;

/// A data capture & transformation operator over raw readings of type
/// `Raw`. Unlike [`crate::ops::Operator`] (tuple → tuple), a T operator
/// consumes *device-format* data and emits uncertain tuples.
pub trait TransformOperator: Send {
    /// The device's raw reading type.
    type Raw;

    /// Ingest one raw reading; emit zero or more uncertain tuples.
    fn ingest(&mut self, raw: Self::Raw) -> Vec<Tuple>;

    /// Drain any buffered state at end of stream.
    fn finish(&mut self) -> Vec<Tuple> {
        Vec::new()
    }

    /// Human-readable name.
    fn name(&self) -> &str {
        "t-operator"
    }
}

/// Convert a sample-based posterior into the tuple-level distribution the
/// policy prescribes (§4.3) — the step between inference and emission.
pub fn convert_samples(samples: WeightedSamples, policy: &ConversionPolicy) -> Updf {
    Updf::Samples(samples).compact(policy)
}

/// Measured size effect of a conversion policy: (bytes before, bytes
/// after). Used by the ablation bench to reproduce the §4.3 claim that
/// shipping samples inflates stream volume by 1–2 orders of magnitude.
pub fn conversion_size_effect(
    samples: &WeightedSamples,
    policy: &ConversionPolicy,
) -> (usize, usize) {
    let before = Updf::Samples(samples.clone()).payload_bytes();
    let after = convert_samples(samples.clone(), policy).payload_bytes();
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ustream_prob::dist::Gaussian;

    fn cloud(n: usize) -> WeightedSamples {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Gaussian::new(5.0, 1.0);
        WeightedSamples::unweighted((0..n).map(|_| g.sample(&mut rng)).collect())
    }

    #[test]
    fn gaussian_conversion_shrinks_payload() {
        let s = cloud(200);
        let (before, after) = conversion_size_effect(&s, &ConversionPolicy::FitGaussian);
        assert_eq!(before, 200 * 16);
        assert_eq!(after, 16);
        assert!(before / after >= 100, "1–2 orders of magnitude (§4.3)");
    }

    #[test]
    fn keep_samples_keeps_size() {
        let s = cloud(50);
        let (before, after) = conversion_size_effect(&s, &ConversionPolicy::KeepSamples);
        assert_eq!(before, after);
    }

    #[test]
    fn converted_distribution_preserves_moments() {
        let s = cloud(2000);
        let u = convert_samples(s.clone(), &ConversionPolicy::FitGaussian);
        assert!((u.mean() - s.mean()).abs() < 1e-9);
        assert!((u.variance() - s.variance()).abs() < 1e-9);
    }
}
