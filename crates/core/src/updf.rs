//! Tuple-level distributions (the "pdf in each output tuple" of §3).
//!
//! [`Updf`] is the payload an uncertain attribute carries through the
//! query network. It unifies the representations the paper moves between:
//! sample-based (particle clouds), parametric (Gaussian / mixture /
//! any [`Dist`]), histogram (CF-inversion output), and multivariate
//! Gaussian (object locations). Conversion between them follows §4.3:
//! KL-minimizing Gaussian fits and AIC/BIC-selected mixtures.

use ustream_prob::dist::{Dist, Gaussian, MvGaussian};
use ustream_prob::fit::{select_gmm, EmConfig, ModelSelection};
use ustream_prob::histogram::HistogramPdf;
use ustream_prob::samples::{WeightedSamples, WeightedSamplesNd};

/// A tuple-level probability distribution.
#[derive(Debug, Clone)]
pub enum Updf {
    /// Scalar parametric distribution (Gaussian, mixture, truncated…).
    Parametric(Dist),
    /// Scalar weighted samples (particle representation).
    Samples(WeightedSamples),
    /// Scalar histogram (numeric pdf, e.g. CF-inversion output).
    Histogram(HistogramPdf),
    /// Multivariate Gaussian (e.g. an (x, y, z) location).
    Mv(MvGaussian),
    /// Multivariate weighted samples (location particle cloud).
    MvSamples(WeightedSamplesNd),
}

/// How sample-based distributions are converted to compact forms when a
/// tuple leaves a T operator (§4.3).
#[derive(Debug, Clone)]
pub enum ConversionPolicy {
    /// Ship the raw samples (the paper's strawman: "increase the stream
    /// volume by one or two orders of magnitude").
    KeepSamples,
    /// Two-scan KL-optimal Gaussian.
    FitGaussian,
    /// AIC/BIC-selected Gaussian mixture with at most `max_k` components.
    FitMixture {
        max_k: usize,
        criterion: ModelSelection,
    },
}

impl Updf {
    /// Dimensionality: 1 for scalar forms, d for multivariate.
    pub fn dim(&self) -> usize {
        match self {
            Updf::Mv(mv) => mv.dim(),
            Updf::MvSamples(s) => s.dim(),
            _ => 1,
        }
    }

    /// True when the payload is sample-based (needs conversion before
    /// downstream parametric fast paths can apply).
    pub fn is_sample_based(&self) -> bool {
        matches!(self, Updf::Samples(_) | Updf::MvSamples(_))
    }

    /// Scalar mean. Panics for multivariate payloads (use [`Updf::mean_vec`]).
    pub fn mean(&self) -> f64 {
        match self {
            Updf::Parametric(d) => d.mean(),
            Updf::Samples(s) => s.mean(),
            Updf::Histogram(h) => h.mean(),
            Updf::Mv(_) | Updf::MvSamples(_) => {
                panic!("mean() on multivariate Updf; use mean_vec()")
            }
        }
    }

    /// Scalar variance; panics for multivariate payloads.
    pub fn variance(&self) -> f64 {
        match self {
            Updf::Parametric(d) => d.variance(),
            Updf::Samples(s) => s.variance(),
            Updf::Histogram(h) => h.variance(),
            Updf::Mv(_) | Updf::MvSamples(_) => {
                panic!("variance() on multivariate Updf")
            }
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Mean vector for any payload (length = `dim()`).
    pub fn mean_vec(&self) -> Vec<f64> {
        match self {
            Updf::Mv(mv) => mv.mean().to_vec(),
            Updf::MvSamples(s) => s.mean(),
            scalar => vec![scalar.mean()],
        }
    }

    /// P(X > threshold) for scalar payloads.
    pub fn prob_above(&self, threshold: f64) -> f64 {
        match self {
            Updf::Parametric(d) => d.prob_above(threshold),
            Updf::Samples(s) => 1.0 - s.cdf(threshold),
            Updf::Histogram(h) => 1.0 - h.cdf(threshold),
            _ => panic!("prob_above() on multivariate Updf"),
        }
    }

    /// P(lo < X ≤ hi) for scalar payloads.
    pub fn prob_in(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        match self {
            Updf::Parametric(d) => d.prob_in(lo, hi),
            Updf::Samples(s) => (s.cdf(hi) - s.cdf(lo)).clamp(0.0, 1.0),
            Updf::Histogram(h) => (h.cdf(hi) - h.cdf(lo)).clamp(0.0, 1.0),
            _ => panic!("prob_in() on multivariate Updf"),
        }
    }

    /// Scalar quantile.
    pub fn quantile(&self, p: f64) -> f64 {
        match self {
            Updf::Parametric(d) => d.quantile(p),
            Updf::Samples(s) => s.quantile(p),
            Updf::Histogram(h) => h.quantile(p),
            _ => panic!("quantile() on multivariate Updf"),
        }
    }

    /// Central confidence interval at `level` for scalar payloads.
    pub fn confidence_interval(&self, level: f64) -> (f64, f64) {
        let alpha = (1.0 - level) / 2.0;
        (self.quantile(alpha), self.quantile(1.0 - alpha))
    }

    /// Linear transform aX + b, staying in the richest representation
    /// available (exact for samples/histograms with a ≠ 0; closed form
    /// for location-scale parametrics).
    pub fn affine(&self, a: f64, b: f64) -> Updf {
        match self {
            Updf::Parametric(d) => Updf::Parametric(d.affine(a, b)),
            Updf::Samples(s) => {
                let xs = s.values().iter().map(|&x| a * x + b).collect();
                Updf::Samples(WeightedSamples::new(xs, s.weights().to_vec()))
            }
            Updf::Histogram(h) => {
                // Exact for a > 0; for a < 0 reverse the bins.
                if a == 0.0 {
                    return Updf::Parametric(Dist::gaussian(b, 1e-9));
                }
                let masses: Vec<f64> = if a > 0.0 {
                    h.masses().to_vec()
                } else {
                    h.masses().iter().rev().copied().collect()
                };
                let lo = if a > 0.0 {
                    a * h.lo() + b
                } else {
                    a * h.hi() + b
                };
                Updf::Histogram(HistogramPdf::from_masses(
                    lo,
                    a.abs() * h.bin_width(),
                    masses,
                ))
            }
            Updf::Mv(_) | Updf::MvSamples(_) => panic!("affine() on multivariate Updf"),
        }
    }

    /// Convert to a parametric [`Dist`] under the given policy. Histogram
    /// payloads fit a Gaussian by moment matching; parametric payloads
    /// pass through.
    pub fn to_dist(&self, policy: &ConversionPolicy) -> Dist {
        match self {
            Updf::Parametric(d) => d.clone(),
            Updf::Histogram(h) => {
                Dist::Gaussian(Gaussian::from_mean_var(h.mean(), h.variance().max(1e-18)))
            }
            Updf::Samples(s) => match policy {
                ConversionPolicy::KeepSamples | ConversionPolicy::FitGaussian => {
                    Dist::Gaussian(s.fit_gaussian())
                }
                ConversionPolicy::FitMixture { max_k, criterion } => {
                    let sel = select_gmm(s, *max_k, *criterion, &EmConfig::default());
                    if sel.k == 1 {
                        Dist::Gaussian(s.fit_gaussian())
                    } else {
                        Dist::Mixture(sel.mixture)
                    }
                }
            },
            Updf::Mv(_) | Updf::MvSamples(_) => panic!("to_dist() on multivariate Updf"),
        }
    }

    /// Apply the conversion policy in place: sample payloads become
    /// compact parametric ones; everything else is untouched. Returns the
    /// (possibly unchanged) payload — the step a T operator performs
    /// before emitting a tuple (§4.3).
    pub fn compact(self, policy: &ConversionPolicy) -> Updf {
        match (&self, policy) {
            (_, ConversionPolicy::KeepSamples) => self,
            (Updf::Samples(_), _) => Updf::Parametric(self.to_dist(policy)),
            (Updf::MvSamples(s), _) => Updf::Mv(s.fit_mv_gaussian()),
            _ => self,
        }
    }

    /// Marginal along `axis` as a scalar Updf (multivariate payloads).
    pub fn marginal(&self, axis: usize) -> Updf {
        match self {
            Updf::Mv(mv) => Updf::Parametric(Dist::Gaussian(mv.marginal(axis))),
            Updf::MvSamples(s) => Updf::Samples(s.marginal(axis)),
            scalar => {
                assert_eq!(axis, 0, "scalar Updf has only axis 0");
                scalar.clone()
            }
        }
    }

    /// Approximate in-memory payload size in bytes — the paper's stream-
    /// volume argument (§4.3: samples inflate the stream by 1–2 orders of
    /// magnitude; parametric forms are a handful of floats).
    pub fn payload_bytes(&self) -> usize {
        match self {
            Updf::Parametric(Dist::Mixture(m)) => m.num_components() * 24,
            Updf::Parametric(_) => 16,
            Updf::Samples(s) => s.len() * 16,
            Updf::Histogram(h) => h.num_bins() * 8 + 16,
            Updf::Mv(mv) => mv.dim() * 8 + mv.dim() * mv.dim() * 8,
            Updf::MvSamples(s) => s.len() * (s.dim() + 1) * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ustream_prob::dist::GaussianMixture;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn scalar_stats_consistent_across_representations() {
        let g = Dist::gaussian(3.0, 1.0);
        let para = Updf::Parametric(g.clone());
        let hist = Updf::Histogram(HistogramPdf::discretize_auto(&g, 512, 8.0));
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        let samp = Updf::Samples(WeightedSamples::unweighted(xs));

        for u in [&para, &hist, &samp] {
            close(u.mean(), 3.0, 0.05);
            close(u.variance(), 1.0, 0.05);
            close(u.prob_above(3.0), 0.5, 0.02);
            close(u.quantile(0.5), 3.0, 0.05);
        }
    }

    #[test]
    fn affine_on_samples_exact() {
        let s = Updf::Samples(WeightedSamples::new(vec![1.0, 2.0], vec![0.5, 0.5]));
        let t = s.affine(2.0, 1.0);
        close(t.mean(), 4.0, 1e-12);
        close(t.variance(), 1.0, 1e-12);
    }

    #[test]
    fn affine_on_histogram_handles_negative_scale() {
        let h = Updf::Histogram(HistogramPdf::discretize_auto(
            &Dist::gaussian(1.0, 1.0),
            256,
            8.0,
        ));
        let t = h.affine(-2.0, 0.0);
        close(t.mean(), -2.0, 0.02);
        close(t.variance(), 4.0, 0.1);
    }

    #[test]
    fn compact_gaussian_policy() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Dist::gaussian(0.0, 2.0);
        let xs: Vec<f64> = (0..500).map(|_| g.sample(&mut rng)).collect();
        let u = Updf::Samples(WeightedSamples::unweighted(xs));
        let before = u.payload_bytes();
        let c = u.compact(&ConversionPolicy::FitGaussian);
        assert!(matches!(c, Updf::Parametric(Dist::Gaussian(_))));
        assert!(
            c.payload_bytes() * 10 < before,
            "compaction should shrink payload"
        );
    }

    #[test]
    fn compact_mixture_policy_detects_bimodal() {
        // §4.3: object may have moved → two humps → mixture, not Gaussian.
        let mut rng = StdRng::seed_from_u64(3);
        let truth = GaussianMixture::from_triples(&[(0.5, -5.0, 0.5), (0.5, 5.0, 0.5)]);
        let xs: Vec<f64> = (0..1200).map(|_| truth.sample(&mut rng)).collect();
        let u = Updf::Samples(WeightedSamples::unweighted(xs));
        let c = u.compact(&ConversionPolicy::FitMixture {
            max_k: 3,
            criterion: ModelSelection::Bic,
        });
        match c {
            Updf::Parametric(Dist::Mixture(m)) => assert_eq!(m.num_components(), 2),
            other => panic!("expected 2-component mixture, got {other:?}"),
        }
    }

    #[test]
    fn keep_samples_policy_is_identity() {
        let u = Updf::Samples(WeightedSamples::unweighted(vec![1.0, 2.0, 3.0]));
        let c = u.clone().compact(&ConversionPolicy::KeepSamples);
        assert!(c.is_sample_based());
    }

    #[test]
    fn multivariate_compaction_and_marginals() {
        let mut rng = StdRng::seed_from_u64(4);
        let mv = MvGaussian::new(vec![1.0, -1.0], vec![1.0, 0.3, 0.3, 2.0]);
        let n = 5000;
        let mut flat = Vec::with_capacity(2 * n);
        for _ in 0..n {
            flat.extend(mv.sample(&mut rng));
        }
        let u = Updf::MvSamples(WeightedSamplesNd::new(flat, vec![1.0; n], 2));
        assert_eq!(u.dim(), 2);
        let c = u.compact(&ConversionPolicy::FitGaussian);
        match &c {
            Updf::Mv(fit) => {
                close(fit.mean()[0], 1.0, 0.1);
                close(fit.cov_at(0, 1), 0.3, 0.1);
            }
            other => panic!("expected Mv, got {other:?}"),
        }
        let mx = c.marginal(1);
        close(mx.mean(), -1.0, 0.1);
    }

    #[test]
    fn confidence_interval_contains_mass() {
        let u = Updf::Parametric(Dist::gaussian(0.0, 1.0));
        let (lo, hi) = u.confidence_interval(0.9);
        close(u.prob_in(lo, hi), 0.9, 1e-9);
    }

    #[test]
    #[should_panic(expected = "multivariate")]
    fn scalar_stat_on_mv_panics() {
        let u = Updf::Mv(MvGaussian::isotropic(vec![0.0, 0.0], 1.0));
        let _ = u.mean();
    }
}
