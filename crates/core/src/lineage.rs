//! Lineage tracking and the base-tuple archive (§3, §5.2).
//!
//! Intermediate tuples that may be *correlated* (e.g. join outputs that
//! share a probe tuple) carry their lineage — "a set of independent
//! tuples produced from an upstream operator … that were used to produce
//! this tuple". A downstream operator (Fig. 2's J1) can then combine
//! lineage with the archived distributions of those base tuples to
//! compute exact result distributions instead of wrongly assuming
//! independence.

use crate::updf::Updf;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Globally-unique base-tuple id source.
static NEXT_TUPLE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh base-tuple id.
pub fn next_tuple_id() -> u64 {
    NEXT_TUPLE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The set of base tuples a derived tuple depends on (sorted, deduped).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Lineage {
    ids: Vec<u64>,
}

impl Lineage {
    /// Empty lineage (a tuple with no uncertain ancestry).
    pub fn empty() -> Self {
        Lineage::default()
    }

    /// Lineage of a freshly-minted base tuple.
    pub fn base(id: u64) -> Self {
        Lineage { ids: vec![id] }
    }

    /// Reconstruct a lineage from an id list that must already satisfy
    /// the sorted-and-deduped invariant (strictly increasing). `None`
    /// otherwise — the wire-codec decode path, where accepting an
    /// unsorted list would silently break `overlaps`/`contains` and
    /// re-sorting would break byte-exact roundtrips.
    pub fn from_sorted_ids(ids: Vec<u64>) -> Option<Self> {
        if ids.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(Lineage { ids })
    }

    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    pub fn contains(&self, id: u64) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Union of two lineages (sorted merge, deduped).
    pub fn union(&self, other: &Lineage) -> Lineage {
        let mut ids = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    ids.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    ids.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    ids.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        ids.extend_from_slice(&self.ids[i..]);
        ids.extend_from_slice(&other.ids[j..]);
        Lineage { ids }
    }

    /// Union of many lineages at once: one collect + sort + dedup,
    /// O(total·log total) — the window-emit path unions every member's
    /// lineage, and folding pairwise unions there would be O(total²).
    pub fn union_all<'a>(lineages: impl IntoIterator<Item = &'a Lineage>) -> Lineage {
        let mut ids: Vec<u64> = lineages
            .into_iter()
            .flat_map(|l| l.ids.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        Lineage { ids }
    }

    /// Whether two derived tuples share any base tuple — the correlation
    /// test an aggregation over join outputs must run (§5.2: "if a join is
    /// followed by an aggregation, the join may produce correlated
    /// results").
    pub fn overlaps(&self, other: &Lineage) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

/// Bounded-size lineage summary (§5.2: "compact representations of
/// lineage to reduce the volume of intermediate streams"; cf. approximate
/// lineage \[50\]).
///
/// Keeps up to `cap` exact ids plus an id-range envelope. Overlap queries
/// stay **sound** (never report "independent" for tuples that actually
/// share ancestry): once the cap is exceeded, `may_overlap` falls back to
/// the conservative range test, trading false positives (treating
/// independent tuples as correlated, which only costs precision of the
/// cheaper plan) for bounded memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproxLineage {
    /// Exact ids while small (sorted).
    ids: Vec<u64>,
    /// Envelope of everything ever added (valid also after truncation).
    min_id: u64,
    max_id: u64,
    /// True once ids were dropped to respect the cap.
    truncated: bool,
    cap: usize,
}

impl ApproxLineage {
    /// Summarize an exact lineage with capacity `cap`.
    pub fn from_lineage(l: &Lineage, cap: usize) -> Self {
        assert!(cap >= 1);
        let ids = l.ids();
        let (min_id, max_id) = match (ids.first(), ids.last()) {
            (Some(&a), Some(&b)) => (a, b),
            _ => (u64::MAX, 0),
        };
        if ids.len() <= cap {
            ApproxLineage {
                ids: ids.to_vec(),
                min_id,
                max_id,
                truncated: false,
                cap,
            }
        } else {
            ApproxLineage {
                ids: ids[..cap].to_vec(),
                min_id,
                max_id,
                truncated: true,
                cap,
            }
        }
    }

    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Number of ids retained exactly.
    pub fn retained(&self) -> usize {
        self.ids.len()
    }

    /// Approximate in-memory size in bytes (the stream-volume argument).
    pub fn payload_bytes(&self) -> usize {
        self.ids.len() * 8 + 24
    }

    /// Union of two summaries (envelope union; exact ids merged up to cap).
    pub fn union(&self, other: &ApproxLineage) -> ApproxLineage {
        let cap = self.cap.min(other.cap);
        let mut ids: Vec<u64> = self.ids.iter().chain(other.ids.iter()).copied().collect();
        ids.sort_unstable();
        ids.dedup();
        let truncated = self.truncated || other.truncated || ids.len() > cap;
        ids.truncate(cap);
        ApproxLineage {
            ids,
            min_id: self.min_id.min(other.min_id),
            max_id: self.max_id.max(other.max_id),
            truncated,
            cap,
        }
    }

    /// Sound overlap test: `false` guarantees independence; `true` means
    /// "possibly correlated".
    pub fn may_overlap(&self, other: &ApproxLineage) -> bool {
        // Exact path while both summaries are complete.
        if !self.truncated && !other.truncated {
            let (a, b) = (&self.ids, &other.ids);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return true,
                }
            }
            return false;
        }
        // Conservative: envelopes intersect ⇒ possibly correlated.
        self.min_id <= other.max_id && other.min_id <= self.max_id
    }
}

/// Shared archive of base-tuple distributions (Fig. 2: operator A4
/// "archives these input tuples for later computation of the query result
/// distributions").
///
/// Thread-safe (`parking_lot::RwLock`) so a threaded query graph can
/// archive from one operator thread and read from another.
#[derive(Debug, Clone, Default)]
pub struct Archive {
    inner: Arc<RwLock<HashMap<u64, Updf>>>,
}

impl Archive {
    pub fn new() -> Self {
        Archive::default()
    }

    /// Archive a base tuple's distribution under its id.
    pub fn insert(&self, id: u64, updf: Updf) {
        self.inner.write().insert(id, updf);
    }

    /// Fetch an archived distribution (cloned — payloads are compact
    /// parametric forms by the time they are archived).
    pub fn get(&self, id: u64) -> Option<Updf> {
        self.inner.read().get(&id).cloned()
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Drop archived tuples older than the watermark id — windows that
    /// have closed can never be referenced again, bounding archive growth.
    pub fn evict_below(&self, min_id: u64) {
        self.inner.write().retain(|&id, _| id >= min_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_prob::dist::Dist;

    #[test]
    fn ids_are_unique_and_increasing() {
        let a = next_tuple_id();
        let b = next_tuple_id();
        assert!(b > a);
    }

    #[test]
    fn union_is_sorted_and_deduped() {
        let a = Lineage { ids: vec![1, 3, 5] };
        let b = Lineage { ids: vec![2, 3, 6] };
        let u = a.union(&b);
        assert_eq!(u.ids(), &[1, 2, 3, 5, 6]);
    }

    #[test]
    fn union_all_matches_pairwise_fold() {
        let ls = [
            Lineage { ids: vec![1, 3, 5] },
            Lineage { ids: vec![2, 3, 6] },
            Lineage { ids: vec![] },
            Lineage { ids: vec![5, 9] },
        ];
        let folded = ls.iter().fold(Lineage::empty(), |acc, l| acc.union(l));
        assert_eq!(Lineage::union_all(ls.iter()), folded);
        assert!(Lineage::union_all(std::iter::empty()).is_empty());
    }

    #[test]
    fn union_commutative_and_idempotent() {
        let a = Lineage { ids: vec![1, 4] };
        let b = Lineage { ids: vec![2, 4] };
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&a), a);
        assert_eq!(a.union(&Lineage::empty()), a);
    }

    #[test]
    fn overlap_detection() {
        let a = Lineage { ids: vec![1, 2, 3] };
        let b = Lineage { ids: vec![3, 4] };
        let c = Lineage { ids: vec![4, 5] };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(!a.overlaps(&Lineage::empty()));
    }

    #[test]
    fn contains_uses_binary_search() {
        let a = Lineage {
            ids: vec![10, 20, 30],
        };
        assert!(a.contains(20));
        assert!(!a.contains(25));
    }

    #[test]
    fn archive_roundtrip_and_eviction() {
        let arch = Archive::new();
        assert!(arch.is_empty());
        arch.insert(5, Updf::Parametric(Dist::gaussian(1.0, 1.0)));
        arch.insert(9, Updf::Parametric(Dist::gaussian(2.0, 1.0)));
        assert_eq!(arch.len(), 2);
        let got = arch.get(5).unwrap();
        assert!((got.mean() - 1.0).abs() < 1e-12);
        assert!(arch.get(6).is_none());
        arch.evict_below(6);
        assert!(arch.get(5).is_none());
        assert!(arch.get(9).is_some());
    }

    #[test]
    fn approx_lineage_exact_while_small() {
        let a = ApproxLineage::from_lineage(&Lineage { ids: vec![1, 5, 9] }, 8);
        let b = ApproxLineage::from_lineage(&Lineage { ids: vec![2, 9] }, 8);
        let c = ApproxLineage::from_lineage(&Lineage { ids: vec![2, 4] }, 8);
        assert!(!a.is_truncated());
        assert!(a.may_overlap(&b), "shares id 9");
        assert!(!a.may_overlap(&c), "disjoint and small ⇒ exact no");
    }

    #[test]
    fn approx_lineage_truncation_is_sound() {
        // 100 ids capped at 4: overlap answers may be falsely positive but
        // never falsely negative.
        let big = Lineage {
            ids: (0..100).collect(),
        };
        let a = ApproxLineage::from_lineage(&big, 4);
        assert!(a.is_truncated());
        assert_eq!(a.retained(), 4);
        let sharing = ApproxLineage::from_lineage(&Lineage { ids: vec![99] }, 4);
        assert!(a.may_overlap(&sharing), "true overlap must be reported");
        // Conservative false positive is allowed:
        let inside_envelope = ApproxLineage::from_lineage(&Lineage { ids: vec![55] }, 4);
        assert!(a.may_overlap(&inside_envelope));
        // Sound negative outside the envelope:
        let outside = ApproxLineage::from_lineage(&Lineage { ids: vec![500] }, 4);
        assert!(!a.may_overlap(&outside));
    }

    #[test]
    fn approx_lineage_union_and_size() {
        let a = ApproxLineage::from_lineage(
            &Lineage {
                ids: (0..50).collect(),
            },
            8,
        );
        let b = ApproxLineage::from_lineage(
            &Lineage {
                ids: (40..90).collect(),
            },
            8,
        );
        let u = a.union(&b);
        assert!(u.is_truncated());
        assert!(u.retained() <= 8);
        assert!(
            u.payload_bytes()
                < Lineage {
                    ids: (0..90).collect()
                }
                .ids()
                .len()
                    * 8
        );
        // Envelope covers both inputs.
        let probe = ApproxLineage::from_lineage(&Lineage { ids: vec![89] }, 8);
        assert!(u.may_overlap(&probe));
    }

    #[test]
    fn archive_is_shared_across_clones() {
        let a = Archive::new();
        let b = a.clone();
        a.insert(1, Updf::Parametric(Dist::gaussian(0.0, 1.0)));
        assert!(b.get(1).is_some(), "clones share the same store");
    }
}
