//! Tuples: schema-indexed rows with certain and uncertain attributes,
//! a timestamp, an existence probability, and lineage.

use crate::error::{EngineError, Result};
use crate::lineage::{next_tuple_id, Lineage};
use crate::schema::Schema;
use crate::updf::Updf;
use crate::value::Value;
use std::sync::Arc;

/// A stream tuple.
///
/// `existence` is the probability that the tuple exists at all — it is
/// 1.0 for raw data and shrinks as probabilistic selections/joins apply
/// (the continuous-domain analogue of tuple-existence probability in
/// discrete probabilistic databases, which the paper contrasts with).
#[derive(Debug, Clone)]
pub struct Tuple {
    schema: Arc<Schema>,
    values: Vec<Value>,
    /// Event time in milliseconds.
    pub ts: u64,
    /// Probability that this tuple exists.
    pub existence: f64,
    /// Base tuples this tuple derives from.
    pub lineage: Lineage,
}

impl Tuple {
    /// Create a tuple, validating value count against the schema. Assigns
    /// a fresh base-tuple id to the lineage.
    pub fn new(schema: Arc<Schema>, values: Vec<Value>, ts: u64) -> Tuple {
        assert_eq!(
            values.len(),
            schema.len(),
            "value count {} != schema arity {}",
            values.len(),
            schema.len()
        );
        Tuple {
            schema,
            values,
            ts,
            existence: 1.0,
            lineage: Lineage::base(next_tuple_id()),
        }
    }

    /// Create a derived tuple with explicit lineage and existence.
    pub fn derived(
        schema: Arc<Schema>,
        values: Vec<Value>,
        ts: u64,
        existence: f64,
        lineage: Lineage,
    ) -> Tuple {
        assert_eq!(values.len(), schema.len());
        assert!(
            (0.0..=1.0).contains(&existence),
            "existence must be a probability"
        );
        Tuple {
            schema,
            values,
            ts,
            existence,
            lineage,
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value by field name.
    pub fn get(&self, name: &str) -> Result<&Value> {
        Ok(&self.values[self.schema.index_of(name)?])
    }

    /// Value by position.
    pub fn at(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Float accessor (accepts Int, widened).
    pub fn float(&self, name: &str) -> Result<f64> {
        let v = self.get(name)?;
        v.as_float().ok_or_else(|| EngineError::TypeMismatch {
            field: name.to_string(),
            expected: "Float",
            actual: v.type_name(),
        })
    }

    pub fn int(&self, name: &str) -> Result<i64> {
        let v = self.get(name)?;
        v.as_int().ok_or_else(|| EngineError::TypeMismatch {
            field: name.to_string(),
            expected: "Int",
            actual: v.type_name(),
        })
    }

    pub fn str(&self, name: &str) -> Result<&str> {
        let v = self.get(name)?;
        v.as_str().ok_or_else(|| EngineError::TypeMismatch {
            field: name.to_string(),
            expected: "Str",
            actual: v.type_name(),
        })
    }

    /// Uncertain-attribute accessor.
    pub fn updf(&self, name: &str) -> Result<&Updf> {
        let v = self.get(name)?;
        v.as_updf().ok_or_else(|| EngineError::TypeMismatch {
            field: name.to_string(),
            expected: "Uncertain",
            actual: v.type_name(),
        })
    }

    /// Replace one value, keeping schema/metadata (builder-ish updates).
    pub fn with_value(mut self, idx: usize, v: Value) -> Tuple {
        self.values[idx] = v;
        self
    }

    /// Replace one value in place (the batched operators' mutation path —
    /// no move, no clone).
    pub fn set_value(&mut self, idx: usize, v: Value) {
        self.values[idx] = v;
    }

    /// Append values under a wider schema, mutating in place — the
    /// allocation-free counterpart of [`Self::extended`] used by batched
    /// projection (the existing values vector is reused, not cloned).
    /// `extra` is drained, so the caller can reuse its buffer across
    /// tuples.
    pub fn extend_in_place(&mut self, schema: Arc<Schema>, extra: &mut Vec<Value>) {
        self.values.append(extra);
        assert_eq!(self.values.len(), schema.len());
        self.schema = schema;
    }

    /// Append values under a wider schema (projection/derivation output).
    pub fn extended(&self, schema: Arc<Schema>, extra: Vec<Value>) -> Tuple {
        let mut values = self.values.clone();
        values.extend(extra);
        assert_eq!(values.len(), schema.len());
        Tuple {
            schema,
            values,
            ts: self.ts,
            existence: self.existence,
            lineage: self.lineage.clone(),
        }
    }

    /// Decompose into owned parts — the columnar batch layout takes the
    /// values vector without cloning.
    pub fn into_parts(self) -> (Arc<Schema>, Vec<Value>, u64, f64, Lineage) {
        (
            self.schema,
            self.values,
            self.ts,
            self.existence,
            self.lineage,
        )
    }

    /// Total approximate payload size (bytes) of uncertain attributes —
    /// used to measure the stream-volume effect of §4.3 conversions.
    pub fn uncertain_payload_bytes(&self) -> usize {
        self.values
            .iter()
            .filter_map(|v| v.as_updf())
            .map(|u| u.payload_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use ustream_prob::dist::Dist;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .field("tag_id", DataType::Int)
            .field("weight", DataType::Float)
            .field("loc_x", DataType::Uncertain)
            .build()
    }

    fn tuple() -> Tuple {
        Tuple::new(
            schema(),
            vec![
                Value::from(42i64),
                Value::from(17.5),
                Value::from(Updf::Parametric(Dist::gaussian(3.0, 0.5))),
            ],
            1000,
        )
    }

    #[test]
    fn accessors() {
        let t = tuple();
        assert_eq!(t.int("tag_id").unwrap(), 42);
        assert_eq!(t.float("weight").unwrap(), 17.5);
        assert!((t.updf("loc_x").unwrap().mean() - 3.0).abs() < 1e-12);
        assert_eq!(t.ts, 1000);
        assert_eq!(t.existence, 1.0);
        assert_eq!(t.lineage.len(), 1);
    }

    #[test]
    fn type_mismatch_errors() {
        let t = tuple();
        assert!(matches!(
            t.float("tag_id"),
            Ok(42.0) // Int widens to Float by design
        ));
        assert!(matches!(
            t.str("weight"),
            Err(EngineError::TypeMismatch { .. })
        ));
        assert!(matches!(t.get("nope"), Err(EngineError::UnknownField(_))));
    }

    #[test]
    #[should_panic(expected = "value count")]
    fn arity_checked() {
        Tuple::new(schema(), vec![Value::from(1i64)], 0);
    }

    #[test]
    fn fresh_tuples_have_distinct_lineage() {
        let a = tuple();
        let b = tuple();
        assert!(!a.lineage.overlaps(&b.lineage));
    }

    #[test]
    fn extended_keeps_metadata() {
        let t = tuple();
        let wider = t
            .schema()
            .extend(vec![crate::schema::Field::new("area", DataType::Int)]);
        let e = t.extended(wider, vec![Value::from(7i64)]);
        assert_eq!(e.int("area").unwrap(), 7);
        assert_eq!(e.ts, t.ts);
        assert_eq!(e.lineage, t.lineage);
    }

    #[test]
    fn extend_in_place_matches_extended() {
        let t = tuple();
        let wider = t
            .schema()
            .extend(vec![crate::schema::Field::new("area", DataType::Int)]);
        let by_clone = t.extended(wider.clone(), vec![Value::from(7i64)]);
        let mut in_place = t;
        let mut extra = vec![Value::from(7i64)];
        in_place.extend_in_place(wider, &mut extra);
        assert!(extra.is_empty(), "extra buffer is drained for reuse");
        assert_eq!(in_place.int("area").unwrap(), by_clone.int("area").unwrap());
        assert_eq!(in_place.ts, by_clone.ts);
        assert_eq!(in_place.lineage, by_clone.lineage);
    }

    #[test]
    fn payload_accounting() {
        let t = tuple();
        assert_eq!(t.uncertain_payload_bytes(), 16); // one Gaussian
    }

    #[test]
    #[should_panic(expected = "existence must be a probability")]
    fn derived_validates_existence() {
        Tuple::derived(
            schema(),
            tuple().values().to_vec(),
            0,
            1.5,
            Lineage::empty(),
        );
    }
}
