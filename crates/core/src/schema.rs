//! Tuple schemas.

use crate::error::{EngineError, Result};
use std::sync::Arc;

/// Declared attribute type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Time,
    /// Scalar uncertain attribute (carries a 1-D [`crate::updf::Updf`]).
    Uncertain,
    /// Multivariate uncertain attribute of the given dimension.
    UncertainVec(usize),
}

/// One schema field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered, name-indexed set of fields. Schemas are immutable and
/// shared (`Arc`) across every tuple of a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Arc<Schema> {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            assert!(
                seen.insert(f.name.clone()),
                "duplicate field name `{}`",
                f.name
            );
        }
        Arc::new(Schema { fields })
    }

    /// Builder-style convenience.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { fields: Vec::new() }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| EngineError::UnknownField(name.to_string()))
    }

    pub fn field(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// New schema = this schema plus extra fields (projection/derivation).
    pub fn extend(&self, extra: Vec<Field>) -> Arc<Schema> {
        let mut fields = self.fields.clone();
        fields.extend(extra);
        Schema::new(fields)
    }

    /// Concatenate two schemas (join output), prefixing clashing names
    /// from the right side with `right_prefix`.
    pub fn join(&self, other: &Schema, right_prefix: &str) -> Arc<Schema> {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let name = if self.fields.iter().any(|l| l.name == f.name) {
                format!("{right_prefix}{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.dtype));
        }
        Schema::new(fields)
    }
}

/// Incremental schema construction.
pub struct SchemaBuilder {
    fields: Vec<Field>,
}

impl SchemaBuilder {
    pub fn field(mut self, name: impl Into<String>, dtype: DataType) -> Self {
        self.fields.push(Field::new(name, dtype));
        self
    }

    pub fn build(self) -> Arc<Schema> {
        Schema::new(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::builder()
            .field("tag_id", DataType::Int)
            .field("loc", DataType::UncertainVec(3))
            .build();
        assert_eq!(s.index_of("tag_id").unwrap(), 0);
        assert_eq!(s.field("loc").unwrap().dtype, DataType::UncertainVec(3));
        assert!(matches!(
            s.index_of("missing"),
            Err(EngineError::UnknownField(_))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn rejects_duplicates() {
        Schema::builder()
            .field("a", DataType::Int)
            .field("a", DataType::Float)
            .build();
    }

    #[test]
    fn extend_appends() {
        let s = Schema::builder().field("a", DataType::Int).build();
        let e = s.extend(vec![Field::new("b", DataType::Float)]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.index_of("b").unwrap(), 1);
        // Original untouched.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn join_prefixes_clashes() {
        let l = Schema::builder()
            .field("id", DataType::Int)
            .field("x", DataType::Float)
            .build();
        let r = Schema::builder()
            .field("id", DataType::Int)
            .field("temp", DataType::Uncertain)
            .build();
        let j = l.join(&r, "r_");
        assert_eq!(j.len(), 4);
        assert!(j.index_of("r_id").is_ok());
        assert!(j.index_of("temp").is_ok());
    }
}
