//! Box-arrow query graphs (§3) and their executors.
//!
//! A [`QueryGraph`] is a DAG of operators ("boxes") connected by
//! dataflow edges ("arrows"), compiled from a query (Q1, Q2) or a
//! scientific workflow (the radar pipeline). Before execution the graph
//! is compiled **once** into a [`CompiledPlan`] — topological order,
//! per-node downstream adjacency, and a sink bitset — so the per-delivery
//! cost is an array index, not an edge-list scan plus hash lookups.
//!
//! Three execution modes:
//!
//! - [`QueryGraph::run`] — single-threaded tuple-at-a-time push execution
//!   in topological order; deterministic, used by tests and harnesses.
//! - [`QueryGraph::run_batched`] — single-threaded push execution moving
//!   [`Batch`]es of tuples; operators with batched overrides resolve
//!   schemas once per batch and skip per-tuple allocations.
//! - [`ThreadedExecutor`] — one thread per operator connected by bounded
//!   crossbeam channels carrying batches; the shape a stream engine
//!   actually deploys. Channel synchronization is amortized
//!   batch-size-fold.
//!
//! Clone-avoidance rule (all modes): a tuple/batch is cloned only when
//! fan-out requires it — once per *extra* downstream edge, plus once if
//! the emitting node is both a sink and has downstream edges. Linear
//! pipelines never clone.

use crate::batch::{Batch, BatchPool};
use crate::error::{EngineError, Result};
use crate::metrics::OpTelemetry;
use crate::ops::Operator;
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::time::Instant;

/// Node handle in a query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Positional index of this node in its graph — the index used by the
    /// adjacency tables [`CompiledPlan`] exposes.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstruct a node handle from a positional index (the inverse of
    /// [`NodeId::index`], for walking [`CompiledPlan::downstream_of`]).
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i)
    }
}

/// An edge: output of `from` feeds `to`'s input `port`.
#[derive(Debug, Clone, Copy)]
struct Edge {
    from: NodeId,
    to: NodeId,
    port: usize,
}

/// The execution-ready form of a [`QueryGraph`]: everything the
/// per-delivery hot path needs, resolved once.
///
/// Both executors compile the same plan, so cycle detection, topological
/// ordering, and adjacency live in exactly one place.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    /// Node indices in a valid topological order.
    order: Vec<usize>,
    /// `rank[i]` = position of node `i` in `order`.
    rank: Vec<usize>,
    /// `downstream[i]` = `(to, port)` pairs fed by node `i`, in edge
    /// insertion order.
    downstream: Vec<Vec<(usize, usize)>>,
    /// Sink membership bitset.
    is_sink: Vec<bool>,
    /// The sink list (collection-map initialization).
    sinks: Vec<NodeId>,
}

impl CompiledPlan {
    /// Number of nodes in the compiled graph.
    pub fn num_nodes(&self) -> usize {
        self.order.len()
    }

    /// The cached topological order.
    pub fn topo_order(&self) -> &[usize] {
        &self.order
    }

    /// Downstream `(node, port)` adjacency of `node`.
    pub fn downstream_of(&self, node: NodeId) -> &[(usize, usize)] {
        &self.downstream[node.0]
    }

    /// Whether `node` is a registered sink.
    pub fn is_sink(&self, node: NodeId) -> bool {
        self.is_sink[node.0]
    }

    /// The registered sinks, in registration order.
    pub fn sinks(&self) -> &[NodeId] {
        &self.sinks
    }

    fn empty_collection(&self) -> HashMap<NodeId, Vec<Tuple>> {
        self.sinks.iter().map(|&s| (s, Vec::new())).collect()
    }
}

/// Kahn's algorithm over the edge list; errors on cycles. The single
/// shared cycle check for every executor.
fn topo_sort(n: usize, edges: &[Edge]) -> Result<Vec<usize>> {
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        indeg[e.to.0] += 1;
        adj[e.from.0].push(e.to.0);
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &to in &adj[i] {
            indeg[to] -= 1;
            if indeg[to] == 0 {
                queue.push(to);
            }
        }
    }
    if order.len() != n {
        return Err(EngineError::InvalidGraph("cycle detected".into()));
    }
    Ok(order)
}

/// A dataflow graph of operators.
pub struct QueryGraph {
    nodes: Vec<Box<dyn Operator>>,
    edges: Vec<Edge>,
    /// Named entry points: external streams push here.
    sources: HashMap<String, NodeId>,
    /// Nodes whose output is collected as query results.
    sinks: Vec<NodeId>,
}

impl Default for QueryGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryGraph {
    pub fn new() -> Self {
        QueryGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            sources: HashMap::new(),
            sinks: Vec::new(),
        }
    }

    /// Add an operator box.
    pub fn add(&mut self, op: Box<dyn Operator>) -> NodeId {
        self.nodes.push(op);
        NodeId(self.nodes.len() - 1)
    }

    /// Connect `from`'s output to `to`'s input `port`.
    pub fn connect(&mut self, from: NodeId, to: NodeId, port: usize) -> Result<()> {
        if from.0 >= self.nodes.len() || to.0 >= self.nodes.len() {
            return Err(EngineError::InvalidGraph(
                "edge references missing node".into(),
            ));
        }
        if port >= self.nodes[to.0].num_ports() {
            return Err(EngineError::InvalidGraph(format!(
                "operator `{}` has {} ports, edge targets port {port}",
                self.nodes[to.0].name(),
                self.nodes[to.0].num_ports()
            )));
        }
        self.edges.push(Edge { from, to, port });
        Ok(())
    }

    /// Register a named external stream entering at `node` (port 0 unless
    /// the node is a join, in which case use `source_at`).
    pub fn source(&mut self, name: impl Into<String>, node: NodeId) {
        self.sources.insert(name.into(), node);
    }

    /// Mark a node's output as a query result.
    pub fn sink(&mut self, node: NodeId) {
        if !self.sinks.contains(&node) {
            self.sinks.push(node);
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Compile the graph into its execution-ready form; errors on cycles.
    pub fn compile(&self) -> Result<CompiledPlan> {
        let n = self.nodes.len();
        let order = topo_sort(n, &self.edges)?;
        let mut rank = vec![0usize; n];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }
        let mut downstream: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for e in &self.edges {
            downstream[e.from.0].push((e.to.0, e.port));
        }
        let mut is_sink = vec![false; n];
        for s in &self.sinks {
            is_sink[s.0] = true;
        }
        Ok(CompiledPlan {
            order,
            rank,
            downstream,
            is_sink,
            sinks: self.sinks.clone(),
        })
    }

    /// Named entry node for `name`, if registered via [`Self::source`].
    pub fn source_node(&self, name: &str) -> Option<NodeId> {
        self.sources.get(name).copied()
    }

    /// Iterate the registered `(name, node)` source entries.
    pub fn source_entries(&self) -> impl Iterator<Item = (&str, NodeId)> {
        self.sources.iter().map(|(n, &id)| (n.as_str(), id))
    }

    /// Borrow the operator at `node`.
    ///
    /// Panics if the handle is out of range (handles are only minted by
    /// [`Self::add`], so this means a handle from a different graph).
    pub fn operator(&self, node: NodeId) -> &dyn Operator {
        self.nodes[node.0].as_ref()
    }

    /// Merge the named input streams into one timestamp-ordered feed of
    /// `(ts, node, port, tuple)` entries — the arrival order every
    /// executor (single-threaded, threaded, sharded) presents to the
    /// graph. Delegates to [`merged_feed`].
    pub fn ordered_feed(
        &self,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
    ) -> Result<Vec<(u64, NodeId, usize, Tuple)>> {
        merged_feed(&self.sources, inputs)
    }

    /// Merge the named input streams into one timestamp-ordered feed of
    /// `(ts, node, port, tuple)` entries, with positional node indices.
    fn build_feed(
        sources: &HashMap<String, NodeId>,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
    ) -> Result<Vec<(u64, usize, usize, Tuple)>> {
        Ok(merged_feed(sources, inputs)?
            .into_iter()
            .map(|(ts, node, port, t)| (ts, node.0, port, t))
            .collect())
    }

    /// Single-threaded execution: push each (source, port, tuple) triple
    /// through the graph in timestamp order, then flush. Returns the
    /// tuples collected at each sink.
    ///
    /// `inputs` associates stream names (registered via [`Self::source`])
    /// with (port, tuples). This is the tuple-at-a-time reference
    /// executor; [`Self::run_batched`] is the high-throughput variant.
    pub fn run(
        &mut self,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
    ) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        let plan = self.compile()?;
        let feed = Self::build_feed(&self.sources, inputs)?;
        let mut collected = plan.empty_collection();

        // Per-push propagation in topological rank order.
        for (_, node, port, tuple) in feed {
            self.propagate(node, port, tuple, &plan, &mut collected);
        }

        // Flush in topological order, cascading flush outputs downstream.
        for &i in &plan.order {
            let outs = self.nodes[i].flush();
            for t in outs {
                self.deliver_downstream(i, t, &plan, &mut collected);
            }
        }
        Ok(collected)
    }

    /// Push one tuple into `node` and cascade its outputs.
    fn propagate(
        &mut self,
        node: usize,
        port: usize,
        tuple: Tuple,
        plan: &CompiledPlan,
        collected: &mut HashMap<NodeId, Vec<Tuple>>,
    ) {
        let outs = self.nodes[node].process(port, tuple);
        for t in outs {
            self.deliver_downstream(node, t, plan, collected);
        }
    }

    fn deliver_downstream(
        &mut self,
        from: usize,
        tuple: Tuple,
        plan: &CompiledPlan,
        collected: &mut HashMap<NodeId, Vec<Tuple>>,
    ) {
        let targets = &plan.downstream[from];
        if plan.is_sink[from] {
            let bucket = collected.get_mut(&NodeId(from)).expect("sink bucket");
            if targets.is_empty() {
                bucket.push(tuple);
                return;
            }
            bucket.push(tuple.clone());
        } else if targets.is_empty() {
            return;
        }
        let (&(last_to, last_port), rest) = targets.split_last().expect("targets non-empty");
        for &(to, port) in rest {
            debug_assert!(plan.rank[to] > plan.rank[from], "edges follow topo order");
            self.propagate(to, port, tuple.clone(), plan, collected);
        }
        self.propagate(last_to, last_port, tuple, plan, collected);
    }

    /// Single-threaded **batched** execution: the input feed is cut into
    /// runs of up to `batch_size` consecutive tuples addressed to the
    /// same (node, port), and each run moves through the graph as one
    /// [`Batch`] via [`Operator::process_batch`].
    ///
    /// On graphs where every stateful/sink node has a single upstream
    /// path (linear pipelines and pure fan-out), this produces exactly
    /// the same sink tuples as [`Self::run`] — same values, timestamps,
    /// existence probabilities, lineage. At a fan-*in* node the arrival
    /// order of tuples from different upstream paths differs within a
    /// batch window (whole batches arrive per path instead of per-tuple
    /// interleaving), exactly as it may under the threaded executor; an
    /// order-sensitive fan-in operator — e.g. a join whose match
    /// probability falls back to Monte Carlo draws from the operator's
    /// rng — can then produce different probabilities for individual
    /// pairs, not just a different output order.
    pub fn run_batched(
        &mut self,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
        batch_size: usize,
    ) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        let telem = fresh_telemetry(self.nodes.len());
        self.run_batched_inner(inputs, batch_size, Some(&telem))
    }

    /// [`Self::run_batched`] with the always-on per-operator counters
    /// switched off — the control arm of the instrumentation-overhead
    /// A/B benchmark. Results are identical; only the counter updates
    /// and their timestamp reads are skipped.
    pub fn run_batched_uninstrumented(
        &mut self,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
        batch_size: usize,
    ) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        self.run_batched_inner(inputs, batch_size, None)
    }

    fn run_batched_inner(
        &mut self,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
        batch_size: usize,
        telem: Option<&[OpTelemetry]>,
    ) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        assert!(batch_size > 0, "batch size must be positive");
        let plan = self.compile()?;
        let feed = Self::build_feed(&self.sources, inputs)?;
        let mut collected = plan.empty_collection();
        let mut pending: Vec<Vec<(usize, Batch)>> = vec![Vec::new(); self.nodes.len()];

        for (node, port, batch) in chunk_feed(feed, batch_size) {
            pump_batch(
                &mut self.nodes,
                &plan,
                &mut pending,
                &mut collected,
                None,
                telem,
                node,
                port,
                batch,
            );
        }
        flush_cascade(
            &mut self.nodes,
            &plan,
            &mut pending,
            &mut collected,
            None,
            telem,
        );
        Ok(collected)
    }

    /// Decompose the graph into its raw parts — operators (in node-id
    /// order), edges as `(from, to, port)`, named source entries, and
    /// sinks — for builders that re-assemble subgraphs. The staged
    /// sharded planner uses this to cut one factory-built graph into
    /// per-stage pipelines connected by exchanges.
    #[allow(clippy::type_complexity)]
    pub fn dismantle(
        self,
    ) -> (
        Vec<Box<dyn Operator>>,
        Vec<(NodeId, NodeId, usize)>,
        HashMap<String, NodeId>,
        Vec<NodeId>,
    ) {
        let QueryGraph {
            nodes,
            edges,
            sources,
            sinks,
        } = self;
        let edges = edges.into_iter().map(|e| (e.from, e.to, e.port)).collect();
        (nodes, edges, sources, sinks)
    }

    /// Consume the graph into an incremental batched execution session:
    /// the long-lived form of [`Self::run_batched`] for drivers that
    /// interleave feeding with other work — each shard pipeline of the
    /// sharded runtime is one session on a worker thread.
    pub fn into_session(self) -> Result<ExecSession> {
        let plan = self.compile()?;
        let QueryGraph {
            nodes,
            edges: _,
            sources,
            sinks: _,
        } = self;
        let pending = vec![Vec::new(); nodes.len()];
        let collected = plan.empty_collection();
        let telem = Some(fresh_telemetry(nodes.len()));
        Ok(ExecSession {
            nodes,
            plan,
            sources,
            pending,
            collected,
            pool: None,
            telem,
        })
    }
}

/// One independent [`OpTelemetry`] per node. `vec![default; n]` would
/// clone one handle — every node sharing the same atomic cells — so the
/// cells are allocated per slot.
fn fresh_telemetry(n: usize) -> Vec<OpTelemetry> {
    (0..n).map(|_| OpTelemetry::default()).collect()
}

/// Merge named input streams into one timestamp-ordered feed of
/// `(ts, node, port, tuple)` entries. The **single home** of the feed
/// tiebreak — `(ts, node index, port)`, stable within ties — shared by
/// `run`/`run_batched`, the threaded executor, and the sharded
/// session's driver: if this ordering ever changed in one executor but
/// not another, their outputs would silently diverge.
pub fn merged_feed(
    sources: &HashMap<String, NodeId>,
    inputs: Vec<(String, usize, Vec<Tuple>)>,
) -> Result<Vec<(u64, NodeId, usize, Tuple)>> {
    let mut feed: Vec<(u64, NodeId, usize, Tuple)> = Vec::new();
    for (name, port, tuples) in inputs {
        let node = *sources
            .get(&name)
            .ok_or_else(|| EngineError::InvalidGraph(format!("unknown source `{name}`")))?;
        for t in tuples {
            feed.push((t.ts, node, port, t));
        }
    }
    feed.sort_by_key(|(ts, node, port, _)| (*ts, node.0, *port));
    Ok(feed)
}

/// Per-node telemetry handle lookup for the executor hot paths.
#[inline]
fn telem_at(telem: Option<&[OpTelemetry]>, i: usize) -> Option<&OpTelemetry> {
    telem.map(|t| &t[i])
}

/// Run one batch through an operator, recording per-operator counters
/// when instrumentation is on. The uninstrumented arm pays only the
/// branch — no timestamps are taken.
#[inline]
fn run_op_batch(
    node: &mut Box<dyn Operator>,
    telem: Option<&OpTelemetry>,
    port: usize,
    batch: Batch,
) -> Batch {
    match telem {
        Some(t) => {
            let n_in = batch.len() as u64;
            if batch.is_columnar() {
                t.columnar_batches.inc();
            } else {
                t.row_batches.inc();
            }
            let t0 = Instant::now();
            let out = node.process_batch(port, batch);
            t.busy_ns.add(t0.elapsed().as_nanos() as u64);
            t.tuples_in.add(n_in);
            t.tuples_out.add(out.len() as u64);
            t.batches.inc();
            out
        }
        None => node.process_batch(port, batch),
    }
}

/// Push one batch into `node` and drain the graph from that node's rank
/// downward (edges only point to higher ranks, so one forward sweep over
/// the cached order fully cascades the batch).
#[allow(clippy::too_many_arguments)]
fn pump_batch(
    nodes: &mut [Box<dyn Operator>],
    plan: &CompiledPlan,
    pending: &mut [Vec<(usize, Batch)>],
    collected: &mut HashMap<NodeId, Vec<Tuple>>,
    pool: Option<&BatchPool>,
    telem: Option<&[OpTelemetry]>,
    node: usize,
    port: usize,
    batch: Batch,
) {
    pending[node].push((port, batch));
    for idx in plan.rank[node]..plan.order.len() {
        let i = plan.order[idx];
        if pending[i].is_empty() {
            continue;
        }
        for (port, b) in std::mem::take(&mut pending[i]) {
            let out = run_op_batch(&mut nodes[i], telem_at(telem, i), port, b);
            if !out.is_empty() {
                deliver_batch(plan, pending, collected, pool, i, out);
            }
        }
    }
}

/// Route one produced batch: collect at sinks (recycling the spent buffer
/// into `pool` where the batch ends its life), clone once per *extra*
/// downstream edge, move into the last.
fn deliver_batch(
    plan: &CompiledPlan,
    pending: &mut [Vec<(usize, Batch)>],
    collected: &mut HashMap<NodeId, Vec<Tuple>>,
    pool: Option<&BatchPool>,
    from: usize,
    batch: Batch,
) {
    let targets = &plan.downstream[from];
    if plan.is_sink[from] {
        let bucket = collected.get_mut(&NodeId(from)).expect("sink bucket");
        if targets.is_empty() {
            let mut v: Vec<Tuple> = batch.into_vec();
            bucket.append(&mut v);
            if let Some(p) = pool {
                p.put(v);
            }
            return;
        }
        // Sink with downstream fan-out: clone, then hydrate the clone
        // (the batch itself continues downstream in whatever form).
        bucket.append(&mut batch.clone().into_vec());
    } else if targets.is_empty() {
        if let Some(p) = pool {
            p.recycle(batch);
        }
        return;
    }
    let (&(last_to, last_port), rest) = targets.split_last().expect("targets non-empty");
    for &(to, port) in rest {
        debug_assert!(plan.rank[to] > plan.rank[from], "edges follow topo order");
        pending[to].push((port, batch.clone()));
    }
    pending[last_to].push((last_port, batch));
}

/// End of stream: process leftover pending batches and flush every node
/// in topological order; flush outputs cascade downstream as batches and
/// are themselves processed before the receiver's own flush (same
/// discipline as the tuple-at-a-time path).
fn flush_cascade(
    nodes: &mut [Box<dyn Operator>],
    plan: &CompiledPlan,
    pending: &mut [Vec<(usize, Batch)>],
    collected: &mut HashMap<NodeId, Vec<Tuple>>,
    pool: Option<&BatchPool>,
    telem: Option<&[OpTelemetry]>,
) {
    for idx in 0..plan.order.len() {
        let i = plan.order[idx];
        for (port, b) in std::mem::take(&mut pending[i]) {
            let out = run_op_batch(&mut nodes[i], telem_at(telem, i), port, b);
            if !out.is_empty() {
                deliver_batch(plan, pending, collected, pool, i, out);
            }
        }
        let fl = match telem_at(telem, i) {
            Some(t) => {
                let t0 = Instant::now();
                let fl = nodes[i].flush();
                t.busy_ns.add(t0.elapsed().as_nanos() as u64);
                t.tuples_out.add(fl.len() as u64);
                fl
            }
            None => nodes[i].flush(),
        };
        if !fl.is_empty() {
            deliver_batch(plan, pending, collected, pool, i, Batch::from(fl));
        }
    }
}

/// An in-progress batched execution over a consumed [`QueryGraph`]:
/// batches pushed via [`ExecSession::push`] cascade through the compiled
/// plan immediately; [`ExecSession::finish`] flushes open state and
/// returns the per-sink collections.
///
/// Pushing batches in the graph's timestamp order reproduces
/// [`QueryGraph::run_batched`] exactly; any other interleaving gives the
/// semantics of that arrival order (windows close when their closing
/// tuple arrives).
pub struct ExecSession {
    nodes: Vec<Box<dyn Operator>>,
    plan: CompiledPlan,
    sources: HashMap<String, NodeId>,
    pending: Vec<Vec<(usize, Batch)>>,
    collected: HashMap<NodeId, Vec<Tuple>>,
    pool: Option<BatchPool>,
    /// Always-on per-node counters (`None` only when explicitly
    /// switched off for the instrumentation-overhead A/B benchmark).
    telem: Option<Vec<OpTelemetry>>,
}

impl ExecSession {
    /// Recycle spent batch buffers into `pool` wherever this session ends
    /// a batch's life (sink collection, dead-end nodes).
    pub fn with_pool(mut self, pool: BatchPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Switch off the always-on per-node counters. Exists for the
    /// instrumentation-overhead A/B benchmark; production drivers keep
    /// the default.
    pub fn without_instrumentation(mut self) -> Self {
        self.telem = None;
        self
    }

    /// The live per-node counters, indexed by [`NodeId::index`], or
    /// `None` when the session was built with
    /// [`Self::without_instrumentation`]. Handles are cloneable and
    /// readable from other threads while the session runs.
    pub fn node_telemetry(&self) -> Option<&[OpTelemetry]> {
        self.telem.as_deref()
    }

    /// Named entry node for `name`, if the graph registered one.
    pub fn source_node(&self, name: &str) -> Option<NodeId> {
        self.sources.get(name).copied()
    }

    /// Borrow the operator at `node`.
    pub fn operator(&self, node: NodeId) -> &dyn Operator {
        self.nodes[node.0].as_ref()
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Push one batch into `node`'s input `port` and cascade it through
    /// the graph.
    pub fn push(&mut self, node: NodeId, port: usize, batch: Batch) {
        pump_batch(
            &mut self.nodes,
            &self.plan,
            &mut self.pending,
            &mut self.collected,
            self.pool.as_ref(),
            self.telem.as_deref(),
            node.0,
            port,
            batch,
        );
    }

    /// The plan's registered sinks, in registration order.
    pub fn sink_nodes(&self) -> &[NodeId] {
        self.plan.sinks()
    }

    /// Event time reached `watermark` (no future input with
    /// `ts < watermark`): advance every operator in topological order,
    /// cascading whatever windows the punctuation closes — the
    /// session-level form of [`Operator::advance_watermark`]. The
    /// sharded runtime broadcasts this to every shard pipeline so a
    /// shard whose keys went quiet still closes its windows when the
    /// stream's clock passes them.
    pub fn advance_watermark(&mut self, watermark: u64) {
        for idx in 0..self.plan.order.len() {
            let i = self.plan.order[idx];
            for (port, b) in std::mem::take(&mut self.pending[i]) {
                let out = run_op_batch(
                    &mut self.nodes[i],
                    telem_at(self.telem.as_deref(), i),
                    port,
                    b,
                );
                if !out.is_empty() {
                    deliver_batch(
                        &self.plan,
                        &mut self.pending,
                        &mut self.collected,
                        self.pool.as_ref(),
                        i,
                        out,
                    );
                }
            }
            let closed = match telem_at(self.telem.as_deref(), i) {
                Some(t) => {
                    let t0 = Instant::now();
                    let closed = self.nodes[i].advance_watermark(watermark);
                    t.busy_ns.add(t0.elapsed().as_nanos() as u64);
                    t.tuples_out.add(closed.len() as u64);
                    closed
                }
                None => self.nodes[i].advance_watermark(watermark),
            };
            if !closed.is_empty() {
                deliver_batch(
                    &self.plan,
                    &mut self.pending,
                    &mut self.collected,
                    self.pool.as_ref(),
                    i,
                    Batch::from(closed),
                );
            }
        }
    }

    /// Drain the tuples collected at each sink since the session started
    /// (or since the previous drain), preserving per-sink arrival order.
    /// Only sinks with new output appear; sink buckets stay registered
    /// for future pushes. This is the incremental-serving surface — a
    /// long-lived driver (e.g. a TCP server streaming results to
    /// subscribers) calls it after [`ExecSession::push`] to forward
    /// closed-window output without waiting for [`ExecSession::finish`],
    /// which then returns only what was collected after the last drain.
    pub fn drain_collected(&mut self) -> Vec<(NodeId, Vec<Tuple>)> {
        let mut drained: Vec<(NodeId, Vec<Tuple>)> = Vec::new();
        for &sink in self.plan.sinks() {
            if let Some(bucket) = self.collected.get_mut(&sink) {
                if !bucket.is_empty() {
                    drained.push((sink, std::mem::take(bucket)));
                }
            }
        }
        drained
    }

    /// Flush all operator state and return the tuples collected per sink.
    pub fn finish(mut self) -> HashMap<NodeId, Vec<Tuple>> {
        flush_cascade(
            &mut self.nodes,
            &self.plan,
            &mut self.pending,
            &mut self.collected,
            self.pool.as_ref(),
            self.telem.as_deref(),
        );
        self.collected
    }
}

/// Minimum chunk length worth columnarizing before injection: below this
/// the decompose/reassemble overhead outweighs the vectorized operator
/// fast paths. Shared policy for every driver that assembles row runs
/// (the batched executors here, the ingest server's merge).
pub const COLUMNAR_MIN_CHUNK: usize = 64;

/// Cut a timestamp-sorted feed into runs of up to `batch_size`
/// consecutive tuples addressed to the same (node, port). Runs long
/// enough to benefit are converted to the columnar layout so operators
/// with vectorized fast paths (select, project, windowed aggregate) get
/// column input; mixed-schema runs stay rows ([`Batch::columnarize`]
/// declines them).
fn chunk_feed(
    feed: Vec<(u64, usize, usize, Tuple)>,
    batch_size: usize,
) -> Vec<(usize, usize, Batch)> {
    let mut chunks: Vec<(usize, usize, Batch)> = Vec::new();
    for (_, node, port, t) in feed {
        match chunks.last_mut() {
            Some((n, p, b)) if *n == node && *p == port && b.len() < batch_size => b.push(t),
            _ => {
                let mut b = Batch::with_capacity(batch_size.min(64));
                b.push(t);
                chunks.push((node, port, b));
            }
        }
    }
    for (_, _, b) in &mut chunks {
        if b.len() >= COLUMNAR_MIN_CHUNK {
            b.columnarize();
        }
    }
    chunks
}

/// Threaded executor: each operator runs on its own thread, connected by
/// bounded crossbeam channels (backpressure) that carry [`Batch`]es.
/// Inputs are fed through [`ThreadedExecutor::run`]; sink outputs are
/// returned per node.
///
/// **Legacy path.** Thread-per-operator parallelism is fixed by plan
/// shape: a small graph cannot use more cores than it has boxes, and
/// every batch pays one channel hop per edge. The sharded runtime
/// (`ustream-runtime`'s `ShardedExecutor`) splits the *data* across
/// key-partitioned pipeline copies instead and is the deployment path;
/// this executor remains as the pipeline-parallel comparison point.
///
/// `batch_size` controls how many consecutive same-destination input
/// tuples ride in one message; operator outputs travel as whatever batch
/// their operator produced. Larger batches amortize channel
/// synchronization but delay downstream work and raise per-message
/// memory; 64–256 is a good range for operator costs in the microsecond
/// regime, 1 degenerates to tuple-at-a-time messaging.
pub struct ThreadedExecutor {
    channel_capacity: usize,
    batch_size: usize,
}

impl Default for ThreadedExecutor {
    fn default() -> Self {
        ThreadedExecutor {
            channel_capacity: 1024,
            batch_size: 128,
        }
    }
}

/// Message flowing between operator threads.
enum Msg {
    Data(usize, Batch),
    /// One upstream of this port finished; when all inputs of a node are
    /// done, it flushes and shuts down.
    Eos,
}

impl ThreadedExecutor {
    pub fn new(channel_capacity: usize) -> Self {
        assert!(channel_capacity > 0);
        ThreadedExecutor {
            channel_capacity,
            ..Default::default()
        }
    }

    /// Set how many input tuples ride in one channel message.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        self.batch_size = batch_size;
        self
    }

    /// Run the graph to completion on the given inputs.
    ///
    /// Consumes the graph (operators move onto their threads).
    pub fn run(
        &self,
        graph: QueryGraph,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
    ) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        use crossbeam::channel::{bounded, Receiver, Sender};

        // Shared compile step: cycle check + adjacency + sink bitset.
        let plan = graph.compile()?;
        let QueryGraph {
            nodes,
            edges,
            sources,
            sinks: _,
        } = graph;
        let n = nodes.len();

        // One inbox per node; upstream count per node (for EOS tracking).
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(n);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<Msg>(self.channel_capacity);
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let mut upstreams = vec![0usize; n];
        for e in &edges {
            upstreams[e.to.0] += 1;
        }
        // Source nodes also receive from the driver.
        let mut driver_feeds = vec![0usize; n];
        for node in sources.values() {
            driver_feeds[node.0] += 1;
        }

        // Sink collection channel.
        let (sink_tx, sink_rx) = bounded::<(usize, Batch)>(self.channel_capacity);

        let mut handles: Vec<(String, std::thread::JoinHandle<()>)> = Vec::with_capacity(n);
        for (i, mut op) in nodes.into_iter().enumerate() {
            let op_name = op.name().to_string();
            let rx = receivers[i].take().expect("receiver taken once");
            let outs: Vec<(Sender<Msg>, usize)> = plan
                .downstream_of(NodeId(i))
                .iter()
                .map(|&(to, port)| (senders[to].clone(), port))
                .collect();
            let sink_tx = plan.is_sink(NodeId(i)).then(|| sink_tx.clone());
            let expected_eos = upstreams[i] + driver_feeds[i];
            let handle = std::thread::spawn(move || {
                // Clone-avoidance mirrors the single-threaded executors:
                // the batch moves into the last consumer, clones go to the
                // extra ones.
                let deliver = |outs: &[(Sender<Msg>, usize)],
                               sink_tx: &Option<Sender<(usize, Batch)>>,
                               batch: Batch| {
                    if let Some(stx) = sink_tx {
                        if outs.is_empty() {
                            let _ = stx.send((i, batch));
                            return;
                        }
                        let _ = stx.send((i, batch.clone()));
                    } else if outs.is_empty() {
                        return;
                    }
                    let ((last_tx, last_port), rest) = outs.split_last().expect("outs non-empty");
                    for (tx, port) in rest {
                        let _ = tx.send(Msg::Data(*port, batch.clone()));
                    }
                    let _ = last_tx.send(Msg::Data(*last_port, batch));
                };
                let mut eos_seen = 0usize;
                while eos_seen < expected_eos.max(1) {
                    match rx.recv() {
                        Ok(Msg::Data(port, batch)) => {
                            let out = op.process_batch(port, batch);
                            if !out.is_empty() {
                                deliver(&outs, &sink_tx, out);
                            }
                        }
                        Ok(Msg::Eos) => {
                            eos_seen += 1;
                        }
                        Err(_) => break,
                    }
                }
                let fl = op.flush();
                if !fl.is_empty() {
                    deliver(&outs, &sink_tx, Batch::from(fl));
                }
                for (tx, _) in &outs {
                    let _ = tx.send(Msg::Eos);
                }
            });
            handles.push((op_name, handle));
        }
        drop(sink_tx);

        // Drain sinks concurrently with driving: with a bounded sink
        // channel, collecting only after all inputs are fed can deadlock
        // (driver blocked on a full inbox, workers blocked on the full
        // sink channel).
        let mut collected = plan.empty_collection();
        let collector = std::thread::spawn(move || {
            let mut got: Vec<(usize, Vec<Tuple>)> = Vec::new();
            while let Ok((i, batch)) = sink_rx.recv() {
                got.push((i, batch.into_vec()));
            }
            got
        });

        // Drive the inputs in timestamp order, batch-size tuples at a
        // time. A failed send means the target's thread died (panicked:
        // a worker only drops its receiver by unwinding or finishing, and
        // no node finishes before its driver EOS) — stop feeding and fall
        // through to the join below, which surfaces the panic.
        let feed = QueryGraph::build_feed(&sources, inputs)?;
        let mut feed_failed = false;
        for (node, port, batch) in chunk_feed(feed, self.batch_size) {
            if senders[node].send(Msg::Data(port, batch)).is_err() {
                feed_failed = true;
                break;
            }
        }
        // Signal EOS to driver-fed nodes (once per registered source feed)
        // and to pure-source nodes with no upstream at all.
        for i in 0..n {
            let feeds = driver_feeds[i];
            for _ in 0..feeds {
                let _ = senders[i].send(Msg::Eos);
            }
            if feeds == 0 && upstreams[i] == 0 {
                let _ = senders[i].send(Msg::Eos);
            }
        }
        drop(senders);

        for (i, tuples) in collector.join().expect("sink collector thread") {
            collected.entry(NodeId(i)).or_default().extend(tuples);
        }
        // A panicking operator must surface as an `Err` at the driver,
        // never as a hang or a silently truncated result set.
        let mut panics: Vec<String> = Vec::new();
        for (name, h) in handles {
            if let Err(payload) = h.join() {
                panics.push(format!(
                    "`{name}`: {}",
                    crate::error::panic_message(payload.as_ref())
                ));
            }
        }
        if !panics.is_empty() {
            return Err(EngineError::OperatorPanicked(panics.join("; ")));
        }
        if feed_failed {
            return Err(EngineError::InvalidGraph(
                "operator thread disconnected mid-stream".into(),
            ));
        }
        Ok(collected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{MapOperator, Passthrough};
    use crate::schema::{DataType, Schema};
    use crate::value::Value;

    fn t(ts: u64, v: i64) -> Tuple {
        let s = Schema::builder().field("v", DataType::Int).build();
        Tuple::new(s, vec![Value::from(v)], ts)
    }

    fn doubling_graph() -> (QueryGraph, NodeId) {
        let mut g = QueryGraph::new();
        let double = g.add(Box::new(MapOperator::new("double", |t: Tuple| {
            let v = t.int("v").unwrap();
            let s = t.schema().clone();
            vec![Tuple::new(s, vec![Value::from(v * 2)], t.ts)]
        })));
        let sink = g.add(Box::new(Passthrough::new("sink")));
        g.connect(double, sink, 0).unwrap();
        g.source("in", double);
        g.sink(sink);
        (g, sink)
    }

    #[test]
    fn linear_pipeline_runs() {
        let (mut g, sink) = doubling_graph();
        let out = g
            .run(vec![("in".into(), 0, vec![t(1, 1), t(2, 2)])])
            .unwrap();
        let results = &out[&sink];
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].int("v").unwrap(), 2);
        assert_eq!(results[1].int("v").unwrap(), 4);
    }

    #[test]
    fn unknown_source_errors() {
        let (mut g, _) = doubling_graph();
        assert!(matches!(
            g.run(vec![("missing".into(), 0, vec![])]),
            Err(EngineError::InvalidGraph(_))
        ));
    }

    #[test]
    fn cycle_detected() {
        let mut g = QueryGraph::new();
        let a = g.add(Box::new(Passthrough::new("a")));
        let b = g.add(Box::new(Passthrough::new("b")));
        g.connect(a, b, 0).unwrap();
        g.connect(b, a, 0).unwrap();
        g.source("in", a);
        assert!(matches!(
            g.run(vec![("in".into(), 0, vec![t(0, 0)])]),
            Err(EngineError::InvalidGraph(_))
        ));
        assert!(matches!(g.compile(), Err(EngineError::InvalidGraph(_))));
    }

    #[test]
    fn compiled_plan_exposes_structure() {
        let (g, sink) = doubling_graph();
        let plan = g.compile().unwrap();
        assert_eq!(plan.num_nodes(), 2);
        assert_eq!(plan.topo_order().len(), 2);
        assert!(plan.is_sink(sink));
        assert_eq!(plan.downstream_of(NodeId(0)), &[(1, 0)]);
        assert!(plan.downstream_of(sink).is_empty());
    }

    #[test]
    fn bad_port_rejected_at_connect() {
        let mut g = QueryGraph::new();
        let a = g.add(Box::new(Passthrough::new("a")));
        let b = g.add(Box::new(Passthrough::new("b")));
        assert!(g.connect(a, b, 5).is_err());
    }

    #[test]
    fn fanout_duplicates_tuples() {
        let mut g = QueryGraph::new();
        let src = g.add(Box::new(Passthrough::new("src")));
        let s1 = g.add(Box::new(Passthrough::new("s1")));
        let s2 = g.add(Box::new(Passthrough::new("s2")));
        g.connect(src, s1, 0).unwrap();
        g.connect(src, s2, 0).unwrap();
        g.source("in", src);
        g.sink(s1);
        g.sink(s2);
        let out = g.run(vec![("in".into(), 0, vec![t(1, 7)])]).unwrap();
        assert_eq!(out[&s1].len(), 1);
        assert_eq!(out[&s2].len(), 1);
    }

    #[test]
    fn run_batched_matches_run_on_linear_pipeline() {
        let inputs: Vec<Tuple> = (0..100).map(|i| t(i, i as i64)).collect();
        let (mut g1, sink1) = doubling_graph();
        let single = g1
            .run(vec![("in".into(), 0, inputs.clone())])
            .unwrap()
            .remove(&sink1)
            .unwrap();
        for bs in [1usize, 7, 64, 1024] {
            let (mut g2, sink2) = doubling_graph();
            let batched = g2
                .run_batched(vec![("in".into(), 0, inputs.clone())], bs)
                .unwrap()
                .remove(&sink2)
                .unwrap();
            assert_eq!(single.len(), batched.len(), "batch size {bs}");
            for (a, b) in single.iter().zip(&batched) {
                assert_eq!(a.int("v").unwrap(), b.int("v").unwrap());
                assert_eq!(a.ts, b.ts);
            }
        }
    }

    #[test]
    fn run_batched_fanout_and_sinks() {
        let mk = || {
            let mut g = QueryGraph::new();
            let src = g.add(Box::new(Passthrough::new("src")));
            let s1 = g.add(Box::new(Passthrough::new("s1")));
            let s2 = g.add(Box::new(Passthrough::new("s2")));
            g.connect(src, s1, 0).unwrap();
            g.connect(src, s2, 0).unwrap();
            g.source("in", src);
            g.sink(src); // sink with downstream fan-out: forces the clone path
            g.sink(s1);
            g.sink(s2);
            (g, src, s1, s2)
        };
        let (mut g, src, s1, s2) = mk();
        let out = g
            .run_batched(
                vec![("in".into(), 0, (0..10).map(|i| t(i, i as i64)).collect())],
                4,
            )
            .unwrap();
        assert_eq!(out[&src].len(), 10);
        assert_eq!(out[&s1].len(), 10);
        assert_eq!(out[&s2].len(), 10);
    }

    #[test]
    fn session_records_per_node_telemetry() {
        let (g, sink) = doubling_graph();
        let mut s = g.into_session().unwrap();
        let node = s.source_node("in").unwrap();
        let telem: Vec<_> = s.node_telemetry().unwrap().to_vec();

        // One shared schema Arc so `columnarize` accepts the run.
        let schema = Schema::builder().field("v", DataType::Int).build();
        let mut big = Batch::from(
            (0..100)
                .map(|i| Tuple::new(schema.clone(), vec![Value::from(i as i64)], i))
                .collect::<Vec<_>>(),
        );
        assert!(big.columnarize());
        s.push(node, 0, big);
        s.push(node, 0, Batch::from(vec![t(100, 7)]));
        let out = s.finish();
        assert_eq!(out[&sink].len(), 101);

        let double = &telem[node.index()];
        assert_eq!(double.tuples_in.get(), 101);
        assert_eq!(double.tuples_out.get(), 101);
        assert_eq!(double.batches.get(), 2);
        assert_eq!(double.columnar_batches.get(), 1);
        assert_eq!(double.row_batches.get(), 1);
        assert_eq!(double.columnar_hit_rate(), Some(0.5));
        assert_eq!(telem[sink.index()].tuples_in.get(), 101);
    }

    #[test]
    fn uninstrumented_run_matches_instrumented() {
        let inputs: Vec<Tuple> = (0..300).map(|i| t(i, i as i64)).collect();
        let (mut g1, sink1) = doubling_graph();
        let a = g1
            .run_batched(vec![("in".into(), 0, inputs.clone())], 64)
            .unwrap()
            .remove(&sink1)
            .unwrap();
        let (mut g2, sink2) = doubling_graph();
        let b = g2
            .run_batched_uninstrumented(vec![("in".into(), 0, inputs.clone())], 64)
            .unwrap()
            .remove(&sink2)
            .unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.int("v").unwrap(), y.int("v").unwrap());
            assert_eq!(x.ts, y.ts);
        }

        let (g3, _) = doubling_graph();
        let s = g3.into_session().unwrap().without_instrumentation();
        assert!(s.node_telemetry().is_none());
    }

    #[test]
    fn threaded_matches_single_threaded() {
        let (mut g1, sink1) = doubling_graph();
        let inputs: Vec<Tuple> = (0..200).map(|i| t(i, i as i64)).collect();
        let single = g1
            .run(vec![("in".into(), 0, inputs.clone())])
            .unwrap()
            .remove(&sink1)
            .unwrap();

        let (g2, sink2) = doubling_graph();
        let exec = ThreadedExecutor::default();
        let threaded = exec
            .run(g2, vec![("in".into(), 0, inputs)])
            .unwrap()
            .remove(&sink2)
            .unwrap();

        assert_eq!(single.len(), threaded.len());
        let mut a: Vec<i64> = single.iter().map(|t| t.int("v").unwrap()).collect();
        let mut b: Vec<i64> = threaded.iter().map(|t| t.int("v").unwrap()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn threaded_batch_size_does_not_change_results() {
        let inputs: Vec<Tuple> = (0..200).map(|i| t(i, i as i64)).collect();
        let mut reference: Option<Vec<i64>> = None;
        for bs in [1usize, 3, 64, 1024] {
            let (g, sink) = doubling_graph();
            let exec = ThreadedExecutor::new(16).with_batch_size(bs);
            let out = exec
                .run(g, vec![("in".into(), 0, inputs.clone())])
                .unwrap()
                .remove(&sink)
                .unwrap();
            let mut vs: Vec<i64> = out.iter().map(|t| t.int("v").unwrap()).collect();
            vs.sort();
            match &reference {
                None => reference = Some(vs),
                Some(r) => assert_eq!(r, &vs, "batch size {bs}"),
            }
        }
    }

    #[test]
    fn threaded_flush_cascades() {
        // A windowed op that only emits on flush must still reach sinks.
        use crate::ops::aggregate::{AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate};
        use crate::updf::Updf;
        use ustream_prob::dist::Dist;

        let s = Schema::builder()
            .field("g", DataType::Int)
            .field("w", DataType::Uncertain)
            .build();
        let mk = |ts: u64| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::from(1i64),
                    Value::from(Updf::Parametric(Dist::gaussian(1.0, 0.1))),
                ],
                ts,
            )
        };
        let mut g = QueryGraph::new();
        let agg = g.add(Box::new(WindowedAggregate::new(
            WindowKind::Tumbling(1_000_000),
            |_| crate::value::GroupKey::Unit,
            vec![AggSpec {
                field: "w".into(),
                func: AggFunc::Sum,
                out: "total".into(),
                strategy: Strategy::ExactParametric,
            }],
        )));
        let sink = g.add(Box::new(Passthrough::new("sink")));
        g.connect(agg, sink, 0).unwrap();
        g.source("in", agg);
        g.sink(sink);

        let exec = ThreadedExecutor::default();
        let out = exec
            .run(g, vec![("in".into(), 0, (0..5).map(mk).collect())])
            .unwrap();
        let results = &out[&sink];
        assert_eq!(results.len(), 1, "window only closes at flush");
        assert!((results[0].updf("total").unwrap().mean() - 5.0).abs() < 1e-9);
    }
}
