//! Box-arrow query graphs (§3) and their executors.
//!
//! A [`QueryGraph`] is a DAG of operators ("boxes") connected by
//! dataflow edges ("arrows"), compiled from a query (Q1, Q2) or a
//! scientific workflow (the radar pipeline). Two executors:
//!
//! - [`QueryGraph::run`] — single-threaded push execution in topological
//!   order; deterministic, used by tests and harnesses.
//! - [`ThreadedExecutor`] — one thread per operator connected by
//!   crossbeam channels; the shape a stream engine actually deploys.

use crate::error::{EngineError, Result};
use crate::ops::Operator;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// Node handle in a query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

/// An edge: output of `from` feeds `to`'s input `port`.
#[derive(Debug, Clone, Copy)]
struct Edge {
    from: NodeId,
    to: NodeId,
    port: usize,
}

/// A dataflow graph of operators.
pub struct QueryGraph {
    nodes: Vec<Box<dyn Operator>>,
    edges: Vec<Edge>,
    /// Named entry points: external streams push here.
    sources: HashMap<String, NodeId>,
    /// Nodes whose output is collected as query results.
    sinks: Vec<NodeId>,
}

impl Default for QueryGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryGraph {
    pub fn new() -> Self {
        QueryGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            sources: HashMap::new(),
            sinks: Vec::new(),
        }
    }

    /// Add an operator box.
    pub fn add(&mut self, op: Box<dyn Operator>) -> NodeId {
        self.nodes.push(op);
        NodeId(self.nodes.len() - 1)
    }

    /// Connect `from`'s output to `to`'s input `port`.
    pub fn connect(&mut self, from: NodeId, to: NodeId, port: usize) -> Result<()> {
        if from.0 >= self.nodes.len() || to.0 >= self.nodes.len() {
            return Err(EngineError::InvalidGraph(
                "edge references missing node".into(),
            ));
        }
        if port >= self.nodes[to.0].num_ports() {
            return Err(EngineError::InvalidGraph(format!(
                "operator `{}` has {} ports, edge targets port {port}",
                self.nodes[to.0].name(),
                self.nodes[to.0].num_ports()
            )));
        }
        self.edges.push(Edge { from, to, port });
        Ok(())
    }

    /// Register a named external stream entering at `node` (port 0 unless
    /// the node is a join, in which case use `source_at`).
    pub fn source(&mut self, name: impl Into<String>, node: NodeId) {
        self.sources.insert(name.into(), node);
    }

    /// Mark a node's output as a query result.
    pub fn sink(&mut self, node: NodeId) {
        if !self.sinks.contains(&node) {
            self.sinks.push(node);
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Topological order; errors on cycles.
    fn topo_order(&self) -> Result<Vec<usize>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(i);
            for e in &self.edges {
                if e.from.0 == i {
                    indeg[e.to.0] -= 1;
                    if indeg[e.to.0] == 0 {
                        queue.push(e.to.0);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(EngineError::InvalidGraph("cycle detected".into()));
        }
        Ok(order)
    }

    /// Single-threaded execution: push each (source, port, tuple) triple
    /// through the graph in timestamp order, then flush. Returns the
    /// tuples collected at each sink.
    ///
    /// `inputs` associates stream names (registered via [`Self::source`])
    /// with (port, tuples).
    pub fn run(
        &mut self,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
    ) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        let order = self.topo_order()?;
        let rank: HashMap<usize, usize> = order.iter().enumerate().map(|(r, &i)| (i, r)).collect();

        // Merge all inputs into one timestamp-ordered feed.
        let mut feed: Vec<(u64, NodeId, usize, Tuple)> = Vec::new();
        for (name, port, tuples) in inputs {
            let node = *self
                .sources
                .get(&name)
                .ok_or_else(|| EngineError::InvalidGraph(format!("unknown source `{name}`")))?;
            for t in tuples {
                feed.push((t.ts, node, port, t));
            }
        }
        feed.sort_by_key(|(ts, node, port, _)| (*ts, node.0, *port));

        let mut collected: HashMap<NodeId, Vec<Tuple>> = HashMap::new();
        for s in &self.sinks {
            collected.insert(*s, Vec::new());
        }

        // Per-push propagation in topological rank order.
        for (_, node, port, tuple) in feed {
            self.propagate(node, port, tuple, &rank, &mut collected);
        }

        // Flush in topological order, cascading flush outputs downstream.
        for &i in &order {
            let outs = self.nodes[i].flush();
            for t in outs {
                self.deliver_downstream(NodeId(i), t, &rank, &mut collected);
            }
        }
        Ok(collected)
    }

    /// Push one tuple into `node` and cascade its outputs.
    fn propagate(
        &mut self,
        node: NodeId,
        port: usize,
        tuple: Tuple,
        rank: &HashMap<usize, usize>,
        collected: &mut HashMap<NodeId, Vec<Tuple>>,
    ) {
        let outs = self.nodes[node.0].process(port, tuple);
        for t in outs {
            self.deliver_downstream(node, t, rank, collected);
        }
    }

    fn deliver_downstream(
        &mut self,
        from: NodeId,
        tuple: Tuple,
        rank: &HashMap<usize, usize>,
        collected: &mut HashMap<NodeId, Vec<Tuple>>,
    ) {
        if let Some(bucket) = collected.get_mut(&from) {
            bucket.push(tuple.clone());
        }
        let targets: Vec<(NodeId, usize)> = self
            .edges
            .iter()
            .filter(|e| e.from == from)
            .map(|e| (e.to, e.port))
            .collect();
        for (to, port) in targets {
            debug_assert!(rank[&to.0] > rank[&from.0], "edges follow topo order");
            self.propagate(to, port, tuple.clone(), rank, collected);
        }
    }
}

/// Threaded executor: each operator runs on its own thread, connected by
/// bounded crossbeam channels (backpressure). Inputs are fed through
/// [`ThreadedExecutor::run`]; sink outputs are returned per node.
pub struct ThreadedExecutor {
    channel_capacity: usize,
}

impl Default for ThreadedExecutor {
    fn default() -> Self {
        ThreadedExecutor {
            channel_capacity: 1024,
        }
    }
}

/// Message flowing between operator threads.
enum Msg {
    Data(usize, Tuple),
    /// One upstream of this port finished; when all inputs of a node are
    /// done, it flushes and shuts down.
    Eos,
}

impl ThreadedExecutor {
    pub fn new(channel_capacity: usize) -> Self {
        assert!(channel_capacity > 0);
        ThreadedExecutor { channel_capacity }
    }

    /// Run the graph to completion on the given inputs.
    ///
    /// Consumes the graph (operators move onto their threads).
    pub fn run(
        &self,
        graph: QueryGraph,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
    ) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        use crossbeam::channel::{bounded, Receiver, Sender};

        let QueryGraph {
            nodes,
            edges,
            sources,
            sinks,
        } = graph;
        let n = nodes.len();

        // Validate acyclicity with a throwaway graph view.
        {
            let mut indeg = vec![0usize; n];
            for e in &edges {
                indeg[e.to.0] += 1;
            }
            let mut seen = 0usize;
            let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
            let mut indeg2 = indeg.clone();
            while let Some(i) = queue.pop() {
                seen += 1;
                for e in &edges {
                    if e.from.0 == i {
                        indeg2[e.to.0] -= 1;
                        if indeg2[e.to.0] == 0 {
                            queue.push(e.to.0);
                        }
                    }
                }
            }
            if seen != n {
                return Err(EngineError::InvalidGraph("cycle detected".into()));
            }
        }

        // One inbox per node; upstream count per node (for EOS tracking).
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(n);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<Msg>(self.channel_capacity);
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let mut upstreams = vec![0usize; n];
        for e in &edges {
            upstreams[e.to.0] += 1;
        }
        // Source nodes also receive from the driver.
        let mut driver_feeds = vec![0usize; n];
        for node in sources.values() {
            driver_feeds[node.0] += 1;
        }

        // Sink collection channel.
        let (sink_tx, sink_rx) = bounded::<(usize, Tuple)>(self.channel_capacity);
        let sink_set: std::collections::HashSet<usize> = sinks.iter().map(|s| s.0).collect();

        // Downstream map: node -> [(to, port)].
        let mut downstream: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for e in &edges {
            downstream[e.from.0].push((e.to.0, e.port));
        }

        let mut handles = Vec::with_capacity(n);
        for (i, mut op) in nodes.into_iter().enumerate() {
            let rx = receivers[i].take().expect("receiver taken once");
            let outs: Vec<(Sender<Msg>, usize, usize)> = downstream[i]
                .iter()
                .map(|&(to, port)| (senders[to].clone(), to, port))
                .collect();
            let sink_tx = sink_set.contains(&i).then(|| sink_tx.clone());
            let expected_eos = upstreams[i] + driver_feeds[i];
            let handle = std::thread::spawn(move || {
                let deliver = |outs: &[(Sender<Msg>, usize, usize)],
                               sink_tx: &Option<Sender<(usize, Tuple)>>,
                               t: Tuple| {
                    if let Some(stx) = sink_tx {
                        let _ = stx.send((i, t.clone()));
                    }
                    for (tx, _, port) in outs {
                        let _ = tx.send(Msg::Data(*port, t.clone()));
                    }
                };
                let mut eos_seen = 0usize;
                while eos_seen < expected_eos.max(1) {
                    match rx.recv() {
                        Ok(Msg::Data(port, t)) => {
                            for out in op.process(port, t) {
                                deliver(&outs, &sink_tx, out);
                            }
                        }
                        Ok(Msg::Eos) => {
                            eos_seen += 1;
                        }
                        Err(_) => break,
                    }
                }
                for out in op.flush() {
                    deliver(&outs, &sink_tx, out);
                }
                for (tx, _, _) in &outs {
                    let _ = tx.send(Msg::Eos);
                }
            });
            handles.push(handle);
        }
        drop(sink_tx);

        // Drive the inputs in timestamp order.
        let mut feed: Vec<(u64, usize, usize, Tuple)> = Vec::new();
        for (name, port, tuples) in inputs {
            let node = *sources
                .get(&name)
                .ok_or_else(|| EngineError::InvalidGraph(format!("unknown source `{name}`")))?;
            for t in tuples {
                feed.push((t.ts, node.0, port, t));
            }
        }
        feed.sort_by_key(|(ts, node, port, _)| (*ts, *node, *port));
        for (_, node, port, t) in feed {
            senders[node]
                .send(Msg::Data(port, t))
                .map_err(|_| EngineError::InvalidGraph("operator thread died".into()))?;
        }
        // Signal EOS to driver-fed nodes (once per registered source feed)
        // and to pure-source nodes with no upstream at all.
        for i in 0..n {
            let feeds = driver_feeds[i];
            for _ in 0..feeds {
                let _ = senders[i].send(Msg::Eos);
            }
            if feeds == 0 && upstreams[i] == 0 {
                let _ = senders[i].send(Msg::Eos);
            }
        }
        drop(senders);

        let mut collected: HashMap<NodeId, Vec<Tuple>> = HashMap::new();
        for s in &sinks {
            collected.insert(*s, Vec::new());
        }
        while let Ok((i, t)) = sink_rx.recv() {
            collected.entry(NodeId(i)).or_default().push(t);
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(collected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{MapOperator, Passthrough};
    use crate::schema::{DataType, Schema};
    use crate::value::Value;

    fn t(ts: u64, v: i64) -> Tuple {
        let s = Schema::builder().field("v", DataType::Int).build();
        Tuple::new(s, vec![Value::from(v)], ts)
    }

    fn doubling_graph() -> (QueryGraph, NodeId) {
        let mut g = QueryGraph::new();
        let double = g.add(Box::new(MapOperator::new("double", |t: Tuple| {
            let v = t.int("v").unwrap();
            let s = t.schema().clone();
            vec![Tuple::new(s, vec![Value::from(v * 2)], t.ts)]
        })));
        let sink = g.add(Box::new(Passthrough::new("sink")));
        g.connect(double, sink, 0).unwrap();
        g.source("in", double);
        g.sink(sink);
        (g, sink)
    }

    #[test]
    fn linear_pipeline_runs() {
        let (mut g, sink) = doubling_graph();
        let out = g
            .run(vec![("in".into(), 0, vec![t(1, 1), t(2, 2)])])
            .unwrap();
        let results = &out[&sink];
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].int("v").unwrap(), 2);
        assert_eq!(results[1].int("v").unwrap(), 4);
    }

    #[test]
    fn unknown_source_errors() {
        let (mut g, _) = doubling_graph();
        assert!(matches!(
            g.run(vec![("missing".into(), 0, vec![])]),
            Err(EngineError::InvalidGraph(_))
        ));
    }

    #[test]
    fn cycle_detected() {
        let mut g = QueryGraph::new();
        let a = g.add(Box::new(Passthrough::new("a")));
        let b = g.add(Box::new(Passthrough::new("b")));
        g.connect(a, b, 0).unwrap();
        g.connect(b, a, 0).unwrap();
        g.source("in", a);
        assert!(matches!(
            g.run(vec![("in".into(), 0, vec![t(0, 0)])]),
            Err(EngineError::InvalidGraph(_))
        ));
    }

    #[test]
    fn bad_port_rejected_at_connect() {
        let mut g = QueryGraph::new();
        let a = g.add(Box::new(Passthrough::new("a")));
        let b = g.add(Box::new(Passthrough::new("b")));
        assert!(g.connect(a, b, 5).is_err());
    }

    #[test]
    fn fanout_duplicates_tuples() {
        let mut g = QueryGraph::new();
        let src = g.add(Box::new(Passthrough::new("src")));
        let s1 = g.add(Box::new(Passthrough::new("s1")));
        let s2 = g.add(Box::new(Passthrough::new("s2")));
        g.connect(src, s1, 0).unwrap();
        g.connect(src, s2, 0).unwrap();
        g.source("in", src);
        g.sink(s1);
        g.sink(s2);
        let out = g.run(vec![("in".into(), 0, vec![t(1, 7)])]).unwrap();
        assert_eq!(out[&s1].len(), 1);
        assert_eq!(out[&s2].len(), 1);
    }

    #[test]
    fn threaded_matches_single_threaded() {
        let (mut g1, sink1) = doubling_graph();
        let inputs: Vec<Tuple> = (0..200).map(|i| t(i, i as i64)).collect();
        let single = g1
            .run(vec![("in".into(), 0, inputs.clone())])
            .unwrap()
            .remove(&sink1)
            .unwrap();

        let (g2, sink2) = doubling_graph();
        let exec = ThreadedExecutor::default();
        let threaded = exec
            .run(g2, vec![("in".into(), 0, inputs)])
            .unwrap()
            .remove(&sink2)
            .unwrap();

        assert_eq!(single.len(), threaded.len());
        let mut a: Vec<i64> = single.iter().map(|t| t.int("v").unwrap()).collect();
        let mut b: Vec<i64> = threaded.iter().map(|t| t.int("v").unwrap()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn threaded_flush_cascades() {
        // A windowed op that only emits on flush must still reach sinks.
        use crate::ops::aggregate::{AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate};
        use crate::updf::Updf;
        use ustream_prob::dist::Dist;

        let s = Schema::builder()
            .field("g", DataType::Int)
            .field("w", DataType::Uncertain)
            .build();
        let mk = |ts: u64| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::from(1i64),
                    Value::from(Updf::Parametric(Dist::gaussian(1.0, 0.1))),
                ],
                ts,
            )
        };
        let mut g = QueryGraph::new();
        let agg = g.add(Box::new(WindowedAggregate::new(
            WindowKind::Tumbling(1_000_000),
            |_| crate::value::GroupKey::Unit,
            vec![AggSpec {
                field: "w".into(),
                func: AggFunc::Sum,
                out: "total".into(),
                strategy: Strategy::ExactParametric,
            }],
        )));
        let sink = g.add(Box::new(Passthrough::new("sink")));
        g.connect(agg, sink, 0).unwrap();
        g.source("in", agg);
        g.sink(sink);

        let exec = ThreadedExecutor::default();
        let out = exec
            .run(g, vec![("in".into(), 0, (0..5).map(|i| mk(i)).collect())])
            .unwrap();
        let results = &out[&sink];
        assert_eq!(results.len(), 1, "window only closes at flush");
        assert!((results[0].updf("total").unwrap().mean() - 5.0).abs() < 1e-9);
    }
}
