//! The engine's canonical `(timestamp, content)` tuple order.
//!
//! One total order, used everywhere partitioning must not leak into
//! observable output: the sharded runtime sorts each merged sink into it,
//! exchange boundaries between plan stages deliver re-shuffled tuples in
//! it, and [`crate::ops::aggregate::WindowedAggregate`] emits each closed
//! window's groups in it — so a window's rows look the same whether one
//! operator instance or eight shard instances produced them.
//!
//! Keys are compact binary encodings (timestamp big-endian first, then
//! existence bits, lineage ids, and per-value payloads), built without
//! the `Debug` formatting machinery. Distribution payloads encode their
//! variant, dimension, moments — a discriminator that separates every
//! realistic pair of distinct outputs; on the off chance two *different*
//! tuples still collide (same moments, different shape), the tie run is
//! re-ordered by the full `Debug` rendering, which spells out every
//! parameter. The expensive exact path therefore runs only on actual
//! ties, which are normally zero.

use crate::tuple::Tuple;
use crate::updf::Updf;
use crate::value::Value;

/// Compact canonical key: lexicographic order = (ts, content) order.
pub fn fast_key(t: &Tuple) -> Vec<u8> {
    let mut k = Vec::with_capacity(48 + 16 * t.values().len());
    k.extend_from_slice(&t.ts.to_be_bytes());
    k.extend_from_slice(&t.existence.to_bits().to_be_bytes());
    let ids = t.lineage.ids();
    k.extend_from_slice(&(ids.len() as u32).to_be_bytes());
    for &id in ids {
        k.extend_from_slice(&id.to_be_bytes());
    }
    for v in t.values() {
        encode_value(&mut k, v);
    }
    k
}

fn encode_value(k: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => k.push(0),
        Value::Bool(b) => {
            k.push(1);
            k.push(*b as u8);
        }
        Value::Int(i) => {
            k.push(2);
            k.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            k.push(3);
            k.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        Value::Str(s) => {
            k.push(4);
            k.extend_from_slice(&(s.len() as u32).to_be_bytes());
            k.extend_from_slice(s.as_bytes());
        }
        Value::Time(t) => {
            k.push(5);
            k.extend_from_slice(&t.to_be_bytes());
        }
        Value::Uncertain(u) => {
            k.push(6);
            k.push(match u.as_ref() {
                Updf::Parametric(_) => 0,
                Updf::Samples(_) => 1,
                Updf::Histogram(_) => 2,
                Updf::Mv(_) => 3,
                Updf::MvSamples(_) => 4,
            });
            let dim = u.dim();
            k.push(dim.min(255) as u8);
            for m in u.mean_vec() {
                k.extend_from_slice(&m.to_bits().to_be_bytes());
            }
            if dim == 1 {
                k.extend_from_slice(&u.variance().to_bits().to_be_bytes());
            }
        }
    }
}

/// Exhaustive fallback key: the `Debug` rendering spells out every
/// distribution parameter, so distinct tuples always order distinctly.
/// Orders of magnitude slower than [`fast_key`] — callers run it only
/// on actual fast-key tie runs, which are normally zero.
pub fn exact_key(t: &Tuple) -> String {
    format!("{:?}|{:?}", t.values(), t.lineage)
}

/// Sort `tuples` into the canonical merged order: fast binary keys
/// first, then exact re-ordering of any residual tie runs.
pub fn canonical_sort(tuples: &mut Vec<Tuple>) {
    if tuples.len() < 2 {
        return;
    }
    let mut keyed: Vec<(Vec<u8>, usize)> = tuples
        .iter()
        .enumerate()
        .map(|(i, t)| (fast_key(t), i))
        .collect();
    keyed.sort_by(|(a, ai), (b, bi)| a.cmp(b).then(ai.cmp(bi)));

    // Re-order runs of equal fast keys by the exact rendering (the index
    // tiebreak above is partition-dependent, so it must not decide the
    // final order between distinct tuples).
    let mut i = 0;
    while i < keyed.len() {
        let mut j = i + 1;
        while j < keyed.len() && keyed[j].0 == keyed[i].0 {
            j += 1;
        }
        if j - i > 1 {
            keyed[i..j].sort_by_cached_key(|&(_, idx)| exact_key(&tuples[idx]));
        }
        i = j;
    }

    let mut slots: Vec<Option<Tuple>> = tuples.drain(..).map(Some).collect();
    tuples.extend(
        keyed
            .into_iter()
            .map(|(_, idx)| slots[idx].take().expect("each index moved once")),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    #[test]
    fn orders_by_ts_then_content_independent_of_input_order() {
        let s = Schema::builder()
            .field("a", DataType::Int)
            .field("b", DataType::Str)
            .build();
        let mk = |ts: u64, a: i64, b: &str| {
            Tuple::new(s.clone(), vec![Value::Int(a), Value::from(b)], ts)
        };
        let mut one = vec![mk(5, 2, "x"), mk(1, 9, "z"), mk(5, 2, "a"), mk(5, 1, "q")];
        let mut two = vec![
            one[2].clone(),
            one[3].clone(),
            one[0].clone(),
            one[1].clone(),
        ];
        canonical_sort(&mut one);
        canonical_sort(&mut two);
        let render = |ts: &[Tuple]| -> Vec<(u64, i64, String)> {
            ts.iter()
                .map(|t| (t.ts, t.int("a").unwrap(), t.str("b").unwrap().to_string()))
                .collect()
        };
        assert_eq!(render(&one), render(&two));
        assert_eq!(one[0].ts, 1, "timestamp is the primary key");
    }

    #[test]
    fn identical_fast_keys_fall_back_to_exact_ordering() {
        // Equal tuples must simply survive the tie path unchanged.
        let s = Schema::builder().field("v", DataType::Int).build();
        let a = Tuple::new(s.clone(), vec![Value::Int(1)], 3);
        let mut ts = vec![a.clone(), a.clone(), a];
        canonical_sort(&mut ts);
        assert_eq!(ts.len(), 3);
        assert!(ts.iter().all(|t| t.ts == 3 && t.int("v").unwrap() == 1));
    }
}
