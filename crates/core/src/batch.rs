//! Batches: the unit of data movement in the batched execution engine.
//!
//! A [`Batch`] is a run of tuples shipped through the query graph
//! together. Moving tuples in batches amortizes per-delivery costs
//! (channel synchronization in the threaded executor, dispatch and
//! allocation in every executor) roughly batch-size-fold, which is what
//! high-volume stream processing needs (§1's "must keep up with stream
//! speed").
//!
//! The key fast path is [`Batch::shared_schema`]: input streams build
//! every tuple against one `Arc<Schema>`, so operators can resolve field
//! names to indices **once per batch** instead of once per tuple.
//!
//! A batch carries its tuples in one of two layouts:
//!
//! - **rows** — the original `Vec<Tuple>`;
//! - **columnar** — a [`Columns`] decomposition into per-field typed
//!   arrays (see [`crate::columnar`]), produced by the feed chunker and
//!   the wire decoder for same-schema runs.
//!
//! At most one layout is populated. Row-oriented accessors that can take
//! `&mut self` or `self` ([`Batch::iter_mut`], [`Batch::retain_mut`],
//! [`Batch::into_vec`], the owned iterator) transparently *hydrate* a
//! columnar batch back to rows — losslessly, so an operator without a
//! vectorized path behaves exactly as before. The shared-reference
//! accessors ([`Batch::iter`], [`Batch::as_slice`]) cannot hydrate and
//! panic on columnar batches; engine code that may see columnar input
//! either takes the columns ([`Batch::take_columns`]) or hydrates first.

use crate::columnar::Columns;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::sync::{Arc, Mutex};

/// An ordered run of tuples moving through the graph together.
///
/// Order within a batch is significant — operators see tuples in exactly
/// the sequence they would have arrived one at a time.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    tuples: Vec<Tuple>,
    /// Columnar layout, populated only while `tuples` is empty.
    cols: Option<Columns>,
}

impl Batch {
    pub fn new() -> Self {
        Batch {
            tuples: Vec::new(),
            cols: None,
        }
    }

    pub fn with_capacity(n: usize) -> Self {
        Batch {
            tuples: Vec::with_capacity(n),
            cols: None,
        }
    }

    /// A batch of one (tuple-at-a-time execution is batch-size-1).
    pub fn one(tuple: Tuple) -> Self {
        Batch {
            tuples: vec![tuple],
            cols: None,
        }
    }

    /// Wrap a columnar decomposition as a batch.
    pub fn from_columns(cols: Columns) -> Self {
        Batch {
            tuples: Vec::new(),
            cols: Some(cols),
        }
    }

    /// Whether this batch currently holds columnar data.
    pub fn is_columnar(&self) -> bool {
        self.cols.as_ref().is_some_and(|c| !c.is_empty())
    }

    /// The columnar layout, when populated.
    pub fn columns(&self) -> Option<&Columns> {
        self.cols.as_ref().filter(|c| !c.is_empty())
    }

    /// Take the columnar layout out, leaving an empty batch.
    pub fn take_columns(&mut self) -> Option<Columns> {
        self.cols.take().filter(|c| !c.is_empty())
    }

    /// Convert rows to the columnar layout when every tuple shares one
    /// schema `Arc`; no-op (returning false) otherwise.
    pub fn columnarize(&mut self) -> bool {
        if self.is_columnar() {
            return true;
        }
        if self.tuples.is_empty() {
            return false;
        }
        match Columns::from_rows(std::mem::take(&mut self.tuples)) {
            Ok(cols) => {
                self.cols = Some(cols);
                true
            }
            Err(rows) => {
                self.tuples = rows;
                false
            }
        }
    }

    /// Hydrate a columnar batch back to rows (lossless); no-op on rows.
    pub fn hydrate(&mut self) {
        if let Some(cols) = self.cols.take() {
            debug_assert!(self.tuples.is_empty(), "dual-layout batch");
            if self.tuples.is_empty() {
                self.tuples = cols.into_rows();
            } else {
                self.tuples.extend(cols.into_rows());
            }
        }
    }

    pub fn len(&self) -> usize {
        self.tuples.len() + self.cols.as_ref().map_or(0, |c| c.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The highest timestamp in the batch, layout-independent.
    pub fn max_ts(&self) -> Option<u64> {
        match self.columns() {
            Some(c) => c.max_ts(),
            None => self.tuples.iter().map(|t| t.ts).max(),
        }
    }

    pub fn push(&mut self, t: Tuple) {
        match &mut self.cols {
            Some(cols) if Arc::ptr_eq(cols.schema(), t.schema()) => cols.push_row(t),
            _ => {
                self.hydrate();
                self.tuples.push(t);
            }
        }
    }

    /// Row iterator. Panics on a columnar batch — a `&self` borrow
    /// cannot hydrate; use [`Batch::hydrate`] (or an owning accessor)
    /// first.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        assert!(
            !self.is_columnar(),
            "Batch::iter on a columnar batch — hydrate first"
        );
        self.tuples.iter()
    }

    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Tuple> {
        self.hydrate();
        self.tuples.iter_mut()
    }

    /// Row slice. Panics on a columnar batch (see [`Batch::iter`]).
    pub fn as_slice(&self) -> &[Tuple] {
        assert!(
            !self.is_columnar(),
            "Batch::as_slice on a columnar batch — hydrate first"
        );
        &self.tuples
    }

    pub fn into_vec(mut self) -> Vec<Tuple> {
        self.hydrate();
        self.tuples
    }

    /// Keep only tuples for which `f` returns true, mutating in place —
    /// the allocation-free shape of a batched filter.
    pub fn retain_mut(&mut self, f: impl FnMut(&mut Tuple) -> bool) {
        self.hydrate();
        self.tuples.retain_mut(f);
    }

    /// The schema shared by **every** tuple in the batch, when there is
    /// one (pointer equality on the `Arc`). `None` for empty or
    /// mixed-schema batches; operators then fall back to per-tuple
    /// resolution. Columnar batches always have one.
    pub fn shared_schema(&self) -> Option<&Arc<Schema>> {
        if let Some(cols) = self.columns() {
            return Some(cols.schema());
        }
        let first = self.tuples.first()?.schema();
        if self
            .tuples
            .iter()
            .skip(1)
            .all(|t| Arc::ptr_eq(t.schema(), first))
        {
            Some(first)
        } else {
            None
        }
    }
}

/// A shared free list of tuple buffers, cutting allocator traffic where
/// the engine itself creates and retires batches on the hot path: the
/// feed chunker that cuts input streams into batches, the sharded
/// runtime's router that splits chunks into per-shard sub-batches, and
/// the sink-collection step that drains arrived batches into result
/// vectors.
///
/// Cloning is cheap (`Arc`); the same pool may be shared by a driver
/// thread taking buffers and worker threads returning them. Buffers keep
/// their capacity across reuse; at most `max_buffers` are retained so a
/// burst cannot pin memory forever.
#[derive(Debug, Clone)]
pub struct BatchPool {
    free: Arc<Mutex<Vec<Vec<Tuple>>>>,
    max_buffers: usize,
}

impl Default for BatchPool {
    fn default() -> Self {
        BatchPool::new(64)
    }
}

impl BatchPool {
    pub fn new(max_buffers: usize) -> Self {
        BatchPool {
            free: Arc::new(Mutex::new(Vec::new())),
            max_buffers,
        }
    }

    /// An empty batch backed by a recycled buffer when one is available,
    /// or a fresh allocation of `capacity` otherwise.
    pub fn take(&self, capacity: usize) -> Batch {
        let buf = self.free.lock().expect("batch pool poisoned").pop();
        match buf {
            Some(buf) => Batch {
                tuples: buf,
                cols: None,
            },
            None => Batch::with_capacity(capacity),
        }
    }

    /// Return a spent buffer to the pool. Tuples still inside are
    /// dropped; the allocation survives for the next [`BatchPool::take`].
    pub fn put(&self, mut buf: Vec<Tuple>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let mut free = self.free.lock().expect("batch pool poisoned");
        if free.len() < self.max_buffers {
            free.push(buf);
        }
    }

    /// [`BatchPool::put`] for a whole batch. Columnar storage is simply
    /// dropped — only row buffers are worth pooling.
    pub fn recycle(&self, batch: Batch) {
        self.put(batch.tuples);
    }

    /// Number of buffers currently pooled.
    pub fn free_buffers(&self) -> usize {
        self.free.lock().expect("batch pool poisoned").len()
    }
}

impl From<Vec<Tuple>> for Batch {
    fn from(tuples: Vec<Tuple>) -> Self {
        Batch { tuples, cols: None }
    }
}

impl From<Batch> for Vec<Tuple> {
    fn from(b: Batch) -> Self {
        b.into_vec()
    }
}

impl Extend<Tuple> for Batch {
    fn extend<I: IntoIterator<Item = Tuple>>(&mut self, iter: I) {
        self.hydrate();
        self.tuples.extend(iter);
    }
}

impl IntoIterator for Batch {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Tuple> for Batch {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Batch {
            tuples: iter.into_iter().collect(),
            cols: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::value::Value;

    fn t(schema: &Arc<Schema>, v: i64) -> Tuple {
        Tuple::new(schema.clone(), vec![Value::from(v)], v as u64)
    }

    #[test]
    fn shared_schema_fast_path() {
        let s = Schema::builder().field("v", DataType::Int).build();
        let b: Batch = vec![t(&s, 1), t(&s, 2), t(&s, 3)].into();
        assert!(Arc::ptr_eq(b.shared_schema().unwrap(), &s));
    }

    #[test]
    fn mixed_schemas_disable_fast_path() {
        let s1 = Schema::builder().field("v", DataType::Int).build();
        let s2 = Schema::builder().field("v", DataType::Int).build();
        let b: Batch = vec![t(&s1, 1), t(&s2, 2)].into();
        assert!(b.shared_schema().is_none(), "distinct Arcs, no fast path");
        assert!(Batch::new().shared_schema().is_none());
    }

    #[test]
    fn retain_mut_filters_in_place() {
        let s = Schema::builder().field("v", DataType::Int).build();
        let mut b: Batch = (0..10).map(|i| t(&s, i)).collect();
        b.retain_mut(|t| t.int("v").unwrap() % 2 == 0);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn pool_reuses_buffers_and_bounds_retention() {
        let s = Schema::builder().field("v", DataType::Int).build();
        let pool = BatchPool::new(2);
        let mut b = pool.take(8);
        assert_eq!(b.len(), 0);
        b.push(t(&s, 1));
        let cap = {
            let v: Vec<Tuple> = b.into_vec();
            let cap = v.capacity();
            pool.put(v);
            cap
        };
        assert_eq!(pool.free_buffers(), 1);
        // Reuse keeps the allocation and hands back an empty batch.
        let b2 = pool.take(0);
        assert!(b2.is_empty());
        assert!(b2.tuples.capacity() >= cap.min(1));
        // Retention is bounded by max_buffers.
        pool.put(Vec::with_capacity(4));
        pool.put(Vec::with_capacity(4));
        pool.put(Vec::with_capacity(4));
        assert_eq!(pool.free_buffers(), 2);
        // Capacity-0 buffers are not worth pooling.
        pool.recycle(Batch::new());
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn round_trips_vec() {
        let s = Schema::builder().field("v", DataType::Int).build();
        let mut b = Batch::one(t(&s, 7));
        b.push(t(&s, 8));
        let v: Vec<Tuple> = b.into_vec();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn columnarize_and_hydrate_round_trip() {
        let s = Schema::builder().field("v", DataType::Int).build();
        let rows: Vec<Tuple> = (0..5).map(|i| t(&s, i)).collect();
        let rendered: Vec<String> = rows.iter().map(|t| format!("{t:?}")).collect();
        let mut b: Batch = rows.into();
        assert!(b.columnarize());
        assert!(b.is_columnar());
        assert_eq!(b.len(), 5);
        assert_eq!(b.max_ts(), Some(4));
        assert!(Arc::ptr_eq(b.shared_schema().unwrap(), &s));
        let back = b.into_vec();
        let back_rendered: Vec<String> = back.iter().map(|t| format!("{t:?}")).collect();
        assert_eq!(back_rendered, rendered);
    }

    #[test]
    fn push_into_columnar_batch_keeps_order() {
        let s = Schema::builder().field("v", DataType::Int).build();
        let mut b: Batch = (0..3).map(|i| t(&s, i)).collect();
        b.columnarize();
        b.push(t(&s, 3));
        assert!(b.is_columnar(), "same-schema push stays columnar");
        let vs: Vec<i64> = b.into_vec().iter().map(|t| t.int("v").unwrap()).collect();
        assert_eq!(vs, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "hydrate first")]
    fn iter_refuses_columnar() {
        let s = Schema::builder().field("v", DataType::Int).build();
        let mut b: Batch = (0..3).map(|i| t(&s, i)).collect();
        b.columnarize();
        let _ = b.iter();
    }
}
