//! Confidence regions for final query results (§3: "The final result can
//! be described directly using its pdf or a confidence region, depending
//! on the application").

use crate::updf::Updf;
use ustream_prob::dist::Dist;

/// A confidence region at some level.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfidenceRegion {
    /// Central scalar interval [lo, hi].
    Interval { lo: f64, hi: f64, level: f64 },
    /// Union of disjoint intervals (highest-density region of a
    /// multi-modal distribution).
    Union {
        intervals: Vec<(f64, f64)>,
        level: f64,
    },
    /// Mahalanobis ellipsoid: {x : (x−μ)ᵀΣ⁻¹(x−μ) ≤ r²}.
    Ellipsoid {
        center: Vec<f64>,
        cov: Vec<f64>,
        radius_sq: f64,
        level: f64,
    },
}

impl ConfidenceRegion {
    /// Total length (1-D) or `None` for ellipsoids.
    pub fn length(&self) -> Option<f64> {
        match self {
            ConfidenceRegion::Interval { lo, hi, .. } => Some(hi - lo),
            ConfidenceRegion::Union { intervals, .. } => {
                Some(intervals.iter().map(|(a, b)| b - a).sum())
            }
            ConfidenceRegion::Ellipsoid { .. } => None,
        }
    }

    /// Does the region contain the scalar point x (1-D regions only)?
    pub fn contains(&self, x: f64) -> bool {
        match self {
            ConfidenceRegion::Interval { lo, hi, .. } => x >= *lo && x <= *hi,
            ConfidenceRegion::Union { intervals, .. } => {
                intervals.iter().any(|(a, b)| x >= *a && x <= *b)
            }
            ConfidenceRegion::Ellipsoid { .. } => false,
        }
    }
}

/// Compute a confidence region for a tuple-level distribution.
///
/// - Unimodal scalar payloads get a central interval.
/// - Mixtures get a highest-density region (possibly a union of
///   intervals) found by grid search over density thresholds.
/// - Multivariate Gaussians get the chi-square Mahalanobis ellipsoid.
pub fn confidence_region(u: &Updf, level: f64) -> ConfidenceRegion {
    assert!((0.0..1.0).contains(&level), "level must be in (0,1)");
    match u {
        Updf::Mv(mv) => ConfidenceRegion::Ellipsoid {
            center: mv.mean().to_vec(),
            cov: mv.cov().to_vec(),
            radius_sq: mv.confidence_radius_sq(level),
            level,
        },
        Updf::MvSamples(s) => {
            let mv = s.fit_mv_gaussian();
            ConfidenceRegion::Ellipsoid {
                center: mv.mean().to_vec(),
                cov: mv.cov().to_vec(),
                radius_sq: mv.confidence_radius_sq(level),
                level,
            }
        }
        Updf::Parametric(Dist::Mixture(m)) => hdr_region(&Dist::Mixture(m.clone()), level),
        _ => {
            let (lo, hi) = u.confidence_interval(level);
            ConfidenceRegion::Interval { lo, hi, level }
        }
    }
}

/// Highest-density region by bisection on the density threshold: find c
/// such that the mass of {x : f(x) ≥ c} equals `level`; report that set
/// as a union of grid intervals.
fn hdr_region(d: &Dist, level: f64) -> ConfidenceRegion {
    let lo = d.quantile(1e-6);
    let hi = d.quantile(1.0 - 1e-6);
    let n = 2048usize;
    let step = (hi - lo) / n as f64;
    let dens: Vec<f64> = (0..n)
        .map(|i| d.pdf(lo + (i as f64 + 0.5) * step))
        .collect();

    // Mass of {x : f(x) >= c} on the grid: the count factors cancel,
    // leaving a single filtered sum.
    let mass_above = |c: f64| -> f64 { step * dens.iter().filter(|&&f| f >= c).sum::<f64>() };
    // Bisect on the density threshold.
    let mut c_lo = 0.0f64;
    let mut c_hi = dens.iter().cloned().fold(0.0f64, f64::max);
    for _ in 0..60 {
        let c = 0.5 * (c_lo + c_hi);
        if mass_above(c) > level {
            c_lo = c;
        } else {
            c_hi = c;
        }
    }
    let c = c_lo;

    // Collect contiguous runs of above-threshold cells.
    let mut intervals: Vec<(f64, f64)> = Vec::new();
    let mut run_start: Option<usize> = None;
    for (i, &f) in dens.iter().enumerate() {
        if f >= c {
            if run_start.is_none() {
                run_start = Some(i);
            }
        } else if let Some(s) = run_start.take() {
            intervals.push((lo + s as f64 * step, lo + i as f64 * step));
        }
    }
    if let Some(s) = run_start {
        intervals.push((lo + s as f64 * step, hi));
    }
    if intervals.len() == 1 {
        ConfidenceRegion::Interval {
            lo: intervals[0].0,
            hi: intervals[0].1,
            level,
        }
    } else {
        ConfidenceRegion::Union { intervals, level }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_prob::dist::{GaussianMixture, MvGaussian};

    #[test]
    fn gaussian_interval() {
        let u = Updf::Parametric(Dist::gaussian(10.0, 2.0));
        let r = confidence_region(&u, 0.95);
        match r {
            ConfidenceRegion::Interval { lo, hi, .. } => {
                assert!((lo - (10.0 - 3.92)).abs() < 0.01);
                assert!((hi - (10.0 + 3.92)).abs() < 0.01);
                assert!(r.contains(10.0));
                assert!(!r.contains(20.0));
            }
            other => panic!("expected interval, got {other:?}"),
        }
    }

    #[test]
    fn bimodal_mixture_gets_union() {
        let m = GaussianMixture::from_triples(&[(0.5, -10.0, 0.5), (0.5, 10.0, 0.5)]);
        let u = Updf::Parametric(Dist::Mixture(m));
        let r = confidence_region(&u, 0.9);
        match &r {
            ConfidenceRegion::Union { intervals, .. } => {
                assert_eq!(intervals.len(), 2, "two humps ⇒ two intervals");
                assert!(r.contains(-10.0) && r.contains(10.0));
                assert!(!r.contains(0.0), "valley excluded from HDR");
                // HDR is shorter than the central interval covering both.
                let central_len = u.confidence_interval(0.9).1 - u.confidence_interval(0.9).0;
                assert!(r.length().unwrap() < central_len);
            }
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn mv_gaussian_ellipsoid() {
        let u = Updf::Mv(MvGaussian::isotropic(vec![1.0, 2.0], 1.0));
        match confidence_region(&u, 0.95) {
            ConfidenceRegion::Ellipsoid {
                center, radius_sq, ..
            } => {
                assert_eq!(center, vec![1.0, 2.0]);
                assert!((radius_sq - 5.991).abs() < 0.01);
            }
            other => panic!("expected ellipsoid, got {other:?}"),
        }
    }

    #[test]
    fn interval_length_grows_with_level() {
        let u = Updf::Parametric(Dist::gaussian(0.0, 1.0));
        let l90 = confidence_region(&u, 0.90).length().unwrap();
        let l99 = confidence_region(&u, 0.99).length().unwrap();
        assert!(l99 > l90);
    }
}
