//! Windowed group-by aggregation under uncertainty (§5.1).
//!
//! For each window × group the operator computes the *result
//! distribution* of the aggregate. SUM/AVG over independent uncertain
//! tuples supports every algorithm the paper evaluates (Table 2) plus the
//! closed-form fast paths:
//!
//! - [`Strategy::ExactParametric`] — closed-form convolution when one
//!   exists (all-Gaussian, common-scale Gamma, small mixtures).
//! - [`Strategy::CfInversion`] — exact Gil–Pelaez inversion of the
//!   product CF ("CF (inversion)" row).
//! - [`Strategy::CfApprox`] — cumulant-matched Gaussian / CF-grid mixture
//!   fit ("CF (approx.)" row).
//! - [`Strategy::Clt`] — Central Limit Theorem, near-zero cost.
//! - [`Strategy::HistogramSampling`] — the Ge–Zdonik baseline
//!   ("Histogram" row).
//! - [`Strategy::MaClt`] — §4.4/§5.1 correlated path: the window is a
//!   time series of *certain* observations; identify MA(q) and apply the
//!   CLT for MA processes.
//!
//! COUNT over tuples with existence probabilities is the exact
//! Poisson–binomial distribution (DP). MAX/MIN use order statistics.
//! Tuples whose lineage reveals shared ancestry are handled by the
//! lineage-aware path (see `source of truth` note on [`AggFunc::Sum`]).

use crate::batch::Batch;
use crate::columnar::{Column, Columns};
use crate::lineage::Lineage;
use crate::ops::Operator;
use crate::schema::{DataType, Schema};
use crate::tuple::Tuple;
use crate::updf::{ConversionPolicy, Updf};
use crate::value::{GroupKey, Value};
use crate::window::{CountWindow, TumblingWindow};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;
use ustream_prob::cf::{cf_approx_auto, CfSum};
use ustream_prob::convolve::{clt_sum, exact_sum};
use ustream_prob::dist::{Dist, Gaussian};
use ustream_prob::histogram::{histogram_sum, HistogramPdf};
use ustream_prob::order_stats::OrderStatDist;

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of the uncertain attribute. When input tuples carry a
    /// `<field>__src` provenance column (emitted by lineage-aware joins),
    /// repeated sources are combined *exactly* (coefficient scaling)
    /// instead of being wrongly treated as independent.
    Sum,
    /// Mean (sum scaled by 1/n).
    Avg,
    /// Number of tuples, accounting for existence probabilities
    /// (Poisson–binomial).
    Count,
    Max,
    Min,
}

/// Result-distribution algorithm for SUM/AVG.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Closed form when available, else CF approximation, else CLT.
    Auto,
    /// Only closed-form convolutions; windows without one fall back to CLT.
    ExactParametric,
    /// Exact characteristic-function inversion onto a histogram.
    CfInversion { bins: usize, span_sigmas: f64 },
    /// CF approximation: Gaussian via cumulants, or a 2-component mixture
    /// CF fit when the sum is visibly non-Gaussian.
    CfApprox {
        skew_threshold: f64,
        kurt_threshold: f64,
    },
    /// Plain CLT (moment matching).
    Clt,
    /// Histogram-based sampling baseline [Ge & Zdonik].
    HistogramSampling { buckets: usize, samples: usize },
    /// Correlated time-series path over a *certain* float attribute.
    MaClt { max_order: usize },
}

/// One aggregate to compute.
pub struct AggSpec {
    /// Input attribute (uncertain, except for `MaClt` which reads floats).
    pub field: String,
    pub func: AggFunc,
    /// Output attribute name.
    pub out: String,
    pub strategy: Strategy,
}

/// Optional HAVING clause: emit the group only when
/// P(aggregate `out` > threshold) ≥ min_prob; the probability is attached
/// as float attribute `p_<out>`.
pub struct Having {
    pub out: String,
    pub threshold: f64,
    pub min_prob: f64,
}

/// Windowing mode.
pub enum WindowKind {
    Tumbling(u64),
    Count(usize),
    /// Overlapping event-time windows: every `slide_ms` emit the window
    /// covering the trailing `range_ms` (the queries' `[Range r]` with a
    /// periodic Rstream).
    Sliding {
        range_ms: u64,
        slide_ms: u64,
    },
}

enum WindowState {
    Tumbling(TumblingWindow),
    Count(CountWindow),
    Sliding {
        range_ms: u64,
        slide_ms: u64,
        /// Event time at which the next window closes.
        next_emit: Option<u64>,
        buf: Vec<Tuple>,
    },
}

/// The windowed group-by aggregation operator.
pub struct WindowedAggregate {
    name: String,
    window: WindowState,
    key_fn: Box<dyn Fn(&Tuple) -> GroupKey + Send>,
    /// Set when the group key is a plain field read
    /// ([`Self::keyed_by_field`]) — unlocks the columnar emit path and
    /// key-column routing at exchanges.
    key_field: Option<String>,
    specs: Vec<AggSpec>,
    having: Option<Having>,
    policy: ConversionPolicy,
    out_schema: Arc<Schema>,
    /// Columnar tumbling-window buffer: `(window_start, columns)`.
    /// Invariant: when this is non-empty the row window buffer is empty,
    /// and vice versa — [`Self::hydrate_col_window`] restores the row
    /// form before any row-path processing touches the window.
    col_buf: Option<(u64, Columns)>,
    /// Deterministic rng for the sampling strategies.
    rng: StdRng,
}

impl WindowedAggregate {
    pub fn new(
        window: WindowKind,
        key_fn: impl Fn(&Tuple) -> GroupKey + Send + 'static,
        specs: Vec<AggSpec>,
    ) -> Self {
        assert!(!specs.is_empty(), "need at least one aggregate");
        let mut b = Schema::builder()
            .field("group", DataType::Str)
            .field("window_start", DataType::Time)
            .field("window_end", DataType::Time)
            .field("n_tuples", DataType::Int);
        for s in &specs {
            b = b.field(s.out.clone(), DataType::Uncertain);
            b = b.field(format!("p_{}", s.out), DataType::Float);
        }
        let out_schema = b.build();
        WindowedAggregate {
            name: "aggregate".into(),
            window: match window {
                WindowKind::Tumbling(ms) => WindowState::Tumbling(TumblingWindow::new(ms)),
                WindowKind::Count(n) => WindowState::Count(CountWindow::new(n)),
                WindowKind::Sliding { range_ms, slide_ms } => {
                    assert!(
                        range_ms > 0 && slide_ms > 0,
                        "sliding window sizes must be positive"
                    );
                    WindowState::Sliding {
                        range_ms,
                        slide_ms,
                        next_emit: None,
                        buf: Vec::new(),
                    }
                }
            },
            key_fn: Box::new(key_fn),
            key_field: None,
            specs,
            having: None,
            policy: ConversionPolicy::FitGaussian,
            out_schema,
            col_buf: None,
            rng: StdRng::seed_from_u64(0xA66),
        }
    }

    /// A windowed aggregate whose group key is the value of one input
    /// field — semantically `GROUP BY field`. Behaves exactly like
    /// [`Self::new`] with a field-lookup closure, but because the key is
    /// declared rather than hidden in the closure, columnar batches can
    /// be grouped by reading the key column (and exchanges can route by
    /// it) without materializing tuples.
    pub fn keyed_by_field(
        window: WindowKind,
        field: impl Into<String>,
        specs: Vec<AggSpec>,
    ) -> Self {
        let field = field.into();
        let lookup = field.clone();
        let mut agg = Self::new(
            window,
            move |t: &Tuple| {
                GroupKey::from_value(t.get(&lookup).expect("group key field present"))
                    .expect("group key field must hold a groupable value")
            },
            specs,
        );
        agg.key_field = Some(field);
        agg
    }

    pub fn with_having(mut self, having: Having) -> Self {
        assert!(
            self.specs.iter().any(|s| s.out == having.out),
            "HAVING references unknown aggregate `{}`",
            having.out
        );
        self.having = Some(having);
        self
    }

    pub fn with_policy(mut self, policy: ConversionPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    fn emit_window(&mut self, start: u64, end: u64, tuples: Vec<Tuple>) -> Vec<Tuple> {
        // Group tuples. Group cardinality per window is usually small
        // (the query's GROUP BY domain), where a linear scan over the
        // group list beats a tree map per member; past a small threshold
        // we spill to a BTreeMap index so high-cardinality keys stay
        // O(members·log groups). The final sort restores the
        // deterministic key-ordered output.
        const LINEAR_GROUP_LIMIT: usize = 16;
        let mut groups: Vec<(GroupKey, Vec<Tuple>)> = Vec::new();
        let mut index: Option<BTreeMap<GroupKey, usize>> = None;
        for t in tuples {
            let key = (self.key_fn)(&t);
            let pos = match &index {
                Some(idx) => idx.get(&key).copied(),
                None => groups.iter().position(|(k, _)| *k == key),
            };
            match pos {
                Some(i) => groups[i].1.push(t),
                None => {
                    if index.is_none() && groups.len() >= LINEAR_GROUP_LIMIT {
                        index = Some(
                            groups
                                .iter()
                                .enumerate()
                                .map(|(i, (k, _))| (k.clone(), i))
                                .collect(),
                        );
                    }
                    if let Some(idx) = &mut index {
                        idx.insert(key.clone(), groups.len());
                    }
                    groups.push((key, vec![t]));
                }
            }
        }
        // Aggregates are computed in key order (deterministic rng draw
        // order for the sampling strategies), but the *emitted* rows are
        // ordered by the engine's canonical (ts, content) key below — so
        // one window's rows read the same whether one instance or eight
        // key-partitioned shard instances produced them.
        groups.sort_by(|(a, _), (b, _)| a.cmp(b));

        let mut out = Vec::new();
        'group: for (key, members) in groups {
            let mut values: Vec<Value> = vec![
                Value::Str(format!("{key:?}")),
                Value::Time(start),
                Value::Time(end),
                Value::Int(members.len() as i64),
            ];
            let lineage = Lineage::union_all(members.iter().map(|m| &m.lineage));
            let mut having_probs: Vec<(String, f64)> = Vec::new();

            for spec in &self.specs {
                let dist = compute_aggregate(spec, &members, &self.policy, &mut self.rng);
                let Some(dist) = dist else {
                    continue 'group; // unusable group (e.g. no valid inputs)
                };
                let p_above = self
                    .having
                    .as_ref()
                    .filter(|h| h.out == spec.out)
                    .map(|h| dist.prob_above(h.threshold));
                if let (Some(h), Some(p)) = (self.having.as_ref(), p_above) {
                    if h.out == spec.out && p < h.min_prob {
                        continue 'group;
                    }
                    having_probs.push((spec.out.clone(), p));
                }
                let p_field = p_above.unwrap_or(1.0);
                values.push(Value::from(dist));
                values.push(Value::Float(p_field));
            }

            let _ = having_probs;
            out.push(Tuple::derived(
                self.out_schema.clone(),
                values,
                end,
                1.0,
                lineage,
            ));
        }
        // All rows of one window share ts = window end, so this orders
        // purely by content — the partition-independent canonical order.
        crate::canon::canonical_sort(&mut out);
        out
    }

    /// Emit a closed window held in columnar form: the vectorized
    /// SUM/CLT path when the configuration and column layout allow it,
    /// otherwise hydrate the members and run the row emit.
    fn emit_columns(&mut self, start: u64, end: u64, cols: Columns) -> Vec<Tuple> {
        match self.emit_window_columnar(start, end, &cols) {
            Some(out) => out,
            None => self.emit_window(start, end, cols.into_rows()),
        }
    }

    /// Vectorized window emit: group by reading the key column, then for
    /// each group feed the Gaussian column's `(mean, sd)` pairs straight
    /// into the shared SUM strategy core. Returns `None` when anything
    /// needs the row form — a closure key, a HAVING clause, a non-SUM/AVG
    /// aggregate, a time-series strategy, lineage provenance columns, or
    /// a non-Gaussian payload column. Produces bit-identical output to
    /// [`Self::emit_window`]: same grouping order, same rng draw order,
    /// same scalar call chain.
    fn emit_window_columnar(&mut self, start: u64, end: u64, cols: &Columns) -> Option<Vec<Tuple>> {
        if self.having.is_some() {
            return None;
        }
        let schema = cols.schema();
        let key_idx = schema.index_of(self.key_field.as_ref()?).ok()?;
        let key_col = cols.col(key_idx);
        // Typed key columns yield a group key for every row; a row
        // fallback column may hold ungroupable values (which the row
        // path's key closure would reject by panicking, not dropping).
        if !matches!(
            key_col,
            Column::Int(_) | Column::Time(_) | Column::Str { .. }
        ) {
            return None;
        }
        let mut spec_cols = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            if !matches!(spec.func, AggFunc::Sum | AggFunc::Avg)
                || matches!(spec.strategy, Strategy::MaClt { .. })
                || schema.index_of(&format!("{}__src", spec.field)).is_ok()
            {
                return None;
            }
            let idx = schema.index_of(&spec.field).ok()?;
            cols.col(idx).as_gaussian()?;
            spec_cols.push(idx);
        }

        // Group rows by key into a vec kept sorted by key (binary-search
        // insert: group counts per window are small, and a contiguous vec
        // beats a node-allocating map). Ascending key order is the same
        // order emit_window computes (and draws the rng) in after its
        // sort, and within a group ascending row index is arrival order,
        // so float accumulation order matches too.
        let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
        for r in 0..cols.len() {
            let key = key_col.group_key_at(r).expect("typed key column");
            match groups.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => groups[i].1.push(r),
                Err(i) => groups.insert(i, (key, vec![r])),
            }
        }

        let existence = cols.existence();
        let mut out = Vec::new();
        'group: for (key, rows) in groups {
            let mut values: Vec<Value> = vec![
                Value::Str(format!("{key:?}")),
                Value::Time(start),
                Value::Time(end),
                Value::Int(rows.len() as i64),
            ];
            let lineage = Lineage::union_all(rows.iter().map(|&r| &cols.lineage()[r]));
            for (spec, &idx) in self.specs.iter().zip(&spec_cols) {
                let (mean, sd) = cols.col(idx).as_gaussian().expect("eligibility checked");
                let Some(mut dist) =
                    sum_gaussian_rows(mean, sd, &rows, existence, &spec.strategy, &mut self.rng)
                else {
                    continue 'group;
                };
                if spec.func == AggFunc::Avg {
                    dist = dist.affine(1.0 / rows.len() as f64, 0.0);
                }
                values.push(Value::from(dist));
                values.push(Value::Float(1.0));
            }
            out.push(Tuple::derived(
                self.out_schema.clone(),
                values,
                end,
                1.0,
                lineage,
            ));
        }
        crate::canon::canonical_sort(&mut out);
        Some(out)
    }

    /// Buffer a columnar batch into the tumbling window without
    /// hydrating, returning every window it closes. Mirrors
    /// [`TumblingWindow::push`] row for row: the first row fixes the open
    /// window's start, late rows fold in, and a row whose window starts
    /// later closes the buffer.
    fn push_columns_tumbling(
        &mut self,
        len_ms: u64,
        mut cols: Columns,
    ) -> Vec<(u64, u64, Columns)> {
        let mut closed = Vec::new();
        if cols.is_empty() {
            return closed;
        }
        // One forward scan finds every row that opens a window after the
        // one currently accumulating; rows whose window start is not past
        // the current one (including late rows) fold into it.
        let mut cur = match &self.col_buf {
            Some((start, _)) => *start,
            None => (cols.ts()[0] / len_ms) * len_ms,
        };
        let mut bounds: Vec<(usize, u64)> = Vec::new();
        for (i, &t) in cols.ts().iter().enumerate() {
            let w = (t / len_ms) * len_ms;
            if w > cur {
                bounds.push((i, w));
                cur = w;
            }
        }
        // Split from the back so each segment's rows move exactly once;
        // splitting forward would recopy the whole tail at every boundary.
        let mut segments: Vec<(u64, Columns)> = Vec::with_capacity(bounds.len());
        for &(at, w) in bounds.iter().rev() {
            segments.push((w, cols.split_off(at)));
        }
        // `cols` is now only the head, which continues the open window.
        match &mut self.col_buf {
            Some((_, buf)) => buf.append(cols),
            None => {
                let start = (cols.ts()[0] / len_ms) * len_ms;
                self.col_buf = Some((start, cols));
            }
        }
        // Each later segment closes whatever window was accumulating.
        for (w, seg) in segments.into_iter().rev() {
            let (start, buf) = self.col_buf.take().expect("buffer filled above");
            closed.push((start, start + len_ms, buf));
            self.col_buf = Some((w, seg));
        }
        closed
    }

    /// Replay the columnar buffer into the row tumbling window before any
    /// row-path processing. Replay reproduces the row window's state
    /// exactly: the buffer's first row opens the window at the buffered
    /// start and every later row folds in, so nothing can close here.
    fn hydrate_col_window(&mut self) {
        let Some((_, buf)) = self.col_buf.take() else {
            return;
        };
        let WindowState::Tumbling(w) = &mut self.window else {
            unreachable!("columnar buffer only exists for tumbling windows");
        };
        for t in buf.into_rows() {
            let closed = w.push(t);
            debug_assert!(closed.is_empty(), "replay must not close windows");
        }
    }

    /// Advance the sliding-window state by one tuple, appending every
    /// window it closes to `pending` as `(start, end, members)`. The
    /// single home of the close/evict logic, shared by the tuple-at-a-time
    /// and batched paths.
    fn sliding_push(&mut self, tuple: Tuple, pending: &mut Vec<(u64, u64, Vec<Tuple>)>) {
        let WindowState::Sliding {
            range_ms,
            slide_ms,
            next_emit,
            buf,
        } = &mut self.window
        else {
            unreachable!("sliding_push on a non-sliding window");
        };
        let (range_ms, slide_ms) = (*range_ms, *slide_ms);
        if next_emit.is_none() {
            // First window closes one slide after the first tuple.
            *next_emit = Some((tuple.ts / slide_ms + 1) * slide_ms);
        }
        // Close every slide boundary the new tuple jumps past.
        while next_emit.is_some_and(|boundary| tuple.ts >= boundary) {
            close_sliding_boundary(range_ms, slide_ms, next_emit, buf, pending);
        }
        buf.push(tuple);
    }

    /// Close sliding boundaries an external watermark has passed —
    /// the same trigger [`WindowedAggregate::sliding_push`] applies when
    /// a tuple jumps a boundary, driven by punctuation instead of data.
    fn sliding_advance(&mut self, watermark: u64, pending: &mut Vec<(u64, u64, Vec<Tuple>)>) {
        let WindowState::Sliding {
            range_ms,
            slide_ms,
            next_emit,
            buf,
        } = &mut self.window
        else {
            unreachable!("sliding_advance on a non-sliding window");
        };
        let (range_ms, slide_ms) = (*range_ms, *slide_ms);
        while next_emit.is_some_and(|boundary| boundary <= watermark) {
            close_sliding_boundary(range_ms, slide_ms, next_emit, buf, pending);
        }
    }
}

/// Close the sliding window ending at `next_emit`: collect the grid
/// window's members, advance the boundary by one slide, evict tuples
/// that can never appear in later windows. The one place a sliding
/// boundary closes, shared by the push, watermark, and flush paths.
fn close_sliding_boundary(
    range_ms: u64,
    slide_ms: u64,
    next_emit: &mut Option<u64>,
    buf: &mut Vec<Tuple>,
    pending: &mut Vec<(u64, u64, Vec<Tuple>)>,
) {
    let Some(boundary) = *next_emit else { return };
    let start = boundary.saturating_sub(range_ms);
    let members: Vec<Tuple> = buf
        .iter()
        .filter(|t| t.ts >= start && t.ts < boundary)
        .cloned()
        .collect();
    if !members.is_empty() {
        pending.push((start, boundary, members));
    }
    *next_emit = Some(boundary + slide_ms);
    let keep_from = (boundary + slide_ms).saturating_sub(range_ms);
    buf.retain(|t| t.ts >= keep_from);
}

/// Compute one aggregate's result distribution over the group members.
fn compute_aggregate(
    spec: &AggSpec,
    members: &[Tuple],
    policy: &ConversionPolicy,
    rng: &mut StdRng,
) -> Option<Updf> {
    match spec.func {
        AggFunc::Count => Some(poisson_binomial(members)),
        AggFunc::Sum | AggFunc::Avg => {
            let updf = sum_distribution(spec, members, policy, rng)?;
            if spec.func == AggFunc::Avg {
                Some(updf.affine(1.0 / members.len() as f64, 0.0))
            } else {
                Some(updf)
            }
        }
        AggFunc::Max | AggFunc::Min => {
            let dists = collect_dists(spec, members, policy)?;
            let os = if spec.func == AggFunc::Max {
                OrderStatDist::max_of(dists)
            } else {
                OrderStatDist::min_of(dists)
            };
            Some(Updf::Histogram(os.to_histogram(256)))
        }
    }
}

/// A per-call field-index cursor: resolves `name` against each tuple's
/// schema, re-resolving only when the schema `Arc` changes — one string
/// lookup per schema run instead of per member (the pre-resolved-index
/// discipline of the compiled plan, applied to the emit path).
fn index_cursor(name: &str) -> impl FnMut(&Tuple) -> Option<usize> + '_ {
    let mut cache: Option<(Arc<Schema>, Option<usize>)> = None;
    move |t: &Tuple| match &cache {
        Some((s, idx)) if Arc::ptr_eq(s, t.schema()) => *idx,
        _ => {
            let idx = t.schema().index_of(name).ok();
            cache = Some((t.schema().clone(), idx));
            idx
        }
    }
}

/// Gather the members' attribute distributions as [`Dist`]s (converting
/// sample payloads per policy). Applies existence-probability thinning to
/// the first two moments when existence < 1 would otherwise be ignored.
fn collect_dists(
    spec: &AggSpec,
    members: &[Tuple],
    policy: &ConversionPolicy,
) -> Option<Vec<Dist>> {
    let mut idx_of = index_cursor(&spec.field);
    let mut dists = Vec::with_capacity(members.len());
    for m in members {
        let u = m.at(idx_of(m)?).as_updf()?;
        dists.push(u.to_dist(policy));
    }
    Some(dists)
}

/// Bernoulli-thinned moments: X·B(e) has mean e·μ and variance
/// e·σ² + e(1−e)·μ².
/// SUM over one group's rows of a Gaussian column, indexed by `rows`.
///
/// The existence-thinned branch — the common case once a `Select` has
/// scaled existence below certainty — runs straight off the `(mean, sd)`
/// slices, constructing each `Dist` on the stack and calling the same
/// scalar chain (`thinned_moments`, `Gaussian::from_mean_var`) in the
/// same row order as [`sum_dists_core`], so the result is bit-identical
/// without materializing a `Vec<Dist>` per group. All other branches
/// materialize the dists and defer to [`sum_dists_core`] unchanged.
fn sum_gaussian_rows(
    mean: &[f64],
    sd: &[f64],
    rows: &[usize],
    existence: &[f64],
    strategy: &Strategy,
    rng: &mut StdRng,
) -> Option<Updf> {
    if rows.is_empty() {
        return None;
    }
    if !rows.iter().all(|&r| existence[r] >= 1.0 - 1e-12) {
        let mut m = 0.0;
        let mut v = 0.0;
        for &r in rows {
            let d = Dist::Gaussian(Gaussian::new(mean[r], sd[r]));
            let (tm, tv) = thinned_moments(&d, existence[r]);
            m += tm;
            v += tv;
        }
        return Some(Updf::Parametric(Dist::Gaussian(Gaussian::from_mean_var(
            m,
            v.max(1e-18),
        ))));
    }
    let dists: Vec<Dist> = rows
        .iter()
        .map(|&r| Dist::Gaussian(Gaussian::new(mean[r], sd[r])))
        .collect();
    let ex: Vec<f64> = rows.iter().map(|&r| existence[r]).collect();
    sum_dists_core(dists, &ex, strategy, rng)
}

fn thinned_moments(d: &Dist, existence: f64) -> (f64, f64) {
    let (mu, var) = (d.mean(), d.variance());
    (
        existence * mu,
        existence * var + existence * (1.0 - existence) * mu * mu,
    )
}

/// SUM result distribution under the chosen strategy.
fn sum_distribution(
    spec: &AggSpec,
    members: &[Tuple],
    policy: &ConversionPolicy,
    rng: &mut StdRng,
) -> Option<Updf> {
    if members.is_empty() {
        return None;
    }

    // Correlated-time-series path: certain float attribute.
    if let Strategy::MaClt { max_order } = spec.strategy {
        let mut idx_of = index_cursor(&spec.field);
        let mut pairs: Vec<(u64, f64)> = members
            .iter()
            .map(|m| Some((m.ts, m.at(idx_of(m)?).as_float()?)))
            .collect::<Option<Vec<_>>>()?;
        pairs.sort_by_key(|&(ts, _)| ts);
        let xs: Vec<f64> = pairs.into_iter().map(|(_, x)| x).collect();
        if xs.len() < 2 {
            return Some(Updf::Parametric(Dist::gaussian(xs[0], 1e-9)));
        }
        let res = ustream_ts::clt::ma_clt_pipeline(&xs, max_order, 3.0);
        let n = xs.len() as f64;
        let sum_g = Gaussian::from_mean_var(
            res.mean_dist.mean() * n,
            (res.mean_dist.variance() * n * n).max(1e-18),
        );
        return Some(Updf::Parametric(Dist::Gaussian(sum_g)));
    }

    let dists = collect_dists(spec, members, policy)?;

    // Lineage-aware exact combination: members carrying a provenance
    // column `<field>__src` that repeats are the *same* base variable; a
    // source appearing c times contributes c·X, not c independent copies.
    let src_field = format!("{}__src", spec.field);
    if members[0].get(&src_field).is_ok() {
        return lineage_aware_sum(&src_field, members, &dists);
    }

    let existences: Vec<f64> = members.iter().map(|m| m.existence).collect();
    sum_dists_core(dists, &existences, &spec.strategy, rng)
}

/// Strategy dispatch over per-member distributions + existence
/// probabilities — the SUM core shared by the row emit path and the
/// columnar emit path. The time-series (`MaClt`) and lineage-aware
/// provenance cases are resolved by [`sum_distribution`] before reaching
/// here.
fn sum_dists_core(
    dists: Vec<Dist>,
    existences: &[f64],
    strategy: &Strategy,
    rng: &mut StdRng,
) -> Option<Updf> {
    if dists.is_empty() {
        return None;
    }
    // Existence-probability thinning (uncommon path; moment-based).
    if !existences.iter().all(|&e| e >= 1.0 - 1e-12) {
        let mut mean = 0.0;
        let mut var = 0.0;
        for (&e, d) in existences.iter().zip(&dists) {
            let (tm, tv) = thinned_moments(d, e);
            mean += tm;
            var += tv;
        }
        return Some(Updf::Parametric(Dist::Gaussian(Gaussian::from_mean_var(
            mean,
            var.max(1e-18),
        ))));
    }

    let updf = match strategy {
        Strategy::Auto => match exact_sum(&dists) {
            Some(d) => Updf::Parametric(d),
            None => Updf::Parametric(cf_approx_auto(&CfSum::new(dists), 0.3, 1.0)),
        },
        Strategy::ExactParametric => match exact_sum(&dists) {
            Some(d) => Updf::Parametric(d),
            None => Updf::Parametric(Dist::Gaussian(clt_sum(&dists))),
        },
        Strategy::CfInversion { bins, span_sigmas } => {
            let sum = CfSum::new(dists);
            Updf::Histogram(sum.invert_to_histogram(*bins, *span_sigmas))
        }
        Strategy::CfApprox {
            skew_threshold,
            kurt_threshold,
        } => Updf::Parametric(cf_approx_auto(
            &CfSum::new(dists),
            *skew_threshold,
            *kurt_threshold,
        )),
        Strategy::Clt => Updf::Parametric(Dist::Gaussian(clt_sum(&dists))),
        Strategy::HistogramSampling { buckets, samples } => {
            Updf::Histogram(histogram_sum(&dists, *buckets, *samples, 6.0, rng))
        }
        Strategy::MaClt { .. } => unreachable!("handled by the row layer"),
    };
    Some(updf)
}

/// Exact sum when repeated provenance ids are present: group by source,
/// scale each distinct source's distribution by its multiplicity, then
/// sum the (now independent) scaled terms.
fn lineage_aware_sum(src_field: &str, members: &[Tuple], dists: &[Dist]) -> Option<Updf> {
    let mut idx_of = index_cursor(src_field);
    let mut by_src: BTreeMap<i64, (usize, Dist)> = BTreeMap::new();
    for (m, d) in members.iter().zip(dists) {
        let src = m.at(idx_of(m)?).as_int()?;
        by_src
            .entry(src)
            .and_modify(|(c, _)| *c += 1)
            .or_insert((1, d.clone()));
    }
    let scaled: Vec<Dist> = by_src
        .into_values()
        .map(|(c, d)| d.affine(c as f64, 0.0))
        .collect();
    let result = match exact_sum(&scaled) {
        Some(d) => d,
        None => Dist::Gaussian(clt_sum(&scaled)),
    };
    Some(Updf::Parametric(result))
}

/// Exact Poisson–binomial COUNT distribution from existence
/// probabilities: DP over P(k successes), stored as an integer-grid
/// histogram (bin i ↔ count i).
fn poisson_binomial(members: &[Tuple]) -> Updf {
    let probs: Vec<f64> = members
        .iter()
        .map(|m| m.existence.clamp(0.0, 1.0))
        .collect();
    let n = probs.len();
    let mut pmf = vec![0.0f64; n + 1];
    pmf[0] = 1.0;
    for &p in &probs {
        for k in (1..=n).rev() {
            pmf[k] = pmf[k] * (1.0 - p) + pmf[k - 1] * p;
        }
        pmf[0] *= 1.0 - p;
    }
    Updf::Histogram(HistogramPdf::from_masses(-0.5, 1.0, pmf))
}

impl Operator for WindowedAggregate {
    fn name(&self) -> &str {
        &self.name
    }

    /// Event-time window aggregation shards by group key: tumbling and
    /// sliding window boundaries are grid-aligned (`k·len`, `k·slide`),
    /// so each group's windows have identical spans and members no
    /// matter which other groups share the operator instance — sliding
    /// windows joined the keyed club when the flush remainder stopped
    /// deriving its span from the cross-group union of leftover tuples
    /// (every emitted window is now a pure function of tuple
    /// timestamps). Two configurations still pin the whole stream to one
    /// instance:
    ///
    /// - count windows (window membership depends on the global arrival
    ///   interleaving across groups),
    /// - sampling strategies (draw order from the shared rng depends on
    ///   which groups coexist in the instance).
    fn partition_keys(&self) -> crate::ops::Partitioning {
        let sampling = self
            .specs
            .iter()
            .any(|s| matches!(s.strategy, Strategy::HistogramSampling { .. }));
        match (&self.window, sampling) {
            (WindowState::Tumbling(_) | WindowState::Sliding { .. }, false) => {
                crate::ops::Partitioning::Key
            }
            _ => crate::ops::Partitioning::Global,
        }
    }

    fn partition_key(&self, _port: usize, tuple: &Tuple) -> Option<GroupKey> {
        Some((self.key_fn)(tuple))
    }

    fn partition_key_field(&self) -> Option<&str> {
        match self.partition_keys() {
            crate::ops::Partitioning::Key => self.key_field.as_deref(),
            _ => None,
        }
    }

    fn process(&mut self, _port: usize, tuple: Tuple) -> Vec<Tuple> {
        self.hydrate_col_window();
        match &mut self.window {
            WindowState::Tumbling(w) => {
                let batches = w.push(tuple);
                let mut out = Vec::new();
                for b in batches {
                    out.extend(self.emit_window(b.start, b.end, b.tuples));
                }
                out
            }
            WindowState::Count(w) => match w.push(tuple) {
                Some(batch) => {
                    let (start, end) = batch_span(&batch);
                    self.emit_window(start, end, batch)
                }
                None => Vec::new(),
            },
            WindowState::Sliding { .. } => {
                let mut pending: Vec<(u64, u64, Vec<Tuple>)> = Vec::new();
                self.sliding_push(tuple, &mut pending);
                let mut out = Vec::new();
                for (start, end, members) in pending {
                    out.extend(self.emit_window(start, end, members));
                }
                out
            }
        }
    }

    /// Batched path: buffer the whole batch into the window state with a
    /// single window-kind dispatch, collect every closed window, then run
    /// the (expensive, shared) emit step once per closed window. Sliding
    /// windows take the same bulk shape: one shared pending list across
    /// the batch instead of a per-tuple output `Vec` per member.
    fn process_batch(&mut self, _port: usize, mut batch: Batch) -> Batch {
        if batch.is_columnar() {
            // Columnar fast path: tumbling windows buffer columns as-is
            // (no per-tuple hydration), provided the row window is empty
            // and the batch extends the buffered schema run.
            if let WindowState::Tumbling(w) = &self.window {
                let schema_ok = match (&self.col_buf, batch.columns()) {
                    (Some((_, buf)), Some(c)) => Arc::ptr_eq(buf.schema(), c.schema()),
                    _ => true,
                };
                if w.pending_len() == 0 && schema_ok {
                    let len_ms = w.len_ms();
                    let cols = batch.take_columns().expect("columnar batch");
                    let mut out = Batch::new();
                    let __closed = self.push_columns_tumbling(len_ms, cols);
                    for (start, end, wcols) in __closed {
                        out.extend(self.emit_columns(start, end, wcols));
                    }
                    return out;
                }
            }
            batch.hydrate();
        }
        self.hydrate_col_window();
        let mut closed: Vec<(u64, u64, Vec<Tuple>)> = Vec::new();
        match &mut self.window {
            WindowState::Tumbling(w) => {
                for t in batch {
                    for b in w.push(t) {
                        closed.push((b.start, b.end, b.tuples));
                    }
                }
            }
            WindowState::Count(w) => {
                for t in batch {
                    if let Some(b) = w.push(t) {
                        let (start, end) = batch_span(&b);
                        closed.push((start, end, b));
                    }
                }
            }
            WindowState::Sliding { .. } => {
                for t in batch {
                    self.sliding_push(t, &mut closed);
                }
            }
        }
        let mut out = Batch::new();
        for (start, end, tuples) in closed {
            out.extend(self.emit_window(start, end, tuples));
        }
        out
    }

    fn flush(&mut self) -> Vec<Tuple> {
        if let Some((start, buf)) = self.col_buf.take() {
            let WindowState::Tumbling(w) = &self.window else {
                unreachable!("columnar buffer only exists for tumbling windows");
            };
            let end = start + w.len_ms();
            return self.emit_columns(start, end, buf);
        }
        match &mut self.window {
            WindowState::Tumbling(w) => match w.flush() {
                Some(b) => self.emit_window(b.start, b.end, b.tuples),
                None => Vec::new(),
            },
            WindowState::Count(w) => match w.flush() {
                Some(batch) => {
                    let (start, end) = batch_span(&batch);
                    self.emit_window(start, end, batch)
                }
                None => Vec::new(),
            },
            // Keep closing grid-aligned slide boundaries until eviction
            // drains the buffer, so every emitted window — including at
            // end of stream — is a `[b − range, b)` window whose span and
            // membership are pure functions of tuple timestamps. (The
            // remainder used to be emitted as one window spanning the
            // union of *all* groups' leftover tuples, which coupled each
            // group's output to whichever other groups shared the
            // instance and made sliding windows impossible to
            // key-partition.)
            WindowState::Sliding { .. } => {
                let mut pending: Vec<(u64, u64, Vec<Tuple>)> = Vec::new();
                {
                    let WindowState::Sliding {
                        range_ms,
                        slide_ms,
                        next_emit,
                        buf,
                    } = &mut self.window
                    else {
                        unreachable!()
                    };
                    let (range_ms, slide_ms) = (*range_ms, *slide_ms);
                    while !buf.is_empty() {
                        close_sliding_boundary(range_ms, slide_ms, next_emit, buf, &mut pending);
                    }
                    *next_emit = None;
                }
                let mut out = Vec::new();
                for (start, end, members) in pending {
                    out.extend(self.emit_window(start, end, members));
                }
                out
            }
        }
    }

    /// Tumbling and sliding event-time windows close on punctuation:
    /// `watermark` promises no future tuple with `ts < watermark`, so
    /// every window ending at or before it can emit now. Count windows
    /// ignore watermarks (membership is arrival-count-based).
    fn advance_watermark(&mut self, watermark: u64) -> Vec<Tuple> {
        if let Some((start, _)) = &self.col_buf {
            let WindowState::Tumbling(w) = &self.window else {
                unreachable!("columnar buffer only exists for tumbling windows");
            };
            // Same trigger as TumblingWindow::close_through.
            if start + w.len_ms() > watermark {
                return Vec::new();
            }
            let (start, buf) = self.col_buf.take().expect("just matched");
            let end = start + w.len_ms();
            return self.emit_columns(start, end, buf);
        }
        match &mut self.window {
            WindowState::Tumbling(w) => match w.close_through(watermark) {
                Some(b) => self.emit_window(b.start, b.end, b.tuples),
                None => Vec::new(),
            },
            WindowState::Count(_) => Vec::new(),
            WindowState::Sliding { .. } => {
                let mut pending: Vec<(u64, u64, Vec<Tuple>)> = Vec::new();
                self.sliding_advance(watermark, &mut pending);
                let mut out = Vec::new();
                for (start, end, members) in pending {
                    out.extend(self.emit_window(start, end, members));
                }
                out
            }
        }
    }
}

fn batch_span(batch: &[Tuple]) -> (u64, u64) {
    let start = batch.iter().map(|t| t.ts).min().unwrap_or(0);
    let end = batch.iter().map(|t| t.ts).max().unwrap_or(0);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .field("area", DataType::Int)
            .field("weight", DataType::Uncertain)
            .build()
    }

    fn tup(ts: u64, area: i64, mean: f64, sd: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![
                Value::from(area),
                Value::from(Updf::Parametric(Dist::gaussian(mean, sd))),
            ],
            ts,
        )
    }

    fn sum_spec(strategy: Strategy) -> Vec<AggSpec> {
        vec![AggSpec {
            field: "weight".into(),
            func: AggFunc::Sum,
            out: "total".into(),
            strategy,
        }]
    }

    fn agg(strategy: Strategy) -> WindowedAggregate {
        WindowedAggregate::new(
            WindowKind::Tumbling(1000),
            |t| GroupKey::from_value(t.get("area").unwrap()).unwrap(),
            sum_spec(strategy),
        )
    }

    #[test]
    fn gaussian_sum_per_group() {
        let mut a = agg(Strategy::ExactParametric);
        assert!(a.process(0, tup(10, 1, 5.0, 1.0)).is_empty());
        assert!(a.process(0, tup(20, 1, 7.0, 1.0)).is_empty());
        assert!(a.process(0, tup(30, 2, 100.0, 2.0)).is_empty());
        // Next window closes the first.
        let out = a.process(0, tup(1500, 1, 0.0, 1.0));
        assert_eq!(out.len(), 2, "two groups in closed window");
        // Rows emit in canonical (ts, content) order, not key order; find
        // the group-1 row by its field.
        let g1 = out
            .iter()
            .find(|t| t.str("group").unwrap() == "Int(1)")
            .expect("group 1 present");
        let total = g1.updf("total").unwrap();
        assert!((total.mean() - 12.0).abs() < 1e-9);
        assert!((total.variance() - 2.0).abs() < 1e-9);
        assert_eq!(g1.int("n_tuples").unwrap(), 2);
    }

    #[test]
    fn strategies_agree_on_gaussian_window() {
        let strategies: Vec<Strategy> = vec![
            Strategy::ExactParametric,
            Strategy::Clt,
            Strategy::CfApprox {
                skew_threshold: 0.3,
                kurt_threshold: 1.0,
            },
            Strategy::CfInversion {
                bins: 256,
                span_sigmas: 8.0,
            },
            Strategy::HistogramSampling {
                buckets: 100,
                samples: 20_000,
            },
        ];
        for strat in strategies {
            let label = format!("{strat:?}");
            let mut a = agg(strat);
            for i in 0..20 {
                a.process(0, tup(10 + i, 1, 2.0, 0.5));
            }
            let out = a.flush();
            assert_eq!(out.len(), 1, "{label}");
            let total = out[0].updf("total").unwrap();
            assert!(
                (total.mean() - 40.0).abs() < 0.3,
                "{label}: mean {}",
                total.mean()
            );
            assert!(
                (total.variance() - 20.0 * 0.25).abs() < 0.6,
                "{label}: var {}",
                total.variance()
            );
        }
    }

    #[test]
    fn high_cardinality_grouping_spills_to_index() {
        // More groups than the linear-scan threshold: the index spill
        // path must still route every member to its group, in key order.
        let mut a = agg(Strategy::ExactParametric);
        for i in 0..200u64 {
            a.process(0, tup(i, (i % 50) as i64, (i % 50) as f64, 1.0));
        }
        let out = a.flush();
        assert_eq!(out.len(), 50, "one output row per distinct group");
        let groups: Vec<String> = out
            .iter()
            .map(|t| t.str("group").unwrap().to_string())
            .collect();
        let expected: Vec<String> = (0..50).map(|i| format!("Int({i})")).collect();
        assert_eq!(groups, expected, "deterministic key-ordered output");
        for t in &out {
            assert_eq!(t.int("n_tuples").unwrap(), 4, "4 members per group");
        }
    }

    #[test]
    fn avg_is_scaled_sum() {
        let mut a = WindowedAggregate::new(
            WindowKind::Tumbling(1000),
            |_| GroupKey::Unit,
            vec![AggSpec {
                field: "weight".into(),
                func: AggFunc::Avg,
                out: "avg_w".into(),
                strategy: Strategy::ExactParametric,
            }],
        );
        a.process(0, tup(1, 1, 10.0, 1.0));
        a.process(0, tup(2, 1, 20.0, 1.0));
        let out = a.flush();
        let avg = out[0].updf("avg_w").unwrap();
        assert!((avg.mean() - 15.0).abs() < 1e-9);
        assert!((avg.variance() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn count_poisson_binomial() {
        let mut a = WindowedAggregate::new(
            WindowKind::Tumbling(1000),
            |_| GroupKey::Unit,
            vec![AggSpec {
                field: "weight".into(),
                func: AggFunc::Count,
                out: "cnt".into(),
                strategy: Strategy::Auto,
            }],
        );
        let mut t1 = tup(1, 1, 0.0, 1.0);
        t1.existence = 0.5;
        let mut t2 = tup(2, 1, 0.0, 1.0);
        t2.existence = 0.5;
        a.process(0, t1);
        a.process(0, t2);
        let out = a.flush();
        let cnt = out[0].updf("cnt").unwrap();
        // Binomial(2, 0.5): mean 1, P(X>1.5) = 0.25.
        assert!((cnt.mean() - 1.0).abs() < 1e-9);
        assert!((cnt.prob_above(1.5) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn max_order_statistics() {
        let mut a = WindowedAggregate::new(
            WindowKind::Tumbling(1000),
            |_| GroupKey::Unit,
            vec![AggSpec {
                field: "weight".into(),
                func: AggFunc::Max,
                out: "mx".into(),
                strategy: Strategy::Auto,
            }],
        );
        a.process(0, tup(1, 1, 0.0, 1.0));
        a.process(0, tup(2, 1, 0.0, 1.0));
        let out = a.flush();
        let mx = out[0].updf("mx").unwrap();
        // E[max of two std normals] = 1/√π ≈ 0.564.
        assert!((mx.mean() - 0.5642).abs() < 0.02, "mean {}", mx.mean());
    }

    #[test]
    fn having_filters_groups_and_reports_probability() {
        let mut a = agg(Strategy::ExactParametric).with_having(Having {
            out: "total".into(),
            threshold: 200.0,
            min_prob: 0.5,
        });
        // Group 1: total N(210, √2) ⇒ P(>200) ≈ 1. Group 2: N(50,..) ⇒ 0.
        a.process(0, tup(1, 1, 105.0, 1.0));
        a.process(0, tup(2, 1, 105.0, 1.0));
        a.process(0, tup(3, 2, 25.0, 1.0));
        a.process(0, tup(4, 2, 25.0, 1.0));
        let out = a.flush();
        assert_eq!(out.len(), 1, "only the violating group passes HAVING");
        let p = out[0].float("p_total").unwrap();
        assert!(p > 0.99);
    }

    #[test]
    fn existence_thinning_adjusts_moments() {
        let mut a = agg(Strategy::Clt);
        let mut t1 = tup(1, 1, 10.0, 1.0);
        t1.existence = 0.5;
        a.process(0, t1);
        a.process(0, tup(2, 1, 10.0, 1.0));
        let out = a.flush();
        let total = out[0].updf("total").unwrap();
        // mean = 0.5·10 + 10 = 15; var = (0.5·1 + 0.25·100) + 1 = 26.5
        assert!((total.mean() - 15.0).abs() < 1e-9);
        assert!((total.variance() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn lineage_aware_sum_scales_repeated_sources() {
        let s = Schema::builder()
            .field("area", DataType::Int)
            .field("weight", DataType::Uncertain)
            .field("weight__src", DataType::Int)
            .build();
        let mk = |ts: u64, src: i64, mean: f64| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::from(1i64),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 1.0))),
                    Value::from(src),
                ],
                ts,
            )
        };
        let mut a = WindowedAggregate::new(
            WindowKind::Tumbling(1000),
            |_| GroupKey::Unit,
            sum_spec(Strategy::Auto),
        );
        // Source 7 appears twice: contributes 2X (var 4), NOT X+X' (var 2).
        a.process(0, mk(1, 7, 5.0));
        a.process(0, mk(2, 7, 5.0));
        a.process(0, mk(3, 8, 3.0));
        let out = a.flush();
        let total = out[0].updf("total").unwrap();
        assert!((total.mean() - 13.0).abs() < 1e-9);
        assert!(
            (total.variance() - (4.0 + 1.0)).abs() < 1e-9,
            "var {}",
            total.variance()
        );
    }

    #[test]
    fn ma_clt_strategy_on_certain_series() {
        let s = Schema::builder()
            .field("area", DataType::Int)
            .field("v", DataType::Float)
            .build();
        let series = ustream_ts::generator::ma_series(&[0.8], 1.0, 400, 77);
        let mut a = WindowedAggregate::new(
            WindowKind::Count(400),
            |_| GroupKey::Unit,
            vec![AggSpec {
                field: "v".into(),
                func: AggFunc::Avg,
                out: "vbar".into(),
                strategy: Strategy::MaClt { max_order: 3 },
            }],
        );
        let mut out = Vec::new();
        for (i, &x) in series.iter().enumerate() {
            out.extend(a.process(
                0,
                Tuple::new(s.clone(), vec![Value::from(1i64), Value::from(x)], i as u64),
            ));
        }
        assert_eq!(out.len(), 1);
        let vbar = out[0].updf("vbar").unwrap();
        let sample_mean = series.iter().sum::<f64>() / 400.0;
        assert!((vbar.mean() - sample_mean).abs() < 1e-9);
        // Variance must exceed the naive iid estimate (positive θ).
        let naive = ustream_ts::clt::iid_clt_mean(&series);
        assert!(vbar.variance() > naive.variance());
    }

    #[test]
    fn sliding_windows_overlap() {
        // Range 2000 ms, slide 1000 ms: a tuple at t=500 appears in the
        // windows closing at 1000 and 2000.
        let mut a = WindowedAggregate::new(
            WindowKind::Sliding {
                range_ms: 2000,
                slide_ms: 1000,
            },
            |_| GroupKey::Unit,
            sum_spec(Strategy::ExactParametric),
        );
        let mut out = Vec::new();
        out.extend(a.process(0, tup(500, 1, 10.0, 1.0)));
        out.extend(a.process(0, tup(1500, 1, 20.0, 1.0)));
        out.extend(a.process(0, tup(2500, 1, 40.0, 1.0)));
        out.extend(a.process(0, tup(5000, 1, 0.0, 1.0))); // closes 3000/4000
        out.extend(a.flush()); // grid windows @6000/@7000 cover t=5000
                               // Window @1000: {500} → 10. @2000: {500,1500} → 30. @3000:
                               // {1500,2500} → 60. @4000: {2500} → 40. Flush: @6000 {5000}
                               // → 0, @7000 {5000} → 0 (every window grid-aligned).
        let sums: Vec<f64> = out
            .iter()
            .map(|t| t.updf("total").unwrap().mean())
            .collect();
        assert_eq!(sums.len(), 6, "sums: {sums:?}");
        for (got, want) in sums.iter().zip([10.0, 30.0, 60.0, 40.0, 0.0, 0.0]) {
            assert!((got - want).abs() < 1e-9, "sums: {sums:?}");
        }
    }

    #[test]
    fn sliding_batched_path_matches_per_tuple() {
        // The sliding bulk path must reproduce per-tuple processing
        // exactly: same windows, same order, same flush remainder.
        let mk_agg = || {
            WindowedAggregate::new(
                WindowKind::Sliding {
                    range_ms: 2000,
                    slide_ms: 500,
                },
                |t| GroupKey::from_value(t.get("area").unwrap()).unwrap(),
                sum_spec(Strategy::ExactParametric),
            )
        };
        let tuples: Vec<Tuple> = (0..120u64)
            .map(|i| tup(i * 137, (i % 3) as i64, i as f64, 1.0))
            .collect();

        let mut per_tuple = mk_agg();
        let mut expected = Vec::new();
        for t in tuples.clone() {
            expected.extend(per_tuple.process(0, t));
        }
        expected.extend(per_tuple.flush());

        let mut batched = mk_agg();
        let mut got = Vec::new();
        for chunk in tuples.chunks(7) {
            got.extend(batched.process_batch(0, Batch::from(chunk.to_vec())));
        }
        got.extend(batched.flush());

        assert_eq!(expected.len(), got.len());
        for (a, b) in expected.iter().zip(&got) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.str("group").unwrap(), b.str("group").unwrap());
            assert_eq!(
                a.get("window_start").unwrap().as_time(),
                b.get("window_start").unwrap().as_time()
            );
            assert_eq!(a.int("n_tuples").unwrap(), b.int("n_tuples").unwrap());
            let (ua, ub) = (a.updf("total").unwrap(), b.updf("total").unwrap());
            assert_eq!(ua.mean().to_bits(), ub.mean().to_bits());
            assert_eq!(ua.variance().to_bits(), ub.variance().to_bits());
        }
    }

    #[test]
    fn sliding_flush_emits_remainder() {
        let mut a = WindowedAggregate::new(
            WindowKind::Sliding {
                range_ms: 1000,
                slide_ms: 1000,
            },
            |_| GroupKey::Unit,
            sum_spec(Strategy::ExactParametric),
        );
        assert!(a.process(0, tup(100, 1, 5.0, 1.0)).is_empty());
        let out = a.flush();
        assert_eq!(out.len(), 1);
        assert!((out[0].updf("total").unwrap().mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn watermark_closes_tumbling_window_like_the_closing_tuple() {
        let mut a = agg(Strategy::ExactParametric);
        assert!(a.process(0, tup(10, 1, 5.0, 1.0)).is_empty());
        assert!(a.process(0, tup(20, 1, 7.0, 1.0)).is_empty());
        // Watermark short of the window end: nothing closes (a tuple at
        // ts 999 would not have closed it either).
        assert!(a.advance_watermark(999).is_empty());
        // Watermark at the end closes it, exactly as a ts=1000 tuple
        // arriving elsewhere in the stream would have.
        let out = a.advance_watermark(1000);
        assert_eq!(out.len(), 1);
        let total = out[0].updf("total").unwrap();
        assert!((total.mean() - 12.0).abs() < 1e-9);
        assert_eq!(out[0].ts, 1000);
        // Idempotent: no window is open any more.
        assert!(a.advance_watermark(5000).is_empty());
        // The next tuple starts a fresh window.
        assert!(a.process(0, tup(5100, 1, 1.0, 1.0)).is_empty());
        assert_eq!(a.flush().len(), 1);
    }

    #[test]
    fn watermark_closes_sliding_boundaries() {
        let mut a = WindowedAggregate::new(
            WindowKind::Sliding {
                range_ms: 2000,
                slide_ms: 1000,
            },
            |_| GroupKey::Unit,
            sum_spec(Strategy::ExactParametric),
        );
        assert!(a.process(0, tup(500, 1, 10.0, 1.0)).is_empty());
        let out = a.advance_watermark(2000);
        // Boundaries 1000 and 2000 both close: {500} appears in each.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts, 1000);
        assert_eq!(out[1].ts, 2000);
        // Punctuation-closed windows match the tuple-closed/flushed ones:
        // nothing is left for flush (the t=500 tuple was evicted).
        assert!(a.flush().is_empty());
    }

    #[test]
    fn sliding_windows_partition_by_key() {
        let sliding = || {
            WindowedAggregate::new(
                WindowKind::Sliding {
                    range_ms: 2000,
                    slide_ms: 1000,
                },
                |t: &Tuple| GroupKey::from_value(t.get("area").unwrap()).unwrap(),
                sum_spec(Strategy::ExactParametric),
            )
        };
        assert_eq!(
            sliding().partition_keys(),
            crate::ops::Partitioning::Key,
            "grid-aligned sliding windows shard by group key"
        );
        let sampling = WindowedAggregate::new(
            WindowKind::Sliding {
                range_ms: 2000,
                slide_ms: 1000,
            },
            |_| GroupKey::Unit,
            sum_spec(Strategy::HistogramSampling {
                buckets: 10,
                samples: 100,
            }),
        );
        assert_eq!(
            sampling.partition_keys(),
            crate::ops::Partitioning::Global,
            "shared-rng sampling still pins"
        );
    }

    /// Per-group output of a keyed sliding window must be a pure function
    /// of that group's own tuples — the property key-partitioning relies
    /// on. Run the same per-group streams alone and mixed; the rows for
    /// each group must be identical.
    #[test]
    fn sliding_per_group_output_is_independent_of_cohabiting_groups() {
        let mk = || {
            WindowedAggregate::new(
                WindowKind::Sliding {
                    range_ms: 2000,
                    slide_ms: 500,
                },
                |t: &Tuple| GroupKey::from_value(t.get("area").unwrap()).unwrap(),
                sum_spec(Strategy::ExactParametric),
            )
        };
        let tuples: Vec<Tuple> = (0..60u64)
            .map(|i| tup(i * 171, (i % 3) as i64, i as f64, 1.0))
            .collect();
        let render = |ts: Vec<Tuple>, group: &str| -> Vec<(u64, u64, u64, i64, u64)> {
            ts.iter()
                .filter(|t| t.str("group").unwrap() == group)
                .map(|t| {
                    (
                        t.get("window_start").unwrap().as_time().unwrap(),
                        t.get("window_end").unwrap().as_time().unwrap(),
                        t.ts,
                        t.int("n_tuples").unwrap(),
                        t.updf("total").unwrap().mean().to_bits(),
                    )
                })
                .collect()
        };
        let mut mixed = mk();
        let mut mixed_out = Vec::new();
        for t in tuples.clone() {
            mixed_out.extend(mixed.process(0, t));
        }
        mixed_out.extend(mixed.flush());
        for g in 0..3i64 {
            let mut alone = mk();
            let mut alone_out = Vec::new();
            for t in tuples.iter().filter(|t| t.int("area").unwrap() == g) {
                alone_out.extend(alone.process(0, t.clone()));
            }
            alone_out.extend(alone.flush());
            let group = format!("Int({g})");
            assert_eq!(
                render(mixed_out.clone(), &group),
                render(alone_out, &group),
                "group {g} must not observe its cohabitants"
            );
        }
    }

    fn mixed_existence_feed(n: u64) -> Vec<Tuple> {
        let s = schema();
        (0..n)
            .map(|i| {
                let mut t = Tuple::new(
                    s.clone(),
                    vec![
                        Value::from((i % 4) as i64),
                        Value::from(Updf::Parametric(Dist::gaussian(
                            (i % 10) as f64,
                            1.0 + (i % 3) as f64 * 0.25,
                        ))),
                    ],
                    i * 7,
                );
                // Mix certain and thinned tuples (exercises both SUM
                // branches of the shared core).
                if i % 3 == 0 {
                    t.existence = 0.6 + (i % 5) as f64 * 0.05;
                }
                t
            })
            .collect()
    }

    fn keyed(strategy: Strategy) -> WindowedAggregate {
        WindowedAggregate::keyed_by_field(WindowKind::Tumbling(100), "area", sum_spec(strategy))
    }

    fn run_chunked(mut a: WindowedAggregate, feed: &[Tuple], columnar: bool) -> Vec<Tuple> {
        let mut out = Vec::new();
        for chunk in feed.chunks(13) {
            let mut b = Batch::from(chunk.to_vec());
            if columnar {
                assert!(b.columnarize());
            }
            out.extend(a.process_batch(0, b));
        }
        out.extend(a.flush());
        out
    }

    #[test]
    fn columnar_aggregate_is_bit_identical_to_rows() {
        for strategy in [Strategy::Clt, Strategy::ExactParametric, Strategy::Auto] {
            let label = format!("{strategy:?}");
            let feed = mixed_existence_feed(120);
            let rows = run_chunked(keyed(strategy.clone()), &feed, false);
            let cols = run_chunked(keyed(strategy), &feed, true);
            assert_eq!(rows.len(), cols.len(), "{label}");
            assert!(!rows.is_empty(), "{label}: windows must close");
            for (a, b) in rows.iter().zip(&cols) {
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "{label}");
            }
        }
    }

    #[test]
    fn columnar_buffer_interops_with_row_batches() {
        // Alternate columnar and row batches mid-stream: the buffered
        // columns must replay into the row window losslessly.
        let feed = mixed_existence_feed(90);
        let expected = run_chunked(keyed(Strategy::Clt), &feed, false);
        let mut a = keyed(Strategy::Clt);
        let mut got = Vec::new();
        for (i, chunk) in feed.chunks(13).enumerate() {
            let mut b = Batch::from(chunk.to_vec());
            if i % 2 == 0 {
                assert!(b.columnarize());
            }
            got.extend(a.process_batch(0, b));
        }
        got.extend(a.flush());
        assert_eq!(expected.len(), got.len());
        for (a, b) in expected.iter().zip(&got) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn columnar_ineligible_specs_hydrate_and_match() {
        // Count aggregates and HAVING clauses have no columnar kernel:
        // the batch hydrates and the row emit runs — outputs identical.
        let mk = || {
            WindowedAggregate::keyed_by_field(
                WindowKind::Tumbling(100),
                "area",
                vec![AggSpec {
                    field: "weight".into(),
                    func: AggFunc::Count,
                    out: "cnt".into(),
                    strategy: Strategy::Auto,
                }],
            )
        };
        let feed = mixed_existence_feed(60);
        let rows = run_chunked(mk(), &feed, false);
        let cols = run_chunked(mk(), &feed, true);
        assert_eq!(rows.len(), cols.len());
        for (a, b) in rows.iter().zip(&cols) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn watermark_closes_columnar_buffer() {
        let mut a = keyed(Strategy::Clt);
        let mut b = Batch::from(mixed_existence_feed(5)); // ts 0..28, window [0,100)
        assert!(b.columnarize());
        assert!(a.process_batch(0, b).is_empty());
        assert!(a.advance_watermark(99).is_empty(), "window still open");
        let out = a.advance_watermark(100);
        assert!(!out.is_empty(), "watermark closes the buffered window");
        assert!(a.flush().is_empty(), "nothing left after the close");
    }

    #[test]
    fn keyed_by_field_declares_partition_key_field() {
        let a = keyed(Strategy::Clt);
        assert_eq!(a.partition_key_field(), Some("area"));
        assert_eq!(a.partition_keys(), crate::ops::Partitioning::Key);
        // Closure-keyed aggregates expose no key field.
        assert_eq!(agg(Strategy::Clt).partition_key_field(), None);
        // Global-partitioned configurations hide the field: routing by
        // key would split state a single instance must own.
        let count_window = WindowedAggregate::keyed_by_field(
            WindowKind::Count(10),
            "area",
            sum_spec(Strategy::Clt),
        );
        assert_eq!(count_window.partition_key_field(), None);
    }

    #[test]
    fn count_window_mode() {
        let mut a = WindowedAggregate::new(
            WindowKind::Count(3),
            |_| GroupKey::Unit,
            sum_spec(Strategy::ExactParametric),
        );
        assert!(a.process(0, tup(1, 1, 1.0, 1.0)).is_empty());
        assert!(a.process(0, tup(2, 1, 1.0, 1.0)).is_empty());
        let out = a.process(0, tup(3, 1, 1.0, 1.0));
        assert_eq!(out.len(), 1);
        assert!((out[0].updf("total").unwrap().mean() - 3.0).abs() < 1e-9);
    }
}
