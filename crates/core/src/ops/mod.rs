//! Query operators (the "boxes" of the box-arrow architecture, §3).
//!
//! Every operator is push-based: `process(port, tuple)` returns the output
//! tuples produced so far; `flush` drains state at end of stream (closing
//! open windows). Multi-input operators (join) distinguish inputs by
//! `port`.

pub mod aggregate;
pub mod join;
pub mod project;
pub mod select;

use crate::batch::Batch;
use crate::tuple::Tuple;
use crate::value::GroupKey;

/// How an operator's internal state constrains key-based sharding — the
/// declaration the sharded runtime reads when it compiles a plan into N
/// parallel shard pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Per-tuple operator with no cross-tuple state: its input may be
    /// split across shards arbitrarily and the union of the shard outputs
    /// equals the unsharded output (selection, projection, pass-through).
    Any,
    /// State is partitioned by a key (group-by key, equi-join key):
    /// tuples that map to the same [`Operator::partition_key`] must be
    /// processed by the same shard instance, but distinct keys may run in
    /// parallel.
    Key,
    /// State spans the whole stream (count windows, non-equi joins,
    /// sampling strategies with a shared rng): a single instance must see
    /// every input tuple, so the operator cannot be sharded.
    Global,
}

/// A streaming query operator.
pub trait Operator: Send {
    /// Human-readable operator name (diagnostics, graph dumps).
    fn name(&self) -> &str;

    /// Number of input ports (1 for unary operators, 2 for joins).
    fn num_ports(&self) -> usize {
        1
    }

    /// Push one tuple into `port`; returns any output produced.
    fn process(&mut self, port: usize, tuple: Tuple) -> Vec<Tuple>;

    /// Push a batch of tuples into `port`; returns everything produced.
    ///
    /// Semantically identical to calling [`Self::process`] on each tuple
    /// in order and concatenating the outputs — which is exactly what the
    /// default implementation does, so every operator works under the
    /// batched executors unchanged. Hot operators override this to
    /// resolve field indices once per batch ([`Batch::shared_schema`]),
    /// filter/transform in place, and skip the per-tuple `Vec`
    /// allocations.
    fn process_batch(&mut self, port: usize, batch: Batch) -> Batch {
        let mut out = Batch::with_capacity(batch.len());
        for t in batch {
            out.extend(self.process(port, t));
        }
        out
    }

    /// End-of-stream: drain buffered state (open windows etc.).
    fn flush(&mut self) -> Vec<Tuple> {
        Vec::new()
    }

    /// Event time has advanced to `watermark` without (necessarily) a
    /// tuple arriving at this instance: no future input on any port will
    /// carry `ts < watermark`, though `ts == watermark` may still come.
    /// Operators with event-time windows emit every window the watermark
    /// closes, exactly as if the closing tuple had arrived here.
    ///
    /// This is how the sharded runtime keeps window-close timing global:
    /// a shard that never receives the stream's latest tuples still
    /// learns that time moved on, so its windows close when the
    /// single-threaded engine's would — the punctuation that makes a
    /// key-partitioned instance's *stream* (not just its final state)
    /// match the unsharded run. The default is a no-op: operators
    /// without event-time windows have nothing to close.
    fn advance_watermark(&mut self, watermark: u64) -> Vec<Tuple> {
        let _ = watermark;
        Vec::new()
    }

    /// Declare how this operator's state constrains sharding. The default
    /// is [`Partitioning::Global`] — the safe answer for stateful
    /// operators the runtime knows nothing about; stateless operators
    /// override to `Any`, keyed operators to `Key`.
    fn partition_keys(&self) -> Partitioning {
        Partitioning::Global
    }

    /// The partition key for `tuple` arriving on `port`, for operators
    /// declaring [`Partitioning::Key`]. `None` means the key cannot be
    /// derived from this tuple (the runtime then routes it to a fixed
    /// shard; such tuples never participate in keyed state anyway).
    fn partition_key(&self, port: usize, tuple: &Tuple) -> Option<GroupKey> {
        let _ = (port, tuple);
        None
    }

    /// The input field this operator's partition key is read from, when
    /// [`Self::partition_key`] is a plain field lookup. Lets the sharded
    /// runtime route columnar batches by reading the key column directly
    /// instead of materializing tuples; `None` (the default) means the
    /// key needs the row form.
    fn partition_key_field(&self) -> Option<&str> {
        None
    }

    /// Port-aware form of [`Self::partition_key_field`]: the input field
    /// the partition key is read from for tuples arriving on `port`.
    /// Multi-input keyed operators (equi-join) key each port on a
    /// different field; unary operators fall through to the port-less
    /// declaration.
    fn partition_key_field_for(&self, port: usize) -> Option<&str> {
        let _ = port;
        self.partition_key_field()
    }
}

/// A trivial pass-through operator; useful as a graph sink and in tests.
pub struct Passthrough {
    name: String,
}

impl Passthrough {
    pub fn new(name: impl Into<String>) -> Self {
        Passthrough { name: name.into() }
    }
}

impl Operator for Passthrough {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: usize, tuple: Tuple) -> Vec<Tuple> {
        vec![tuple]
    }

    fn process_batch(&mut self, _port: usize, batch: Batch) -> Batch {
        batch
    }

    fn partition_keys(&self) -> Partitioning {
        Partitioning::Any
    }
}

/// Operator from a closure `Tuple -> Vec<Tuple>`; the escape hatch for
/// application-specific certain-data transforms.
pub struct MapOperator {
    name: String,
    f: Box<dyn FnMut(Tuple) -> Vec<Tuple> + Send>,
    /// `FnMut` closures may carry cross-tuple state, so maps declare
    /// [`Partitioning::Global`] unless the caller promises otherwise via
    /// [`MapOperator::stateless`].
    stateless: bool,
}

impl MapOperator {
    pub fn new(
        name: impl Into<String>,
        f: impl FnMut(Tuple) -> Vec<Tuple> + Send + 'static,
    ) -> Self {
        MapOperator {
            name: name.into(),
            f: Box::new(f),
            stateless: false,
        }
    }

    /// Promise that the closure keeps no cross-tuple state, letting the
    /// sharded runtime split this operator's input across shards.
    ///
    /// When a keyed operator (aggregate, equi-join) sits downstream, the
    /// closure must also leave that operator's key attribute unchanged:
    /// the runtime routes by the key evaluated on the *source* tuple, so
    /// a map that rewrites the key field would split one group's state
    /// across shard instances.
    pub fn stateless(mut self) -> Self {
        self.stateless = true;
        self
    }
}

impl Operator for MapOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: usize, tuple: Tuple) -> Vec<Tuple> {
        (self.f)(tuple)
    }

    fn process_batch(&mut self, _port: usize, batch: Batch) -> Batch {
        let mut out = Batch::with_capacity(batch.len());
        for t in batch {
            out.extend((self.f)(t));
        }
        out
    }

    fn partition_keys(&self) -> Partitioning {
        if self.stateless {
            Partitioning::Any
        } else {
            Partitioning::Global
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::value::Value;

    fn t(v: i64) -> Tuple {
        let s = Schema::builder().field("v", DataType::Int).build();
        Tuple::new(s, vec![Value::from(v)], 0)
    }

    #[test]
    fn passthrough_forwards() {
        let mut p = Passthrough::new("sink");
        let out = p.process(0, t(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].int("v").unwrap(), 1);
        assert!(p.flush().is_empty());
        assert_eq!(p.num_ports(), 1);
    }

    #[test]
    fn map_operator_applies_closure() {
        let mut m = MapOperator::new("dup", |t: Tuple| vec![t.clone(), t]);
        assert_eq!(m.process(0, t(2)).len(), 2);
    }

    #[test]
    fn partitioning_declarations() {
        assert_eq!(
            Passthrough::new("sink").partition_keys(),
            Partitioning::Any,
            "pass-through is stateless"
        );
        let m = MapOperator::new("m", |t: Tuple| vec![t]);
        assert_eq!(
            m.partition_keys(),
            Partitioning::Global,
            "FnMut maps are conservatively global"
        );
        assert_eq!(m.stateless().partition_keys(), Partitioning::Any);
        assert!(
            Passthrough::new("sink").partition_key(0, &t(1)).is_none(),
            "non-keyed operators have no partition key"
        );
    }
}
