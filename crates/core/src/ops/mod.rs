//! Query operators (the "boxes" of the box-arrow architecture, §3).
//!
//! Every operator is push-based: `process(port, tuple)` returns the output
//! tuples produced so far; `flush` drains state at end of stream (closing
//! open windows). Multi-input operators (join) distinguish inputs by
//! `port`.

pub mod aggregate;
pub mod join;
pub mod project;
pub mod select;

use crate::batch::Batch;
use crate::tuple::Tuple;

/// A streaming query operator.
pub trait Operator: Send {
    /// Human-readable operator name (diagnostics, graph dumps).
    fn name(&self) -> &str;

    /// Number of input ports (1 for unary operators, 2 for joins).
    fn num_ports(&self) -> usize {
        1
    }

    /// Push one tuple into `port`; returns any output produced.
    fn process(&mut self, port: usize, tuple: Tuple) -> Vec<Tuple>;

    /// Push a batch of tuples into `port`; returns everything produced.
    ///
    /// Semantically identical to calling [`Self::process`] on each tuple
    /// in order and concatenating the outputs — which is exactly what the
    /// default implementation does, so every operator works under the
    /// batched executors unchanged. Hot operators override this to
    /// resolve field indices once per batch ([`Batch::shared_schema`]),
    /// filter/transform in place, and skip the per-tuple `Vec`
    /// allocations.
    fn process_batch(&mut self, port: usize, batch: Batch) -> Batch {
        let mut out = Batch::with_capacity(batch.len());
        for t in batch {
            out.extend(self.process(port, t));
        }
        out
    }

    /// End-of-stream: drain buffered state (open windows etc.).
    fn flush(&mut self) -> Vec<Tuple> {
        Vec::new()
    }
}

/// A trivial pass-through operator; useful as a graph sink and in tests.
pub struct Passthrough {
    name: String,
}

impl Passthrough {
    pub fn new(name: impl Into<String>) -> Self {
        Passthrough { name: name.into() }
    }
}

impl Operator for Passthrough {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: usize, tuple: Tuple) -> Vec<Tuple> {
        vec![tuple]
    }

    fn process_batch(&mut self, _port: usize, batch: Batch) -> Batch {
        batch
    }
}

/// Stateless operator from a closure `Tuple -> Vec<Tuple>`; the escape
/// hatch for application-specific certain-data transforms.
pub struct MapOperator {
    name: String,
    f: Box<dyn FnMut(Tuple) -> Vec<Tuple> + Send>,
}

impl MapOperator {
    pub fn new(
        name: impl Into<String>,
        f: impl FnMut(Tuple) -> Vec<Tuple> + Send + 'static,
    ) -> Self {
        MapOperator {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for MapOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: usize, tuple: Tuple) -> Vec<Tuple> {
        (self.f)(tuple)
    }

    fn process_batch(&mut self, _port: usize, batch: Batch) -> Batch {
        let mut out = Batch::with_capacity(batch.len());
        for t in batch {
            out.extend((self.f)(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::value::Value;

    fn t(v: i64) -> Tuple {
        let s = Schema::builder().field("v", DataType::Int).build();
        Tuple::new(s, vec![Value::from(v)], 0)
    }

    #[test]
    fn passthrough_forwards() {
        let mut p = Passthrough::new("sink");
        let out = p.process(0, t(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].int("v").unwrap(), 1);
        assert!(p.flush().is_empty());
        assert_eq!(p.num_ports(), 1);
    }

    #[test]
    fn map_operator_applies_closure() {
        let mut m = MapOperator::new("dup", |t: Tuple| vec![t.clone(), t]);
        assert_eq!(m.process(0, t(2)).len(), 2);
    }
}
