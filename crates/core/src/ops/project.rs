//! Projection / derivation of new attributes.
//!
//! Q1's inner query "simply adds two attributes to each tuple" — one
//! computed from an uncertain location, one looked up from a certain tag
//! id. This module provides:
//!
//! - certain derivations (closures over certain fields),
//! - exact linear transforms of uncertain attributes (`a·X + b`),
//! - exact monotone change-of-variables onto a histogram,
//! - the **Delta method** (§5.2): Y = h(X) ≈ N(h(μ), h′(μ)²σ²) for
//!   differentiable h — the cheap approximation for composed complex
//!   functions.

use crate::batch::Batch;
use crate::columnar::Column;
use crate::ops::Operator;
use crate::schema::{DataType, Field, Schema};
use crate::tuple::Tuple;
use crate::updf::Updf;
use crate::value::Value;
use std::sync::Arc;
use ustream_prob::dist::{Dist, Gaussian};
use ustream_prob::histogram::HistogramPdf;

/// One derived output attribute.
pub enum Derivation {
    /// New certain value from the tuple's certain attributes.
    Certain {
        out: Field,
        f: Box<dyn Fn(&Tuple) -> Value + Send>,
    },
    /// Certain linear transform `a·x + b` of a certain numeric attribute
    /// (Int widens to Float). The declarative sibling of [`Self::Certain`]:
    /// because the transform is visible to the engine instead of hidden
    /// in a closure, the columnar path runs it as one tight loop over the
    /// input column.
    CertainLinear {
        input: String,
        a: f64,
        b: f64,
        out: String,
    },
    /// Exact linear transform of an uncertain scalar attribute.
    Linear {
        input: String,
        a: f64,
        b: f64,
        out: String,
    },
    /// Exact monotone transform via change of variables, materialized on
    /// a histogram grid: f_Y(y) = f_X(h⁻¹(y))·|dh⁻¹/dy|.
    Monotone {
        input: String,
        out: String,
        h: Box<dyn Fn(f64) -> f64 + Send>,
        h_inv: Box<dyn Fn(f64) -> f64 + Send>,
        /// d h⁻¹ / dy.
        dh_inv: Box<dyn Fn(f64) -> f64 + Send>,
        bins: usize,
    },
    /// First-order Delta-method Gaussian approximation of h(X).
    Delta {
        input: String,
        out: String,
        h: Box<dyn Fn(f64) -> f64 + Send>,
        /// h′.
        dh: Box<dyn Fn(f64) -> f64 + Send>,
    },
    /// Multivariate Delta method for h(X, Y) of two *independent*
    /// uncertain attributes (§5.2: "the multivariate Delta method to
    /// approximate the result distribution for efficiency"):
    /// Y ≈ N(h(μ₁, μ₂), h₁′²σ₁² + h₂′²σ₂²).
    DeltaBinary {
        input1: String,
        input2: String,
        out: String,
        h: Box<dyn Fn(f64, f64) -> f64 + Send>,
        /// ∂h/∂x evaluated at the means.
        dh1: Box<dyn Fn(f64, f64) -> f64 + Send>,
        /// ∂h/∂y evaluated at the means.
        dh2: Box<dyn Fn(f64, f64) -> f64 + Send>,
    },
}

impl Derivation {
    fn out_field(&self) -> Field {
        match self {
            Derivation::Certain { out, .. } => out.clone(),
            Derivation::CertainLinear { out, .. } => Field::new(out.clone(), DataType::Float),
            Derivation::Linear { out, .. }
            | Derivation::Monotone { out, .. }
            | Derivation::Delta { out, .. }
            | Derivation::DeltaBinary { out, .. } => Field::new(out.clone(), DataType::Uncertain),
        }
    }
}

/// Input indices a derivation reads, resolved once per schema for the
/// batched path. `Missing` marks an unresolvable field reference: every
/// tuple of that schema drops (the per-tuple semantics).
#[derive(Debug, Clone, Copy)]
enum ResolvedInputs {
    /// Certain derivations look fields up through their own closure.
    Closure,
    One(usize),
    Two(usize, usize),
    Missing,
}

/// Per-schema compilation of the projection: output schema plus resolved
/// input indices per derivation.
struct ResolvedProject {
    input_schema: Arc<Schema>,
    out_schema: Arc<Schema>,
    inputs: Vec<ResolvedInputs>,
}

/// The projection operator: appends derived attributes to each tuple.
pub struct Project {
    name: String,
    derivations: Vec<Derivation>,
    /// Cache of input schema → output schema.
    out_schema: Option<(Arc<Schema>, Arc<Schema>)>,
    /// Per-schema resolution cache for the batched path.
    resolved: Option<ResolvedProject>,
}

impl Project {
    pub fn new(derivations: Vec<Derivation>) -> Self {
        assert!(!derivations.is_empty(), "Project needs ≥1 derivation");
        Project {
            name: "project".into(),
            derivations,
            out_schema: None,
            resolved: None,
        }
    }

    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    fn output_schema(&mut self, input: &Arc<Schema>) -> Arc<Schema> {
        if let Some((cached_in, cached_out)) = &self.out_schema {
            if Arc::ptr_eq(cached_in, input) {
                return cached_out.clone();
            }
        }
        let extra: Vec<Field> = self.derivations.iter().map(|d| d.out_field()).collect();
        let out = input.extend(extra);
        self.out_schema = Some((input.clone(), out.clone()));
        out
    }

    /// Resolve (or fetch the cached resolution of) every derivation's
    /// input fields against `input` — the batched path's once-per-schema
    /// compilation step.
    fn ensure_resolved(&mut self, input: &Arc<Schema>) {
        let stale = match &self.resolved {
            Some(r) => !Arc::ptr_eq(&r.input_schema, input),
            None => true,
        };
        if stale {
            let out_schema = self.output_schema(input);
            let inputs = self
                .derivations
                .iter()
                .map(|d| {
                    let resolve = |name: &str| input.index_of(name).ok();
                    match d {
                        Derivation::Certain { .. } => ResolvedInputs::Closure,
                        Derivation::CertainLinear { input: f, .. }
                        | Derivation::Linear { input: f, .. }
                        | Derivation::Monotone { input: f, .. }
                        | Derivation::Delta { input: f, .. } => match resolve(f) {
                            Some(i) => ResolvedInputs::One(i),
                            None => ResolvedInputs::Missing,
                        },
                        Derivation::DeltaBinary { input1, input2, .. } => {
                            match (resolve(input1), resolve(input2)) {
                                (Some(i), Some(j)) => ResolvedInputs::Two(i, j),
                                _ => ResolvedInputs::Missing,
                            }
                        }
                    }
                })
                .collect();
            self.resolved = Some(ResolvedProject {
                input_schema: input.clone(),
                out_schema,
                inputs,
            });
        }
    }

    fn derive_value(d: &Derivation, t: &Tuple) -> Option<Value> {
        match d {
            Derivation::Certain { f, .. } => Some(f(t)),
            Derivation::CertainLinear { input, a, b, .. } => {
                let x = t.get(input).ok()?.as_float()?;
                Some(Value::Float(x * a + b))
            }
            Derivation::Linear { input, a, b, .. } => {
                let u = t.updf(input).ok()?;
                Some(Value::from(u.affine(*a, *b)))
            }
            Derivation::Monotone {
                input,
                h,
                h_inv,
                dh_inv,
                bins,
                ..
            } => {
                let u = t.updf(input).ok()?;
                Some(Value::from(monotone_transform(u, h, h_inv, dh_inv, *bins)))
            }
            Derivation::Delta { input, h, dh, .. } => {
                let u = t.updf(input).ok()?;
                let (mu, var) = (u.mean(), u.variance());
                let slope = dh(mu);
                let out_var = (slope * slope * var).max(1e-18);
                Some(Value::from(Updf::Parametric(Dist::Gaussian(
                    Gaussian::from_mean_var(h(mu), out_var),
                ))))
            }
            Derivation::DeltaBinary {
                input1,
                input2,
                h,
                dh1,
                dh2,
                ..
            } => {
                let u1 = t.updf(input1).ok()?;
                let u2 = t.updf(input2).ok()?;
                let (m1, v1) = (u1.mean(), u1.variance());
                let (m2, v2) = (u2.mean(), u2.variance());
                let (g1, g2) = (dh1(m1, m2), dh2(m1, m2));
                let out_var = (g1 * g1 * v1 + g2 * g2 * v2).max(1e-18);
                Some(Value::from(Updf::Parametric(Dist::Gaussian(
                    Gaussian::from_mean_var(h(m1, m2), out_var),
                ))))
            }
        }
    }

    /// Index-addressed counterpart of [`Self::derive_value`] used by the
    /// batched path — no field-name lookups.
    fn derive_value_at(d: &Derivation, inputs: ResolvedInputs, t: &Tuple) -> Option<Value> {
        match (d, inputs) {
            (_, ResolvedInputs::Missing) => None,
            (Derivation::Certain { f, .. }, _) => Some(f(t)),
            (Derivation::CertainLinear { a, b, .. }, ResolvedInputs::One(i)) => {
                let x = t.at(i).as_float()?;
                Some(Value::Float(x * a + b))
            }
            (Derivation::Linear { a, b, .. }, ResolvedInputs::One(i)) => {
                let u = t.at(i).as_updf()?;
                Some(Value::from(u.affine(*a, *b)))
            }
            (
                Derivation::Monotone {
                    h,
                    h_inv,
                    dh_inv,
                    bins,
                    ..
                },
                ResolvedInputs::One(i),
            ) => {
                let u = t.at(i).as_updf()?;
                Some(Value::from(monotone_transform(u, h, h_inv, dh_inv, *bins)))
            }
            (Derivation::Delta { h, dh, .. }, ResolvedInputs::One(i)) => {
                let u = t.at(i).as_updf()?;
                let (mu, var) = (u.mean(), u.variance());
                let slope = dh(mu);
                let out_var = (slope * slope * var).max(1e-18);
                Some(Value::from(Updf::Parametric(Dist::Gaussian(
                    Gaussian::from_mean_var(h(mu), out_var),
                ))))
            }
            (Derivation::DeltaBinary { h, dh1, dh2, .. }, ResolvedInputs::Two(i, j)) => {
                let u1 = t.at(i).as_updf()?;
                let u2 = t.at(j).as_updf()?;
                let (m1, v1) = (u1.mean(), u1.variance());
                let (m2, v2) = (u2.mean(), u2.variance());
                let (g1, g2) = (dh1(m1, m2), dh2(m1, m2));
                let out_var = (g1 * g1 * v1 + g2 * g2 * v2).max(1e-18);
                Some(Value::from(Updf::Parametric(Dist::Gaussian(
                    Gaussian::from_mean_var(h(m1, m2), out_var),
                ))))
            }
            _ => unreachable!("resolution shape matches derivation shape"),
        }
    }

    /// Vectorized column-at-a-time derivation. Returns `true` when every
    /// derivation had a columnar kernel for its input column's layout and
    /// the batch was widened in place; `false` asks the caller to hydrate
    /// and run the row path. The kernels call the exact same scalar
    /// functions as the row path, so outputs are bit-identical.
    fn columnar_derive(&self, batch: &mut Batch, out_schema: &Arc<Schema>) -> bool {
        let resolved = self.resolved.as_ref().expect("resolved before columnar");
        let Some(cols) = batch.columns() else {
            return false;
        };
        for (d, &idx) in self.derivations.iter().zip(&resolved.inputs) {
            let ok = match (d, idx) {
                (Derivation::Linear { .. }, ResolvedInputs::One(i)) => {
                    cols.col(i).as_gaussian().is_some()
                }
                (Derivation::CertainLinear { .. }, ResolvedInputs::One(i)) => {
                    cols.col(i).as_int().is_some() || cols.col(i).as_float().is_some()
                }
                _ => false,
            };
            if !ok {
                return false;
            }
        }
        let mut cols = batch.take_columns().expect("checked columnar above");
        let mut derived = Vec::with_capacity(self.derivations.len());
        for (d, &idx) in self.derivations.iter().zip(&resolved.inputs) {
            match (d, idx) {
                (Derivation::Linear { a, b, .. }, ResolvedInputs::One(i)) => {
                    let (mean, sd) = cols.col(i).as_gaussian().expect("eligibility checked");
                    // Route each row through the same scalar affine as
                    // the row path (`Dist::affine` on a Gaussian, which
                    // always yields a Gaussian), but keep the result in
                    // column form — no per-row `Updf` boxing.
                    let mut om = Vec::with_capacity(mean.len());
                    let mut os = Vec::with_capacity(sd.len());
                    for r in 0..mean.len() {
                        let g = match Dist::Gaussian(Gaussian::new(mean[r], sd[r])).affine(*a, *b) {
                            Dist::Gaussian(g) => g,
                            _ => unreachable!("affine of a Gaussian is Gaussian"),
                        };
                        om.push(g.mean());
                        os.push(g.std_dev());
                    }
                    derived.push(Column::Gaussian { mean: om, sd: os });
                }
                (Derivation::CertainLinear { a, b, .. }, ResolvedInputs::One(i)) => {
                    let col = cols.col(i);
                    let ys: Vec<f64> = if let Some(xs) = col.as_int() {
                        xs.iter().map(|&x| x as f64 * a + b).collect()
                    } else {
                        let xs = col.as_float().expect("eligibility checked");
                        xs.iter().map(|&x| x * a + b).collect()
                    };
                    derived.push(Column::Float(ys));
                }
                _ => unreachable!("eligibility checked above"),
            }
        }
        cols.add_columns(out_schema.clone(), derived);
        *batch = Batch::from_columns(cols);
        true
    }
}

/// Exact change of variables for a monotone h, evaluated on a grid.
fn monotone_transform(
    u: &Updf,
    h: &(dyn Fn(f64) -> f64 + Send),
    h_inv: &(dyn Fn(f64) -> f64 + Send),
    dh_inv: &(dyn Fn(f64) -> f64 + Send),
    bins: usize,
) -> Updf {
    // Map the effective input range through h (monotone ⇒ endpoints map
    // to endpoints, possibly swapped).
    let (in_lo, in_hi) = (u.quantile(1e-9), u.quantile(1.0 - 1e-9));
    let (mut lo, mut hi) = (h(in_lo), h(in_hi));
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        // Degenerate (or NaN) h: collapse to a point mass approximation.
        return Updf::Parametric(Dist::gaussian(lo, 1e-9));
    }
    let width = (hi - lo) / bins as f64;
    let pdf_x = |x: f64| -> f64 {
        match u {
            Updf::Parametric(d) => d.pdf(x),
            Updf::Histogram(hh) => hh.pdf(x),
            // For samples: fit-free kernel-less density is noisy; use the
            // KL Gaussian as the density surrogate.
            Updf::Samples(s) => s.fit_gaussian().pdf(x),
            _ => panic!("monotone transform on multivariate Updf"),
        }
    };
    let mut masses = Vec::with_capacity(bins);
    for i in 0..bins {
        let y = lo + (i as f64 + 0.5) * width;
        let x = h_inv(y);
        let dens = pdf_x(x) * dh_inv(y).abs();
        masses.push((dens * width).max(0.0));
    }
    Updf::Histogram(HistogramPdf::from_masses(lo, width, masses))
}

impl Operator for Project {
    fn name(&self) -> &str {
        &self.name
    }

    /// Projection derives attributes per tuple (schema caches are derived
    /// state), so its input may be split freely across shards.
    fn partition_keys(&self) -> crate::ops::Partitioning {
        crate::ops::Partitioning::Any
    }

    fn process(&mut self, _port: usize, tuple: Tuple) -> Vec<Tuple> {
        let out_schema = self.output_schema(tuple.schema());
        let mut extra = Vec::with_capacity(self.derivations.len());
        for d in &self.derivations {
            match Self::derive_value(d, &tuple) {
                Some(v) => extra.push(v),
                None => return Vec::new(), // malformed input: drop
            }
        }
        vec![tuple.extended(out_schema, extra)]
    }

    /// Batched path: resolve the output schema and every input index once
    /// per batch, then widen each tuple in place (no values-vector clone,
    /// no per-tuple `Vec` allocation).
    fn process_batch(&mut self, port: usize, mut batch: Batch) -> Batch {
        let Some(schema) = batch.shared_schema().cloned() else {
            // Mixed-schema batch: fall back to per-tuple execution.
            let mut out = Batch::with_capacity(batch.len());
            for t in batch {
                out.extend(self.process(port, t));
            }
            return out;
        };
        self.ensure_resolved(&schema);
        let out_schema = self
            .resolved
            .as_ref()
            .expect("just resolved")
            .out_schema
            .clone();
        if batch.is_columnar() {
            let resolved = self.resolved.as_ref().expect("just resolved");
            if resolved
                .inputs
                .iter()
                .any(|i| matches!(i, ResolvedInputs::Missing))
            {
                // An unresolvable input field drops every tuple of this
                // schema — same as the row path, without hydrating.
                return Batch::new();
            }
            if self.columnar_derive(&mut batch, &out_schema) {
                return batch;
            }
            batch.hydrate();
        }
        let resolved = self.resolved.as_ref().expect("just resolved");
        let derivations = &self.derivations;
        let inputs = &resolved.inputs;
        // One scratch buffer for all tuples (extend_in_place drains it).
        let mut extra: Vec<Value> = Vec::with_capacity(derivations.len());
        batch.retain_mut(|t| {
            extra.clear();
            for (d, &idx) in derivations.iter().zip(inputs) {
                match Self::derive_value_at(d, idx, t) {
                    Some(v) => extra.push(v),
                    None => return false, // malformed input: drop
                }
            }
            t.extend_in_place(out_schema.clone(), &mut extra);
            true
        });
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use ustream_prob::dist::ContinuousDist;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .field("tag_id", DataType::Int)
            .field("x", DataType::Uncertain)
            .build()
    }

    fn tuple(mean: f64, sd: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![
                Value::from(7i64),
                Value::from(Updf::Parametric(Dist::gaussian(mean, sd))),
            ],
            0,
        )
    }

    #[test]
    fn certain_derivation_lookup() {
        let mut p = Project::new(vec![Derivation::Certain {
            out: Field::new("weight", DataType::Float),
            f: Box::new(|t: &Tuple| Value::from(t.int("tag_id").unwrap() as f64 * 2.0)),
        }]);
        let out = p.process(0, tuple(0.0, 1.0));
        assert_eq!(out[0].float("weight").unwrap(), 14.0);
        // Original fields still present.
        assert_eq!(out[0].int("tag_id").unwrap(), 7);
    }

    #[test]
    fn linear_transform_exact() {
        let mut p = Project::new(vec![Derivation::Linear {
            input: "x".into(),
            a: 3.0,
            b: -1.0,
            out: "y".into(),
        }]);
        let out = p.process(0, tuple(2.0, 1.0));
        let y = out[0].updf("y").unwrap();
        assert!((y.mean() - 5.0).abs() < 1e-12);
        assert!((y.variance() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_exp_transform_matches_lognormal() {
        // Y = exp(X), X ~ N(0, 0.25) ⇒ Y ~ LogNormal(0, 0.5).
        let mut p = Project::new(vec![Derivation::Monotone {
            input: "x".into(),
            out: "y".into(),
            h: Box::new(|x| x.exp()),
            h_inv: Box::new(|y: f64| y.ln()),
            dh_inv: Box::new(|y: f64| 1.0 / y),
            bins: 512,
        }]);
        let out = p.process(0, tuple(0.0, 0.5));
        let y = out[0].updf("y").unwrap();
        let exact = ustream_prob::dist::LogNormal::new(0.0, 0.5);
        assert!((y.mean() - exact.mean()).abs() < 0.01, "mean {}", y.mean());
        assert!((y.quantile(0.5) - 1.0).abs() < 0.01);
    }

    #[test]
    fn delta_method_close_for_small_variance() {
        // h(x) = x², X ~ N(3, 0.1²): Delta gives N(9, (6·0.1)²).
        let mut p = Project::new(vec![Derivation::Delta {
            input: "x".into(),
            out: "y".into(),
            h: Box::new(|x| x * x),
            dh: Box::new(|x| 2.0 * x),
        }]);
        let out = p.process(0, tuple(3.0, 0.1));
        let y = out[0].updf("y").unwrap();
        assert!((y.mean() - 9.0).abs() < 1e-9);
        assert!((y.std_dev() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn delta_vs_monotone_agree_in_small_variance_regime() {
        let mk = |deriv| Project::new(vec![deriv]);
        let mut delta = mk(Derivation::Delta {
            input: "x".into(),
            out: "y".into(),
            h: Box::new(|x: f64| x.exp()),
            dh: Box::new(|x: f64| x.exp()),
        });
        let mut exact = mk(Derivation::Monotone {
            input: "x".into(),
            out: "y".into(),
            h: Box::new(|x: f64| x.exp()),
            h_inv: Box::new(|y: f64| y.ln()),
            dh_inv: Box::new(|y: f64| 1.0 / y),
            bins: 512,
        });
        let t = tuple(1.0, 0.05);
        let yd = delta.process(0, t.clone())[0].updf("y").unwrap().clone();
        let ye = exact.process(0, t)[0].updf("y").unwrap().clone();
        assert!((yd.mean() - ye.mean()).abs() < 0.01);
        assert!((yd.std_dev() - ye.std_dev()).abs() < 0.01);
    }

    #[test]
    fn delta_binary_independent_product() {
        // h(x, y) = x·y at independent X ~ N(3, 0.1²), Y ~ N(2, 0.2²):
        // Delta gives N(6, (2·0.1)² + (3·0.2)²) = N(6, 0.04 + 0.36).
        let s = Schema::builder()
            .field("x", DataType::Uncertain)
            .field("y", DataType::Uncertain)
            .build();
        let t = Tuple::new(
            s,
            vec![
                Value::from(Updf::Parametric(Dist::gaussian(3.0, 0.1))),
                Value::from(Updf::Parametric(Dist::gaussian(2.0, 0.2))),
            ],
            0,
        );
        let mut p = Project::new(vec![Derivation::DeltaBinary {
            input1: "x".into(),
            input2: "y".into(),
            out: "xy".into(),
            h: Box::new(|x, y| x * y),
            dh1: Box::new(|_, y| y),
            dh2: Box::new(|x, _| x),
        }]);
        let out = p.process(0, t);
        let xy = out[0].updf("xy").unwrap();
        assert!((xy.mean() - 6.0).abs() < 1e-12);
        assert!((xy.variance() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn delta_binary_matches_monte_carlo_small_variance() {
        // h(x, y) = x·exp(y/10) with small variances: Delta ≈ MC truth.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let gx = Dist::gaussian(4.0, 0.05);
        let gy = Dist::gaussian(1.0, 0.05);
        let s = Schema::builder()
            .field("x", DataType::Uncertain)
            .field("y", DataType::Uncertain)
            .build();
        let t = Tuple::new(
            s,
            vec![
                Value::from(Updf::Parametric(gx.clone())),
                Value::from(Updf::Parametric(gy.clone())),
            ],
            0,
        );
        let mut p = Project::new(vec![Derivation::DeltaBinary {
            input1: "x".into(),
            input2: "y".into(),
            out: "z".into(),
            h: Box::new(|x, y: f64| x * (y / 10.0).exp()),
            dh1: Box::new(|_, y: f64| (y / 10.0).exp()),
            dh2: Box::new(|x, y: f64| x * (y / 10.0).exp() / 10.0),
        }]);
        let z = p.process(0, t)[0].updf("z").unwrap().clone();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let mut acc = 0.0;
        let mut acc2 = 0.0;
        for _ in 0..n {
            let v = gx.sample(&mut rng) * (gy.sample(&mut rng) / 10.0).exp();
            acc += v;
            acc2 += v * v;
        }
        let mc_mean = acc / n as f64;
        let mc_var = acc2 / n as f64 - mc_mean * mc_mean;
        assert!(
            (z.mean() - mc_mean).abs() < 0.01,
            "mean {} vs {}",
            z.mean(),
            mc_mean
        );
        assert!((z.variance() - mc_var).abs() < 0.2 * mc_var);
    }

    #[test]
    fn multiple_derivations_in_one_pass() {
        let mut p = Project::new(vec![
            Derivation::Certain {
                out: Field::new("const", DataType::Int),
                f: Box::new(|_| Value::from(1i64)),
            },
            Derivation::Linear {
                input: "x".into(),
                a: 1.0,
                b: 10.0,
                out: "shifted".into(),
            },
        ]);
        let out = p.process(0, tuple(0.0, 1.0));
        assert_eq!(out[0].schema().len(), 4);
        assert!((out[0].updf("shifted").unwrap().mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn batched_project_matches_tuple_at_a_time() {
        use crate::batch::Batch;
        let mk_proj = || {
            Project::new(vec![
                Derivation::Certain {
                    out: Field::new("double_id", DataType::Int),
                    f: Box::new(|t: &Tuple| Value::from(t.int("tag_id").unwrap() * 2)),
                },
                Derivation::Linear {
                    input: "x".into(),
                    a: 2.0,
                    b: 1.0,
                    out: "y".into(),
                },
            ])
        };
        let shared = schema();
        let inputs: Vec<Tuple> = (0..20)
            .map(|i| {
                Tuple::new(
                    shared.clone(),
                    vec![
                        Value::from(i as i64),
                        Value::from(Updf::Parametric(Dist::gaussian(i as f64, 1.0))),
                    ],
                    i as u64,
                )
            })
            .collect();
        let mut one = mk_proj();
        let mut per_tuple = Vec::new();
        for t in inputs.clone() {
            per_tuple.extend(one.process(0, t));
        }
        let mut two = mk_proj();
        let batched = two.process_batch(0, Batch::from(inputs)).into_vec();
        assert_eq!(per_tuple.len(), batched.len());
        for (a, b) in per_tuple.iter().zip(&batched) {
            assert_eq!(a.int("double_id").unwrap(), b.int("double_id").unwrap());
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.lineage, b.lineage);
            assert!((a.updf("y").unwrap().mean() - b.updf("y").unwrap().mean()).abs() < 1e-12);
            assert_eq!(a.schema().fields(), b.schema().fields());
        }
    }

    #[test]
    fn batched_project_drops_malformed_inputs() {
        use crate::batch::Batch;
        let mut p = Project::new(vec![Derivation::Linear {
            input: "missing".into(),
            a: 1.0,
            b: 0.0,
            out: "y".into(),
        }]);
        let batch = Batch::from(vec![tuple(0.0, 1.0), tuple(1.0, 1.0)]);
        assert!(p.process_batch(0, batch).is_empty());
    }

    #[test]
    fn columnar_project_is_bit_identical_to_rows() {
        use crate::batch::Batch;
        let mk_proj = || {
            Project::new(vec![
                Derivation::CertainLinear {
                    input: "tag_id".into(),
                    a: 2.5,
                    b: 0.0,
                    out: "weight".into(),
                },
                Derivation::Linear {
                    input: "x".into(),
                    a: 0.5,
                    b: 1.0,
                    out: "y".into(),
                },
            ])
        };
        let shared = schema();
        let inputs: Vec<Tuple> = (0..32)
            .map(|i| {
                Tuple::new(
                    shared.clone(),
                    vec![
                        Value::from(i as i64),
                        Value::from(Updf::Parametric(Dist::gaussian(
                            i as f64,
                            1.0 + (i % 3) as f64 * 0.25,
                        ))),
                    ],
                    i as u64,
                )
            })
            .collect();
        let rows = mk_proj()
            .process_batch(0, Batch::from(inputs.clone()))
            .into_vec();
        let mut col_batch = Batch::from(inputs);
        assert!(col_batch.columnarize());
        let out = mk_proj().process_batch(0, col_batch);
        assert!(out.is_columnar(), "fast path keeps the batch columnar");
        let cols = out.columns().unwrap();
        assert!(cols.col(2).as_float().is_some(), "weight is a Float column");
        assert!(cols.col(3).as_gaussian().is_some(), "y stays Gaussian");
        let back = out.into_vec();
        assert_eq!(rows.len(), back.len());
        for (a, b) in rows.iter().zip(&back) {
            assert_eq!(a.schema().fields(), b.schema().fields());
            assert_eq!(
                a.float("weight").unwrap().to_bits(),
                b.float("weight").unwrap().to_bits()
            );
            let (ya, yb) = (a.updf("y").unwrap(), b.updf("y").unwrap());
            assert_eq!(ya.mean().to_bits(), yb.mean().to_bits());
            assert_eq!(ya.std_dev().to_bits(), yb.std_dev().to_bits());
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn columnar_project_hydrates_for_closure_derivations() {
        use crate::batch::Batch;
        let shared = schema();
        let inputs: Vec<Tuple> = (0..8)
            .map(|i| {
                Tuple::new(
                    shared.clone(),
                    vec![
                        Value::from(i as i64),
                        Value::from(Updf::Parametric(Dist::gaussian(i as f64, 1.0))),
                    ],
                    i as u64,
                )
            })
            .collect();
        let mut p = Project::new(vec![Derivation::Certain {
            out: Field::new("double_id", DataType::Int),
            f: Box::new(|t: &Tuple| Value::from(t.int("tag_id").unwrap() * 2)),
        }]);
        let mut b = Batch::from(inputs);
        assert!(b.columnarize());
        let out = p.process_batch(0, b);
        assert!(!out.is_columnar(), "closure derivations hydrate");
        assert_eq!(out.len(), 8);
        assert_eq!(out.as_slice()[3].int("double_id").unwrap(), 6);
    }

    #[test]
    fn columnar_project_missing_input_drops_all() {
        use crate::batch::Batch;
        let mut p = Project::new(vec![Derivation::Linear {
            input: "missing".into(),
            a: 1.0,
            b: 0.0,
            out: "y".into(),
        }]);
        let mut b = Batch::from(vec![tuple(0.0, 1.0), tuple(1.0, 1.0)]);
        b.columnarize();
        assert!(p.process_batch(0, b).is_empty());
    }

    #[test]
    fn certain_linear_matches_certain_closure() {
        let mut closure = Project::new(vec![Derivation::Certain {
            out: Field::new("w", DataType::Float),
            f: Box::new(|t: &Tuple| Value::from(t.int("tag_id").unwrap() as f64 * 2.5 + 1.0)),
        }]);
        let mut linear = Project::new(vec![Derivation::CertainLinear {
            input: "tag_id".into(),
            a: 2.5,
            b: 1.0,
            out: "w".into(),
        }]);
        let t = tuple(0.0, 1.0);
        let a = closure.process(0, t.clone());
        let b = linear.process(0, t);
        assert_eq!(
            a[0].float("w").unwrap().to_bits(),
            b[0].float("w").unwrap().to_bits()
        );
    }

    #[test]
    fn schema_cache_reused_across_tuples() {
        let mut p = Project::new(vec![Derivation::Linear {
            input: "x".into(),
            a: 1.0,
            b: 0.0,
            out: "y".into(),
        }]);
        // Tuples must share one schema Arc for the cache to hit.
        let shared = schema();
        let mk = |mean: f64| {
            Tuple::new(
                shared.clone(),
                vec![
                    Value::from(7i64),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 1.0))),
                ],
                0,
            )
        };
        let a = p.process(0, mk(0.0));
        let b = p.process(0, mk(1.0));
        assert!(Arc::ptr_eq(a[0].schema(), b[0].schema()));
    }
}
