//! Probabilistic selection.
//!
//! Selection over a certain attribute is classical filtering. Selection
//! over an *uncertain* attribute X with predicate π computes P(π(X)),
//! multiplies it into the tuple's existence probability, and — when
//! configured — replaces X's distribution by its conditional given π
//! (truncation), so downstream operators see the distribution "in the
//! certain worlds where the tuple survived". Tuples whose survival
//! probability falls below `min_prob` are dropped.

use crate::batch::Batch;
use crate::columnar::{Column, Columns};
use crate::ops::Operator;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::updf::Updf;
use crate::value::Value;
use std::sync::Arc;
use ustream_prob::dist::{Dist, Gaussian};

/// Comparison operators for certain numeric predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    fn eval(&self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// A predicate over one tuple.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Certain string equality (e.g. `object_type(tag_id) = 'flammable'`).
    StrEq(String, String),
    /// Certain numeric comparison.
    NumCmp(String, CmpOp, f64),
    /// P(X > c) on an uncertain scalar attribute.
    UncertainAbove(String, f64),
    /// P(X ≤ c).
    UncertainBelow(String, f64),
    /// P(lo < X ≤ hi).
    UncertainBetween(String, f64, f64),
    /// Conjunction (probabilities multiply — attributes assumed
    /// independent within a tuple, the paper's tuple model).
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction under the same independence assumption
    /// (inclusion–exclusion: p₁ + p₂ − p₁p₂).
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation (1 − p).
    Not(Box<Predicate>),
}

impl Predicate {
    /// Probability that the predicate holds for this tuple. Certain
    /// predicates return exactly 0.0 or 1.0. Returns `None` if a referenced
    /// field is missing or mistyped (tuple is then dropped by Select).
    pub fn probability(&self, t: &Tuple) -> Option<f64> {
        match self {
            Predicate::StrEq(field, want) => {
                Some((t.str(field).ok()? == want.as_str()) as u8 as f64)
            }
            Predicate::NumCmp(field, op, c) => Some(op.eval(t.float(field).ok()?, *c) as u8 as f64),
            Predicate::UncertainAbove(field, c) => Some(t.updf(field).ok()?.prob_above(*c)),
            Predicate::UncertainBelow(field, c) => Some(1.0 - t.updf(field).ok()?.prob_above(*c)),
            Predicate::UncertainBetween(field, lo, hi) => {
                Some(t.updf(field).ok()?.prob_in(*lo, *hi))
            }
            Predicate::And(a, b) => Some(a.probability(t)? * b.probability(t)?),
            Predicate::Or(a, b) => {
                let (pa, pb) = (a.probability(t)?, b.probability(t)?);
                Some(pa + pb - pa * pb)
            }
            Predicate::Not(p) => Some(1.0 - p.probability(t)?),
        }
    }

    /// The (field, interval) this predicate conditions on, when it is a
    /// simple interval constraint on one uncertain attribute — the case
    /// where Select can truncate the distribution.
    fn conditioning_interval(&self) -> Option<(&str, f64, f64)> {
        match self {
            Predicate::UncertainAbove(f, c) => Some((f, *c, f64::INFINITY)),
            Predicate::UncertainBelow(f, c) => Some((f, f64::NEG_INFINITY, *c)),
            Predicate::UncertainBetween(f, lo, hi) => Some((f, *lo, *hi)),
            _ => None,
        }
    }

    /// Resolve every field reference against `schema`, producing an
    /// index-addressed predicate — one string lookup per field per
    /// **batch** instead of per tuple. `None` when a field is missing
    /// (the per-tuple semantics then drop every tuple of that schema).
    fn compile(&self, schema: &Schema) -> Option<CompiledPredicate> {
        Some(match self {
            Predicate::StrEq(f, want) => {
                CompiledPredicate::StrEq(schema.index_of(f).ok()?, want.clone())
            }
            Predicate::NumCmp(f, op, c) => {
                CompiledPredicate::NumCmp(schema.index_of(f).ok()?, *op, *c)
            }
            Predicate::UncertainAbove(f, c) => {
                CompiledPredicate::UncertainAbove(schema.index_of(f).ok()?, *c)
            }
            Predicate::UncertainBelow(f, c) => {
                CompiledPredicate::UncertainBelow(schema.index_of(f).ok()?, *c)
            }
            Predicate::UncertainBetween(f, lo, hi) => {
                CompiledPredicate::UncertainBetween(schema.index_of(f).ok()?, *lo, *hi)
            }
            Predicate::And(a, b) => {
                CompiledPredicate::And(Box::new(a.compile(schema)?), Box::new(b.compile(schema)?))
            }
            Predicate::Or(a, b) => {
                CompiledPredicate::Or(Box::new(a.compile(schema)?), Box::new(b.compile(schema)?))
            }
            Predicate::Not(p) => CompiledPredicate::Not(Box::new(p.compile(schema)?)),
        })
    }
}

/// A [`Predicate`] with field names resolved to value indices.
#[derive(Debug, Clone)]
enum CompiledPredicate {
    StrEq(usize, String),
    NumCmp(usize, CmpOp, f64),
    UncertainAbove(usize, f64),
    UncertainBelow(usize, f64),
    UncertainBetween(usize, f64, f64),
    And(Box<CompiledPredicate>, Box<CompiledPredicate>),
    Or(Box<CompiledPredicate>, Box<CompiledPredicate>),
    Not(Box<CompiledPredicate>),
}

impl CompiledPredicate {
    /// Index-addressed counterpart of [`Predicate::probability`]; still
    /// `None` on a type mismatch (tuple is dropped).
    fn probability(&self, t: &Tuple) -> Option<f64> {
        match self {
            CompiledPredicate::StrEq(idx, want) => {
                Some((t.at(*idx).as_str()? == want.as_str()) as u8 as f64)
            }
            CompiledPredicate::NumCmp(idx, op, c) => {
                Some(op.eval(t.at(*idx).as_float()?, *c) as u8 as f64)
            }
            CompiledPredicate::UncertainAbove(idx, c) => Some(t.at(*idx).as_updf()?.prob_above(*c)),
            CompiledPredicate::UncertainBelow(idx, c) => {
                Some(1.0 - t.at(*idx).as_updf()?.prob_above(*c))
            }
            CompiledPredicate::UncertainBetween(idx, lo, hi) => {
                Some(t.at(*idx).as_updf()?.prob_in(*lo, *hi))
            }
            CompiledPredicate::And(a, b) => Some(a.probability(t)? * b.probability(t)?),
            CompiledPredicate::Or(a, b) => {
                let (pa, pb) = (a.probability(t)?, b.probability(t)?);
                Some(pa + pb - pa * pb)
            }
            CompiledPredicate::Not(p) => Some(1.0 - p.probability(t)?),
        }
    }

    /// Columnar counterpart of [`CompiledPredicate::probability`]: one
    /// probability per row, with `NaN` standing for `None` (missing or
    /// mistyped value ⇒ drop). Leaves over typed columns run as tight
    /// loops — the Gaussian case bottoms out in the same Cody erf
    /// kernel, called in the same order as the row path, so surviving
    /// probabilities are bit-identical.
    fn probabilities(&self, cols: &Columns) -> Vec<f64> {
        let n = cols.len();
        let nan = f64::NAN;
        match self {
            CompiledPredicate::StrEq(idx, want) => match cols.col(*idx) {
                Column::Str { codes, dict } => {
                    // One comparison per dictionary entry, then a lookup
                    // per row.
                    let hits: Vec<f64> = dict.iter().map(|d| (d == want) as u8 as f64).collect();
                    codes.iter().map(|&c| hits[c as usize]).collect()
                }
                Column::Rows(rows) => rows
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map_or(nan, |s| (s == want.as_str()) as u8 as f64)
                    })
                    .collect(),
                _ => vec![nan; n],
            },
            CompiledPredicate::NumCmp(idx, op, c) => match cols.col(*idx) {
                Column::Int(xs) => xs
                    .iter()
                    .map(|&x| op.eval(x as f64, *c) as u8 as f64)
                    .collect(),
                Column::Float(xs) => xs.iter().map(|&x| op.eval(x, *c) as u8 as f64).collect(),
                Column::Rows(rows) => rows
                    .iter()
                    .map(|v| v.as_float().map_or(nan, |x| op.eval(x, *c) as u8 as f64))
                    .collect(),
                _ => vec![nan; n],
            },
            CompiledPredicate::UncertainAbove(idx, c) => match cols.col(*idx) {
                Column::Gaussian { mean, sd } => mean
                    .iter()
                    .zip(sd)
                    .map(|(&m, &s)| {
                        Updf::Parametric(Dist::Gaussian(Gaussian::new(m, s))).prob_above(*c)
                    })
                    .collect(),
                Column::Rows(rows) => rows
                    .iter()
                    .map(|v| v.as_updf().map_or(nan, |u| u.prob_above(*c)))
                    .collect(),
                _ => vec![nan; n],
            },
            CompiledPredicate::UncertainBelow(idx, c) => match cols.col(*idx) {
                Column::Gaussian { mean, sd } => mean
                    .iter()
                    .zip(sd)
                    .map(|(&m, &s)| {
                        1.0 - Updf::Parametric(Dist::Gaussian(Gaussian::new(m, s))).prob_above(*c)
                    })
                    .collect(),
                Column::Rows(rows) => rows
                    .iter()
                    .map(|v| v.as_updf().map_or(nan, |u| 1.0 - u.prob_above(*c)))
                    .collect(),
                _ => vec![nan; n],
            },
            CompiledPredicate::UncertainBetween(idx, lo, hi) => match cols.col(*idx) {
                Column::Gaussian { mean, sd } => mean
                    .iter()
                    .zip(sd)
                    .map(|(&m, &s)| {
                        Updf::Parametric(Dist::Gaussian(Gaussian::new(m, s))).prob_in(*lo, *hi)
                    })
                    .collect(),
                Column::Rows(rows) => rows
                    .iter()
                    .map(|v| v.as_updf().map_or(nan, |u| u.prob_in(*lo, *hi)))
                    .collect(),
                _ => vec![nan; n],
            },
            CompiledPredicate::And(a, b) => {
                let mut pa = a.probabilities(cols);
                let pb = b.probabilities(cols);
                for (x, y) in pa.iter_mut().zip(pb) {
                    *x *= y;
                }
                pa
            }
            CompiledPredicate::Or(a, b) => {
                let mut pa = a.probabilities(cols);
                let pb = b.probabilities(cols);
                for (x, y) in pa.iter_mut().zip(pb) {
                    *x = *x + y - *x * y;
                }
                pa
            }
            CompiledPredicate::Not(p) => {
                let mut ps = p.probabilities(cols);
                for x in &mut ps {
                    *x = 1.0 - *x;
                }
                ps
            }
        }
    }
}

/// Everything Select resolves once per input schema: the compiled
/// predicate (`None` ⇒ a referenced field is missing ⇒ drop all) and the
/// conditioning target index, if conditioning applies.
struct CompiledSelect {
    schema: Arc<Schema>,
    predicate: Option<CompiledPredicate>,
    conditioning: Option<(usize, f64, f64)>,
}

/// The probabilistic selection operator.
pub struct Select {
    name: String,
    predicate: Predicate,
    /// Drop tuples whose survival probability is below this.
    min_prob: f64,
    /// Replace the conditioned attribute by its truncated distribution.
    condition_distribution: bool,
    /// Per-schema compilation cache for the batched path.
    compiled: Option<CompiledSelect>,
}

impl Select {
    pub fn new(predicate: Predicate, min_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&min_prob));
        Select {
            name: "select".to_string(),
            predicate,
            min_prob,
            condition_distribution: true,
            compiled: None,
        }
    }

    /// Disable distribution conditioning (keep the prior distribution on
    /// survivors; only existence is scaled).
    pub fn without_conditioning(mut self) -> Self {
        self.condition_distribution = false;
        self
    }

    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Compile (or fetch the cached compilation of) the predicate for
    /// `schema`.
    fn compiled_for(&mut self, schema: &Arc<Schema>) -> &CompiledSelect {
        let stale = match &self.compiled {
            Some(c) => !Arc::ptr_eq(&c.schema, schema),
            None => true,
        };
        if stale {
            let predicate = self.predicate.compile(schema);
            let conditioning = if self.condition_distribution {
                self.predicate
                    .conditioning_interval()
                    .and_then(|(f, lo, hi)| Some((schema.index_of(f).ok()?, lo, hi)))
            } else {
                None
            };
            self.compiled = Some(CompiledSelect {
                schema: schema.clone(),
                predicate,
                conditioning,
            });
        }
        self.compiled.as_ref().expect("just compiled")
    }
}

impl Operator for Select {
    fn name(&self) -> &str {
        &self.name
    }

    /// Selection is per-tuple (the compiled-predicate cache is derived
    /// state, identical on every shard), so its input may be split freely.
    fn partition_keys(&self) -> crate::ops::Partitioning {
        crate::ops::Partitioning::Any
    }

    fn process(&mut self, _port: usize, tuple: Tuple) -> Vec<Tuple> {
        let Some(p) = self.predicate.probability(&tuple) else {
            return Vec::new(); // malformed tuple: drop
        };
        let survival = tuple.existence * p;
        if survival < self.min_prob || survival <= 0.0 {
            return Vec::new();
        }
        let mut out = tuple;
        out.existence = survival.min(1.0);

        if self.condition_distribution {
            if let Some((field, lo, hi)) = self.predicate.conditioning_interval() {
                let field = field.to_string();
                if let (Ok(idx), Ok(updf)) =
                    (out.schema().index_of(&field), out.updf(&field).cloned())
                {
                    if let Some(conditioned) = condition_updf(&updf, lo, hi) {
                        out = out.with_value(idx, Value::from(conditioned));
                    }
                }
            }
        }
        vec![out]
    }

    /// Batched path: compile the predicate once for the batch's shared
    /// schema, then filter/condition in place — no per-tuple string
    /// lookups, no per-tuple `Vec` allocations. Columnar batches run a
    /// vectorized filter over the typed columns (unless conditioning
    /// applies, which needs per-tuple distribution rewrites — those
    /// hydrate and take the row path).
    fn process_batch(&mut self, port: usize, mut batch: Batch) -> Batch {
        if batch.is_columnar() {
            let schema = batch
                .shared_schema()
                .cloned()
                .expect("columnar batches have one schema");
            let min_prob = self.min_prob;
            let compiled = self.compiled_for(&schema);
            let Some(pred) = &compiled.predicate else {
                return Batch::new(); // missing field: every tuple drops
            };
            if compiled.conditioning.is_none() {
                let mut cols = batch.take_columns().expect("columnar batch");
                let probs = pred.probabilities(&cols);
                let existence = cols.existence_mut();
                let mut keep = Vec::with_capacity(probs.len());
                for (i, &p) in probs.iter().enumerate() {
                    let survival = existence[i] * p;
                    let ok = !p.is_nan() && survival >= min_prob && survival > 0.0;
                    if ok {
                        existence[i] = survival.min(1.0);
                    }
                    keep.push(ok);
                }
                cols.filter(&keep);
                return Batch::from_columns(cols);
            }
            batch.hydrate();
        }
        let Some(schema) = batch.shared_schema().cloned() else {
            // Mixed-schema batch: fall back to per-tuple execution.
            let mut out = Batch::with_capacity(batch.len());
            for t in batch {
                out.extend(self.process(port, t));
            }
            return out;
        };
        let min_prob = self.min_prob;
        let compiled = self.compiled_for(&schema);
        let Some(pred) = &compiled.predicate else {
            return Batch::new(); // missing field: every tuple drops
        };
        let conditioning = compiled.conditioning;
        batch.retain_mut(|t| {
            let Some(p) = pred.probability(t) else {
                return false;
            };
            let survival = t.existence * p;
            if survival < min_prob || survival <= 0.0 {
                return false;
            }
            t.existence = survival.min(1.0);
            if let Some((idx, lo, hi)) = conditioning {
                if let Some(u) = t.at(idx).as_updf() {
                    if let Some(conditioned) = condition_updf(u, lo, hi) {
                        t.set_value(idx, Value::from(conditioned));
                    }
                }
            }
            true
        });
        batch
    }
}

/// Condition a scalar Updf on (lo, hi): parametric forms truncate exactly;
/// sample forms re-weight; histograms re-normalize over the interval.
fn condition_updf(u: &Updf, lo: f64, hi: f64) -> Option<Updf> {
    match u {
        Updf::Parametric(d) => d.truncate(lo, hi).map(|(t, _)| Updf::Parametric(t)),
        Updf::Samples(s) => {
            let mut xs = Vec::new();
            let mut ws = Vec::new();
            for (x, w) in s.iter() {
                if x > lo && x <= hi {
                    xs.push(x);
                    ws.push(w);
                }
            }
            if xs.is_empty() {
                None
            } else {
                Some(Updf::Samples(ustream_prob::samples::WeightedSamples::new(
                    xs, ws,
                )))
            }
        }
        Updf::Histogram(h) => {
            // Keep overlapping bins, renormalize.
            let mut masses = Vec::new();
            let mut new_lo = None;
            for (i, &m) in h.masses().iter().enumerate() {
                let a = h.lo() + i as f64 * h.bin_width();
                let b = a + h.bin_width();
                if b <= lo || a > hi {
                    continue;
                }
                if new_lo.is_none() {
                    new_lo = Some(a);
                }
                masses.push(m);
            }
            let total: f64 = masses.iter().sum();
            if total <= 0.0 {
                None
            } else {
                Some(Updf::Histogram(
                    ustream_prob::histogram::HistogramPdf::from_masses(
                        new_lo?,
                        h.bin_width(),
                        masses,
                    ),
                ))
            }
        }
        // Multivariate conditioning is interval-free here; leave as is.
        other => Some(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use std::sync::Arc;
    use ustream_prob::dist::Dist;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .field("kind", DataType::Str)
            .field("temp", DataType::Uncertain)
            .build()
    }

    fn tuple(kind: &str, mean: f64, sd: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![
                Value::from(kind),
                Value::from(Updf::Parametric(Dist::gaussian(mean, sd))),
            ],
            0,
        )
    }

    #[test]
    fn certain_predicate_passes_or_drops() {
        let mut s = Select::new(Predicate::StrEq("kind".into(), "flammable".into()), 0.5);
        assert_eq!(s.process(0, tuple("flammable", 0.0, 1.0)).len(), 1);
        assert_eq!(s.process(0, tuple("inert", 0.0, 1.0)).len(), 0);
    }

    #[test]
    fn uncertain_predicate_scales_existence() {
        // P(N(60, 5) > 60) = 0.5
        let mut s =
            Select::new(Predicate::UncertainAbove("temp".into(), 60.0), 0.1).without_conditioning();
        let out = s.process(0, tuple("x", 60.0, 5.0));
        assert_eq!(out.len(), 1);
        assert!((out[0].existence - 0.5).abs() < 1e-9);
    }

    #[test]
    fn below_threshold_dropped() {
        // P(N(0,1) > 60) ≈ 0 < 0.1 ⇒ dropped.
        let mut s = Select::new(Predicate::UncertainAbove("temp".into(), 60.0), 0.1);
        assert!(s.process(0, tuple("x", 0.0, 1.0)).is_empty());
    }

    #[test]
    fn conditioning_truncates_distribution() {
        let mut s = Select::new(Predicate::UncertainAbove("temp".into(), 60.0), 0.01);
        let out = s.process(0, tuple("x", 60.0, 5.0));
        let u = out[0].updf("temp").unwrap();
        // Mean of upper-half truncation is above the threshold.
        assert!(u.mean() > 60.0);
        assert!((out[0].existence - 0.5).abs() < 1e-9);
    }

    #[test]
    fn and_multiplies_probabilities() {
        let pred = Predicate::And(
            Box::new(Predicate::StrEq("kind".into(), "flammable".into())),
            Box::new(Predicate::UncertainAbove("temp".into(), 60.0)),
        );
        let mut s = Select::new(pred, 0.0).without_conditioning();
        let out = s.process(0, tuple("flammable", 60.0, 5.0));
        assert!((out[0].existence - 0.5).abs() < 1e-9);
        assert!(s.process(0, tuple("inert", 60.0, 5.0)).is_empty());
    }

    #[test]
    fn not_inverts() {
        let pred = Predicate::Not(Box::new(Predicate::UncertainAbove("temp".into(), 60.0)));
        let mut s = Select::new(pred, 0.0).without_conditioning();
        let out = s.process(0, tuple("x", 65.0, 5.0));
        let p_above = Dist::gaussian(65.0, 5.0).prob_above(60.0);
        assert!((out[0].existence - (1.0 - p_above)).abs() < 1e-9);
    }

    #[test]
    fn or_uses_inclusion_exclusion() {
        let pred = Predicate::Or(
            Box::new(Predicate::UncertainAbove("temp".into(), 60.0)),
            Box::new(Predicate::UncertainBelow("temp".into(), 60.0)),
        );
        // P(A) + P(B) − P(A)P(B) with P(A) = P(B) = 0.5 ⇒ 0.75 (the
        // independence approximation; exact would be 1 for complements).
        let mut s = Select::new(pred, 0.0).without_conditioning();
        let out = s.process(0, tuple("x", 60.0, 5.0));
        assert!((out[0].existence - 0.75).abs() < 1e-9);
        // De-Morgan-ish sanity: Or of impossible events is impossible.
        let never = Predicate::Or(
            Box::new(Predicate::StrEq("kind".into(), "a".into())),
            Box::new(Predicate::StrEq("kind".into(), "b".into())),
        );
        let mut s2 = Select::new(never, 0.0);
        assert!(s2.process(0, tuple("x", 0.0, 1.0)).is_empty());
    }

    #[test]
    fn between_predicate_conditions_to_interval() {
        let mut s = Select::new(Predicate::UncertainBetween("temp".into(), 55.0, 65.0), 0.0);
        let out = s.process(0, tuple("x", 60.0, 5.0));
        let u = out[0].updf("temp").unwrap();
        let (lo, hi) = u.confidence_interval(0.999);
        assert!(lo >= 54.9 && hi <= 65.1, "truncated to ({lo}, {hi})");
    }

    #[test]
    fn existence_compounds_across_selects() {
        let mut s1 =
            Select::new(Predicate::UncertainAbove("temp".into(), 60.0), 0.0).without_conditioning();
        let mut s2 =
            Select::new(Predicate::UncertainAbove("temp".into(), 60.0), 0.0).without_conditioning();
        let out1 = s1.process(0, tuple("x", 60.0, 5.0));
        let out2 = s2.process(0, out1.into_iter().next().unwrap());
        assert!((out2[0].existence - 0.25).abs() < 1e-9);
    }

    #[test]
    fn missing_field_drops_tuple() {
        let mut s = Select::new(Predicate::UncertainAbove("nope".into(), 0.0), 0.0);
        assert!(s.process(0, tuple("x", 0.0, 1.0)).is_empty());
    }

    #[test]
    fn batched_select_matches_tuple_at_a_time() {
        use crate::batch::Batch;
        let pred = Predicate::And(
            Box::new(Predicate::StrEq("kind".into(), "flammable".into())),
            Box::new(Predicate::UncertainAbove("temp".into(), 60.0)),
        );
        let inputs: Vec<Tuple> = (0..40)
            .map(|i| {
                tuple(
                    if i % 3 == 0 { "flammable" } else { "inert" },
                    50.0 + i as f64,
                    5.0,
                )
            })
            .collect();
        let mut one = Select::new(pred.clone(), 0.05);
        let mut per_tuple = Vec::new();
        for t in inputs.clone() {
            per_tuple.extend(one.process(0, t));
        }
        let mut two = Select::new(pred, 0.05);
        let batched = two.process_batch(0, Batch::from(inputs)).into_vec();
        assert_eq!(per_tuple.len(), batched.len());
        for (a, b) in per_tuple.iter().zip(&batched) {
            assert_eq!(a.ts, b.ts);
            assert!((a.existence - b.existence).abs() < 1e-15);
            assert_eq!(a.lineage, b.lineage);
            assert!(
                (a.updf("temp").unwrap().mean() - b.updf("temp").unwrap().mean()).abs() < 1e-12
            );
        }
    }

    #[test]
    fn columnar_select_is_bit_identical_to_rows() {
        use crate::batch::Batch;
        let pred = Predicate::And(
            Box::new(Predicate::StrEq("kind".into(), "flammable".into())),
            Box::new(Predicate::UncertainAbove("temp".into(), 60.0)),
        );
        let s = schema();
        let inputs: Vec<Tuple> = (0..64)
            .map(|i| {
                Tuple::new(
                    s.clone(),
                    vec![
                        Value::from(if i % 3 == 0 { "flammable" } else { "inert" }),
                        Value::from(Updf::Parametric(Dist::gaussian(50.0 + i as f64, 5.0))),
                    ],
                    i,
                )
            })
            .collect();
        let mut row_op = Select::new(pred.clone(), 0.05).without_conditioning();
        let row_out = row_op
            .process_batch(0, Batch::from(inputs.clone()))
            .into_vec();
        let mut col_op = Select::new(pred, 0.05).without_conditioning();
        let mut cb = Batch::from(inputs);
        assert!(cb.columnarize());
        let col_batch = col_op.process_batch(0, cb);
        assert!(col_batch.is_columnar(), "fast path keeps columns");
        let col_out = col_batch.into_vec();
        assert_eq!(row_out.len(), col_out.len());
        for (a, b) in row_out.iter().zip(&col_out) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.existence.to_bits(), b.existence.to_bits(), "bit-exact");
            assert_eq!(a.lineage, b.lineage);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn columnar_select_with_conditioning_hydrates_and_matches() {
        use crate::batch::Batch;
        let pred = Predicate::UncertainAbove("temp".into(), 60.0);
        let inputs: Vec<Tuple> = (0..16).map(|i| tuple("x", 55.0 + i as f64, 5.0)).collect();
        let mut row_op = Select::new(pred.clone(), 0.05);
        let row_out = row_op
            .process_batch(0, Batch::from(inputs.clone()))
            .into_vec();
        let mut col_op = Select::new(pred, 0.05);
        let cb = Batch::from(inputs);
        // Mixed-schema inputs (every `tuple()` call builds a fresh Arc)
        // refuse to columnarize; rebuild against one schema.
        let shared = schema();
        let rows: Vec<Tuple> = cb
            .into_vec()
            .into_iter()
            .map(|t| {
                Tuple::derived(
                    shared.clone(),
                    t.values().to_vec(),
                    t.ts,
                    t.existence,
                    t.lineage.clone(),
                )
            })
            .collect();
        let mut cb = Batch::from(rows);
        assert!(cb.columnarize());
        let col_out = col_op.process_batch(0, cb).into_vec();
        assert_eq!(row_out.len(), col_out.len());
        for (a, b) in row_out.iter().zip(&col_out) {
            assert_eq!(a.existence.to_bits(), b.existence.to_bits());
            let (am, bm) = (
                a.updf("temp").unwrap().mean(),
                b.updf("temp").unwrap().mean(),
            );
            assert_eq!(am.to_bits(), bm.to_bits(), "conditioning identical");
        }
    }

    #[test]
    fn batched_select_missing_field_drops_all() {
        use crate::batch::Batch;
        let mut s = Select::new(Predicate::UncertainAbove("nope".into(), 0.0), 0.0);
        let batch = Batch::from(vec![tuple("x", 0.0, 1.0), tuple("y", 1.0, 1.0)]);
        assert!(s.process_batch(0, batch).is_empty());
    }
}
