//! Probabilistic windowed join (§5, Q2's `loc_equals` join).
//!
//! Two sliding event-time buffers (the `[Range r]` windows of Q2); each
//! arriving tuple probes the opposite buffer. For uncertain join
//! predicates the operator computes the **match probability** — e.g.
//! P(‖X − Y‖ ≤ ε) for two uncertain locations — multiplies it into the
//! output's existence, unions lineage, and (optionally) emits provenance
//! columns so a downstream aggregation can detect and exactly handle the
//! correlation a one-to-many join creates (§5.2).

use crate::batch::Batch;
use crate::lineage::Archive;
use crate::ops::Operator;
use crate::schema::{DataType, Field, Schema};
use crate::tuple::Tuple;
use crate::updf::Updf;
use crate::value::{GroupKey, Value};
use crate::window::SlidingBuffer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use ustream_prob::dist::{Dist, Gaussian};

/// Key-extraction closure for certain equi-joins.
pub type KeyFn = Box<dyn Fn(&Tuple) -> Option<GroupKey> + Send>;

/// Sorted key index over one side's sliding window: `(key, seq)` pairs in
/// lexicographic order, where `seq` is a monotone per-side counter aligned
/// with buffer positions (`position = seq − head_seq`; evictions only pop
/// the front, in seq order, so the alignment is exact). Probing binary
/// searches the equal-key range instead of scanning the whole window; the
/// range's seqs ascend, which IS the buffer's insertion order, so the
/// indexed probe emits matches in exactly the order the row scan would.
#[derive(Default)]
struct KeyIndex {
    entries: Vec<(GroupKey, u64)>,
    next_seq: u64,
    head_seq: u64,
}

impl KeyIndex {
    /// Account for one tuple pushed to the back of the buffer; index it
    /// when it has a key (unkeyed tuples still consume a seq so positions
    /// stay aligned — the row scan skips them, and so does an index that
    /// never holds them).
    fn pushed(&mut self, key: Option<GroupKey>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(k) = key {
            let at = self
                .entries
                .partition_point(|(ek, es)| (ek, *es) < (&k, seq));
            self.entries.insert(at, (k, seq));
        }
    }

    /// The buffer evicted `count` tuples from its front.
    fn evicted(&mut self, count: usize) {
        if count == 0 {
            return;
        }
        self.head_seq += count as u64;
        let head = self.head_seq;
        self.entries.retain(|&(_, s)| s >= head);
    }

    /// Buffer positions (front-relative, ascending = insertion order) of
    /// live tuples whose key equals `key`.
    fn probe<'a>(&'a self, key: &'a GroupKey) -> impl Iterator<Item = usize> + 'a {
        let lo = self.entries.partition_point(|(k, _)| k < key);
        let hi = lo + self.entries[lo..].partition_point(|(k, _)| k == key);
        let head = self.head_seq;
        self.entries[lo..hi]
            .iter()
            .map(move |&(_, s)| (s - head) as usize)
    }
}

/// Candidate-pair prefilter (cheap certain-attribute pruning).
type PairFilter = Box<dyn Fn(&Tuple, &Tuple) -> bool + Send>;

/// Join predicate.
pub enum JoinCondition {
    /// Certain equi-join on extracted keys (probability 0 or 1).
    KeyEquals { left: KeyFn, right: KeyFn },
    /// P(|X − Y| ≤ ε) over two uncertain scalar attributes.
    BandUncertain {
        left_field: String,
        right_field: String,
        epsilon: f64,
    },
    /// Q2's `loc_equals`: P(‖X − Y‖∞ ≤ ε) over multivariate attributes.
    LocEquals {
        left_field: String,
        right_field: String,
        epsilon: f64,
    },
}

/// The windowed join operator (port 0 = left, port 1 = right).
pub struct WindowJoin {
    name: String,
    left: SlidingBuffer,
    right: SlidingBuffer,
    condition: JoinCondition,
    /// Drop matches whose joint probability falls below this.
    min_prob: f64,
    /// Optional certain-attribute prefilter applied before probability
    /// computation (cheap pruning).
    prefilter: Option<PairFilter>,
    /// Output fields `<field>__src` carrying the base-tuple id of the
    /// given side's field — enables lineage-aware aggregation.
    provenance: Vec<(String, usize)>,
    /// Archive incoming base distributions (Fig. 2: A4 "archives these
    /// input tuples for later computation of the query result
    /// distributions"): (shared archive, port, field).
    archive: Option<(Archive, usize, String)>,
    out_schema: Option<(Arc<Schema>, Arc<Schema>, Arc<Schema>)>,
    rng: StdRng,
    /// Declared key fields (left, right) for field-based equi-joins built
    /// via [`WindowJoin::keyed_by_fields`]: enables the indexed probe and
    /// key-column routing of columnar batches.
    key_fields: Option<(String, String)>,
    left_index: KeyIndex,
    right_index: KeyIndex,
}

impl WindowJoin {
    pub fn new(range_ms: u64, condition: JoinCondition, min_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&min_prob));
        WindowJoin {
            name: "join".into(),
            left: SlidingBuffer::new(range_ms),
            right: SlidingBuffer::new(range_ms),
            condition,
            min_prob,
            prefilter: None,
            provenance: Vec::new(),
            archive: None,
            out_schema: None,
            rng: StdRng::seed_from_u64(0x701A),
            key_fields: None,
            left_index: KeyIndex::default(),
            right_index: KeyIndex::default(),
        }
    }

    /// Certain equi-join keyed on plain field lookups: equivalent to
    /// [`JoinCondition::KeyEquals`] with `GroupKey::from_value` closures
    /// over the named fields, but because the fields are *declared*, the
    /// join maintains a sorted key index per window (probes binary-search
    /// the equal-key range instead of scanning every buffered tuple) and
    /// columnar batches have their keys read straight off the key column.
    /// Output is bit-identical to the closure form — same matches, same
    /// order, same existence arithmetic.
    pub fn keyed_by_fields(
        range_ms: u64,
        left_field: impl Into<String>,
        right_field: impl Into<String>,
        min_prob: f64,
    ) -> Self {
        let lf: String = left_field.into();
        let rf: String = right_field.into();
        let (lc, rc) = (lf.clone(), rf.clone());
        let mut j = WindowJoin::new(
            range_ms,
            JoinCondition::KeyEquals {
                left: Box::new(move |t| GroupKey::from_value(t.get(&lc).ok()?)),
                right: Box::new(move |t| GroupKey::from_value(t.get(&rc).ok()?)),
            },
            min_prob,
        );
        j.key_fields = Some((lf, rf));
        j
    }

    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    pub fn with_prefilter(mut self, f: impl Fn(&Tuple, &Tuple) -> bool + Send + 'static) -> Self {
        self.prefilter = Some(Box::new(f));
        self
    }

    /// Emit `<field>__src` provenance for `field` taken from `port`
    /// (0 = left, 1 = right).
    pub fn with_provenance(mut self, field: impl Into<String>, port: usize) -> Self {
        assert!(port < 2);
        self.provenance.push((field.into(), port));
        self
    }

    /// Archive each incoming tuple's `field` distribution (from `port`)
    /// into `archive`, keyed by the tuple's base id — so a later operator
    /// can recompute exact result distributions from lineage even if the
    /// joined tuples only carried summaries (Fig. 2's A4 → J1 pattern).
    pub fn archive_to(mut self, archive: Archive, port: usize, field: impl Into<String>) -> Self {
        assert!(port < 2);
        self.archive = Some((archive, port, field.into()));
        self
    }

    fn output_schema(&mut self, l: &Arc<Schema>, r: &Arc<Schema>) -> Arc<Schema> {
        if let Some((cl, cr, out)) = &self.out_schema {
            if Arc::ptr_eq(cl, l) && Arc::ptr_eq(cr, r) {
                return out.clone();
            }
        }
        let mut joined = l.join(r, "r_");
        let extra: Vec<Field> = self
            .provenance
            .iter()
            .map(|(f, _)| Field::new(format!("{f}__src"), DataType::Int))
            .collect();
        if !extra.is_empty() {
            joined = joined.extend(extra);
        }
        self.out_schema = Some((l.clone(), r.clone(), joined.clone()));
        joined
    }

    fn emit(&mut self, l: &Tuple, r: &Tuple, p: f64) -> Tuple {
        let schema = self.output_schema(l.schema(), r.schema());
        let mut values: Vec<Value> = l.values().to_vec();
        values.extend(r.values().iter().cloned());
        for (field, port) in &self.provenance {
            let src_tuple = if *port == 0 { l } else { r };
            let id = src_tuple.lineage.ids().first().copied().unwrap_or(0);
            let _ = field;
            values.push(Value::Int(id as i64));
        }
        let existence = (l.existence * r.existence * p).clamp(0.0, 1.0);
        Tuple::derived(
            schema,
            values,
            l.ts.max(r.ts),
            existence,
            l.lineage.union(&r.lineage),
        )
    }

    /// Probe the opposite buffer with `t`, appending matches to `out`.
    /// Only *matching* candidates are cloned (to release the buffer
    /// borrow before `emit`'s schema-cache mutation) — probing no longer
    /// copies the whole window per arriving tuple.
    fn probe_into(&mut self, incoming_port: usize, t: &Tuple, out: &mut Vec<Tuple>) {
        let mut matched: Vec<(Tuple, f64)> = Vec::new();
        {
            let WindowJoin {
                left,
                right,
                condition,
                min_prob,
                prefilter,
                rng,
                ..
            } = self;
            let buf = if incoming_port == 0 { &*right } else { &*left };
            for other in buf.iter() {
                let (l, r) = if incoming_port == 0 {
                    (t, other)
                } else {
                    (other, t)
                };
                if let Some(f) = prefilter {
                    if !f(l, r) {
                        continue;
                    }
                }
                let Some(p) = match_probability(condition, rng, l, r) else {
                    continue;
                };
                if p * l.existence * r.existence >= *min_prob && p > 0.0 {
                    matched.push((other.clone(), p));
                }
            }
        }
        out.reserve(matched.len());
        for (other, p) in matched {
            let (l, r) = if incoming_port == 0 {
                (t, &other)
            } else {
                (&other, t)
            };
            out.push(self.emit(l, r, p));
        }
    }

    /// Indexed probe for declared-key equi-joins: binary search the
    /// opposite window's key index instead of scanning the buffer. The
    /// equal-key seqs ascend (insertion order), and the existence filter
    /// and `emit` arithmetic are written to match the row scan exactly
    /// (`p == 1.0` for every indexed candidate), so output is
    /// bit-identical to [`Self::probe_into`].
    fn probe_indexed(
        &mut self,
        incoming_port: usize,
        t: &Tuple,
        key: Option<&GroupKey>,
        out: &mut Vec<Tuple>,
    ) {
        let Some(key) = key else { return };
        let mut matched: Vec<Tuple> = Vec::new();
        {
            let (buf, index) = if incoming_port == 0 {
                (&self.right, &self.right_index)
            } else {
                (&self.left, &self.left_index)
            };
            for pos in index.probe(key) {
                let other = buf.get(pos).expect("key index aligned with buffer");
                // Row-scan filter `p * l.e * r.e >= min_prob && p > 0.0`
                // with p = 1.0, in the same multiplication order.
                let (le, re) = if incoming_port == 0 {
                    (t.existence, other.existence)
                } else {
                    (other.existence, t.existence)
                };
                if 1.0 * le * re >= self.min_prob {
                    matched.push(other.clone());
                }
            }
        }
        out.reserve(matched.len());
        for other in matched {
            let (l, r) = if incoming_port == 0 {
                (t, &other)
            } else {
                (&other, t)
            };
            out.push(self.emit(l, r, 1.0));
        }
    }

    /// The incoming tuple's declared join key, when field-keyed.
    fn extract_key(&self, port: usize, t: &Tuple) -> Option<GroupKey> {
        let (lf, rf) = self.key_fields.as_ref()?;
        let field = if port == 0 { lf } else { rf };
        GroupKey::from_value(t.get(field).ok()?)
    }

    /// Full per-tuple ingest (archive → evict → probe → buffer), shared
    /// by the tuple-at-a-time and batched paths.
    fn ingest(&mut self, port: usize, tuple: Tuple, out: &mut Vec<Tuple>) {
        let key = self.extract_key(port, &tuple);
        self.ingest_with_key(port, tuple, key, out);
    }

    /// Ingest with the declared key already extracted (`None` when the
    /// join is not field-keyed, or the tuple has no key).
    fn ingest_with_key(
        &mut self,
        port: usize,
        tuple: Tuple,
        key: Option<GroupKey>,
        out: &mut Vec<Tuple>,
    ) {
        assert!(port < 2, "join has two ports");
        // Archive the base distribution before anything else (A4's role).
        if let Some((archive, a_port, field)) = &self.archive {
            if *a_port == port {
                if let (Some(&id), Ok(u)) = (tuple.lineage.ids().first(), tuple.updf(field)) {
                    archive.insert(id, u.clone());
                }
            }
        }
        let indexed = self.key_fields.is_some();
        // Evict the opposite buffer against the incoming event time first
        // so stale tuples cannot match.
        if port == 0 {
            let n = self.right.evict_before(tuple.ts);
            if indexed {
                self.right_index.evicted(n);
            }
        } else {
            let n = self.left.evict_before(tuple.ts);
            if indexed {
                self.left_index.evicted(n);
            }
        }
        if indexed && self.prefilter.is_none() {
            self.probe_indexed(port, &tuple, key.as_ref(), out);
        } else {
            self.probe_into(port, &tuple, out);
        }
        if port == 0 {
            let n = self.left.push(tuple);
            if indexed {
                self.left_index.evicted(n);
                self.left_index.pushed(key);
            }
        } else {
            let n = self.right.push(tuple);
            if indexed {
                self.right_index.evicted(n);
                self.right_index.pushed(key);
            }
        }
    }
}

/// Match probability for a candidate pair (free function so the probe
/// loop can borrow the window buffers and the rng disjointly).
fn match_probability(
    condition: &JoinCondition,
    rng: &mut StdRng,
    l: &Tuple,
    r: &Tuple,
) -> Option<f64> {
    match condition {
        JoinCondition::KeyEquals { left, right } => {
            let (a, b) = (left(l)?, right(r)?);
            Some((a == b) as u8 as f64)
        }
        JoinCondition::BandUncertain {
            left_field,
            right_field,
            epsilon,
        } => {
            let lu = l.updf(left_field).ok()?;
            let ru = r.updf(right_field).ok()?;
            Some(band_probability(lu, ru, *epsilon, rng))
        }
        JoinCondition::LocEquals {
            left_field,
            right_field,
            epsilon,
        } => {
            let lu = l.updf(left_field).ok()?;
            let ru = r.updf(right_field).ok()?;
            Some(loc_equals_probability(lu, ru, *epsilon, rng))
        }
    }
}

/// P(|X − Y| ≤ ε) for independent scalar uncertain attributes.
/// Closed form when both reduce to Gaussians; Monte-Carlo otherwise.
fn band_probability(lu: &Updf, ru: &Updf, epsilon: f64, rng: &mut StdRng) -> f64 {
    let as_gaussian = |u: &Updf| -> Option<Gaussian> {
        match u {
            Updf::Parametric(Dist::Gaussian(g)) => Some(*g),
            _ => None,
        }
    };
    if let (Some(a), Some(b)) = (as_gaussian(lu), as_gaussian(ru)) {
        let diff = Gaussian::from_mean_var(
            a.mean() - b.mean(),
            (a.variance() + b.variance()).max(1e-18),
        );
        return (diff.cdf(epsilon) - diff.cdf(-epsilon)).clamp(0.0, 1.0);
    }
    // Monte Carlo on both payloads (deterministic seed per operator).
    let n = 512;
    let mut hits = 0usize;
    for _ in 0..n {
        let x = sample_scalar(lu, rng);
        let y = sample_scalar(ru, rng);
        if (x - y).abs() <= epsilon {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

/// Q2 `loc_equals`: P(‖X − Y‖∞ ≤ ε) for multivariate attributes.
fn loc_equals_probability(lu: &Updf, ru: &Updf, epsilon: f64, rng: &mut StdRng) -> f64 {
    match (lu, ru) {
        (Updf::Mv(a), Updf::Mv(b)) if a.dim() == b.dim() => {
            let diff = a.difference(b);
            let lo = vec![-epsilon; a.dim()];
            let hi = vec![epsilon; a.dim()];
            diff.prob_in_box(&lo, &hi)
        }
        _ => {
            // Monte Carlo fallback over mean-vec dimensionality.
            let d = lu.dim();
            if d != ru.dim() {
                return 0.0;
            }
            let n = 512;
            let mut hits = 0usize;
            for _ in 0..n {
                let x = sample_vec(lu, rng);
                let y = sample_vec(ru, rng);
                if x.iter()
                    .zip(y.iter())
                    .all(|(a, b)| (a - b).abs() <= epsilon)
                {
                    hits += 1;
                }
            }
            hits as f64 / n as f64
        }
    }
}

fn sample_scalar(u: &Updf, rng: &mut StdRng) -> f64 {
    match u {
        Updf::Parametric(d) => d.sample(rng),
        Updf::Samples(s) => s.sample(rng),
        Updf::Histogram(h) => h.sample(rng),
        _ => panic!("scalar sample on multivariate Updf"),
    }
}

fn sample_vec(u: &Updf, rng: &mut StdRng) -> Vec<f64> {
    match u {
        Updf::Mv(mv) => mv.sample(rng),
        Updf::MvSamples(s) => {
            use rand::Rng;
            let i = rng.gen_range(0..s.len());
            s.point(i).to_vec()
        }
        scalar => vec![sample_scalar(scalar, rng)],
    }
}

impl Operator for WindowJoin {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_ports(&self) -> usize {
        2
    }

    /// Certain equi-joins shard by join key: a pair can only match when
    /// both keys are equal, so routing each side by its key keeps every
    /// candidate pair on one shard (window eviction is purely
    /// timestamp-based and unaffected by which other keys share the
    /// buffers). Probabilistic conditions (`BandUncertain`, `LocEquals`)
    /// must compare every cross pair, so they stay global.
    fn partition_keys(&self) -> crate::ops::Partitioning {
        match self.condition {
            JoinCondition::KeyEquals { .. } => crate::ops::Partitioning::Key,
            _ => crate::ops::Partitioning::Global,
        }
    }

    fn partition_key(&self, port: usize, tuple: &Tuple) -> Option<GroupKey> {
        match &self.condition {
            JoinCondition::KeyEquals { left, right } => {
                if port == 0 {
                    left(tuple)
                } else {
                    right(tuple)
                }
            }
            _ => None,
        }
    }

    fn process(&mut self, port: usize, tuple: Tuple) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.ingest(port, tuple, &mut out);
        out
    }

    fn partition_key_field_for(&self, port: usize) -> Option<&str> {
        let (lf, rf) = self.key_fields.as_ref()?;
        Some(if port == 0 { lf } else { rf })
    }

    /// Batched path: ingest each tuple in order, accumulating all matches
    /// into one output batch (no per-tuple output `Vec`s). Field-keyed
    /// joins read columnar batches' keys straight off the key column
    /// before hydrating, skipping the per-row field lookup.
    fn process_batch(&mut self, port: usize, mut batch: Batch) -> Batch {
        let mut out = Vec::new();
        let col_keys: Option<Vec<Option<GroupKey>>> = match (&self.key_fields, batch.columns()) {
            (Some((lf, rf)), Some(cols)) => {
                let field = if port == 0 { lf } else { rf };
                cols.schema().index_of(field).ok().map(|idx| {
                    let col = cols.col(idx);
                    (0..cols.len()).map(|i| col.group_key_at(i)).collect()
                })
            }
            _ => None,
        };
        match col_keys {
            Some(keys) => {
                batch.hydrate();
                for (tuple, key) in batch.into_vec().into_iter().zip(keys) {
                    self.ingest_with_key(port, tuple, key, &mut out);
                }
            }
            None => {
                for tuple in batch {
                    self.ingest(port, tuple, &mut out);
                }
            }
        }
        Batch::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use ustream_prob::dist::MvGaussian;

    fn loc_schema() -> Arc<Schema> {
        Schema::builder()
            .field("tag_id", DataType::Int)
            .field("loc", DataType::UncertainVec(2))
            .build()
    }

    fn temp_schema() -> Arc<Schema> {
        Schema::builder()
            .field("sensor", DataType::Int)
            .field("loc", DataType::UncertainVec(2))
            .field("temp", DataType::Uncertain)
            .build()
    }

    fn obj(ts: u64, id: i64, x: f64, y: f64, sd: f64) -> Tuple {
        Tuple::new(
            loc_schema(),
            vec![
                Value::from(id),
                Value::from(Updf::Mv(MvGaussian::isotropic(vec![x, y], sd))),
            ],
            ts,
        )
    }

    fn temp(ts: u64, id: i64, x: f64, y: f64, sd: f64, t_mean: f64) -> Tuple {
        Tuple::new(
            temp_schema(),
            vec![
                Value::from(id),
                Value::from(Updf::Mv(MvGaussian::isotropic(vec![x, y], sd))),
                Value::from(Updf::Parametric(Dist::gaussian(t_mean, 1.0))),
            ],
            ts,
        )
    }

    fn loc_join(eps: f64, min_prob: f64) -> WindowJoin {
        WindowJoin::new(
            3000,
            JoinCondition::LocEquals {
                left_field: "loc".into(),
                right_field: "loc".into(),
                epsilon: eps,
            },
            min_prob,
        )
    }

    #[test]
    fn colocated_tuples_join_with_high_probability() {
        let mut j = loc_join(2.0, 0.2);
        assert!(j.process(0, obj(100, 1, 0.0, 0.0, 0.3)).is_empty());
        let out = j.process(1, temp(200, 9, 0.1, -0.1, 0.3, 65.0));
        assert_eq!(out.len(), 1);
        assert!(out[0].existence > 0.8, "p = {}", out[0].existence);
        // Joined schema carries both sides (clash prefixed).
        assert!(out[0].get("r_loc").is_ok());
        assert!(out[0].get("temp").is_ok());
    }

    #[test]
    fn distant_tuples_do_not_join() {
        let mut j = loc_join(2.0, 0.2);
        j.process(0, obj(100, 1, 0.0, 0.0, 0.3));
        let out = j.process(1, temp(200, 9, 50.0, 50.0, 0.3, 65.0));
        assert!(out.is_empty());
    }

    #[test]
    fn match_probability_multiplies_existences() {
        let mut j = loc_join(2.0, 0.0);
        let mut l = obj(100, 1, 0.0, 0.0, 0.1);
        l.existence = 0.5;
        j.process(0, l);
        let out = j.process(1, temp(200, 9, 0.0, 0.0, 0.1, 65.0));
        assert_eq!(out.len(), 1);
        assert!(out[0].existence <= 0.5);
        assert!(out[0].existence > 0.45, "≈ 0.5 × ~1.0 match prob");
    }

    #[test]
    fn window_eviction_limits_matches() {
        let mut j = loc_join(2.0, 0.2);
        j.process(0, obj(100, 1, 0.0, 0.0, 0.3));
        // 10 s later: left tuple is out of the 3 s range.
        let out = j.process(1, temp(10_100, 9, 0.0, 0.0, 0.3, 65.0));
        assert!(out.is_empty());
    }

    #[test]
    fn lineage_union_on_output() {
        let mut j = loc_join(2.0, 0.0);
        let l = obj(100, 1, 0.0, 0.0, 0.3);
        let l_lin = l.lineage.clone();
        j.process(0, l);
        let r = temp(200, 9, 0.0, 0.0, 0.3, 65.0);
        let r_lin = r.lineage.clone();
        let out = j.process(1, r);
        assert_eq!(out[0].lineage, l_lin.union(&r_lin));
    }

    #[test]
    fn one_to_many_join_shares_provenance() {
        // One temperature tuple matches two objects → two outputs carrying
        // the SAME temp__src id (the correlation §5.2 warns about).
        let mut j = loc_join(2.0, 0.1).with_provenance("temp", 1);
        j.process(0, obj(100, 1, 0.0, 0.0, 0.2));
        j.process(0, obj(150, 2, 0.2, 0.1, 0.2));
        let out = j.process(1, temp(200, 9, 0.1, 0.0, 0.2, 65.0));
        assert_eq!(out.len(), 2);
        let s1 = out[0].int("temp__src").unwrap();
        let s2 = out[1].int("temp__src").unwrap();
        assert_eq!(s1, s2, "both outputs derive temp from the same base tuple");
        assert!(out[0].lineage.overlaps(&out[1].lineage));
    }

    #[test]
    fn archive_records_base_distributions_for_downstream_recompute() {
        use crate::lineage::Archive;
        let archive = Archive::new();
        let mut j =
            loc_join(2.0, 0.1)
                .with_provenance("temp", 1)
                .archive_to(archive.clone(), 1, "temp");
        j.process(0, obj(100, 1, 0.0, 0.0, 0.2));
        let t = temp(200, 9, 0.1, 0.0, 0.2, 65.0);
        let base_id = *t.lineage.ids().first().unwrap();
        let out = j.process(1, t);
        assert_eq!(out.len(), 1);
        // J1's pattern: resolve the provenance id against the archive and
        // recover the base pdf exactly.
        let src = out[0].int("temp__src").unwrap() as u64;
        assert_eq!(src, base_id);
        let archived = archive.get(src).expect("base tuple archived");
        assert!((archived.mean() - 65.0).abs() < 1e-9);
        assert!((archived.std_dev() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn band_join_gaussian_closed_form() {
        let s = Schema::builder()
            .field("id", DataType::Int)
            .field("x", DataType::Uncertain)
            .build();
        let mk = |ts: u64, mean: f64| {
            Tuple::new(
                s.clone(),
                vec![
                    Value::from(1i64),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 1.0))),
                ],
                ts,
            )
        };
        let mut j = WindowJoin::new(
            1000,
            JoinCondition::BandUncertain {
                left_field: "x".into(),
                right_field: "x".into(),
                epsilon: 1.0,
            },
            0.0,
        );
        j.process(0, mk(10, 0.0));
        let out = j.process(1, mk(20, 0.0));
        // D ~ N(0, 2); P(|D| ≤ 1) = 2Φ(1/√2) − 1 ≈ 0.5205.
        assert_eq!(out.len(), 1);
        assert!(
            (out[0].existence - 0.5205).abs() < 0.01,
            "p = {}",
            out[0].existence
        );
    }

    #[test]
    fn key_equals_certain_join() {
        let s = Schema::builder().field("k", DataType::Int).build();
        let mk = |ts: u64, k: i64| Tuple::new(s.clone(), vec![Value::from(k)], ts);
        let mut j = WindowJoin::new(
            1000,
            JoinCondition::KeyEquals {
                left: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
                right: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
            },
            0.5,
        );
        j.process(0, mk(1, 7));
        j.process(0, mk(2, 8));
        let out = j.process(1, mk(3, 7));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].existence, 1.0);
    }

    #[test]
    fn keyed_by_fields_matches_closure_form_bit_for_bit() {
        let s = Schema::builder()
            .field("k", DataType::Int)
            .field("v", DataType::Int)
            .build();
        let mk = |ts: u64, k: i64, v: i64, e: f64| {
            let mut t = Tuple::new(s.clone(), vec![Value::from(k), Value::from(v)], ts);
            t.existence = e;
            t
        };
        let mut closure_j = WindowJoin::new(
            5000,
            JoinCondition::KeyEquals {
                left: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
                right: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
            },
            0.3,
        );
        let mut field_j = WindowJoin::keyed_by_fields(5000, "k", "k", 0.3);
        let feed: Vec<(usize, Tuple)> = (0..200)
            .map(|i| {
                let port = (i % 3 == 0) as usize;
                (
                    port,
                    mk(
                        i as u64 * 40,
                        (i % 5) as i64,
                        i as i64,
                        1.0 - (i % 4) as f64 * 0.2,
                    ),
                )
            })
            .collect();
        let render = |t: &Tuple| {
            format!(
                "ts={} e={:016x} lin={:?} vals={:?}",
                t.ts,
                t.existence.to_bits(),
                t.lineage.ids(),
                t.values()
            )
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (port, t) in feed {
            for o in closure_j.process(port, t.clone()) {
                a.push(render(&o));
            }
            for o in field_j.process(port, t) {
                b.push(render(&o));
            }
        }
        assert!(!a.is_empty(), "feed produces matches");
        assert_eq!(a, b, "indexed probe is bit-identical to the row scan");
    }

    #[test]
    fn keyed_by_fields_survives_window_eviction() {
        let mut field_j = WindowJoin::keyed_by_fields(1000, "k", "k", 0.0);
        let mut closure_j = WindowJoin::new(
            1000,
            JoinCondition::KeyEquals {
                left: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
                right: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
            },
            0.0,
        );
        let s = Schema::builder().field("k", DataType::Int).build();
        let mk = |ts: u64, k: i64| Tuple::new(s.clone(), vec![Value::from(k)], ts);
        // Stretch timestamps so the 1 s window evicts repeatedly; the
        // index must stay aligned with the shrinking buffer.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..60u64 {
            let t = mk(i * 97, (i % 3) as i64);
            a.extend(
                field_j
                    .process((i % 2) as usize, t.clone())
                    .iter()
                    .map(|o| format!("{} {:?}", o.ts, o.values())),
            );
            b.extend(
                closure_j
                    .process((i % 2) as usize, t)
                    .iter()
                    .map(|o| format!("{} {:?}", o.ts, o.values())),
            );
        }
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn keyed_by_fields_declares_per_port_key_fields() {
        let j = WindowJoin::keyed_by_fields(1000, "group", "gname", 0.0);
        assert_eq!(j.partition_keys(), crate::ops::Partitioning::Key);
        assert_eq!(j.partition_key_field_for(0), Some("group"));
        assert_eq!(j.partition_key_field_for(1), Some("gname"));
        assert_eq!(
            j.partition_key_field(),
            None,
            "port-less declaration stays ambiguous for a two-keyed join"
        );
    }

    #[test]
    fn prefilter_prunes_candidates() {
        let mut j = loc_join(2.0, 0.0)
            .with_prefilter(|l, r| l.int("tag_id").unwrap_or(0) == r.int("sensor").unwrap_or(1));
        j.process(0, obj(100, 9, 0.0, 0.0, 0.2));
        j.process(0, obj(100, 5, 0.0, 0.0, 0.2));
        let out = j.process(1, temp(200, 9, 0.0, 0.0, 0.2, 65.0));
        assert_eq!(out.len(), 1, "prefilter keeps only matching ids");
    }
}
