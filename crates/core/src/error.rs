//! Engine error types.

use std::fmt;

/// Errors surfaced by the uncertain-stream engine's fallible paths.
///
/// Construction-time validation of operator configs and schema lookups
/// return these; per-tuple hot paths avoid `Result` where a tuple can
/// simply be dropped or routed to a dead-letter count instead.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A field name was not found in the schema.
    UnknownField(String),
    /// A field existed but had an unexpected type.
    TypeMismatch {
        field: String,
        expected: &'static str,
        actual: &'static str,
    },
    /// Operator configuration was invalid (empty window, bad threshold…).
    InvalidConfig(String),
    /// A query graph was malformed (cycle, dangling edge, missing node).
    InvalidGraph(String),
    /// Lineage referenced a base tuple that was never archived.
    MissingLineage(u64),
    /// An operator panicked on a worker thread; the message carries the
    /// operator name and the panic payload. Parallel executors surface
    /// this at the driver instead of hanging or silently dropping the
    /// dead operator's partition of the output.
    OperatorPanicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownField(name) => write!(f, "unknown field `{name}`"),
            EngineError::TypeMismatch {
                field,
                expected,
                actual,
            } => write!(f, "field `{field}`: expected {expected}, found {actual}"),
            EngineError::InvalidConfig(msg) => write!(f, "invalid operator config: {msg}"),
            EngineError::InvalidGraph(msg) => write!(f, "invalid query graph: {msg}"),
            EngineError::MissingLineage(id) => {
                write!(f, "lineage references unarchived base tuple {id}")
            }
            EngineError::OperatorPanicked(msg) => {
                write!(f, "operator panicked during execution: {msg}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience alias used across the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Best-effort extraction of a human-readable message from a panic
/// payload (the `Box<dyn Any>` a joined thread hands back). Shared by the
/// parallel executors when they convert worker panics into
/// [`EngineError::OperatorPanicked`].
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EngineError::UnknownField("weight".into()).to_string(),
            "unknown field `weight`"
        );
        let e = EngineError::TypeMismatch {
            field: "x".into(),
            expected: "Float",
            actual: "Str",
        };
        assert!(e.to_string().contains("expected Float"));
        assert!(EngineError::MissingLineage(7).to_string().contains('7'));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&EngineError::InvalidConfig("x".into()));
    }
}
