//! # ustream-core — the uncertainty-aware stream engine
//!
//! Reproduction of the core contribution of *Capturing Data Uncertainty
//! in High-Volume Stream Processing* (Diao et al., CIDR 2009): a stream
//! system in which uncertain data items are continuous random variables
//! whose pdfs travel with the tuples, are transformed by relational
//! operators, and surface to applications as result distributions or
//! confidence regions.
//!
//! Architecture (paper §3, Fig. 2):
//!
//! - [`toperator`] — the data capture & transformation (T) operator
//!   contract; concrete implementations live in `ustream-inference`
//!   (RFID particle filter) and `radar-sim` (radar voxel MA-CLT).
//! - [`tuple`](mod@tuple), [`schema`], [`value`], [`updf`] — uncertain tuples: each
//!   uncertain attribute carries a [`updf::Updf`] distribution payload;
//!   tuples carry an existence probability and [`lineage::Lineage`].
//! - [`ops`] — probabilistic selection, projection (linear / monotone /
//!   Delta-method transforms), windowed group-by aggregation with every
//!   Table-2 strategy, and windowed probabilistic joins.
//! - [`query`] — box-arrow query graphs compiled into a [`query::CompiledPlan`]
//!   and executed single-threaded (tuple-at-a-time or batched) or
//!   multi-threaded (crossbeam channels carrying [`batch::Batch`]es).
//! - [`confidence`] — intervals, highest-density unions, ellipsoids.
//! - [`window`] — tumbling/count/sliding event-time windows.
//! - [`canon`] — the canonical `(ts, content)` tuple order shared by
//!   window emission, exchange boundaries, and sharded sink merging.

pub mod batch;
pub mod canon;
pub mod columnar;
pub mod confidence;
pub mod error;
pub mod lineage;
pub mod metrics;
pub mod ops;
pub mod query;
pub mod schema;
pub mod toperator;
pub mod tuple;
pub mod updf;
pub mod value;
pub mod window;

pub use batch::{Batch, BatchPool};
pub use canon::canonical_sort;
pub use columnar::{Column, Columns};
pub use confidence::{confidence_region, ConfidenceRegion};
pub use error::{panic_message, EngineError, Result};
pub use lineage::{ApproxLineage, Archive, Lineage};
pub use metrics::{Metered, MetricsHandle, OpMetrics, OpTelemetry};
pub use ops::{Operator, Partitioning};
pub use query::{CompiledPlan, ExecSession, NodeId, QueryGraph, ThreadedExecutor};
pub use schema::{DataType, Field, Schema};
pub use toperator::TransformOperator;
pub use tuple::Tuple;
pub use updf::{ConversionPolicy, Updf};
pub use value::{GroupKey, Value};
