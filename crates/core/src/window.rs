//! Time-based windows (CQL-style, matching the paper's queries:
//! `[Now]`, `[Range 5 seconds]` with `Rstream` semantics).

use crate::tuple::Tuple;
use std::collections::VecDeque;

/// A tumbling (non-overlapping) event-time window. Tuples are assigned to
/// `[k·len, (k+1)·len)`; when a tuple from a later window arrives, the
/// finished window's contents are emitted as a batch — the paper's
/// "tumbling window of size 100 tuples / Range 5 seconds" aggregations
/// operate on these batches.
#[derive(Debug)]
pub struct TumblingWindow {
    len_ms: u64,
    current_start: Option<u64>,
    buf: Vec<Tuple>,
}

/// A closed window batch: its time span and contents.
#[derive(Debug)]
pub struct WindowBatch {
    pub start: u64,
    pub end: u64,
    pub tuples: Vec<Tuple>,
}

impl TumblingWindow {
    pub fn new(len_ms: u64) -> Self {
        assert!(len_ms > 0, "window length must be positive");
        TumblingWindow {
            len_ms,
            current_start: None,
            buf: Vec::new(),
        }
    }

    fn window_start(&self, ts: u64) -> u64 {
        (ts / self.len_ms) * self.len_ms
    }

    /// Insert a tuple; returns any window(s) that closed. Late tuples
    /// (before the current window) are folded into the current window —
    /// a simple, documented lateness policy.
    pub fn push(&mut self, t: Tuple) -> Vec<WindowBatch> {
        let ws = self.window_start(t.ts);
        match self.current_start {
            None => {
                self.current_start = Some(ws);
                self.buf.push(t);
                Vec::new()
            }
            Some(cur) if ws <= cur => {
                self.buf.push(t);
                Vec::new()
            }
            Some(cur) => {
                let batch = WindowBatch {
                    start: cur,
                    end: cur + self.len_ms,
                    tuples: std::mem::take(&mut self.buf),
                };
                self.current_start = Some(ws);
                self.buf.push(t);
                vec![batch]
            }
        }
    }

    /// Close the open window if event time has advanced past its end —
    /// the same trigger [`TumblingWindow::push`] applies when a tuple
    /// from a later window arrives, driven by an external watermark
    /// instead of a tuple. A caller advancing to `watermark` promises no
    /// future tuple with `ts < watermark`; a tuple at exactly
    /// `watermark` would start the next window, so `end ≤ watermark`
    /// closes.
    pub fn close_through(&mut self, watermark: u64) -> Option<WindowBatch> {
        let cur = self.current_start?;
        if cur + self.len_ms > watermark {
            return None;
        }
        self.current_start = None;
        if self.buf.is_empty() {
            return None;
        }
        Some(WindowBatch {
            start: cur,
            end: cur + self.len_ms,
            tuples: std::mem::take(&mut self.buf),
        })
    }

    /// Flush the open window (end of stream).
    pub fn flush(&mut self) -> Option<WindowBatch> {
        let cur = self.current_start.take()?;
        if self.buf.is_empty() {
            return None;
        }
        Some(WindowBatch {
            start: cur,
            end: cur + self.len_ms,
            tuples: std::mem::take(&mut self.buf),
        })
    }

    pub fn pending_len(&self) -> usize {
        self.buf.len()
    }

    pub fn len_ms(&self) -> u64 {
        self.len_ms
    }
}

/// A count-based tumbling window (the paper's Table 2 uses "a tumbling
/// window of size of 100 tuples").
#[derive(Debug)]
pub struct CountWindow {
    size: usize,
    buf: Vec<Tuple>,
}

impl CountWindow {
    pub fn new(size: usize) -> Self {
        assert!(size > 0);
        CountWindow {
            size,
            buf: Vec::new(),
        }
    }

    pub fn push(&mut self, t: Tuple) -> Option<Vec<Tuple>> {
        self.buf.push(t);
        if self.buf.len() >= self.size {
            Some(std::mem::take(&mut self.buf))
        } else {
            None
        }
    }

    pub fn flush(&mut self) -> Option<Vec<Tuple>> {
        if self.buf.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.buf))
        }
    }

    pub fn pending_len(&self) -> usize {
        self.buf.len()
    }
}

/// A sliding event-time buffer keeping the last `range_ms` of tuples —
/// the `[Range 3 seconds]` join windows of Q2.
#[derive(Debug)]
pub struct SlidingBuffer {
    range_ms: u64,
    buf: VecDeque<Tuple>,
}

impl SlidingBuffer {
    pub fn new(range_ms: u64) -> Self {
        assert!(range_ms > 0);
        SlidingBuffer {
            range_ms,
            buf: VecDeque::new(),
        }
    }

    /// Insert a tuple and evict everything older than `ts − range`.
    /// Returns how many tuples fell off the front, so an index kept
    /// alongside the buffer (e.g. a join key index) can realign.
    pub fn push(&mut self, t: Tuple) -> usize {
        let cutoff = t.ts.saturating_sub(self.range_ms);
        self.buf.push_back(t);
        self.evict_cutoff(cutoff)
    }

    /// Evict against an externally-advanced watermark (e.g. the other
    /// join input's clock), without inserting. Returns the evicted count.
    pub fn evict_before(&mut self, watermark: u64) -> usize {
        let cutoff = watermark.saturating_sub(self.range_ms);
        self.evict_cutoff(cutoff)
    }

    fn evict_cutoff(&mut self, cutoff: u64) -> usize {
        let mut evicted = 0;
        while let Some(front) = self.buf.front() {
            if front.ts < cutoff {
                self.buf.pop_front();
                evicted += 1;
            } else {
                break;
            }
        }
        evicted
    }

    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.buf.iter()
    }

    /// The tuple at position `i` from the front (insertion order), if
    /// still buffered.
    pub fn get(&self, i: usize) -> Option<&Tuple> {
        self.buf.get(i)
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::value::Value;

    fn t(ts: u64) -> Tuple {
        let s = Schema::builder().field("v", DataType::Int).build();
        Tuple::new(s, vec![Value::from(ts as i64)], ts)
    }

    #[test]
    fn tumbling_assigns_and_closes() {
        let mut w = TumblingWindow::new(1000);
        assert!(w.push(t(100)).is_empty());
        assert!(w.push(t(900)).is_empty());
        let closed = w.push(t(1500));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].start, 0);
        assert_eq!(closed[0].end, 1000);
        assert_eq!(closed[0].tuples.len(), 2);
        assert_eq!(w.pending_len(), 1);
    }

    #[test]
    fn tumbling_flush_emits_open_window() {
        let mut w = TumblingWindow::new(1000);
        w.push(t(100));
        let b = w.flush().unwrap();
        assert_eq!(b.tuples.len(), 1);
        assert!(w.flush().is_none());
    }

    #[test]
    fn tumbling_late_tuples_fold_into_current() {
        let mut w = TumblingWindow::new(1000);
        w.push(t(1500));
        assert!(w.push(t(200)).is_empty()); // late, folded in
        let b = w.flush().unwrap();
        assert_eq!(b.tuples.len(), 2);
    }

    #[test]
    fn tumbling_skips_empty_windows() {
        let mut w = TumblingWindow::new(1000);
        w.push(t(100));
        // Jump several windows ahead: only one close for the old window.
        let closed = w.push(t(5500));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].start, 0);
    }

    #[test]
    fn count_window_batches() {
        let mut w = CountWindow::new(3);
        assert!(w.push(t(1)).is_none());
        assert!(w.push(t(2)).is_none());
        let batch = w.push(t(3)).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(w.pending_len(), 0);
        w.push(t(4));
        assert_eq!(w.flush().unwrap().len(), 1);
    }

    #[test]
    fn sliding_buffer_evicts_by_range() {
        let mut b = SlidingBuffer::new(3000);
        assert_eq!(b.push(t(1000)), 0);
        assert_eq!(b.push(t(2000)), 0);
        assert_eq!(b.push(t(4500)), 1, "t=1000 evicted by 4500−3000 cutoff");
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(0).unwrap().ts, 2000);
        assert_eq!(b.evict_before(10_000), 2);
        assert!(b.is_empty());
        assert!(b.get(0).is_none());
    }

    #[test]
    fn sliding_buffer_keeps_in_range() {
        let mut b = SlidingBuffer::new(3000);
        for ts in [0u64, 1000, 2000, 3000] {
            b.push(t(ts));
        }
        assert_eq!(b.len(), 4, "all within 3 s of the newest");
    }
}
