//! Attribute values: certain scalars plus uncertain distribution payloads.

use crate::updf::Updf;

/// One attribute value inside a tuple.
///
/// Certain variants hold exact data (tag ids, timestamps, group labels);
/// `Uncertain` holds a boxed [`Updf`] — boxed so the common certain case
/// stays small and moves cheaply through operator queues.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Milliseconds since the stream epoch.
    Time(u64),
    /// An uncertain (continuous random) value carrying its distribution.
    Uncertain(Box<Updf>),
}

impl Value {
    /// Short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Bool(_) => "Bool",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
            Value::Time(_) => "Time",
            Value::Uncertain(_) => "Uncertain",
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float view: accepts Float and Int (widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_time(&self) -> Option<u64> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    pub fn as_updf(&self) -> Option<&Updf> {
        match self {
            Value::Uncertain(u) => Some(u),
            _ => None,
        }
    }

    /// Equality for *certain* values only (used by group keys and certain
    /// predicates); uncertain values never compare equal — conditioning
    /// on them is the job of probabilistic predicates, not `==`.
    pub fn certain_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Time(a), Value::Time(b)) => a == b,
            _ => false,
        }
    }

    /// Expected value when a single number is needed: the value itself for
    /// numerics, the distribution mean for uncertain scalars.
    pub fn expectation(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::Uncertain(u) if u.dim() == 1 => Some(u.mean()),
            _ => None,
        }
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Updf> for Value {
    fn from(u: Updf) -> Self {
        Value::Uncertain(Box::new(u))
    }
}

/// Hashable group-by key derived from certain attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    Unit,
    Int(i64),
    Str(String),
    Pair(Box<GroupKey>, Box<GroupKey>),
}

impl GroupKey {
    /// Build from a certain value; floats are rejected (unstable keys).
    pub fn from_value(v: &Value) -> Option<GroupKey> {
        match v {
            Value::Int(i) => Some(GroupKey::Int(*i)),
            Value::Str(s) => Some(GroupKey::Str(s.clone())),
            Value::Bool(b) => Some(GroupKey::Int(*b as i64)),
            Value::Time(t) => Some(GroupKey::Int(*t as i64)),
            _ => None,
        }
    }

    pub fn pair(a: GroupKey, b: GroupKey) -> GroupKey {
        GroupKey::Pair(Box::new(a), Box::new(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_prob::dist::Dist;

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from(7i64).as_float(), Some(7.0));
        assert_eq!(Value::from("tag").as_str(), Some("tag"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::Time(99).as_time(), Some(99));
        assert!(Value::Null.as_float().is_none());
    }

    #[test]
    fn certain_eq_semantics() {
        assert!(Value::from(1i64).certain_eq(&Value::from(1i64)));
        assert!(!Value::from(1i64).certain_eq(&Value::from(1.0)));
        let u = Value::from(crate::updf::Updf::Parametric(Dist::gaussian(0.0, 1.0)));
        assert!(!u.certain_eq(&u.clone()), "uncertain values never ==");
    }

    #[test]
    fn expectation_of_uncertain() {
        let u = Value::from(crate::updf::Updf::Parametric(Dist::gaussian(4.0, 1.0)));
        assert!((u.expectation().unwrap() - 4.0).abs() < 1e-12);
        assert!(Value::from("x").expectation().is_none());
    }

    #[test]
    fn group_keys() {
        let a = GroupKey::from_value(&Value::from(3i64)).unwrap();
        let b = GroupKey::from_value(&Value::from(3i64)).unwrap();
        assert_eq!(a, b);
        assert!(GroupKey::from_value(&Value::from(1.5)).is_none());
        let p = GroupKey::pair(a.clone(), GroupKey::Str("zone".into()));
        let q = GroupKey::pair(b, GroupKey::Str("zone".into()));
        assert_eq!(p, q);
        use std::collections::HashMap;
        let mut m: HashMap<GroupKey, i32> = HashMap::new();
        m.insert(p, 1);
        assert_eq!(m.get(&q), Some(&1));
    }
}
