//! Property-based tests for the engine's structural invariants:
//! windows partition their input, lineage forms a semilattice, selection
//! composes multiplicatively, and the Poisson–binomial COUNT has the
//! exact mean/variance.

use proptest::prelude::*;
use std::sync::Arc;
use ustream_core::lineage::Lineage;
use ustream_core::ops::aggregate::{AggFunc, AggSpec, Strategy, WindowKind, WindowedAggregate};
use ustream_core::ops::project::{Derivation, Project};
use ustream_core::ops::select::{Predicate, Select};
use ustream_core::ops::Operator;
use ustream_core::schema::{DataType, Schema};
use ustream_core::tuple::Tuple;
use ustream_core::updf::Updf;
use ustream_core::value::{GroupKey, Value};
use ustream_core::window::{CountWindow, SlidingBuffer, TumblingWindow};
use ustream_core::Batch;
use ustream_prob::dist::Dist;
use ustream_prob::samples::WeightedSamples;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .field("v", DataType::Int)
        .field("x", DataType::Uncertain)
        .build()
}

fn tup(ts: u64, v: i64, mean: f64) -> Tuple {
    Tuple::new(
        schema(),
        vec![
            Value::from(v),
            Value::from(Updf::Parametric(Dist::gaussian(mean, 1.0))),
        ],
        ts,
    )
}

fn lineage_from(ids: Vec<u64>) -> Lineage {
    let mut l = Lineage::empty();
    for id in ids {
        l = l.union(&Lineage::base(id));
    }
    l
}

/// Per-tuple recipe for the mixed-payload batch generator: timestamp,
/// group key, Gaussian mean, existence, whether the heterogeneous
/// column holds a sample cloud instead of a Gaussian (odd = cloud), and
/// a lineage id.
type MixedRow = (u64, i64, f64, f64, u64, u64);

fn mixed_schema() -> Arc<Schema> {
    Schema::builder()
        .field("k", DataType::Int)
        .field("s", DataType::Str)
        .field("f", DataType::Float)
        .field("x", DataType::Uncertain)
        .field("m", DataType::Uncertain)
        .build()
}

/// A shared-schema batch whose columns exercise every columnar layout:
/// an Int key, a dictionary string, a Float, an all-Gaussian Updf column
/// (struct-of-arrays), and a heterogeneous Updf column that demotes to
/// row storage whenever any recipe asks for a sample cloud.
fn mixed_batch(rows: &[MixedRow]) -> Vec<Tuple> {
    let s = mixed_schema();
    let mut tss: Vec<u64> = rows.iter().map(|r| r.0).collect();
    tss.sort();
    rows.iter()
        .zip(tss)
        .map(|(&(_, k, mean, existence, cloudy, lin), ts)| {
            let m = if cloudy % 2 == 1 {
                Value::from(Updf::Samples(WeightedSamples::new(
                    vec![mean, mean + 1.0, mean - 0.5],
                    vec![1.0, 2.0, 0.5],
                )))
            } else {
                Value::from(Updf::Parametric(Dist::gaussian(mean + 0.25, 1.5)))
            };
            Tuple::derived(
                s.clone(),
                vec![
                    Value::Int(k),
                    Value::Str(format!("g{k}")),
                    Value::Float(mean * 2.0),
                    Value::from(Updf::Parametric(Dist::gaussian(mean, 1.0))),
                    m,
                ],
                ts,
                existence,
                lineage_from(vec![lin]),
            )
        })
        .collect()
}

/// Exact tuple fingerprint: ts, existence bits, lineage ids, and the
/// full Debug rendering of every value.
fn fingerprint(t: &Tuple) -> String {
    format!(
        "ts={} ex={:016x} lin={:?} vals={:?}",
        t.ts,
        t.existence.to_bits(),
        t.lineage.ids(),
        t.values()
    )
}

fn arb_mixed_rows() -> impl proptest::strategy::Strategy<Value = Vec<MixedRow>> {
    proptest::collection::vec(
        (
            0u64..5_000,
            0i64..6,
            -3.0f64..3.0,
            0.01f64..1.0,
            0u64..2,
            0u64..100,
        ),
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tumbling windows partition the input: every pushed tuple comes out
    /// exactly once across closed batches + flush.
    #[test]
    fn tumbling_partitions_input(mut tss in proptest::collection::vec(0u64..50_000, 1..120)) {
        tss.sort();
        let mut w = TumblingWindow::new(1_000);
        let mut seen = 0usize;
        for &ts in &tss {
            for b in w.push(tup(ts, 0, 0.0)) {
                seen += b.tuples.len();
                // Batch bounds honored for in-order input.
                for t in &b.tuples {
                    prop_assert!(t.ts >= b.start && t.ts < b.end);
                }
            }
        }
        if let Some(b) = w.flush() {
            seen += b.tuples.len();
        }
        prop_assert_eq!(seen, tss.len());
    }

    /// Count windows emit exact-size batches plus one remainder.
    #[test]
    fn count_window_batches_exact(n in 1usize..200, size in 1usize..20) {
        let mut w = CountWindow::new(size);
        let mut batches = Vec::new();
        for i in 0..n {
            if let Some(b) = w.push(tup(i as u64, 0, 0.0)) {
                batches.push(b.len());
            }
        }
        let rem = w.flush().map_or(0, |b| b.len());
        prop_assert!(batches.iter().all(|&b| b == size));
        prop_assert_eq!(batches.len() * size + rem, n);
        prop_assert!(rem < size || (n % size == 0 && rem == 0));
    }

    /// Sliding buffers keep exactly the tuples within range of the newest
    /// timestamp (for monotone input).
    #[test]
    fn sliding_buffer_range_invariant(mut tss in proptest::collection::vec(0u64..100_000, 1..100), range in 1u64..10_000) {
        tss.sort();
        let mut buf = SlidingBuffer::new(range);
        for &ts in &tss {
            buf.push(tup(ts, 0, 0.0));
            let newest = ts;
            for t in buf.iter() {
                prop_assert!(t.ts + range >= newest, "stale tuple survived");
            }
        }
        // All tuples within range of the final timestamp must be present.
        let last = *tss.last().unwrap();
        let expected = tss.iter().filter(|&&t| t + range >= last).count();
        prop_assert_eq!(buf.len(), expected);
    }

    /// Lineage union is commutative, associative, idempotent; overlap is
    /// symmetric and consistent with shared elements.
    #[test]
    fn lineage_semilattice(
        a in proptest::collection::vec(0u64..200, 0..20),
        b in proptest::collection::vec(0u64..200, 0..20),
        c in proptest::collection::vec(0u64..200, 0..20),
    ) {
        let (la, lb, lc) = (lineage_from(a.clone()), lineage_from(b.clone()), lineage_from(c));
        prop_assert_eq!(la.union(&lb), lb.union(&la));
        prop_assert_eq!(la.union(&lb).union(&lc), la.union(&lb.union(&lc)));
        prop_assert_eq!(la.union(&la), la.clone());
        prop_assert_eq!(la.overlaps(&lb), lb.overlaps(&la));
        let shares = a.iter().any(|x| b.contains(x));
        prop_assert_eq!(la.overlaps(&lb), shares);
    }

    /// Two selections compose multiplicatively on existence, and the
    /// survival probability never exceeds either single selection's.
    #[test]
    fn select_composes_multiplicatively(mean in -3.0f64..3.0, c1 in -2.0f64..2.0, c2 in -2.0f64..2.0) {
        let mk = |c: f64| Select::new(Predicate::UncertainAbove("x".into(), c), 0.0)
            .without_conditioning();
        let (mut s1, mut s2) = (mk(c1), mk(c2));
        let t = tup(0, 0, mean);
        let p1 = Dist::gaussian(mean, 1.0).prob_above(c1);
        let p2 = Dist::gaussian(mean, 1.0).prob_above(c2);
        let out1 = s1.process(0, t);
        prop_assume!(!out1.is_empty());
        let after1 = out1.into_iter().next().unwrap();
        prop_assert!((after1.existence - p1).abs() < 1e-9);
        let out2 = s2.process(0, after1);
        if !out2.is_empty() {
            let e = out2[0].existence;
            prop_assert!((e - p1 * p2).abs() < 1e-9);
            prop_assert!(e <= p1 + 1e-12 && e <= p2 + 1e-12);
        }
    }

    /// Columnar decomposition is lossless: columnarize → hydrate returns
    /// every tuple bit-identically — values, timestamps, existence bits,
    /// lineage — for arbitrary mixed-payload batches, including the
    /// heterogeneous column's row fallback.
    #[test]
    fn columnarize_hydrate_preserves_everything(rows in arb_mixed_rows()) {
        let tuples = mixed_batch(&rows);
        let want: Vec<String> = tuples.iter().map(fingerprint).collect();
        let mut b = Batch::from(tuples);
        prop_assert!(b.columnarize(), "shared schema must columnarize");
        prop_assert!(b.is_columnar());
        let got: Vec<String> = b.into_vec().iter().map(fingerprint).collect();
        prop_assert_eq!(got, want);
    }

    /// Columnar and row execution are observationally identical: the
    /// same Select → Project → keyed WindowedAggregate chain over the
    /// same tuples produces value/ts/existence/lineage-identical output
    /// streams whether the batch enters as rows or as columns (where the
    /// operators take their vectorized fast paths).
    #[test]
    fn columnar_execution_identical_to_rows(rows in arb_mixed_rows()) {
        let mk_chain = || {
            let sel = Select::new(Predicate::UncertainAbove("x".into(), 0.0), 0.05)
                .without_conditioning();
            let proj = Project::new(vec![
                Derivation::CertainLinear {
                    input: "f".into(),
                    a: 2.0,
                    b: 1.0,
                    out: "cf".into(),
                },
                Derivation::Linear {
                    input: "x".into(),
                    a: 0.5,
                    b: 1.0,
                    out: "y".into(),
                },
            ]);
            let agg = WindowedAggregate::keyed_by_field(
                WindowKind::Tumbling(1_000),
                "k",
                vec![AggSpec {
                    field: "y".into(),
                    func: AggFunc::Sum,
                    out: "total".into(),
                    strategy: Strategy::Clt,
                }],
            );
            (sel, proj, agg)
        };
        let run = |mut batch: Batch| -> Vec<String> {
            let (mut sel, mut proj, mut agg) = mk_chain();
            batch = sel.process_batch(0, batch);
            batch = proj.process_batch(0, batch);
            let mut out = agg.process_batch(0, batch).into_vec();
            out.extend(agg.flush());
            out.iter().map(fingerprint).collect()
        };
        let tuples = mixed_batch(&rows);
        let row_out = run(Batch::from(tuples.clone()));
        let mut columnar = Batch::from(tuples);
        prop_assert!(columnar.columnarize());
        let col_out = run(columnar);
        prop_assert_eq!(col_out, row_out);
    }

    /// The field-keyed join's indexed probe (and its columnar key-column
    /// path) is observationally identical to the closure-keyed row scan:
    /// same matches, same order, same existence bits and lineage — for
    /// arbitrary mixed batches fed to both ports, as rows and as columns.
    #[test]
    fn join_indexed_probe_identical_to_row_scan(
        left_rows in arb_mixed_rows(),
        right_rows in arb_mixed_rows(),
        range in 500u64..8_000,
        min_prob in 0.0f64..0.6,
    ) {
        use ustream_core::ops::join::{JoinCondition, WindowJoin};
        let mut closure_j = WindowJoin::new(
            range,
            JoinCondition::KeyEquals {
                left: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
                right: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
            },
            min_prob,
        );
        let mut field_j = WindowJoin::keyed_by_fields(range, "k", "k", min_prob);
        let mut field_col_j = WindowJoin::keyed_by_fields(range, "k", "k", min_prob);
        // Interleave both sides in global ts order, like the executors do.
        let mut feed: Vec<(usize, Tuple)> = mixed_batch(&left_rows)
            .into_iter()
            .map(|t| (0usize, t))
            .chain(mixed_batch(&right_rows).into_iter().map(|t| (1usize, t)))
            .collect();
        feed.sort_by_key(|(port, t)| (t.ts, *port));
        let mut scan_out = Vec::new();
        let mut idx_out = Vec::new();
        let mut col_out = Vec::new();
        for (port, t) in feed {
            scan_out.extend(closure_j.process(port, t.clone()).iter().map(fingerprint));
            idx_out.extend(field_j.process(port, t.clone()).iter().map(fingerprint));
            let mut b = Batch::one(t);
            b.columnarize();
            col_out.extend(field_col_j.process_batch(port, b).iter().map(fingerprint));
        }
        prop_assert_eq!(&idx_out, &scan_out, "indexed probe diverged from row scan");
        prop_assert_eq!(&col_out, &scan_out, "columnar key path diverged from row scan");
    }

    /// Poisson–binomial COUNT: mean = Σeᵢ, variance = Σeᵢ(1−eᵢ), and the
    /// pmf support is [0, n].
    #[test]
    fn count_distribution_exact_moments(es in proptest::collection::vec(0.01f64..0.99, 1..25)) {
        let mut agg = WindowedAggregate::new(
            WindowKind::Count(es.len()),
            |_t: &Tuple| GroupKey::Unit,
            vec![AggSpec {
                field: "x".into(),
                func: AggFunc::Count,
                out: "cnt".into(),
                strategy: Strategy::Auto,
            }],
        );
        let mut out = Vec::new();
        for (i, &e) in es.iter().enumerate() {
            let mut t = tup(i as u64, 0, 0.0);
            t.existence = e;
            out.extend(agg.process(0, t));
        }
        out.extend(agg.flush());
        prop_assert_eq!(out.len(), 1);
        let cnt = out[0].updf("cnt").unwrap();
        let want_mean: f64 = es.iter().sum();
        let want_var: f64 = es.iter().map(|e| e * (1.0 - e)).sum();
        prop_assert!((cnt.mean() - want_mean).abs() < 1e-6);
        prop_assert!((cnt.variance() - want_var).abs() < 0.09, "pmf-grid variance within bin correction");
        prop_assert!(cnt.prob_in(-0.6, es.len() as f64 + 0.5) > 1.0 - 1e-9);
    }
}
