//! Always-on telemetry for the sharded session.
//!
//! [`SessionTelemetry`] is the bundle of live handles a
//! [`crate::session::ShardedSession`] updates while it runs: per-stage
//! and per-shard routing counters, exchange forward counts, stage pool
//! depths, the sealed watermark, per-stage **watermark-lag** quantile
//! sketches, the per-operator [`OpTelemetry`] counters harvested from
//! every stage×shard [`ustream_core::query::ExecSession`], and the
//! structured [`EventJournal`]. Every handle is a relaxed atomic cell
//! (or, for the journal, batch-granular), so the session leaves all of
//! it enabled in production.
//!
//! **Watermark-lag semantics.** Each time a stage *seals* (the driver
//! broadcasts the current watermark to the stage's shards during a
//! sweep), the session records `high_water − previously_sealed` into
//! the stage's sketch — the span of event time that had accumulated,
//! unsealed, since the stage's previous seal. A pipeline drained after
//! every batch shows lags near the batch's timestamp span; a pipeline
//! drained rarely (or a stage starved behind a slow exchange) shows
//! the p95/p99 of that distribution growing. The single-pipeline core
//! records the same quantity for its one stage on every watermark
//! advance.
//!
//! Nothing here is wired to a server: [`SessionTelemetry::bind_registry`]
//! adopts every handle into a [`MetricsRegistry`] under the
//! `engine_*` families (see the README's Observability section for the
//! naming table), so the same cells the driver bumps feed a served
//! metrics surface.

use std::sync::{Arc, Mutex};
use ustream_core::OpTelemetry;
use ustream_telemetry::{
    Counter, EventJournal, Gauge, MetricsRegistry, QuantileSketch, TraceStore,
};

/// One operator's counters plus its identity in the sharded plan.
#[derive(Debug, Clone)]
pub struct OpTelemetryEntry {
    /// Operator name (as declared by [`ustream_core::Operator::name`]).
    pub op: String,
    /// Original (whole-graph) node index.
    pub node: usize,
    pub stage: usize,
    pub shard: usize,
    pub telem: OpTelemetry,
}

/// Live telemetry handles for one sharded session; `Clone` shares the
/// cells. Built by the session, readable from any thread while it runs.
#[derive(Debug, Clone)]
pub struct SessionTelemetry {
    stages: usize,
    shards: usize,
    /// Batches accepted by `push_batch`.
    pub batches_pushed: Counter,
    /// Tuples accepted by `push_batch`.
    pub tuples_pushed: Counter,
    /// Tuples routed into `[stage][shard]` slot sessions.
    routed: Vec<Vec<Counter>>,
    /// Tuples forwarded across the exchange into each stage (index 0
    /// unused: stage 0 has no upstream exchange).
    exchange_forwarded: Vec<Counter>,
    /// Eager (pipelined) forward rounds per stage that delivered at
    /// least one tuple ahead of a drain/finish barrier (index 0 unused).
    eager_forwards: Vec<Counter>,
    /// Sealed intervals forwarded eagerly into each stage since its last
    /// drain/finish barrier — how deep the pipeline is running ahead
    /// (reset to 0 at every barrier; index 0 unused).
    interval_depth: Vec<Gauge>,
    /// Pending exchange-pool depth per stage, sampled at each sweep.
    pool_depth: Vec<Gauge>,
    /// The most recently sealed watermark.
    pub watermark_sealed: Gauge,
    /// Per-stage watermark-lag sketches (see module docs).
    watermark_lag: Vec<QuantileSketch>,
    /// Per-operator counters harvested from the slot sessions.
    ops: Vec<OpTelemetryEntry>,
    journal: EventJournal,
    /// Causal span store; sampling disabled until
    /// [`ustream_telemetry::TraceStore::configure`] turns it on.
    traces: TraceStore,
    /// The rendered [`crate::plan::ShardPlan::describe`] topology,
    /// captured when the session is built (shared across clones).
    plan: Arc<Mutex<String>>,
}

impl SessionTelemetry {
    /// Fresh handles for a `stages × shards` plan (1×1 for the
    /// single-pipeline core).
    pub(crate) fn new(stages: usize, shards: usize) -> SessionTelemetry {
        SessionTelemetry {
            stages,
            shards,
            batches_pushed: Counter::new(),
            tuples_pushed: Counter::new(),
            routed: (0..stages)
                .map(|_| (0..shards).map(|_| Counter::new()).collect())
                .collect(),
            exchange_forwarded: (0..stages).map(|_| Counter::new()).collect(),
            eager_forwards: (0..stages).map(|_| Counter::new()).collect(),
            interval_depth: (0..stages).map(|_| Gauge::new()).collect(),
            pool_depth: (0..stages).map(|_| Gauge::new()).collect(),
            watermark_sealed: Gauge::new(),
            watermark_lag: (0..stages).map(|_| QuantileSketch::new()).collect(),
            ops: Vec::new(),
            journal: EventJournal::default(),
            traces: TraceStore::default(),
            plan: Arc::new(Mutex::new(String::new())),
        }
    }

    pub(crate) fn push_op_entries(&mut self, entries: impl IntoIterator<Item = OpTelemetryEntry>) {
        self.ops.extend(entries);
    }

    pub fn num_stages(&self) -> usize {
        self.stages
    }

    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Tuples routed into `(stage, shard)` so far.
    pub fn routed(&self, stage: usize, shard: usize) -> &Counter {
        &self.routed[stage][shard]
    }

    /// Tuples forwarded across the exchange into `stage` (always 0 for
    /// stage 0).
    pub fn exchange_forwarded(&self, stage: usize) -> &Counter {
        &self.exchange_forwarded[stage]
    }

    /// Eager forward rounds that delivered tuples into `stage` ahead of
    /// a drain/finish barrier (always 0 for stage 0, and for sessions
    /// running with pipelined delivery disabled).
    pub fn eager_forwards(&self, stage: usize) -> &Counter {
        &self.eager_forwards[stage]
    }

    /// Sealed intervals forwarded eagerly into `stage` since its last
    /// drain/finish barrier.
    pub fn interval_depth(&self, stage: usize) -> &Gauge {
        &self.interval_depth[stage]
    }

    /// Pending exchange-pool depth of `stage` at the last sweep.
    pub fn pool_depth(&self, stage: usize) -> &Gauge {
        &self.pool_depth[stage]
    }

    /// The watermark-lag sketch of `stage`.
    pub fn watermark_lag(&self, stage: usize) -> &QuantileSketch {
        &self.watermark_lag[stage]
    }

    /// Per-operator counters, one entry per (stage, shard, node).
    pub fn op_entries(&self) -> &[OpTelemetryEntry] {
        &self.ops
    }

    /// The session's structured event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The session's causal span store. Call
    /// [`ustream_telemetry::TraceStore::configure`] on it to turn on
    /// 1-in-N batch sampling; it ships disabled.
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// The rendered plan topology this session executes (empty until
    /// the session is built).
    pub fn plan_text(&self) -> String {
        self.plan.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    pub(crate) fn set_plan(&self, text: String) {
        *self.plan.lock().unwrap_or_else(|p| p.into_inner()) = text;
    }

    /// Adopt every handle into `registry` under the `engine_*`
    /// families, labeled by stage/shard/operator. Idempotent for the
    /// same registry; the registered cells are the live ones, so
    /// subsequent session activity is visible through the registry with
    /// no further plumbing.
    pub fn bind_registry(&self, registry: &MetricsRegistry) {
        registry.set_help(
            "engine_batches_pushed_total",
            "Batches accepted by push_batch",
        );
        registry.set_help(
            "engine_tuples_pushed_total",
            "Tuples accepted by push_batch",
        );
        registry.set_help("engine_watermark_sealed", "Most recently sealed watermark");
        registry.set_help(
            "engine_shard_routed_tuples_total",
            "Tuples routed into each (stage, shard) slot session",
        );
        registry.set_help(
            "engine_exchange_forwarded_tuples_total",
            "Tuples forwarded across the exchange into each stage",
        );
        registry.set_help(
            "engine_exchange_eager_forwards_total",
            "Eager (pipelined) forward rounds delivering tuples into each stage ahead of a barrier",
        );
        registry.set_help(
            "engine_exchange_interval_depth",
            "Sealed intervals forwarded eagerly into each stage since its last drain/finish",
        );
        registry.set_help(
            "engine_stage_pool_depth",
            "Pending exchange-pool depth per stage, sampled at each sweep",
        );
        registry.set_help(
            "engine_watermark_lag",
            "Event-time span sealed per stage seal (see README: watermark-lag semantics)",
        );
        registry.set_help(
            "engine_watermark_lag_merged",
            "Cross-stage merge of every stage's watermark-lag sketch",
        );
        registry.adopt_counter("engine_batches_pushed_total", &[], &self.batches_pushed);
        registry.adopt_counter("engine_tuples_pushed_total", &[], &self.tuples_pushed);
        registry.adopt_gauge("engine_watermark_sealed", &[], &self.watermark_sealed);
        for stage in 0..self.stages {
            let s = stage.to_string();
            for shard in 0..self.shards {
                registry.adopt_counter(
                    "engine_shard_routed_tuples_total",
                    &[("stage", &s), ("shard", &shard.to_string())],
                    &self.routed[stage][shard],
                );
            }
            if stage > 0 {
                registry.adopt_counter(
                    "engine_exchange_forwarded_tuples_total",
                    &[("stage", &s)],
                    &self.exchange_forwarded[stage],
                );
                registry.adopt_counter(
                    "engine_exchange_eager_forwards_total",
                    &[("stage", &s)],
                    &self.eager_forwards[stage],
                );
                registry.adopt_gauge(
                    "engine_exchange_interval_depth",
                    &[("stage", &s)],
                    &self.interval_depth[stage],
                );
            }
            registry.adopt_gauge(
                "engine_stage_pool_depth",
                &[("stage", &s)],
                &self.pool_depth[stage],
            );
            registry.adopt_sketch(
                "engine_watermark_lag",
                &[("stage", &s)],
                &self.watermark_lag[stage],
            );
        }
        // One cross-stage lag summary: the per-stage sketches merged at
        // snapshot time, so scrapes see tail lag without client-side
        // folding.
        registry.adopt_merged_sketch("engine_watermark_lag_merged", &[], &self.watermark_lag);
        for e in &self.ops {
            let labels: Vec<(String, String)> = vec![
                ("op".to_string(), e.op.clone()),
                ("node".to_string(), e.node.to_string()),
                ("stage".to_string(), e.stage.to_string()),
                ("shard".to_string(), e.shard.to_string()),
            ];
            let labels: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            registry.adopt_counter("engine_op_tuples_in_total", &labels, &e.telem.tuples_in);
            registry.adopt_counter("engine_op_tuples_out_total", &labels, &e.telem.tuples_out);
            registry.adopt_counter("engine_op_batches_total", &labels, &e.telem.batches);
            registry.adopt_counter("engine_op_busy_ns_total", &labels, &e.telem.busy_ns);
            registry.adopt_counter(
                "engine_op_columnar_batches_total",
                &labels,
                &e.telem.columnar_batches,
            );
            registry.adopt_counter("engine_op_row_batches_total", &labels, &e.telem.row_batches);
        }
    }

    /// Record one stage seal: sample the lag since the stage's previous
    /// seal and move the sealed gauge forward.
    pub(crate) fn record_seal(&self, stage: usize, previously_sealed: u64, watermark: u64) {
        self.watermark_lag[stage].record(watermark.saturating_sub(previously_sealed) as f64);
        self.watermark_sealed.fetch_max(watermark as i64);
    }
}
