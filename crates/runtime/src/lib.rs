//! # ustream-runtime — the sharded parallel runtime
//!
//! Scales the batched execution engine across cores without giving up
//! the engine's determinism guarantees. A [`ShardedExecutor`] compiles a
//! query graph into a **staged shard plan** ([`plan::ShardPlan`]): the
//! graph is cut at keyed-anchor boundaries into exchange-connected
//! stages, each stage runs as **N key-partitioned pipelines** (full
//! copies of the stage subgraph built from a graph factory) on a
//! **persistent worker pool**, and every stage boundary re-shuffles by
//! the next stage's partition key with per-shard watermark/EOS
//! propagation and a canonical `(ts, content)` merge. Chained keyed
//! anchors — a windowed aggregate feeding a keyed equi-join, an
//! aggregate feeding an aggregate on a different key — shard
//! stage-by-stage instead of collapsing to a single pinned pipeline.
//!
//! Key design points:
//!
//! - **Logical shards ≠ physical workers.** Shard count fixes the
//!   partitioning (and therefore the output); the worker pool defaults
//!   to `min(shards, available cores)`. The same plan runs unchanged —
//!   and produces identical bytes — on a laptop and a 64-core box.
//! - **Soundness over parallelism.** Graphs containing a
//!   [`ustream_core::Partitioning::Global`] operator (count windows,
//!   probabilistic joins, sampling aggregates) fall back to the
//!   single-stage plan with classic cascading pinning; fully pinned
//!   plans run the plain single-pipeline session. Degraded plans lose
//!   speedup, never equivalence.
//! - **One execution core.** [`session::ShardedSession`] — the
//!   incremental sharded analogue of
//!   [`ustream_core::query::ExecSession`] (`push_batch` / `flush` /
//!   `drain_collected`) — backs both [`ShardedExecutor::run`] and the
//!   ingest server's engine thread, so serving scales with cores too.
//! - **Pooled batches.** Per-shard sub-batches are carved from a shared
//!   [`ustream_core::batch::BatchPool`]; spent buffers are recycled
//!   where batches end their lives, cutting steady-state allocator
//!   traffic.
//! - **Failure surfaces.** A panicking operator poisons its slot; the
//!   driver returns
//!   [`ustream_core::error::EngineError::OperatorPanicked`] — never a
//!   hang, never a silently truncated result.
//!
//! The thread-per-operator `ThreadedExecutor` in `ustream-core` remains
//! as the legacy comparison point; this runtime is the deployment path
//! (data parallelism scales with cores, not with plan shape).

pub mod merge;
pub mod plan;
pub mod report;
pub mod session;
pub mod telemetry;

pub use report::{OpReport, PlanReport, StageReport};

use plan::ShardPlan;
use session::ShardedSession;
use std::collections::HashMap;
use ustream_core::batch::Batch;
use ustream_core::canon::canonical_sort;
use ustream_core::error::Result;
use ustream_core::query::QueryGraph;
use ustream_core::{NodeId, Tuple};

/// The sharded executor. Construct with [`ShardedExecutor::new`], tune
/// with the `with_*` builders, run to completion with
/// [`ShardedExecutor::run`] or serve incrementally through
/// [`ShardedExecutor::session`].
pub struct ShardedExecutor {
    shards: usize,
    workers: Option<usize>,
    channel_capacity: usize,
    batch_size: usize,
    pool_buffers: usize,
    eager: bool,
}

impl ShardedExecutor {
    /// An executor with `shards` logical partitions. Worker count
    /// defaults to `min(shards, available cores)`; pipelined (eager)
    /// exchange delivery is on.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedExecutor {
            shards,
            workers: None,
            channel_capacity: 64,
            batch_size: 512,
            pool_buffers: 4 * shards,
            eager: true,
        }
    }

    /// Pin the worker-pool size (otherwise `min(shards, cores)`).
    /// Workers beyond the shard count would sit idle and are clamped.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0);
        self.workers = Some(workers);
        self
    }

    /// Bound each worker's inbox to `cap` in-flight messages
    /// (backpressure depth).
    pub fn with_channel_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0);
        self.channel_capacity = cap;
        self
    }

    /// Target tuples per routed sub-batch.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        self.batch_size = batch_size;
        self
    }

    /// Toggle **pipelined exchange delivery** (default on). When on,
    /// each watermark interval a push seals is forwarded downstream
    /// immediately — stage N+1 consumes interval k while stage N
    /// produces interval k+1 — and the lean hot-path optimizations
    /// (direct stage-0 routing, columnar exchange runs, single-slot
    /// fast paths) engage. Output is byte-identical either way; `false`
    /// restores the drain-barrier-only sweep for comparison runs.
    pub fn with_eager_exchange(mut self, eager: bool) -> Self {
        self.eager = eager;
        self
    }

    /// Routing decision the executor would make for `graph` — exposed
    /// for diagnostics and tests (e.g. asserting that an
    /// aggregate-into-join graph stages with an exchange, or that a
    /// probabilistic join degrades to a pinned single-shard plan). See
    /// [`ShardPlan::describe`] and [`ShardPlan::pinned_entries`] for the
    /// observability surface.
    pub fn shard_plan(graph: &QueryGraph) -> Result<ShardPlan> {
        let plan = graph.compile()?;
        Ok(ShardPlan::analyze(graph, &plan))
    }

    /// [`ShardPlan::describe`] for `graph`: the per-stage entry routing
    /// rules, exchange edges, and the pinned-entry count, rendered for
    /// logs — how an operator deployment notices that a plan change
    /// silently degraded parallelism.
    pub fn describe_plan(graph: &QueryGraph) -> Result<String> {
        Ok(Self::shard_plan(graph)?.describe())
    }

    /// Build an incremental [`ShardedSession`] over the graph produced
    /// by `factory`.
    ///
    /// `factory` is invoked once per shard plus once for the routing
    /// prototype and must build the same graph every time (same
    /// operators in the same order with the same configuration —
    /// enforced structurally, trusted behaviorally). With one shard, or
    /// a plan that cannot parallelize, the session wraps a plain
    /// single-pipeline [`ustream_core::query::ExecSession`].
    pub fn session(&self, factory: impl Fn() -> QueryGraph) -> Result<ShardedSession> {
        ShardedSession::build(
            self.shards,
            self.workers,
            self.channel_capacity,
            self.batch_size,
            self.pool_buffers,
            self.eager,
            &factory,
        )
    }

    /// Run the graph produced by `factory` to completion over `inputs`:
    /// build a session, push the timestamp-ordered feed, finish, and
    /// sort each sink into the canonical `(ts, content)` order — byte
    /// identical across runs, worker counts, and shard counts, and
    /// exactly equal (values/ts/existence/lineage) to
    /// [`QueryGraph::run_batched`] over the same inputs.
    pub fn run(
        &self,
        factory: impl Fn() -> QueryGraph,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
    ) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        let mut session = self.session(factory)?;
        let feed = session.ordered_feed(inputs)?;
        let mut cur: Option<(NodeId, usize, Batch)> = None;
        for (_, node, port, tuple) in feed {
            match &mut cur {
                Some((n, p, b)) if *n == node && *p == port && b.len() < self.batch_size => {
                    b.push(tuple)
                }
                slot => {
                    if let Some((n, p, b)) = slot.take() {
                        session.push_batch(n, p, b)?;
                    }
                    *slot = Some((node, port, Batch::one(tuple)));
                }
            }
        }
        if let Some((n, p, b)) = cur {
            session.push_batch(n, p, b)?;
        }
        let mut merged = session.finish()?;
        for tuples in merged.values_mut() {
            canonical_sort(tuples);
        }
        Ok(merged)
    }
}
