//! # ustream-runtime — the sharded parallel runtime
//!
//! Scales the batched execution engine across cores without giving up
//! the engine's determinism guarantees. A [`ShardedExecutor`] compiles a
//! query graph into **N shard pipelines** (full copies of the operator
//! chain built by a graph factory), hash-partitions the input feed by
//! **operator-declared partition keys** ([`ustream_core::Operator::partition_keys`]:
//! group-by keys for tumbling aggregation, join keys for equi-joins;
//! stateless operators split freely), runs the shards on a **persistent
//! worker pool** connected by bounded MPMC channels (backpressure: a
//! fast driver blocks rather than ballooning memory), and merges sink
//! outputs into a canonical `(timestamp, content)` order that is
//! byte-for-byte reproducible across runs and shard counts.
//!
//! Key design points:
//!
//! - **Logical shards ≠ physical workers.** Shard count fixes the
//!   partitioning (and therefore the output); the worker pool defaults
//!   to `min(shards, available cores)`. The same plan runs unchanged —
//!   and produces identical bytes — on a laptop and a 64-core box.
//! - **Soundness over parallelism.** The [`plan::ShardPlan`] pins
//!   entries whose downstream cone contains a
//!   [`ustream_core::Partitioning::Global`] operator (count windows,
//!   probabilistic joins, sampling aggregates) to a single shard, and
//!   pinning cascades through shared keyed anchors. Degraded plans lose
//!   speedup, never equivalence.
//! - **Pooled batches.** Per-shard sub-batches are carved from a shared
//!   [`BatchPool`]; spent buffers are recycled where batches end their
//!   lives (sink collection), cutting steady-state allocator traffic.
//! - **Failure surfaces.** A panicking operator tears down its worker;
//!   the driver stops feeding, joins the pool, and returns
//!   [`EngineError::OperatorPanicked`] — never a hang, never a silently
//!   truncated result.
//!
//! The thread-per-operator `ThreadedExecutor` in `ustream-core` remains
//! as the legacy comparison point; this runtime is the deployment path
//! (data parallelism scales with cores, not with plan shape).

pub mod merge;
pub mod plan;

use crossbeam::channel::{bounded, Sender};
use plan::{shard_of, ShardPlan};
use std::collections::HashMap;
use ustream_core::batch::{Batch, BatchPool};
use ustream_core::error::{panic_message, EngineError, Result};
use ustream_core::query::{ExecSession, QueryGraph};
use ustream_core::{NodeId, Tuple};

/// One unit of work for a shard pipeline: a batch addressed to a node's
/// input port, tagged with the worker-local session slot.
struct WorkerMsg {
    slot: usize,
    node: NodeId,
    port: usize,
    batch: Batch,
}

/// The sharded executor. Construct with [`ShardedExecutor::new`], tune
/// with the `with_*` builders, run with [`ShardedExecutor::run`].
pub struct ShardedExecutor {
    shards: usize,
    workers: Option<usize>,
    channel_capacity: usize,
    batch_size: usize,
    pool_buffers: usize,
}

impl ShardedExecutor {
    /// An executor with `shards` logical partitions. Worker count
    /// defaults to `min(shards, available cores)`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedExecutor {
            shards,
            workers: None,
            channel_capacity: 64,
            batch_size: 512,
            pool_buffers: 4 * shards,
        }
    }

    /// Pin the worker-pool size (otherwise `min(shards, cores)`).
    /// Workers beyond the shard count would sit idle and are clamped.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0);
        self.workers = Some(workers);
        self
    }

    /// Bound each worker's inbox to `cap` in-flight batches
    /// (backpressure depth).
    pub fn with_channel_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0);
        self.channel_capacity = cap;
        self
    }

    /// Target tuples per routed sub-batch.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        self.batch_size = batch_size;
        self
    }

    /// Routing decision the executor would make for `graph` — exposed
    /// for diagnostics and tests (e.g. asserting that a probabilistic
    /// join degrades to a pinned single-shard plan). See
    /// [`ShardPlan::describe`] and [`ShardPlan::pinned_entries`] for the
    /// observability surface.
    pub fn shard_plan(graph: &QueryGraph) -> Result<ShardPlan> {
        let plan = graph.compile()?;
        Ok(ShardPlan::analyze(graph, &plan))
    }

    /// [`ShardPlan::describe`] for `graph`: the per-entry routing rules
    /// and the pinned-entry count, rendered for logs — how an operator
    /// deployment notices that a plan change silently degraded
    /// parallelism.
    pub fn describe_plan(graph: &QueryGraph) -> Result<String> {
        Ok(Self::shard_plan(graph)?.describe())
    }

    /// Run the graph produced by `factory` to completion over `inputs`.
    ///
    /// `factory` is invoked once per shard plus once for the routing
    /// prototype and must build the same graph every time (same
    /// operators in the same order with the same configuration —
    /// enforced structurally, trusted behaviorally). Returns the merged
    /// per-sink collections in canonical `(timestamp, content)` order.
    ///
    /// The driver thread participates in the pool as worker 0: its
    /// shards execute inline between routing steps (no channel, no
    /// context switch), and `workers - 1` pool threads carry the rest.
    /// With a single worker the whole run is thread-free; the output is
    /// identical either way because each shard's batch order is fixed by
    /// the router, not by scheduling.
    pub fn run(
        &self,
        factory: impl Fn() -> QueryGraph,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
    ) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        let prototype = factory();
        let compiled = prototype.compile()?;
        let shard_plan = ShardPlan::analyze(&prototype, &compiled);
        let feed = prototype.ordered_feed(inputs)?;

        let n_shards = self.shards;
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let n_workers = self.workers.unwrap_or(cores).clamp(1, n_shards);
        let pool = BatchPool::new(self.pool_buffers);

        // Build one session per shard, dealt round-robin onto workers:
        // shard s lives on worker s % n_workers at slot s / n_workers.
        // Worker 0 is the driver itself.
        let mut per_worker: Vec<Vec<(usize, ExecSession)>> =
            (0..n_workers).map(|_| Vec::new()).collect();
        for s in 0..n_shards {
            let g = factory();
            if g.num_nodes() != prototype.num_nodes()
                || (0..g.num_nodes()).any(|i| {
                    g.operator(NodeId::from_index(i)).name()
                        != prototype.operator(NodeId::from_index(i)).name()
                })
            {
                return Err(EngineError::InvalidConfig(
                    "shard factory must build identical graphs on every call".into(),
                ));
            }
            let session = g.into_session()?.with_pool(pool.clone());
            per_worker[s % n_workers].push((s, session));
        }
        let mut inline_sessions = per_worker.remove(0);

        // Spawn the pool threads: one bounded inbox per worker (per-shard
        // batch order is fixed by the driver and must survive delivery,
        // so shards do not share a free-for-all queue).
        let mut senders: Vec<Sender<WorkerMsg>> = Vec::with_capacity(per_worker.len());
        let mut handles = Vec::with_capacity(per_worker.len());
        for sessions in per_worker {
            let (tx, rx) = bounded::<WorkerMsg>(self.channel_capacity);
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                let mut sessions = sessions;
                while let Ok(WorkerMsg {
                    slot,
                    node,
                    port,
                    batch,
                }) = rx.recv()
                {
                    sessions[slot].1.push(node, port, batch);
                }
                // Channel disconnected: end of stream. Flush every shard.
                sessions
                    .into_iter()
                    .map(|(shard, session)| (shard, session.finish()))
                    .collect::<Vec<_>>()
            }));
        }

        // Route the feed: per-shard builders cut the stream into runs of
        // consecutive same-(node, port) tuples, preserving each shard's
        // arrival order. Driver-owned shards execute inline (panics
        // caught and surfaced); remote sends block when a worker's inbox
        // is full — the backpressure path — and fail only if the worker
        // died, in which case we stop feeding and surface its panic at
        // the join below.
        struct Builder {
            node: NodeId,
            port: usize,
            batch: Batch,
        }
        let mut builders: Vec<Builder> = (0..n_shards)
            .map(|_| Builder {
                node: NodeId::from_index(0),
                port: 0,
                batch: Batch::new(),
            })
            .collect();
        let mut spread = 0usize;
        /// Why the feed loop stopped early.
        enum FeedError {
            /// A panic on the driver thread (inline shard or routing key
            /// computation), already rendered to a message.
            DriverPanic(String),
            /// A pool thread dropped its inbox; its panic surfaces when
            /// the thread is joined.
            WorkerGone,
        }
        let mut feed_failed: Option<FeedError> = None;
        let dispatch = |node: NodeId,
                        port: usize,
                        batch: Batch,
                        shard: usize,
                        inline_sessions: &mut Vec<(usize, ExecSession)>|
         -> std::result::Result<(), FeedError> {
            let worker = shard % n_workers;
            let slot = shard / n_workers;
            if worker == 0 {
                let session = &mut inline_sessions[slot].1;
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    session.push(node, port, batch)
                }))
                .map_err(|p| {
                    FeedError::DriverPanic(format!(
                        "worker 0 (driver): {}",
                        panic_message(p.as_ref())
                    ))
                })
            } else {
                senders[worker - 1]
                    .send(WorkerMsg {
                        slot,
                        node,
                        port,
                        batch,
                    })
                    .map_err(|_| FeedError::WorkerGone)
            }
        };
        let single_shard = n_shards == 1;
        'feed: for (_, node, port, tuple) in feed {
            let shard = if single_shard {
                0 // everything is pinned anyway; skip the key computation
            } else {
                // The key computation runs a user closure against the raw
                // source tuple; if it cannot handle that tuple (e.g. the
                // key attribute is minted downstream), surface the panic
                // as an error instead of unwinding through the driver.
                let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let rule = shard_plan.rule(node);
                    shard_of(rule, &prototype, port, &tuple, n_shards, &mut spread)
                }));
                match routed {
                    Ok(shard) => shard,
                    Err(p) => {
                        feed_failed = Some(FeedError::DriverPanic(format!(
                            "routing (partition key): {}",
                            panic_message(p.as_ref())
                        )));
                        break 'feed;
                    }
                }
            };
            let b = &mut builders[shard];
            if !b.batch.is_empty()
                && (b.node != node || b.port != port || b.batch.len() >= self.batch_size)
            {
                let full = std::mem::replace(&mut b.batch, pool.take(self.batch_size.min(64)));
                let (n, p) = (b.node, b.port);
                if let Err(e) = dispatch(n, p, full, shard, &mut inline_sessions) {
                    feed_failed = Some(e);
                    break 'feed;
                }
            }
            let b = &mut builders[shard];
            b.node = node;
            b.port = port;
            b.batch.push(tuple);
        }
        if feed_failed.is_none() {
            for (shard, b) in builders.into_iter().enumerate() {
                if !b.batch.is_empty() {
                    if let Err(e) = dispatch(b.node, b.port, b.batch, shard, &mut inline_sessions) {
                        feed_failed = Some(e);
                        break;
                    }
                }
            }
        }
        drop(senders); // EOS: pool threads drain, flush, and return

        // Collect: inline shards finish on the driver (panics caught),
        // pool threads are joined (panics surface from the join).
        let mut shard_outputs: Vec<(usize, HashMap<NodeId, Vec<Tuple>>)> = Vec::new();
        let mut panics: Vec<String> = Vec::new();
        let send_failed = matches!(&feed_failed, Some(FeedError::WorkerGone));
        if let Some(FeedError::DriverPanic(msg)) = feed_failed {
            panics.push(msg);
        }
        if panics.is_empty() {
            for (shard, session) in inline_sessions {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.finish())) {
                    Ok(outs) => shard_outputs.push((shard, outs)),
                    Err(p) => {
                        panics.push(format!("worker 0 (driver): {}", panic_message(p.as_ref())))
                    }
                }
            }
        }
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(outs) => shard_outputs.extend(outs),
                Err(payload) => panics.push(format!(
                    "worker {}: {}",
                    w + 1,
                    panic_message(payload.as_ref())
                )),
            }
        }
        if !panics.is_empty() {
            return Err(EngineError::OperatorPanicked(panics.join("; ")));
        }
        if send_failed {
            return Err(EngineError::InvalidGraph(
                "worker disconnected mid-stream".into(),
            ));
        }

        // Deterministic merge: concatenate in shard order, then sort each
        // sink into the canonical order (stable w.r.t. per-shard order).
        shard_outputs.sort_by_key(|(shard, _)| *shard);
        let mut merged: HashMap<NodeId, Vec<Tuple>> = HashMap::new();
        for (_, outs) in shard_outputs {
            for (sink, tuples) in outs {
                merged.entry(sink).or_default().extend(tuples);
            }
        }
        for tuples in merged.values_mut() {
            merge::canonical_sort(tuples);
        }
        Ok(merged)
    }
}
