//! EXPLAIN / EXPLAIN ANALYZE: the live plan report.
//!
//! [`crate::plan::ShardPlan::describe`] renders the *static* topology —
//! which operators run in which stage, where the exchanges sit. A
//! [`PlanReport`] overlays the *live* numbers from a running session's
//! [`crate::telemetry::SessionTelemetry`] onto that topology: per-stage
//! routing counts and skew, exchange forward totals, pool depths,
//! watermark-lag quantiles (per stage and merged across stages), and
//! per-operator tuple/batch/busy counters with the columnar-vs-row
//! split. Assembly is read-only — it snapshots the same atomic cells
//! the engine bumps, so an EXPLAIN ANALYZE never perturbs the run.
//!
//! The report is plain data (everything `pub`, `PartialEq`) so it can
//! cross the wire and be reconciled against a registry snapshot in
//! tests.

use crate::telemetry::SessionTelemetry;
use std::fmt::Write as _;
use ustream_telemetry::{QuantileSketch, SketchSnapshot};

/// One operator's live counters inside a [`StageReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct OpReport {
    /// Operator name (e.g. `select`, `windowed_aggregate`).
    pub op: String,
    /// Whole-graph node index.
    pub node: usize,
    pub stage: usize,
    pub shard: usize,
    pub tuples_in: u64,
    pub tuples_out: u64,
    pub batches: u64,
    pub busy_ns: u64,
    pub columnar_batches: u64,
    pub row_batches: u64,
}

impl OpReport {
    /// Fraction of batches that took the columnar fast path.
    pub fn columnar_hit_rate(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.columnar_batches as f64 / self.batches as f64
        }
    }
}

/// One stage's live counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    pub stage: usize,
    /// Tuples routed into each shard of this stage.
    pub routed: Vec<u64>,
    /// Tuples forwarded across the upstream exchange (0 for stage 0).
    pub exchange_forwarded: u64,
    /// Eager (pipelined) forward rounds that delivered tuples into this
    /// stage ahead of a drain/finish barrier (0 for stage 0, and when
    /// pipelined delivery is disabled).
    pub eager_forwards: u64,
    /// Eager intervals forwarded into this stage since its last
    /// drain/finish barrier — the pipeline's run-ahead depth.
    pub interval_depth: i64,
    /// Pending exchange-pool depth at the last sweep.
    pub pool_depth: i64,
    /// This stage's watermark-lag distribution.
    pub lag: SketchSnapshot,
    /// Max/mean of `routed` (1.0 = perfectly balanced; 0.0 when the
    /// stage has routed nothing).
    pub skew: f64,
    /// Per-operator counters, ordered (shard, node).
    pub ops: Vec<OpReport>,
}

/// The full EXPLAIN ANALYZE payload: static topology plus live
/// per-stage and per-operator counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// [`crate::plan::ShardPlan::describe`] output (empty for a
    /// session built without a plan description).
    pub topology: String,
    pub stages: Vec<StageReport>,
    pub batches_pushed: u64,
    pub tuples_pushed: u64,
    pub watermark_sealed: i64,
    /// Every stage's lag sketch merged into one distribution.
    pub lag_merged: SketchSnapshot,
    /// Spans retained-or-evicted by the trace store so far.
    pub spans_recorded: u64,
    /// Batches the trace sampler has tagged so far.
    pub traces_sampled: u64,
}

impl PlanReport {
    /// Snapshot `telemetry` into a report. Read-only: touches the same
    /// cells the engine updates, never blocks or perturbs it.
    pub fn assemble(telemetry: &SessionTelemetry) -> PlanReport {
        let stages = (0..telemetry.num_stages())
            .map(|stage| {
                let routed: Vec<u64> = (0..telemetry.num_shards())
                    .map(|shard| telemetry.routed(stage, shard).get())
                    .collect();
                let total: u64 = routed.iter().sum();
                let skew = if total == 0 {
                    0.0
                } else {
                    let max = *routed.iter().max().expect("non-empty") as f64;
                    max * routed.len() as f64 / total as f64
                };
                let ops = telemetry
                    .op_entries()
                    .iter()
                    .filter(|e| e.stage == stage)
                    .map(|e| OpReport {
                        op: e.op.clone(),
                        node: e.node,
                        stage: e.stage,
                        shard: e.shard,
                        tuples_in: e.telem.tuples_in.get(),
                        tuples_out: e.telem.tuples_out.get(),
                        batches: e.telem.batches.get(),
                        busy_ns: e.telem.busy_ns.get(),
                        columnar_batches: e.telem.columnar_batches.get(),
                        row_batches: e.telem.row_batches.get(),
                    })
                    .collect();
                StageReport {
                    stage,
                    routed,
                    exchange_forwarded: telemetry.exchange_forwarded(stage).get(),
                    eager_forwards: telemetry.eager_forwards(stage).get(),
                    interval_depth: telemetry.interval_depth(stage).get(),
                    pool_depth: telemetry.pool_depth(stage).get(),
                    lag: telemetry.watermark_lag(stage).snapshot(),
                    skew,
                    ops,
                }
            })
            .collect();
        let lag_merged = (1..telemetry.num_stages())
            .fold(telemetry.watermark_lag(0).clone(), |acc, stage| {
                QuantileSketch::merged(&acc, telemetry.watermark_lag(stage))
            })
            .snapshot();
        PlanReport {
            topology: telemetry.plan_text(),
            stages,
            batches_pushed: telemetry.batches_pushed.get(),
            tuples_pushed: telemetry.tuples_pushed.get(),
            watermark_sealed: telemetry.watermark_sealed.get(),
            lag_merged,
            spans_recorded: telemetry.traces().recorded(),
            traces_sampled: telemetry.traces().sampled(),
        }
    }

    /// Render the annotated tree: the static topology followed by live
    /// per-stage and per-operator annotations.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.topology.is_empty() {
            out.push_str(self.topology.trim_end());
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "analyze: {} batches, {} tuples pushed; sealed watermark {}",
            self.batches_pushed, self.tuples_pushed, self.watermark_sealed
        );
        let _ = writeln!(
            out,
            "analyze: merged lag {}; {} spans from {} sampled batches",
            fmt_lag(&self.lag_merged),
            self.spans_recorded,
            self.traces_sampled
        );
        for s in &self.stages {
            let routed: Vec<String> = s.routed.iter().map(|r| r.to_string()).collect();
            let _ = writeln!(
                out,
                "analyze: stage {}: routed [{}] (skew {:.2}x), forwarded {} \
                 ({} eager rounds, depth {}), pool {}, lag {}",
                s.stage,
                routed.join(", "),
                s.skew,
                s.exchange_forwarded,
                s.eager_forwards,
                s.interval_depth,
                s.pool_depth,
                fmt_lag(&s.lag)
            );
            for op in &s.ops {
                let _ = writeln!(
                    out,
                    "analyze:   {}#{} shard {}: {} in / {} out over {} batches \
                     ({} columnar / {} row), busy {}ns",
                    op.op,
                    op.node,
                    op.shard,
                    op.tuples_in,
                    op.tuples_out,
                    op.batches,
                    op.columnar_batches,
                    op.row_batches,
                    op.busy_ns
                );
            }
        }
        out
    }
}

fn fmt_lag(s: &SketchSnapshot) -> String {
    if s.count == 0 {
        "(no seals)".to_string()
    } else {
        format!("p50 {:.0} / p99 {:.0} (n={})", s.p50, s.p99, s.count)
    }
}
