//! The incremental sharded execution session.
//!
//! [`ShardedSession`] is the sharded analogue of
//! [`ustream_core::query::ExecSession`]: a long-lived engine that
//! accepts input batches over time ([`ShardedSession::push_batch`]),
//! streams completed sink output between pushes
//! ([`ShardedSession::drain_collected`]), and flushes at end of stream
//! ([`ShardedSession::finish`]). It is the one execution core behind
//! both [`crate::ShardedExecutor::run`] (which pushes a whole feed and
//! finishes) and the ingest server's engine thread (which pumps batches
//! as publishers deliver them) — the serving path is no longer
//! bottlenecked on one single-threaded session.
//!
//! ## Execution model
//!
//! The [`ShardPlan`] cuts the graph into stages (see [`crate::plan`]);
//! every stage × shard pair is one [`ExecSession`] over that stage's
//! subgraph, dealt across a persistent worker pool (the driver
//! participates as worker 0, running its slots inline). Stage-0 input
//! routes immediately; input addressed to later stages (exchange output
//! and external feeds entering downstream of an anchor) is pooled and
//! forwarded during *sweeps*.
//!
//! A sweep walks the stages in order. For each stage it forwards the
//! pooled input whose timestamps the watermark has sealed — sorted into
//! the canonical `(ts, entry, port, content)` order, so the exchange
//! delivery is independent of how the producing stage was partitioned —
//! then broadcasts the watermark to every shard of the stage
//! ([`ExecSession::advance_watermark`]: windows close when the
//! *stream's* clock passes them, not when a shard happens to receive its
//! next tuple), and barriers on a drain of the stage's collected
//! output. Output at a cut node feeds the next stage's pool; output at
//! a real sink is held until the watermark seals its timestamp.
//!
//! ## Watermark discipline and determinism
//!
//! The session watermark W is the highest timestamp pushed so far; the
//! input contract (shared with `run_batched`'s sorted feed and the
//! server's per-publisher merge) is that pushes are globally
//! ts-nondecreasing. Every operator emission carries `ts ≤ W`, and once
//! W passes a timestamp no new emission at it can appear — so sink
//! tuples with `ts < W` are *complete* and are released in canonical
//! `(ts, content)` order, while `ts == W` tuples are held for the next
//! sweep. Each released interval is therefore a deterministic function
//! of the input stream alone: byte-identical across runs, worker
//! counts, and shard counts, and — for keyed plans whose operators
//! declare their partitioning honestly — exactly equal, in stream
//! order, to what `run_batched` collects over the same feed.
//!
//! ## Failure containment
//!
//! An operator panic (or a panic in a routing key closure) never
//! unwinds into the caller and never hangs the pool: the slot is
//! poisoned, the panic message is captured, and every subsequent call
//! returns [`EngineError::OperatorPanicked`] — the server maps this to
//! a typed `QueryPanicked` serving error.

use crate::plan::{shard_of, stable_key_hash, RouteRule, ShardPlan};
use crate::telemetry::{OpTelemetryEntry, SessionTelemetry};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::{BTreeMap, HashMap};
use std::thread::JoinHandle;
use std::time::Instant;
use ustream_core::batch::{Batch, BatchPool};
use ustream_core::canon;
use ustream_core::columnar::Columns;
use ustream_core::error::{panic_message, EngineError, Result};
use ustream_core::query::{ExecSession, QueryGraph, COLUMNAR_MIN_CHUNK};
use ustream_core::{NodeId, Tuple};
use ustream_telemetry::{MetricsRegistry, SpanKind, TraceDetail};

/// Run a closure, converting a panic into its rendered message.
fn catch<T>(f: impl FnOnce() -> T) -> std::result::Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .map_err(|p| panic_message(p.as_ref()).to_string())
}

/// One unit of work for a pool worker, addressed to a slot it owns.
enum WorkerMsg {
    Push {
        slot: usize,
        node: NodeId,
        port: usize,
        batch: Batch,
    },
    Advance {
        slot: usize,
        watermark: u64,
    },
    /// Drain the slot's collected sink output; reply on the shared
    /// reply channel.
    Drain {
        slot: usize,
    },
    /// Flush and consume the slot's session; reply with its final
    /// collections.
    Finish {
        slot: usize,
    },
}

/// One slot's drained/final output: per-sink tuple runs in stage-local
/// node order.
type SlotOutput = Vec<(NodeId, Vec<Tuple>)>;

/// A worker's answer to `Drain`/`Finish`: the slot's per-sink output in
/// stage-local node order, or the panic message that poisoned it.
struct Reply {
    slot: usize,
    result: std::result::Result<SlotOutput, String>,
}

/// One stage×shard pipeline owned by a worker (or inline by the driver).
struct SlotState {
    session: Option<ExecSession>,
    poisoned: Option<String>,
}

impl SlotState {
    fn run(&mut self, f: impl FnOnce(&mut ExecSession)) {
        if self.poisoned.is_some() {
            return;
        }
        if let Some(session) = self.session.as_mut() {
            if let Err(msg) = catch(std::panic::AssertUnwindSafe(|| f(session))) {
                self.session = None;
                self.poisoned = Some(msg);
            }
        }
    }

    fn drain(&mut self) -> std::result::Result<SlotOutput, String> {
        if let Some(msg) = &self.poisoned {
            return Err(msg.clone());
        }
        match self.session.as_mut() {
            Some(session) => {
                match catch(std::panic::AssertUnwindSafe(|| session.drain_collected())) {
                    Ok(outs) => Ok(outs),
                    Err(msg) => {
                        self.session = None;
                        self.poisoned = Some(msg.clone());
                        Err(msg)
                    }
                }
            }
            None => Ok(Vec::new()),
        }
    }

    fn finish(&mut self) -> std::result::Result<SlotOutput, String> {
        if let Some(msg) = &self.poisoned {
            return Err(msg.clone());
        }
        match self.session.take() {
            Some(session) => match catch(std::panic::AssertUnwindSafe(|| session.finish())) {
                Ok(map) => {
                    let mut outs: Vec<(NodeId, Vec<Tuple>)> = map
                        .into_iter()
                        .filter(|(_, tuples)| !tuples.is_empty())
                        .collect();
                    outs.sort_by_key(|(n, _)| n.index());
                    Ok(outs)
                }
                Err(msg) => {
                    self.poisoned = Some(msg.clone());
                    Err(msg)
                }
            },
            None => Ok(Vec::new()),
        }
    }
}

fn worker_loop(
    rx: Receiver<WorkerMsg>,
    reply_tx: Sender<Reply>,
    mut slots: BTreeMap<usize, SlotState>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Push {
                slot,
                node,
                port,
                batch,
            } => {
                if let Some(st) = slots.get_mut(&slot) {
                    st.run(|s| s.push(node, port, batch));
                }
            }
            WorkerMsg::Advance { slot, watermark } => {
                if let Some(st) = slots.get_mut(&slot) {
                    st.run(|s| s.advance_watermark(watermark));
                }
            }
            WorkerMsg::Drain { slot } => {
                let result = match slots.get_mut(&slot) {
                    Some(st) => st.drain(),
                    None => Ok(Vec::new()),
                };
                if reply_tx.send(Reply { slot, result }).is_err() {
                    return;
                }
            }
            WorkerMsg::Finish { slot } => {
                let result = match slots.get_mut(&slot) {
                    Some(st) => st.finish(),
                    None => Ok(Vec::new()),
                };
                if reply_tx.send(Reply { slot, result }).is_err() {
                    return;
                }
            }
        }
    }
}

/// Stage-local view of the original graph: index translation in both
/// directions.
struct StageMeta {
    /// Original node index → stage-local node, for nodes in this stage.
    local_of: Vec<Option<NodeId>>,
    /// Stage-local node index → original node index.
    orig_of: Vec<usize>,
}

/// A pending input run being assembled for one slot.
struct SlotBuilder {
    node: usize,
    port: usize,
    batch: Batch,
}

/// Input waiting at a stage boundary: `(ts, entry node, port, tuple)`.
type PoolEntry = (u64, usize, usize, Tuple);

/// The canonical exchange-delivery sort key: `(ts, entry, port,
/// fast content key)`. Mirrors [`canon::canonical_sort`]; fast-key tie
/// runs are re-ordered by the exhaustive rendering before delivery.
type ForwardKey = (u64, usize, usize, Vec<u8>);

/// The most recent sampled batch's causal trace: later hops (routes
/// during sweeps, seals, the emit) link their spans back to its root.
struct ActiveTrace {
    trace: u64,
    /// The `Pump` root span's sequence number.
    root: u64,
    /// The newest `Seal` span's sequence number (the emit's parent).
    last_seal: Option<u64>,
}

/// A hop observed while a traced batch was live, buffered until the
/// span it parents under exists.
struct PendingSpan {
    kind: SpanKind,
    stage: usize,
    shard: usize,
    tuples: usize,
    elapsed_ns: u64,
}

/// The multi-stage, multi-shard session core.
struct StagedCore {
    prototype: QueryGraph,
    plan: ShardPlan,
    shards: usize,
    n_workers: usize,
    batch_size: usize,
    pool: BatchPool,
    stages: Vec<StageMeta>,
    /// Driver-owned (worker 0) slots, by global slot id.
    inline: BTreeMap<usize, SlotState>,
    senders: Vec<Sender<WorkerMsg>>,
    reply_rx: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
    builders: Vec<SlotBuilder>,
    /// Per-stage pending input (exchange output + external feeds for
    /// stages > 0); index 0 is unused.
    pools: Vec<Vec<PoolEntry>>,
    /// Held sink output whose timestamps the watermark has not sealed
    /// yet, by original sink node index.
    held: BTreeMap<usize, Vec<Tuple>>,
    /// Per-stage round-robin spread counters.
    spread: Vec<usize>,
    /// Cut edges out of each original node as `(target, port)`.
    cut_targets: Vec<Vec<(usize, usize)>>,
    is_real_sink: Vec<bool>,
    /// Original sink node indices in registration order.
    sink_order: Vec<usize>,
    watermark: u64,
    failed: Option<String>,
    telem: SessionTelemetry,
    /// Pipelined exchange delivery: forward each sealed watermark
    /// interval downstream as soon as it seals, instead of parking it
    /// until the next drain/finish barrier. Also gates the lean-path
    /// optimizations (direct stage-0 routing, columnar exchange runs,
    /// single-consumer delivery). On by default; disabled via
    /// [`crate::ShardedExecutor::with_eager_exchange`].
    eager: bool,
    /// Watermark as of the last eager sweep — an eager sweep runs only
    /// when the watermark has moved past it.
    eager_swept: u64,
    /// Eager intervals forwarded into each stage since its last
    /// drain/finish barrier (mirrors the interval-depth gauge).
    eager_depth: Vec<u64>,
    /// Reused forward-sort scratch (see [`StagedCore::sweep`]).
    fwd_buf: Vec<(ForwardKey, PoolEntry)>,
    /// Reused not-yet-sealed partition scratch for the sweep.
    keep_buf: Vec<PoolEntry>,
    /// Reused per-shard partition scratch for direct stage-0 routing.
    direct_scratch: Vec<Vec<Tuple>>,
    /// Watermark most recently broadcast to each stage (seal point for
    /// the per-stage watermark-lag sketches).
    sealed: Vec<u64>,
    /// Causal-trace state for the most recent sampled batch; `None`
    /// between traces (the overwhelmingly common state).
    active_trace: Option<ActiveTrace>,
    /// True while routing activity should buffer `Route` spans (a
    /// sampled push, or a sweep with an active trace).
    trace_live: bool,
    /// Reused span buffer: only touched for sampled batches, and
    /// allocation-free once warm.
    trace_buf: Vec<PendingSpan>,
}

enum BarrierOp {
    Drain,
    Finish,
}

impl StagedCore {
    fn fail(&mut self, msg: String) -> EngineError {
        let e = EngineError::OperatorPanicked(msg.clone());
        self.failed = Some(msg);
        e
    }

    fn guard(&self) -> Result<()> {
        match &self.failed {
            Some(msg) => Err(EngineError::OperatorPanicked(msg.clone())),
            None => Ok(()),
        }
    }

    fn slot_id(&self, stage: usize, shard: usize) -> usize {
        stage * self.shards + shard
    }

    fn worker_of(&self, shard: usize) -> usize {
        shard % self.n_workers
    }

    /// Ship one ready run to `(stage, shard)`'s slot session (inline
    /// for worker-0 slots, via the worker's inbox otherwise), recording
    /// the routing telemetry, journal entry, and `Route` span.
    fn push_run_to_slot(
        &mut self,
        stage: usize,
        shard: usize,
        node: usize,
        port: usize,
        batch: Batch,
    ) -> Result<()> {
        let slot = self.slot_id(stage, shard);
        let local = self.stages[stage].local_of[node].expect("routed node belongs to its stage");
        let tuples = batch.len();
        self.telem.routed(stage, shard).add(tuples as u64);
        self.telem.journal().record(TraceDetail::ShardRouted {
            stage,
            shard,
            tuples,
        });
        let t0 = self.trace_live.then(Instant::now);
        let worker = self.worker_of(shard);
        let result = if worker == 0 {
            let st = self.inline.get_mut(&slot).expect("inline slot exists");
            st.run(|s| s.push(local, port, batch));
            if let Some(msg) = st.poisoned.clone() {
                return Err(self.fail(format!("worker 0 (driver): {msg}")));
            }
            Ok(())
        } else {
            self.senders[worker - 1]
                .send(WorkerMsg::Push {
                    slot,
                    node: local,
                    port,
                    batch,
                })
                .map_err(|_| self.fail("worker disconnected mid-stream".into()))
        };
        if result.is_ok() {
            if let Some(t0) = t0 {
                self.trace_buf.push(PendingSpan {
                    kind: SpanKind::Route,
                    stage,
                    shard,
                    tuples,
                    elapsed_ns: t0.elapsed().as_nanos() as u64,
                });
            }
        }
        result
    }

    /// Ship the slot's pending run to its session. On the lean (eager)
    /// path, runs long enough to benefit go columnar on the way in, so
    /// downstream operators keep their vectorized kernels after the
    /// exchange.
    fn flush_builder(&mut self, stage: usize, shard: usize) -> Result<()> {
        let slot = self.slot_id(stage, shard);
        if self.builders[slot].batch.is_empty() {
            return Ok(());
        }
        let replacement = self.pool.take(self.batch_size.min(64));
        let b = &mut self.builders[slot];
        let mut batch = std::mem::replace(&mut b.batch, replacement);
        let (node, port) = (b.node, b.port);
        if self.eager && !batch.is_columnar() && batch.len() >= COLUMNAR_MIN_CHUNK {
            batch.columnarize();
        }
        self.push_run_to_slot(stage, shard, node, port, batch)
    }

    /// Route one tuple into a stage, merging consecutive same-(node,
    /// port) tuples per shard into batched runs.
    fn route_one(&mut self, stage: usize, node: usize, port: usize, tuple: Tuple) -> Result<()> {
        let rule = self.plan.rule(NodeId::from_index(node));
        // The key computation runs a user closure against the tuple as
        // it exists at the stage boundary; a panic (e.g. the key
        // attribute is minted deeper in the stage) surfaces as an error
        // instead of unwinding through the driver.
        let shard = {
            let prototype = &self.prototype;
            let shards = self.shards;
            let spread = &mut self.spread[stage];
            match catch(std::panic::AssertUnwindSafe(|| {
                shard_of(rule, prototype, port, &tuple, shards, spread)
            })) {
                Ok(shard) => shard,
                Err(msg) => return Err(self.fail(format!("routing (partition key): {msg}"))),
            }
        };
        let slot = self.slot_id(stage, shard);
        let b = &self.builders[slot];
        if !b.batch.is_empty()
            && (b.node != node || b.port != port || b.batch.len() >= self.batch_size)
        {
            self.flush_builder(stage, shard)?;
        }
        let b = &mut self.builders[slot];
        b.node = node;
        b.port = port;
        b.batch.push(tuple);
        Ok(())
    }

    /// Deliver one columnar run straight to a stage-0 slot, after
    /// flushing any pending row run so per-slot arrival order is
    /// preserved.
    fn push_cols_to_shard(
        &mut self,
        shard: usize,
        node: usize,
        port: usize,
        cols: Columns,
    ) -> Result<()> {
        self.flush_builder(0, shard)?;
        self.push_run_to_slot(0, shard, node, port, Batch::from_columns(cols))
    }

    /// Stage-0 external row batches on the lean path: compute every
    /// row's shard up front (one panic guard for the whole batch instead
    /// of one per tuple), partition preserving per-shard order, and
    /// deliver each shard's run directly — no `SlotBuilder`
    /// accumulation and no `BatchPool` round-trip. Runs long enough to
    /// benefit go columnar on the way in.
    fn route_rows_direct(&mut self, node: usize, port: usize, batch: Batch) -> Result<()> {
        let rule = self.plan.rule(NodeId::from_index(node));
        let mut row_shard: Vec<usize> = Vec::with_capacity(batch.len());
        {
            let prototype = &self.prototype;
            let shards = self.shards;
            let spread = &mut self.spread[0];
            let tuples = batch.as_slice();
            if let Err(msg) = catch(std::panic::AssertUnwindSafe(|| {
                for t in tuples {
                    row_shard.push(shard_of(rule, prototype, port, t, shards, spread));
                }
            })) {
                return Err(self.fail(format!("routing (partition key): {msg}")));
            }
        }
        let mut per_shard = std::mem::take(&mut self.direct_scratch);
        per_shard.resize_with(self.shards, Vec::new);
        for (t, &s) in batch.into_vec().into_iter().zip(&row_shard) {
            per_shard[s].push(t);
        }
        for shard in 0..self.shards {
            if per_shard[shard].is_empty() {
                continue;
            }
            self.flush_builder(0, shard)?;
            let mut run = Batch::from(std::mem::take(&mut per_shard[shard]));
            if run.len() >= COLUMNAR_MIN_CHUNK {
                run.columnarize();
            }
            self.push_run_to_slot(0, shard, node, port, run)?;
        }
        self.direct_scratch = per_shard;
        Ok(())
    }

    /// Route a columnar batch at stage 0 without materializing tuples:
    /// whole-batch delivery for pinned entries, per-row key-column
    /// hashing for keyed entries whose anchor declares its key field
    /// ([`ustream_core::Operator::partition_key_field`]). Returns
    /// `false` when the rule or the batch's shape needs the row path —
    /// spread entries (the round-robin counter is per-tuple), closure
    /// keys, a missing key field, or any row whose key cell is not
    /// groupable (the row path's key closure decides what happens
    /// there, e.g. keyless-spread or a routing panic).
    fn route_columns(&mut self, node: usize, port: usize, batch: &mut Batch) -> Result<bool> {
        let rule = self.plan.rule(NodeId::from_index(node));
        match rule {
            RouteRule::Pinned => {
                let cols = batch.take_columns().expect("columnar batch");
                self.push_cols_to_shard(0, node, port, cols)?;
                Ok(true)
            }
            RouteRule::Keyed {
                anchor,
                port: anchor_port,
            } => {
                // The anchor's key field can differ per input port (a
                // field-keyed join names one field per side); resolve
                // against the port the rule pinned down, falling back
                // to the feed port when the entry *is* the anchor.
                let Some(field) = self
                    .prototype
                    .operator(anchor)
                    .partition_key_field_for(anchor_port.unwrap_or(port))
                    .map(str::to_string)
                else {
                    return Ok(false);
                };
                let Some(cols_ref) = batch.columns() else {
                    return Ok(false);
                };
                let Ok(idx) = cols_ref.schema().index_of(&field) else {
                    return Ok(false);
                };
                let key_col = cols_ref.col(idx);
                let mut row_shard = Vec::with_capacity(cols_ref.len());
                for r in 0..cols_ref.len() {
                    match key_col.group_key_at(r) {
                        Some(k) => {
                            row_shard.push((stable_key_hash(&k) % self.shards as u64) as usize)
                        }
                        None => return Ok(false),
                    }
                }
                let cols = batch.take_columns().expect("columnar batch");
                for shard in 0..self.shards {
                    if !row_shard.contains(&shard) {
                        continue;
                    }
                    let keep: Vec<bool> = row_shard.iter().map(|&s| s == shard).collect();
                    let mut part = cols.clone();
                    part.filter(&keep);
                    self.push_cols_to_shard(shard, node, port, part)?;
                }
                Ok(true)
            }
            RouteRule::Spread => Ok(false),
        }
    }

    fn push_batch(&mut self, node: NodeId, port: usize, batch: Batch) -> Result<()> {
        self.guard()?;
        self.telem.batches_pushed.inc();
        let tuples = batch.len();
        self.telem.tuples_pushed.add(tuples as u64);
        self.telem.journal().record(TraceDetail::BatchPumped {
            node: node.index(),
            port,
            tuples,
        });
        // Causal sampling by publish ordinal: deterministic for the
        // same feed + seed. Unsampled batches pay one relaxed load and
        // a modulo here — no clock read, no allocation.
        let trace = self.telem.traces().sample(self.telem.batches_pushed.get());
        let stage = self.plan.stage_of(node);
        let t0 = trace.map(|_| {
            self.trace_buf.clear();
            self.trace_live = true;
            Instant::now()
        });
        let result = self.ingest(node, port, batch, stage);
        if let Some(trace) = trace {
            self.trace_live = false;
            if result.is_ok() {
                let root = self.telem.traces().record(
                    trace,
                    None,
                    SpanKind::Pump,
                    stage,
                    0,
                    tuples,
                    t0.expect("timed when sampled").elapsed().as_nanos() as u64,
                );
                self.flush_trace_buf(trace, root);
                self.active_trace = Some(ActiveTrace {
                    trace,
                    root,
                    last_seal: None,
                });
            } else {
                self.trace_buf.clear();
            }
        }
        result?;
        self.maybe_eager_sweep()
    }

    /// Pipelined exchange delivery: once a push (or a bare watermark
    /// advance) moves the session watermark, the interval it sealed is
    /// complete — forward it downstream *now* instead of parking it
    /// until the next drain, so stage N+1 consumes interval k while
    /// stage N produces interval k+1. An eager sweep is a regular
    /// drain-mode sweep minus the seal/lag accounting (which stays on
    /// the barrier schedule); held sink output still waits for
    /// [`StagedCore::drain_collected`]/[`StagedCore::finish`].
    fn maybe_eager_sweep(&mut self) -> Result<()> {
        if !self.eager || self.watermark <= self.eager_swept {
            return Ok(());
        }
        self.eager_swept = self.watermark;
        self.sweep(false, true)
    }

    /// The routing body of [`StagedCore::push_batch`]: advance the high
    /// water, then route stage-0 input (columnar fast path first) or
    /// pool input addressed downstream.
    fn ingest(&mut self, node: NodeId, port: usize, mut batch: Batch, stage: usize) -> Result<()> {
        if let Some(max_ts) = batch.max_ts() {
            self.watermark = self.watermark.max(max_ts);
        }
        if stage == 0 {
            if batch.is_columnar() && self.route_columns(node.index(), port, &mut batch)? {
                return Ok(());
            }
            if self.eager && !batch.is_columnar() && batch.len() >= COLUMNAR_MIN_CHUNK {
                return self.route_rows_direct(node.index(), port, batch);
            }
            for tuple in batch {
                self.route_one(0, node.index(), port, tuple)?;
            }
        } else {
            // External feeds entering downstream of an anchor join the
            // stage's exchange pool so they interleave with exchange
            // output in one deterministic ts-ordered feed.
            self.pools[stage].extend(batch.into_iter().map(|t| (t.ts, node.index(), port, t)));
        }
        Ok(())
    }

    /// Record the buffered hops of the live trace as children of
    /// `parent`, leaving the buffer warm for reuse.
    fn flush_trace_buf(&mut self, trace: u64, parent: u64) {
        let buf = std::mem::take(&mut self.trace_buf);
        for p in &buf {
            self.telem.traces().record(
                trace,
                Some(parent),
                p.kind,
                p.stage,
                p.shard,
                p.tuples,
                p.elapsed_ns,
            );
        }
        self.trace_buf = buf;
        self.trace_buf.clear();
    }

    /// Advance the watermark on every shard of `stage`.
    fn advance_stage(&mut self, stage: usize, watermark: u64) -> Result<()> {
        for shard in 0..self.shards {
            let slot = self.slot_id(stage, shard);
            let worker = self.worker_of(shard);
            if worker == 0 {
                let st = self.inline.get_mut(&slot).expect("inline slot exists");
                st.run(|s| s.advance_watermark(watermark));
                if let Some(msg) = st.poisoned.clone() {
                    return Err(self.fail(format!("worker 0 (driver): {msg}")));
                }
            } else {
                self.senders[worker - 1]
                    .send(WorkerMsg::Advance { slot, watermark })
                    .map_err(|_| self.fail("worker disconnected mid-stream".into()))?;
            }
        }
        Ok(())
    }

    /// Collect every shard of `stage` (drain or finish), in shard order.
    fn barrier(&mut self, stage: usize, op: BarrierOp) -> Result<Vec<SlotOutput>> {
        let mut results: BTreeMap<usize, SlotOutput> = BTreeMap::new();
        let mut errors: Vec<String> = Vec::new();
        let mut expected_remote = 0usize;
        for shard in 0..self.shards {
            let slot = self.slot_id(stage, shard);
            let worker = self.worker_of(shard);
            if worker == 0 {
                let st = self.inline.get_mut(&slot).expect("inline slot exists");
                let result = match op {
                    BarrierOp::Drain => st.drain(),
                    BarrierOp::Finish => st.finish(),
                };
                match result {
                    Ok(outs) => {
                        results.insert(slot, outs);
                    }
                    Err(msg) => errors.push(format!("worker 0 (driver): {msg}")),
                }
            } else {
                let msg = match op {
                    BarrierOp::Drain => WorkerMsg::Drain { slot },
                    BarrierOp::Finish => WorkerMsg::Finish { slot },
                };
                if self.senders[worker - 1].send(msg).is_err() {
                    errors.push("worker disconnected mid-stream".into());
                } else {
                    expected_remote += 1;
                }
            }
        }
        for _ in 0..expected_remote {
            match self.reply_rx.recv() {
                Ok(Reply { slot, result }) => match result {
                    Ok(outs) => {
                        results.insert(slot, outs);
                    }
                    Err(msg) => {
                        let worker = self.worker_of(slot % self.shards);
                        errors.push(format!("worker {worker}: {msg}"));
                    }
                },
                Err(_) => {
                    errors.push("worker disconnected mid-stream".into());
                    break;
                }
            }
        }
        if !errors.is_empty() {
            return Err(self.fail(errors.join("; ")));
        }
        Ok(results.into_values().collect())
    }

    /// Distribute one stage's collected output: cut-node output feeds
    /// downstream exchange pools, real-sink output joins the held
    /// buffers.
    fn distribute(&mut self, stage: usize, collected: Vec<SlotOutput>) {
        for outs in collected {
            for (local, tuples) in outs {
                let orig = self.stages[stage].orig_of[local.index()];
                // Borrow dance: take the target list so the pools can be
                // indexed mutably, and clone the tuple run one fewer time
                // than there are consumers — the last consumer (or the
                // held sink buffer) takes the run by move.
                let targets = std::mem::take(&mut self.cut_targets[orig]);
                let mut tuples = Some(tuples);
                let consumers = targets.len() + usize::from(self.is_real_sink[orig]);
                for (i, &(to, port)) in targets.iter().enumerate() {
                    let to_stage = self.plan.stage_of(NodeId::from_index(to));
                    if i + 1 == consumers {
                        let run = tuples.take().expect("last consumer takes by move");
                        self.pools[to_stage].extend(run.into_iter().map(|t| (t.ts, to, port, t)));
                    } else {
                        let run = tuples.as_ref().expect("run present until last consumer");
                        self.pools[to_stage]
                            .extend(run.iter().map(|t| (t.ts, to, port, t.clone())));
                    }
                }
                self.cut_targets[orig] = targets;
                if self.is_real_sink[orig] {
                    let run = tuples.take().expect("sink is the final consumer");
                    self.held.entry(orig).or_default().extend(run);
                }
            }
        }
    }

    /// Walk all stages: forward sealed exchange input, advance
    /// watermarks (drain sweeps), and collect each stage's output.
    /// `finish` forwards everything and consumes the sessions. `eager`
    /// marks a pipelined (mid-stream) sweep: the interval is forwarded
    /// and the stages drained exactly as at a barrier — byte-identical
    /// delivery, since intervals are ts-disjoint and ts is the major
    /// canonical sort key — but seal/lag accounting and the
    /// `WindowSealed` journal stay on the barrier schedule, and the
    /// eager counters/gauges tick instead.
    fn sweep(&mut self, finish: bool, eager: bool) -> Result<()> {
        self.guard()?;
        let wm = self.watermark;
        self.trace_live = self.active_trace.is_some();
        for stage in 0..self.plan.num_stages() {
            let mut forwarded = 0usize;
            let fwd_t0 = self.trace_live.then(Instant::now);
            if stage > 0 {
                // Forward pooled input the watermark has sealed (all of
                // it at finish), in canonical (ts, entry, port, content)
                // order — the deterministic exchange delivery order.
                // Scratch buffers are reused sweep-over-sweep, so the
                // per-interval cadence of pipelined delivery stays
                // allocation-free once warm.
                let mut pool = std::mem::take(&mut self.pools[stage]);
                let mut kept = std::mem::take(&mut self.keep_buf);
                let mut keyed = std::mem::take(&mut self.fwd_buf);
                if finish {
                    keyed.extend(
                        pool.drain(..)
                            .map(|e| ((e.0, e.1, e.2, canon::fast_key(&e.3)), e)),
                    );
                } else {
                    for e in pool.drain(..) {
                        if e.0 < wm {
                            keyed.push(((e.0, e.1, e.2, canon::fast_key(&e.3)), e));
                        } else {
                            kept.push(e);
                        }
                    }
                }
                self.keep_buf = std::mem::replace(&mut self.pools[stage], kept);
                // Mirror `canon::canonical_sort`: fast binary keys
                // first, then re-order residual fast-key tie runs by
                // the exhaustive rendering — a distinct-tuple collision
                // on the compact key must not fall back to the
                // partition-dependent pool order. When the producing
                // stage runs on a single slot its output pooled in
                // emission order; a strictly-ascending pre-check skips
                // the sort (and the tie pass) entirely.
                let presorted = self.eager
                    && (self.shards == 1 || self.plan.single_producer(stage))
                    && keyed.windows(2).all(|w| w[0].0 < w[1].0);
                if !presorted {
                    keyed.sort_by(|(a, _), (b, _)| a.cmp(b));
                    let mut i = 0;
                    while i < keyed.len() {
                        let mut j = i + 1;
                        while j < keyed.len() && keyed[j].0 == keyed[i].0 {
                            j += 1;
                        }
                        if j - i > 1 {
                            keyed[i..j].sort_by_cached_key(|(_, e)| canon::exact_key(&e.3));
                        }
                        i = j;
                    }
                }
                forwarded = keyed.len();
                if self.eager && self.plan.single_consumer(stage) {
                    // Every entry of this stage is pinned: the whole
                    // sealed interval lands on shard 0. Skip the
                    // per-tuple shard computation and builder
                    // accumulation; deliver each consecutive
                    // same-(node, port) run as one batch.
                    self.flush_builder(stage, 0)?;
                    let mut run: Vec<Tuple> = Vec::new();
                    let mut run_at: Option<(usize, usize)> = None;
                    for (_, (_, node, port, tuple)) in keyed.drain(..) {
                        if run_at != Some((node, port)) {
                            if let Some((n, p)) = run_at.take() {
                                self.ship_run(stage, n, p, &mut run)?;
                            }
                            run_at = Some((node, port));
                        }
                        run.push(tuple);
                    }
                    if let Some((n, p)) = run_at {
                        self.ship_run(stage, n, p, &mut run)?;
                    }
                } else {
                    for (_, (_, node, port, tuple)) in keyed.drain(..) {
                        self.route_one(stage, node, port, tuple)?;
                    }
                }
                self.fwd_buf = keyed;
            }
            if stage > 0 {
                if forwarded > 0 {
                    self.telem.exchange_forwarded(stage).add(forwarded as u64);
                    self.telem.journal().record(TraceDetail::ExchangeForwarded {
                        stage,
                        tuples: forwarded,
                    });
                    if eager {
                        self.telem.eager_forwards(stage).inc();
                    }
                    if let Some(t0) = fwd_t0 {
                        self.trace_buf.push(PendingSpan {
                            kind: SpanKind::ExchangeForward,
                            stage,
                            shard: 0,
                            tuples: forwarded,
                            elapsed_ns: t0.elapsed().as_nanos() as u64,
                        });
                    }
                }
                if eager {
                    if forwarded > 0 {
                        self.eager_depth[stage] += 1;
                    }
                } else {
                    self.eager_depth[stage] = 0;
                }
                self.telem
                    .interval_depth(stage)
                    .set(self.eager_depth[stage] as i64);
                self.telem
                    .pool_depth(stage)
                    .set(self.pools[stage].len() as i64);
            }
            for shard in 0..self.shards {
                self.flush_builder(stage, shard)?;
            }
            let seal_t0 = self.trace_live.then(Instant::now);
            let collected = if finish {
                self.barrier(stage, BarrierOp::Finish)?
            } else {
                self.advance_stage(stage, wm)?;
                self.barrier(stage, BarrierOp::Drain)?
            };
            if !eager {
                let prev = self.sealed[stage];
                if wm > prev {
                    self.telem.record_seal(stage, prev, wm);
                    self.sealed[stage] = wm;
                }
                let released: usize = collected
                    .iter()
                    .map(|outs| outs.iter().map(|(_, t)| t.len()).sum::<usize>())
                    .sum();
                self.telem.journal().record(TraceDetail::WindowSealed {
                    stage,
                    watermark: wm,
                    released,
                });
                if let Some(at) = &self.active_trace {
                    let (trace, root) = (at.trace, at.root);
                    self.flush_trace_buf(trace, root);
                    if wm > prev || finish {
                        let seq = self.telem.traces().record(
                            trace,
                            Some(root),
                            SpanKind::Seal,
                            stage,
                            0,
                            released,
                            seal_t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                        );
                        self.active_trace.as_mut().expect("just checked").last_seal = Some(seq);
                    }
                }
            } else if let Some(at) = &self.active_trace {
                let (trace, root) = (at.trace, at.root);
                self.flush_trace_buf(trace, root);
            }
            self.distribute(stage, collected);
        }
        self.trace_live = false;
        Ok(())
    }

    /// Deliver one accumulated single-consumer run to `(stage, 0)` as a
    /// single batch, columnar when long enough to benefit.
    fn ship_run(&mut self, stage: usize, node: usize, port: usize, run: &mut Vec<Tuple>) -> Result<()> {
        if run.is_empty() {
            return Ok(());
        }
        let mut batch = Batch::from(std::mem::take(run));
        if batch.len() >= COLUMNAR_MIN_CHUNK {
            batch.columnarize();
        }
        self.push_run_to_slot(stage, 0, node, port, batch)
    }

    /// Release held sink output: everything with `ts < watermark` (or
    /// everything at finish), per sink in registration order, each
    /// interval in canonical (ts, content) order.
    fn release(&mut self, all: bool) -> Vec<(NodeId, Vec<Tuple>)> {
        let wm = self.watermark;
        let mut out: Vec<(NodeId, Vec<Tuple>)> = Vec::new();
        for &sink in &self.sink_order {
            let Some(bucket) = self.held.get_mut(&sink) else {
                continue;
            };
            let mut released: Vec<Tuple>;
            if all {
                released = std::mem::take(bucket);
            } else {
                released = Vec::new();
                let mut kept = Vec::new();
                for t in bucket.drain(..) {
                    if t.ts < wm {
                        released.push(t);
                    } else {
                        kept.push(t);
                    }
                }
                *bucket = kept;
            }
            if !released.is_empty() {
                canon::canonical_sort(&mut released);
                out.push((NodeId::from_index(sink), released));
            }
        }
        out
    }

    fn drain_collected(&mut self) -> Result<Vec<(NodeId, Vec<Tuple>)>> {
        self.sweep(false, false)?;
        let t0 = self.active_trace.is_some().then(Instant::now);
        let out = self.release(false);
        self.record_emit(out.iter().map(|(_, t)| t.len()).sum(), t0);
        Ok(out)
    }

    fn finish(&mut self) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        self.sweep(true, false)?;
        let t0 = self.active_trace.is_some().then(Instant::now);
        let released = self.release(true);
        self.record_emit(released.iter().map(|(_, t)| t.len()).sum(), t0);
        let mut out: HashMap<NodeId, Vec<Tuple>> = HashMap::new();
        for (sink, tuples) in released {
            out.insert(sink, tuples);
        }
        Ok(out)
    }

    /// Close the live trace (if any) with its `Emit` span, parented
    /// under the newest seal.
    fn record_emit(&mut self, tuples: usize, t0: Option<Instant>) {
        if let Some(at) = self.active_trace.take() {
            self.telem.traces().record(
                at.trace,
                Some(at.last_seal.unwrap_or(at.root)),
                SpanKind::Emit,
                0,
                0,
                tuples,
                t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
            );
        }
    }

    fn shutdown(&mut self) {
        self.inline.clear();
        self.senders.clear(); // disconnect: workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for StagedCore {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The single-pipeline fast path: one [`ExecSession`] over the whole
/// graph, byte-identical (including sink arrival order) to driving the
/// plain incremental engine — used when one shard is configured or the
/// plan cannot parallelize, so degraded plans pay no exchange machinery.
struct SingleCore {
    session: Option<ExecSession>,
    failed: Option<String>,
    telem: SessionTelemetry,
    /// Lean staged hot path: columnarize long row pushes up front so
    /// the pipeline runs its vectorized kernels, exactly as
    /// `run_batched`'s chunk feed does. Shares the eager-exchange flag
    /// since both are the same "pipelined delivery" configuration.
    eager: bool,
    /// Highest timestamp pushed so far (event-time high water).
    high_water: u64,
    /// Watermark most recently sealed via `advance_watermark`.
    sealed: u64,
    /// Causal-trace state for the most recent sampled batch.
    active_trace: Option<ActiveTrace>,
}

impl SingleCore {
    fn op<T>(&mut self, f: impl FnOnce(&mut ExecSession) -> T) -> Result<T> {
        if let Some(msg) = &self.failed {
            return Err(EngineError::OperatorPanicked(msg.clone()));
        }
        let session = self
            .session
            .as_mut()
            .expect("session present until failure");
        match catch(std::panic::AssertUnwindSafe(|| f(session))) {
            Ok(v) => Ok(v),
            Err(msg) => {
                self.session = None;
                self.failed = Some(msg.clone());
                Err(EngineError::OperatorPanicked(msg))
            }
        }
    }
}

/// An incremental sharded execution session over a query-graph factory.
/// Build one with [`crate::ShardedExecutor::session`]; see the module
/// docs for the execution model.
pub struct ShardedSession {
    sources: HashMap<String, NodeId>,
    core: Core,
}

enum Core {
    Single(Box<SingleCore>),
    Staged(Box<StagedCore>),
}

impl ShardedSession {
    /// Wrap one already-built graph as a single-pipeline session: exact
    /// [`ExecSession`] semantics (including sink arrival order) behind
    /// the sharded session surface, with the same typed panic
    /// containment. The shape a server uses when it was handed a built
    /// graph rather than a factory.
    pub fn single(graph: QueryGraph) -> Result<ShardedSession> {
        let sources: HashMap<String, NodeId> = graph
            .source_entries()
            .map(|(name, id)| (name.to_string(), id))
            .collect();
        let plan_text = graph
            .compile()
            .map(|compiled| ShardPlan::analyze(&graph, &compiled).describe())
            .unwrap_or_default();
        let session = graph.into_session()?;
        let telem = single_telemetry(&session);
        telem.set_plan(plan_text);
        Ok(ShardedSession {
            sources,
            core: Core::Single(Box::new(SingleCore {
                session: Some(session),
                failed: None,
                telem,
                eager: true,
                high_water: 0,
                sealed: 0,
                active_trace: None,
            })),
        })
    }

    pub(crate) fn build(
        shards: usize,
        workers: Option<usize>,
        channel_capacity: usize,
        batch_size: usize,
        pool_buffers: usize,
        eager: bool,
        factory: &dyn Fn() -> QueryGraph,
    ) -> Result<ShardedSession> {
        let prototype = factory();
        let compiled = prototype.compile()?;
        let plan = ShardPlan::analyze(&prototype, &compiled);
        let sources: HashMap<String, NodeId> = prototype
            .source_entries()
            .map(|(name, id)| (name.to_string(), id))
            .collect();

        // Single pipeline when sharding cannot help: one shard
        // configured, or a fully pinned plan. The plain session also
        // preserves exact sink *arrival* order, which multi-shard
        // release trades for the canonical order.
        if shards == 1 || !plan.is_parallel() {
            let plan_text = plan.describe();
            let session = prototype.into_session()?;
            let telem = single_telemetry(&session);
            telem.set_plan(plan_text);
            return Ok(ShardedSession {
                sources,
                core: Core::Single(Box::new(SingleCore {
                    session: Some(session),
                    failed: None,
                    telem,
                    eager,
                    high_water: 0,
                    sealed: 0,
                    active_trace: None,
                })),
            });
        }

        let n = compiled.num_nodes();
        let num_stages = plan.num_stages();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let n_workers = workers.unwrap_or(cores).clamp(1, shards);
        let pool = BatchPool::new(pool_buffers);

        let mut is_real_sink = vec![false; n];
        let mut sink_order: Vec<usize> = Vec::new();
        for &s in compiled.sinks() {
            is_real_sink[s.index()] = true;
            sink_order.push(s.index());
        }
        let mut cut_targets: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for c in plan.cut_edges() {
            cut_targets[c.from.index()].push((c.to.index(), c.port));
        }

        // Build stage metadata once from the prototype's shape.
        let stage_nodes: Vec<Vec<usize>> = {
            let mut v: Vec<Vec<usize>> = vec![Vec::new(); num_stages];
            for i in 0..n {
                v[plan.stage_of(NodeId::from_index(i))].push(i);
            }
            v
        };
        let stages: Vec<StageMeta> = stage_nodes
            .iter()
            .map(|nodes| {
                let mut local_of = vec![None; n];
                for (local, &orig) in nodes.iter().enumerate() {
                    local_of[orig] = Some(NodeId::from_index(local));
                }
                StageMeta {
                    local_of,
                    orig_of: nodes.clone(),
                }
            })
            .collect();

        // One full graph per shard, split into per-stage sessions. The
        // per-node counter handles are harvested before the sessions
        // move onto their workers, so the driver (and anything it binds
        // a registry for) reads the same cells the workers bump.
        let mut telem = SessionTelemetry::new(num_stages, shards);
        telem.set_plan(plan.describe());
        let mut per_worker: Vec<BTreeMap<usize, SlotState>> =
            (0..n_workers).map(|_| BTreeMap::new()).collect();
        for shard in 0..shards {
            let g = factory();
            if g.num_nodes() != n
                || (0..n).any(|i| {
                    g.operator(NodeId::from_index(i)).name()
                        != prototype.operator(NodeId::from_index(i)).name()
                })
            {
                return Err(EngineError::InvalidConfig(
                    "shard factory must build identical graphs on every call".into(),
                ));
            }
            let stage_sessions = split_stages(g, &plan, &stages, num_stages, &pool)?;
            for (stage, session) in stage_sessions.into_iter().enumerate() {
                if let Some(handles) = session.node_telemetry() {
                    let orig_of = &stages[stage].orig_of;
                    telem.push_op_entries(handles.iter().enumerate().map(|(local, h)| {
                        let orig = orig_of[local];
                        OpTelemetryEntry {
                            op: prototype
                                .operator(NodeId::from_index(orig))
                                .name()
                                .to_string(),
                            node: orig,
                            stage,
                            shard,
                            telem: h.clone(),
                        }
                    }));
                }
                let slot = stage * shards + shard;
                per_worker[shard % n_workers].insert(
                    slot,
                    SlotState {
                        session: Some(session),
                        poisoned: None,
                    },
                );
            }
        }
        let inline = per_worker.remove(0);

        let (reply_tx, reply_rx) = bounded::<Reply>(num_stages * shards + 4);
        let mut senders: Vec<Sender<WorkerMsg>> = Vec::with_capacity(per_worker.len());
        let mut handles = Vec::with_capacity(per_worker.len());
        for slots in per_worker {
            let (tx, rx) = bounded::<WorkerMsg>(channel_capacity);
            senders.push(tx);
            let reply_tx = reply_tx.clone();
            handles.push(std::thread::spawn(move || worker_loop(rx, reply_tx, slots)));
        }

        let builders = (0..num_stages * shards)
            .map(|_| SlotBuilder {
                node: 0,
                port: 0,
                batch: Batch::new(),
            })
            .collect();
        Ok(ShardedSession {
            sources,
            core: Core::Staged(Box::new(StagedCore {
                prototype,
                plan,
                shards,
                n_workers,
                batch_size,
                pool,
                stages,
                inline,
                senders,
                reply_rx,
                handles,
                builders,
                pools: vec![Vec::new(); num_stages],
                held: BTreeMap::new(),
                spread: vec![0; num_stages],
                cut_targets,
                is_real_sink,
                sink_order,
                watermark: 0,
                failed: None,
                telem,
                eager,
                eager_swept: 0,
                eager_depth: vec![0; num_stages],
                fwd_buf: Vec::new(),
                keep_buf: Vec::new(),
                direct_scratch: Vec::new(),
                sealed: vec![0; num_stages],
                active_trace: None,
                trace_live: false,
                trace_buf: Vec::new(),
            })),
        })
    }

    /// Named entry node for `name`, if the graph registered one.
    pub fn source_node(&self, name: &str) -> Option<NodeId> {
        self.sources.get(name).copied()
    }

    /// Merge named input streams into one timestamp-ordered feed of
    /// `(ts, node, port, tuple)` entries — the arrival order the session
    /// expects pushes to follow. Delegates to
    /// [`ustream_core::query::merged_feed`], the shared home of the feed
    /// tiebreak, so this driver can never order ties differently from
    /// `run_batched`.
    pub fn ordered_feed(
        &self,
        inputs: Vec<(String, usize, Vec<Tuple>)>,
    ) -> Result<Vec<(u64, NodeId, usize, Tuple)>> {
        ustream_core::query::merged_feed(&self.sources, inputs)
    }

    /// Push one batch of input addressed to `node`'s input `port`.
    /// Pushes must be globally ts-nondecreasing (the contract every
    /// driver — `ordered_feed`, the server's watermark merge — already
    /// satisfies). Errors when an operator or routing key panicked.
    pub fn push_batch(&mut self, node: NodeId, port: usize, mut batch: Batch) -> Result<()> {
        match &mut self.core {
            Core::Single(s) => {
                // The lean hot path: long row pushes go columnar up
                // front (bit-identical per the columnar property
                // suites), so a session-driven single pipeline runs the
                // same vectorized kernels as `run_batched`'s chunk feed.
                if s.eager && !batch.is_columnar() && batch.len() >= COLUMNAR_MIN_CHUNK {
                    batch.columnarize();
                }
                let tuples = batch.len();
                s.telem.batches_pushed.inc();
                s.telem.tuples_pushed.add(tuples as u64);
                s.telem.routed(0, 0).add(tuples as u64);
                s.telem.journal().record(TraceDetail::BatchPumped {
                    node: node.index(),
                    port,
                    tuples,
                });
                if let Some(max_ts) = batch.max_ts() {
                    s.high_water = s.high_water.max(max_ts);
                }
                let trace = s.telem.traces().sample(s.telem.batches_pushed.get());
                let t0 = trace.map(|_| Instant::now());
                let result = s.op(|session| session.push(node, port, batch));
                if let Some(trace) = trace {
                    if result.is_ok() {
                        let root = s.telem.traces().record(
                            trace,
                            None,
                            SpanKind::Pump,
                            0,
                            0,
                            tuples,
                            t0.expect("timed when sampled").elapsed().as_nanos() as u64,
                        );
                        s.active_trace = Some(ActiveTrace {
                            trace,
                            root,
                            last_seal: None,
                        });
                    }
                }
                result
            }
            Core::Staged(s) => s.push_batch(node, port, batch),
        }
    }

    /// The session's live telemetry handles: routing and exchange
    /// counters, stage pool depths, watermark-lag sketches, per-operator
    /// counters, and the structured event journal. Always on; handles
    /// are cloneable and readable from other threads while the session
    /// runs.
    pub fn telemetry(&self) -> &SessionTelemetry {
        match &self.core {
            Core::Single(s) => &s.telem,
            Core::Staged(s) => &s.telem,
        }
    }

    /// Adopt every telemetry handle into `registry` under the
    /// `engine_*` metric families (see
    /// [`SessionTelemetry::bind_registry`]).
    pub fn bind_registry(&self, registry: &MetricsRegistry) {
        self.telemetry().bind_registry(registry);
    }

    /// Event time reached `watermark` without (necessarily) data: the
    /// caller promises no future push will carry `ts < watermark`.
    /// Event-time windows the clock has passed close — immediately on a
    /// single pipeline, at the next sweep across shards — so results
    /// gated only on time still flow. This is how a served query whose
    /// publishers are idle-but-heartbeating keeps streaming: the
    /// server's collective publisher watermark can run ahead of the
    /// last pushed tuple.
    pub fn advance_watermark(&mut self, watermark: u64) -> Result<()> {
        match &mut self.core {
            Core::Single(s) => {
                s.high_water = s.high_water.max(watermark);
                let sealed_now = watermark > s.sealed;
                if sealed_now {
                    s.telem.record_seal(0, s.sealed, watermark);
                    s.sealed = watermark;
                }
                let t0 = (sealed_now && s.active_trace.is_some()).then(Instant::now);
                let result = s.op(|session| session.advance_watermark(watermark));
                if let Some(t0) = t0 {
                    if result.is_ok() {
                        if let Some(at) = &mut s.active_trace {
                            let seq = s.telem.traces().record(
                                at.trace,
                                Some(at.root),
                                SpanKind::Seal,
                                0,
                                0,
                                0,
                                t0.elapsed().as_nanos() as u64,
                            );
                            at.last_seal = Some(seq);
                        }
                    }
                }
                result
            }
            Core::Staged(s) => {
                s.guard()?;
                s.watermark = s.watermark.max(watermark);
                // A bare watermark advance seals an interval just like a
                // push does: deliver it downstream now.
                s.maybe_eager_sweep()
            }
        }
    }

    /// Drain the sink output completed since the previous drain, per
    /// sink in registration order. With one pipeline this is the plain
    /// session's arrival-order drain; across shards it sweeps the
    /// exchange stages, broadcasts the watermark, and releases every
    /// sink tuple whose timestamp the watermark sealed, in canonical
    /// `(ts, content)` order.
    pub fn drain_collected(&mut self) -> Result<Vec<(NodeId, Vec<Tuple>)>> {
        match &mut self.core {
            Core::Single(s) => {
                let t0 = s.active_trace.is_some().then(Instant::now);
                let out = s.op(|session| session.drain_collected())?;
                let released: usize = out.iter().map(|(_, t)| t.len()).sum();
                s.telem.journal().record(TraceDetail::WindowSealed {
                    stage: 0,
                    watermark: s.sealed,
                    released,
                });
                if let Some(at) = s.active_trace.take() {
                    s.telem.traces().record(
                        at.trace,
                        Some(at.last_seal.unwrap_or(at.root)),
                        SpanKind::Emit,
                        0,
                        0,
                        released,
                        t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                    );
                }
                Ok(out)
            }
            Core::Staged(s) => s.drain_collected(),
        }
    }

    /// End of stream: flush every stage in order (exchanging the final
    /// windows downstream) and return the undrained remainder per sink.
    pub fn finish(mut self) -> Result<HashMap<NodeId, Vec<Tuple>>> {
        match &mut self.core {
            Core::Single(s) => {
                if let Some(msg) = &s.failed {
                    return Err(EngineError::OperatorPanicked(msg.clone()));
                }
                let session = s.session.take().expect("session present until failure");
                match catch(std::panic::AssertUnwindSafe(|| session.finish())) {
                    Ok(map) => Ok(map),
                    Err(msg) => {
                        s.failed = Some(msg.clone());
                        Err(EngineError::OperatorPanicked(msg))
                    }
                }
            }
            Core::Staged(s) => {
                let out = s.finish();
                s.shutdown();
                out
            }
        }
    }
}

/// Harvest a single-pipeline session's per-node counters into a fresh
/// 1×1 telemetry bundle.
fn single_telemetry(session: &ExecSession) -> SessionTelemetry {
    let mut telem = SessionTelemetry::new(1, 1);
    if let Some(handles) = session.node_telemetry() {
        telem.push_op_entries(handles.iter().enumerate().map(|(i, h)| OpTelemetryEntry {
            op: session.operator(NodeId::from_index(i)).name().to_string(),
            node: i,
            stage: 0,
            shard: 0,
            telem: h.clone(),
        }));
    }
    telem
}

/// Split one factory-built graph into its per-stage [`ExecSession`]s.
fn split_stages(
    graph: QueryGraph,
    plan: &ShardPlan,
    stages: &[StageMeta],
    num_stages: usize,
    pool: &BatchPool,
) -> Result<Vec<ExecSession>> {
    if num_stages == 1 {
        // No cuts: the stage graph is the graph itself (stage-local ids
        // coincide with the original ids).
        return Ok(vec![graph.into_session()?.with_pool(pool.clone())]);
    }
    let (nodes, edges, _sources, sinks) = graph.dismantle();
    let mut stage_graphs: Vec<QueryGraph> = (0..num_stages).map(|_| QueryGraph::new()).collect();
    for (i, op) in nodes.into_iter().enumerate() {
        let stage = plan.stage_of(NodeId::from_index(i));
        let local = stage_graphs[stage].add(op);
        debug_assert_eq!(Some(local), stages[stage].local_of[i], "stable split");
    }
    for (from, to, port) in edges {
        let stage = plan.stage_of(from);
        if stage == plan.stage_of(to) {
            let lf = stages[stage].local_of[from.index()].expect("node in stage");
            let lt = stages[stage].local_of[to.index()].expect("node in stage");
            stage_graphs[stage].connect(lf, lt, port)?;
        }
    }
    // Stage sinks: the query's real sinks plus every cut-edge source
    // (the exchange captures its output there).
    for s in sinks {
        let stage = plan.stage_of(s);
        let local = stages[stage].local_of[s.index()].expect("sink in stage");
        stage_graphs[stage].sink(local);
    }
    for c in plan.cut_edges() {
        let stage = plan.stage_of(c.from);
        let local = stages[stage].local_of[c.from.index()].expect("cut source in stage");
        stage_graphs[stage].sink(local);
    }
    stage_graphs
        .into_iter()
        .map(|g| Ok(g.into_session()?.with_pool(pool.clone())))
        .collect()
}
