//! Shard planning: decide, per source entry, how input tuples are routed
//! across shard pipelines.
//!
//! The planner reads each operator's [`Partitioning`] declaration and the
//! compiled adjacency, then assigns every entry node one of three rules:
//!
//! - **Keyed** — the entry's downstream cone contains exactly one keyed
//!   stateful operator (its *anchor*); tuples route by the anchor's
//!   partition key so every group's state lives on one shard.
//! - **Spread** — no stateful operator downstream; tuples spread
//!   round-robin (stateless operators replicate freely).
//! - **Pinned** — a global operator, conflicting anchors, or an
//!   ambiguous anchor port: the entry's tuples all go to shard 0, where
//!   a single instance sees the whole stream.
//!
//! Pinning cascades: a keyed anchor fed by *any* pinned entry would see
//! its per-key state split between shards, so all entries feeding that
//! anchor are pinned with it (fixpoint below). The result is always a
//! *sound* plan — degraded configurations lose parallelism, never
//! correctness.

use ustream_core::query::{CompiledPlan, QueryGraph};
use ustream_core::value::GroupKey;
use ustream_core::{NodeId, Partitioning, Tuple};

/// How tuples entering at one source node choose a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteRule {
    /// Hash the partition key computed by the anchor operator. `port` is
    /// the anchor input port flows from this entry arrive on; `None`
    /// means the entry node *is* the anchor and the feed's own port is
    /// used.
    Keyed { anchor: NodeId, port: Option<usize> },
    /// Stateless cone: round-robin across shards.
    Spread,
    /// All tuples to shard 0.
    Pinned,
}

/// The routing decision for a compiled graph.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Rule per node index (non-entry nodes default to `Pinned`; only
    /// entry indices are ever consulted). A flat table because the
    /// driver reads it once per input tuple.
    rules: Vec<RouteRule>,
    /// True when at least one entry routes by key or spreads — i.e. the
    /// plan actually uses more than one shard when shards > 1.
    parallel: bool,
    /// Registered source entries as `(stream name, node index)`, sorted
    /// by stream name for stable diagnostics.
    entries: Vec<(String, usize)>,
    /// Operator name per node index (anchor rendering in
    /// [`ShardPlan::describe`]).
    op_names: Vec<String>,
}

impl ShardPlan {
    /// Analyze `graph` (with its compiled `plan`) into routing rules for
    /// every registered source entry.
    pub fn analyze(graph: &QueryGraph, plan: &CompiledPlan) -> ShardPlan {
        let n = plan.num_nodes();
        // Downstream-reachable set per node, self included (bitsets as
        // Vec<bool>; graphs are tens of nodes, not millions).
        let mut reach: Vec<Vec<bool>> = vec![vec![false; n]; n];
        // Walk in reverse topological order so each node's set is the
        // union of its successors' sets.
        for &i in plan.topo_order().iter().rev() {
            reach[i][i] = true;
            let succs: Vec<usize> = plan
                .downstream_of(NodeId::from_index(i))
                .iter()
                .map(|&(to, _)| to)
                .collect();
            for s in succs {
                let src = std::mem::take(&mut reach[s]);
                for (x, y) in reach[i].iter_mut().zip(src.iter()) {
                    *x |= *y;
                }
                reach[s] = src;
            }
        }

        let partitioning: Vec<Partitioning> = (0..n)
            .map(|i| graph.operator(NodeId::from_index(i)).partition_keys())
            .collect();

        let entries: Vec<usize> = graph.source_entries().map(|(_, id)| id.index()).collect();
        let mut rules: Vec<RouteRule> = vec![RouteRule::Pinned; n];
        for &e in &entries {
            let anchors: Vec<usize> = (0..n)
                .filter(|&i| reach[e][i] && partitioning[i] != Partitioning::Any)
                .collect();
            let rule = match anchors.as_slice() {
                [] => RouteRule::Spread,
                [a] if partitioning[*a] == Partitioning::Key => {
                    match anchor_port(plan, &reach, e, *a) {
                        Some(port) => RouteRule::Keyed {
                            anchor: NodeId::from_index(*a),
                            port,
                        },
                        None => RouteRule::Pinned,
                    }
                }
                _ => RouteRule::Pinned,
            };
            rules[e] = rule;
        }

        // Fixpoint: a keyed anchor with any pinned feeder pins all of its
        // feeders (otherwise its per-key state would split across shards).
        loop {
            let mut changed = false;
            let anchors: Vec<usize> = entries
                .iter()
                .filter_map(|&e| match rules[e] {
                    RouteRule::Keyed { anchor, .. } => Some(anchor.index()),
                    _ => None,
                })
                .collect();
            for a in anchors {
                let feeders: Vec<usize> =
                    entries.iter().copied().filter(|&e| reach[e][a]).collect();
                let any_pinned = feeders.iter().any(|&e| rules[e] == RouteRule::Pinned);
                if any_pinned {
                    for e in feeders {
                        if rules[e] != RouteRule::Pinned {
                            rules[e] = RouteRule::Pinned;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let parallel = entries.iter().any(|&e| rules[e] != RouteRule::Pinned);
        let mut named_entries: Vec<(String, usize)> = graph
            .source_entries()
            .map(|(name, id)| (name.to_string(), id.index()))
            .collect();
        named_entries.sort();
        let op_names = (0..n)
            .map(|i| graph.operator(NodeId::from_index(i)).name().to_string())
            .collect();
        ShardPlan {
            rules,
            parallel,
            entries: named_entries,
            op_names,
        }
    }

    /// Routing rule for the entry node `node` (entries not registered as
    /// sources are pinned).
    pub fn rule(&self, node: NodeId) -> RouteRule {
        self.rules
            .get(node.index())
            .copied()
            .unwrap_or(RouteRule::Pinned)
    }

    /// Whether any entry routes across shards (false ⇒ the graph runs as
    /// a single pipeline regardless of the configured shard count).
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// The registered entries and their routing rules, sorted by stream
    /// name.
    pub fn entry_rules(&self) -> impl Iterator<Item = (&str, NodeId, RouteRule)> {
        self.entries
            .iter()
            .map(|(name, idx)| (name.as_str(), NodeId::from_index(*idx), self.rules[*idx]))
    }

    /// Number of registered source entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// How many entries are pinned to shard 0 — the *degraded* portion
    /// of the plan. `pinned_entries() == num_entries()` means the whole
    /// graph runs as a single pipeline no matter how many shards are
    /// configured.
    pub fn pinned_entries(&self) -> usize {
        self.entries
            .iter()
            .filter(|(_, idx)| self.rules[*idx] == RouteRule::Pinned)
            .count()
    }

    /// Human-readable routing summary: one line per entry naming its
    /// [`RouteRule`] (with the anchor operator for keyed routes), plus a
    /// pinned-entry count. Lost parallelism is visible here instead of
    /// silent — a probabilistic join quietly pinning the plan shows up
    /// as `pinned`.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (name, idx) in &self.entries {
            let line = match self.rules[*idx] {
                RouteRule::Keyed { anchor, port } => {
                    let port = match port {
                        Some(p) => format!("port {p}"),
                        None => "feed port".to_string(),
                    };
                    format!(
                        "entry `{name}` -> keyed on `{}` ({port})",
                        self.op_names[anchor.index()]
                    )
                }
                RouteRule::Spread => format!("entry `{name}` -> spread (stateless cone)"),
                RouteRule::Pinned => format!("entry `{name}` -> pinned to shard 0"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        let pinned = self.pinned_entries();
        out.push_str(&format!(
            "{pinned}/{} entries pinned{}",
            self.entries.len(),
            if pinned == self.entries.len() && !self.entries.is_empty() {
                " — plan is fully serial (degraded)"
            } else if pinned > 0 {
                " — plan is partially degraded"
            } else {
                ""
            }
        ));
        out
    }
}

/// The unique input port of `anchor` that flows from entry `e` arrive on:
/// `Some(None)` when `e` is the anchor itself (feed port applies),
/// `Some(Some(p))` for a unique in-edge port, `None` when paths from `e`
/// enter the anchor on more than one port (ambiguous ⇒ pin).
fn anchor_port(
    plan: &CompiledPlan,
    reach: &[Vec<bool>],
    e: usize,
    anchor: usize,
) -> Option<Option<usize>> {
    if e == anchor {
        return Some(None);
    }
    let mut ports: Vec<usize> = Vec::new();
    for (u, reachable) in reach[e].iter().enumerate() {
        if !reachable {
            continue;
        }
        for &(to, port) in plan.downstream_of(NodeId::from_index(u)) {
            if to == anchor && !ports.contains(&port) {
                ports.push(port);
            }
        }
    }
    match ports.as_slice() {
        [p] => Some(Some(*p)),
        _ => None,
    }
}

/// Deterministic 64-bit FNV-1a over a canonical [`GroupKey`] encoding —
/// stable across runs, processes, and platforms (the std `Hasher` default
/// keys are an implementation detail we must not depend on for
/// reproducible shard assignment).
pub fn stable_key_hash(key: &GroupKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv_key(&mut h, key);
    h
}

fn fnv_byte(h: &mut u64, b: u8) {
    *h ^= b as u64;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

fn fnv_key(h: &mut u64, key: &GroupKey) {
    match key {
        GroupKey::Unit => fnv_byte(h, 0),
        GroupKey::Int(i) => {
            fnv_byte(h, 1);
            for b in i.to_le_bytes() {
                fnv_byte(h, b);
            }
        }
        GroupKey::Str(s) => {
            fnv_byte(h, 2);
            for &b in s.as_bytes() {
                fnv_byte(h, b);
            }
            fnv_byte(h, 0xff);
        }
        GroupKey::Pair(a, b) => {
            fnv_byte(h, 3);
            fnv_key(h, a);
            fnv_key(h, b);
        }
    }
}

/// Shard index for a routed tuple under `rule`, given the prototype
/// graph's operators for key computation. `spread` is the driver's
/// running round-robin counter.
pub fn shard_of(
    rule: RouteRule,
    prototype: &QueryGraph,
    feed_port: usize,
    tuple: &Tuple,
    shards: usize,
    spread: &mut usize,
) -> usize {
    match rule {
        RouteRule::Pinned => 0,
        RouteRule::Spread => {
            let s = *spread % shards;
            *spread += 1;
            s
        }
        RouteRule::Keyed { anchor, port } => {
            let port = port.unwrap_or(feed_port);
            match prototype.operator(anchor).partition_key(port, tuple) {
                // Keyless tuples never touch keyed state; park them on a
                // fixed shard so routing stays deterministic.
                None => 0,
                Some(k) => (stable_key_hash(&k) % shards as u64) as usize,
            }
        }
    }
}
