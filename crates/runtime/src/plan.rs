//! Shard planning: cut a compiled graph into exchange-connected stages
//! and decide, per stage entry, how tuples are routed across shards.
//!
//! ## Stages and exchanges
//!
//! A graph whose operators are all `Any`/`Key` partitioning is cut at
//! **keyed-anchor boundaries**: every node gets a *stage index* equal to
//! the number of keyed stateful operators strictly upstream of it, so a
//! chain `select → agg(by g) → join(by k) → sink` splits into stage 0
//! (`select`, `agg`) and stage 1 (`join`, `sink`). Each stage runs
//! key-partitioned across the worker pool; an **exchange** carries every
//! edge that crosses a stage boundary, re-shuffling the producing
//! stage's output by the next stage's partition key (with per-shard
//! watermark/EOS propagation and the canonical `(ts, content)` merge at
//! the boundary). Chained keyed anchors therefore shard stage-by-stage
//! instead of degrading to a single pinned pipeline. A trailing segment
//! with no anchor of its own (the common `… → agg → sink` tail) is
//! folded back into its producing stage — no exchange is needed where
//! no re-keying happens.
//!
//! ## Per-stage routing rules
//!
//! Within each stage, the planner reads each operator's [`Partitioning`]
//! declaration and assigns every stage entry — a registered source node
//! owned by the stage, or the target of a cut edge — one of three rules:
//!
//! - **Keyed** — the entry's within-stage downstream cone contains
//!   exactly one keyed stateful operator (its *anchor*); tuples route by
//!   the anchor's partition key so every group's state lives on one
//!   shard.
//! - **Spread** — no stateful operator in the cone; tuples spread
//!   round-robin (stateless operators replicate freely).
//! - **Pinned** — conflicting anchors or an ambiguous anchor port: the
//!   entry's tuples all go to shard 0, where a single instance sees the
//!   whole sub-stream.
//!
//! Pinning cascades within a stage: a keyed anchor fed by *any* pinned
//! entry would see its per-key state split between shards, so all
//! entries feeding that anchor are pinned with it.
//!
//! ## Global operators
//!
//! A graph containing any [`Partitioning::Global`] operator (count
//! windows, probabilistic joins, sampling aggregates) falls back to the
//! single-stage analysis with the classic cascading-pin rules: a global
//! operator's output stream can be order-sensitive (Monte-Carlo rngs),
//! so re-ordering it through an exchange would not preserve exact
//! equivalence. Degraded configurations lose parallelism, never
//! correctness.

use ustream_core::query::{CompiledPlan, QueryGraph};
use ustream_core::value::GroupKey;
use ustream_core::{NodeId, Partitioning, Tuple};

/// How tuples entering at one stage entry choose a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteRule {
    /// Hash the partition key computed by the anchor operator. `port` is
    /// the anchor input port flows from this entry arrive on; `None`
    /// means the entry node *is* the anchor and the feed's own port is
    /// used.
    Keyed { anchor: NodeId, port: Option<usize> },
    /// Stateless cone: round-robin across shards.
    Spread,
    /// All tuples to shard 0.
    Pinned,
}

/// One graph edge that crosses a stage boundary: the output of `from`
/// (captured as a stage sink) is re-shuffled by `to`'s stage rules and
/// delivered to `to`'s input `port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutEdge {
    pub from: NodeId,
    pub to: NodeId,
    pub port: usize,
}

/// The staged routing decision for a compiled graph.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Rule per node index. Only stage-entry indices (registered sources
    /// and cut-edge targets) are ever consulted; everything else
    /// defaults to `Pinned`. A flat table because the driver reads it
    /// once per routed tuple.
    rules: Vec<RouteRule>,
    /// Stage index per node.
    stage_of: Vec<usize>,
    /// Number of stages (≥ 1).
    num_stages: usize,
    /// Edges crossing stage boundaries, in graph edge order.
    cuts: Vec<CutEdge>,
    /// True when at least one entry routes by key or spreads — i.e. the
    /// plan actually uses more than one shard when shards > 1.
    parallel: bool,
    /// Registered source entries as `(stream name, node index)`, sorted
    /// by stream name for stable diagnostics.
    entries: Vec<(String, usize)>,
    /// Operator name per node index (anchor rendering in
    /// [`ShardPlan::describe`]).
    op_names: Vec<String>,
}

impl ShardPlan {
    /// Analyze `graph` (with its compiled `plan`) into stages, cut
    /// edges, and routing rules for every stage entry.
    pub fn analyze(graph: &QueryGraph, plan: &CompiledPlan) -> ShardPlan {
        let n = plan.num_nodes();
        let partitioning: Vec<Partitioning> = (0..n)
            .map(|i| graph.operator(NodeId::from_index(i)).partition_keys())
            .collect();
        let any_global = partitioning.contains(&Partitioning::Global);

        // Stage index = number of keyed anchors strictly upstream. With
        // a global operator anywhere we keep the whole graph in one
        // stage (see module docs); otherwise cut at keyed anchors and
        // fold an anchor-free trailing segment back into its producer.
        let stage_of: Vec<usize> = if any_global {
            vec![0; n]
        } else {
            let mut depth = vec![0usize; n];
            for &i in plan.topo_order() {
                let out_depth = depth[i] + usize::from(partitioning[i] == Partitioning::Key);
                for &(to, _) in plan.downstream_of(NodeId::from_index(i)) {
                    depth[to] = depth[to].max(out_depth);
                }
            }
            let max_depth = depth.iter().copied().max().unwrap_or(0);
            let last_has_anchor =
                (0..n).any(|i| depth[i] == max_depth && partitioning[i] == Partitioning::Key);
            if max_depth > 0 && !last_has_anchor {
                for d in depth.iter_mut() {
                    if *d == max_depth {
                        *d = max_depth - 1;
                    }
                }
            }
            depth
        };
        let num_stages = stage_of.iter().copied().max().unwrap_or(0) + 1;

        // Cut edges: everything crossing a stage boundary.
        let mut cuts: Vec<CutEdge> = Vec::new();
        for i in 0..n {
            for &(to, port) in plan.downstream_of(NodeId::from_index(i)) {
                if stage_of[i] != stage_of[to] {
                    cuts.push(CutEdge {
                        from: NodeId::from_index(i),
                        to: NodeId::from_index(to),
                        port,
                    });
                }
            }
        }

        // Per-stage entries: registered sources owned by the stage plus
        // cut-edge targets.
        let registered: Vec<usize> = graph.source_entries().map(|(_, id)| id.index()).collect();
        let mut stage_entries: Vec<Vec<usize>> = vec![Vec::new(); num_stages];
        for &e in &registered {
            stage_entries[stage_of[e]].push(e);
        }
        for c in &cuts {
            let t = c.to.index();
            if !stage_entries[stage_of[t]].contains(&t) {
                stage_entries[stage_of[t]].push(t);
            }
        }

        // Within-stage reachability (self included), as bitsets over the
        // stage-internal edges. Graphs are tens of nodes, not millions.
        let mut reach: Vec<Vec<bool>> = vec![vec![false; n]; n];
        for &i in plan.topo_order().iter().rev() {
            reach[i][i] = true;
            let succs: Vec<usize> = plan
                .downstream_of(NodeId::from_index(i))
                .iter()
                .filter(|&&(to, _)| stage_of[to] == stage_of[i])
                .map(|&(to, _)| to)
                .collect();
            for s in succs {
                let src = std::mem::take(&mut reach[s]);
                for (x, y) in reach[i].iter_mut().zip(src.iter()) {
                    *x |= *y;
                }
                reach[s] = src;
            }
        }

        // Per-stage rule analysis with cascading pinning.
        let mut rules: Vec<RouteRule> = vec![RouteRule::Pinned; n];
        for entries in &stage_entries {
            for &e in entries {
                let anchors: Vec<usize> = (0..n)
                    .filter(|&i| reach[e][i] && partitioning[i] != Partitioning::Any)
                    .collect();
                let rule = match anchors.as_slice() {
                    [] => RouteRule::Spread,
                    [a] if partitioning[*a] == Partitioning::Key => {
                        match anchor_port(plan, &reach, &stage_of, e, *a) {
                            Some(port) => RouteRule::Keyed {
                                anchor: NodeId::from_index(*a),
                                port,
                            },
                            None => RouteRule::Pinned,
                        }
                    }
                    _ => RouteRule::Pinned,
                };
                rules[e] = rule;
            }
            // Fixpoint: a keyed anchor with any pinned feeder pins all of
            // its feeders (otherwise its per-key state would split across
            // shards).
            loop {
                let mut changed = false;
                let anchors: Vec<usize> = entries
                    .iter()
                    .filter_map(|&e| match rules[e] {
                        RouteRule::Keyed { anchor, .. } => Some(anchor.index()),
                        _ => None,
                    })
                    .collect();
                for a in anchors {
                    let feeders: Vec<usize> =
                        entries.iter().copied().filter(|&e| reach[e][a]).collect();
                    let any_pinned = feeders.iter().any(|&e| rules[e] == RouteRule::Pinned);
                    if any_pinned {
                        for e in feeders {
                            if rules[e] != RouteRule::Pinned {
                                rules[e] = RouteRule::Pinned;
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        let parallel = stage_entries
            .iter()
            .flatten()
            .any(|&e| rules[e] != RouteRule::Pinned);
        let mut named_entries: Vec<(String, usize)> = graph
            .source_entries()
            .map(|(name, id)| (name.to_string(), id.index()))
            .collect();
        named_entries.sort();
        let op_names = (0..n)
            .map(|i| graph.operator(NodeId::from_index(i)).name().to_string())
            .collect();
        ShardPlan {
            rules,
            stage_of,
            num_stages,
            cuts,
            parallel,
            entries: named_entries,
            op_names,
        }
    }

    /// Routing rule for the stage entry `node` (nodes that are neither
    /// registered sources nor cut-edge targets are pinned).
    pub fn rule(&self, node: NodeId) -> RouteRule {
        self.rules
            .get(node.index())
            .copied()
            .unwrap_or(RouteRule::Pinned)
    }

    /// Number of stages the graph was cut into (1 = no exchange).
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Stage index of `node`.
    pub fn stage_of(&self, node: NodeId) -> usize {
        self.stage_of.get(node.index()).copied().unwrap_or(0)
    }

    /// The edges crossing stage boundaries, in graph edge order.
    pub fn cut_edges(&self) -> &[CutEdge] {
        &self.cuts
    }

    /// Whether any entry routes across shards (false ⇒ the graph runs as
    /// a single pipeline regardless of the configured shard count).
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// The registered entries and their routing rules, sorted by stream
    /// name.
    pub fn entry_rules(&self) -> impl Iterator<Item = (&str, NodeId, RouteRule)> {
        self.entries
            .iter()
            .map(|(name, idx)| (name.as_str(), NodeId::from_index(*idx), self.rules[*idx]))
    }

    /// Number of registered source entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// How many registered entries are pinned to shard 0 — the
    /// *degraded* portion of the plan. `pinned_entries() ==
    /// num_entries()` means every external stream enters a single
    /// pipeline no matter how many shards are configured.
    pub fn pinned_entries(&self) -> usize {
        self.entries
            .iter()
            .filter(|(_, idx)| self.rules[*idx] == RouteRule::Pinned)
            .count()
    }

    /// Stage-entry node indices of `stage`: registered sources the stage
    /// owns plus cut-edge targets, in the same order the runtime pools
    /// them.
    fn stage_entry_indices(&self, stage: usize) -> Vec<usize> {
        let mut es: Vec<usize> = self
            .entries
            .iter()
            .map(|(_, i)| *i)
            .filter(|&i| self.stage_of[i] == stage)
            .collect();
        for c in &self.cuts {
            let t = c.to.index();
            if self.stage_of[t] == stage && !es.contains(&t) {
                es.push(t);
            }
        }
        es
    }

    /// True when every entry of `stage` routes to shard 0 (all
    /// [`RouteRule::Pinned`]): the stage has exactly one consuming slot
    /// no matter how many shards are configured, so exchange input for
    /// it can be delivered whole to slot `(stage, 0)` without per-tuple
    /// shard routing or builder/pool round-trips.
    pub fn single_consumer(&self, stage: usize) -> bool {
        let es = self.stage_entry_indices(stage);
        !es.is_empty() && es.iter().all(|&e| self.rules[e] == RouteRule::Pinned)
    }

    /// True when `stage`'s producing stage (`stage − 1`) runs on exactly
    /// one slot — sealed-interval output arriving at `stage`'s exchange
    /// comes from a single producer, already in that producer's emission
    /// order, so the canonical exchange sort can be skipped whenever a
    /// linear pre-check confirms the run is ordered.
    pub fn single_producer(&self, stage: usize) -> bool {
        stage > 0 && stage < self.num_stages && self.single_consumer(stage - 1)
    }

    fn rule_text(&self, idx: usize) -> String {
        match self.rules[idx] {
            RouteRule::Keyed { anchor, port } => {
                let port = match port {
                    Some(p) => format!("port {p}"),
                    None => "feed port".to_string(),
                };
                format!("keyed on `{}` ({port})", self.op_names[anchor.index()])
            }
            RouteRule::Spread => "spread (stateless cone)".to_string(),
            RouteRule::Pinned => "pinned to shard 0".to_string(),
        }
    }

    /// Human-readable routing summary. Single-stage plans render one
    /// line per entry naming its [`RouteRule`] (with the anchor operator
    /// for keyed routes); staged plans group the lines per stage and
    /// list each exchange edge with the routing rule its re-shuffle
    /// applies. A pinned-entry footer makes lost parallelism visible
    /// instead of silent — a probabilistic join quietly pinning the plan
    /// shows up as `pinned`.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        if self.num_stages == 1 {
            for (name, idx) in &self.entries {
                out.push_str(&format!("entry `{name}` -> {}\n", self.rule_text(*idx)));
            }
        } else {
            for stage in 0..self.num_stages {
                out.push_str(&format!("stage {stage}:\n"));
                for (name, idx) in &self.entries {
                    if self.stage_of[*idx] == stage {
                        out.push_str(&format!("  entry `{name}` -> {}\n", self.rule_text(*idx)));
                    }
                }
                for c in &self.cuts {
                    if self.stage_of[c.to.index()] == stage {
                        out.push_str(&format!(
                            "  exchange `{}` -> `{}` (port {}): {}\n",
                            self.op_names[c.from.index()],
                            self.op_names[c.to.index()],
                            c.port,
                            self.rule_text(c.to.index())
                        ));
                    }
                }
            }
        }
        let pinned = self.pinned_entries();
        out.push_str(&format!(
            "{pinned}/{} entries pinned{}",
            self.entries.len(),
            if pinned == self.entries.len() && !self.entries.is_empty() {
                " — plan is fully serial (degraded)"
            } else if pinned > 0 {
                " — plan is partially degraded"
            } else {
                ""
            }
        ));
        if self.num_stages > 1 {
            out.push_str(&format!(
                "\n{} stages, {} exchange edge(s)",
                self.num_stages,
                self.cuts.len()
            ));
        }
        out
    }
}

/// The unique within-stage input port of `anchor` that flows from entry
/// `e` arrive on: `Some(None)` when `e` is the anchor itself (feed port
/// applies), `Some(Some(p))` for a unique in-edge port, `None` when
/// paths from `e` enter the anchor on more than one port (ambiguous ⇒
/// pin).
fn anchor_port(
    plan: &CompiledPlan,
    reach: &[Vec<bool>],
    stage_of: &[usize],
    e: usize,
    anchor: usize,
) -> Option<Option<usize>> {
    if e == anchor {
        return Some(None);
    }
    let mut ports: Vec<usize> = Vec::new();
    for (u, reachable) in reach[e].iter().enumerate() {
        if !reachable || stage_of[u] != stage_of[anchor] {
            continue;
        }
        for &(to, port) in plan.downstream_of(NodeId::from_index(u)) {
            if to == anchor && !ports.contains(&port) {
                ports.push(port);
            }
        }
    }
    match ports.as_slice() {
        [p] => Some(Some(*p)),
        _ => None,
    }
}

/// Deterministic 64-bit FNV-1a over a canonical [`GroupKey`] encoding —
/// stable across runs, processes, and platforms (the std `Hasher` default
/// keys are an implementation detail we must not depend on for
/// reproducible shard assignment).
pub fn stable_key_hash(key: &GroupKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv_key(&mut h, key);
    h
}

fn fnv_byte(h: &mut u64, b: u8) {
    *h ^= b as u64;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

fn fnv_key(h: &mut u64, key: &GroupKey) {
    match key {
        GroupKey::Unit => fnv_byte(h, 0),
        GroupKey::Int(i) => {
            fnv_byte(h, 1);
            for b in i.to_le_bytes() {
                fnv_byte(h, b);
            }
        }
        GroupKey::Str(s) => {
            fnv_byte(h, 2);
            for &b in s.as_bytes() {
                fnv_byte(h, b);
            }
            fnv_byte(h, 0xff);
        }
        GroupKey::Pair(a, b) => {
            fnv_byte(h, 3);
            fnv_key(h, a);
            fnv_key(h, b);
        }
    }
}

/// Shard index for a routed tuple under `rule`, given the prototype
/// graph's operators for key computation. `spread` is the driver's
/// running round-robin counter.
pub fn shard_of(
    rule: RouteRule,
    prototype: &QueryGraph,
    feed_port: usize,
    tuple: &Tuple,
    shards: usize,
    spread: &mut usize,
) -> usize {
    match rule {
        RouteRule::Pinned => 0,
        RouteRule::Spread => {
            let s = *spread % shards;
            *spread += 1;
            s
        }
        RouteRule::Keyed { anchor, port } => {
            let port = port.unwrap_or(feed_port);
            match prototype.operator(anchor).partition_key(port, tuple) {
                // Keyless tuples never touch keyed state (a `None` key
                // matches nothing); spread them round-robin so the
                // stateless work they do feed still parallelizes instead
                // of parking on shard 0.
                None => {
                    let s = *spread % shards;
                    *spread += 1;
                    s
                }
                Some(k) => (stable_key_hash(&k) % shards as u64) as usize,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_core::ops::join::{JoinCondition, WindowJoin};
    use ustream_core::ops::Passthrough;
    use ustream_core::schema::{DataType, Schema};
    use ustream_core::Value;

    fn keyed_join_graph() -> (QueryGraph, NodeId) {
        let mut g = QueryGraph::new();
        let join = g.add(Box::new(WindowJoin::new(
            1_000,
            JoinCondition::KeyEquals {
                left: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
                right: Box::new(|t| GroupKey::from_value(t.get("k").ok()?)),
            },
            0.0,
        )));
        let sink = g.add(Box::new(Passthrough::new("sink")));
        g.connect(join, sink, 0).unwrap();
        g.source("left", join);
        g.source("right", join);
        g.sink(sink);
        (g, join)
    }

    fn tuple_with_key(k: Value) -> Tuple {
        let s = Schema::builder().field("k", DataType::Int).build();
        Tuple::new(s, vec![k], 0)
    }

    #[test]
    fn keyed_tuples_route_by_stable_hash() {
        let (g, join) = keyed_join_graph();
        let plan = ShardPlan::analyze(&g, &g.compile().unwrap()).clone();
        let rule = plan.rule(join);
        assert!(matches!(rule, RouteRule::Keyed { .. }));
        let mut spread = 0usize;
        let t = tuple_with_key(Value::Int(7));
        let a = shard_of(rule, &g, 0, &t, 8, &mut spread);
        let b = shard_of(rule, &g, 0, &t, 8, &mut spread);
        assert_eq!(a, b, "same key, same shard");
        assert_eq!(
            spread, 0,
            "keyed routing does not consume the spread counter"
        );
    }

    #[test]
    fn keyless_tuples_spread_round_robin_not_shard_zero() {
        let (g, join) = keyed_join_graph();
        let plan = ShardPlan::analyze(&g, &g.compile().unwrap());
        let rule = plan.rule(join);
        let mut spread = 0usize;
        let t = tuple_with_key(Value::Null); // key closure yields None
        let shards: Vec<usize> = (0..4)
            .map(|_| shard_of(rule, &g, 0, &t, 4, &mut spread))
            .collect();
        assert_eq!(shards, vec![0, 1, 2, 3], "keyless tuples round-robin");
        assert_eq!(spread, 4);
    }

    #[test]
    fn producer_consumer_annotations_follow_pinning() {
        // Band joins are probabilistic ⇒ Global ⇒ one pinned stage:
        // single consumer at stage 0, and no producing stage above it.
        let mut g = QueryGraph::new();
        let join = g.add(Box::new(WindowJoin::new(
            1_000,
            JoinCondition::BandUncertain {
                left_field: "x".into(),
                right_field: "x".into(),
                epsilon: 1.0,
            },
            0.0,
        )));
        let sink = g.add(Box::new(Passthrough::new("sink")));
        g.connect(join, sink, 0).unwrap();
        g.source("left", join);
        g.source("right", join);
        g.sink(sink);
        let plan = ShardPlan::analyze(&g, &g.compile().unwrap());
        assert!(plan.single_consumer(0), "global join pins every entry");
        assert!(!plan.single_producer(0), "stage 0 has no producing stage");
        assert!(!plan.single_producer(1), "no stage 1 exists");

        // A fully keyed plan has parallel consumers everywhere.
        let (g, _) = keyed_join_graph();
        let plan = ShardPlan::analyze(&g, &g.compile().unwrap());
        assert!(!plan.single_consumer(0));
        assert!(!plan.single_producer(1));
    }

    #[test]
    fn stable_hash_is_platform_stable() {
        // Frozen values: reproducible shard assignment is part of the
        // determinism contract, so the hash must never silently change.
        assert_eq!(stable_key_hash(&GroupKey::Int(0)), 0x529a_2cdc_8ff5_33ac);
        assert_eq!(
            stable_key_hash(&GroupKey::Str("area-51".into())),
            stable_key_hash(&GroupKey::Str("area-51".into()))
        );
        assert_ne!(
            stable_key_hash(&GroupKey::Int(1)),
            stable_key_hash(&GroupKey::Int(2))
        );
    }
}
