//! Deterministic sink merging — re-exported from
//! [`ustream_core::canon`], where the canonical `(ts, content)` order
//! moved when it became a whole-engine concern: the windowed aggregate
//! emits each closed window's rows in it, exchange boundaries deliver
//! re-shuffled stage input in it, and the sharded runtime sorts each
//! merged sink into it. One total order, independent of partitioning.

pub use ustream_core::canon::{canonical_sort, fast_key};
