//! A per-object particle cloud: the factored unit of §4.1's
//! "factorization breaks a large particle over all hidden variables into
//! smaller particles over individual hidden variables".

use rand::rngs::StdRng;
use rand::Rng;
use ustream_prob::samples::WeightedSamplesNd;

/// Weighted particles over one object's (x, y) position.
#[derive(Debug, Clone)]
pub struct ParticleCloud {
    xs: Vec<[f64; 2]>,
    /// Unnormalized log-free weights (kept normalized after updates).
    ws: Vec<f64>,
}

impl ParticleCloud {
    /// Initialize uniformly over the floor extent.
    pub fn uniform(n: usize, extent: (f64, f64), rng: &mut StdRng) -> Self {
        assert!(n >= 1);
        let xs = (0..n)
            .map(|_| [rng.gen::<f64>() * extent.0, rng.gen::<f64>() * extent.1])
            .collect();
        ParticleCloud {
            xs,
            ws: vec![1.0 / n as f64; n],
        }
    }

    /// Initialize from a known point with jitter (reference tags).
    pub fn around(n: usize, center: [f64; 2], jitter: f64, rng: &mut StdRng) -> Self {
        assert!(n >= 1);
        let gauss = |rng: &mut StdRng| {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let xs = (0..n)
            .map(|_| {
                [
                    center[0] + jitter * gauss(rng),
                    center[1] + jitter * gauss(rng),
                ]
            })
            .collect();
        ParticleCloud {
            xs,
            ws: vec![1.0 / n as f64; n],
        }
    }

    pub fn len(&self) -> usize {
        self.xs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    pub fn particles(&self) -> &[[f64; 2]] {
        &self.xs
    }

    pub fn weights(&self) -> &[f64] {
        &self.ws
    }

    /// Apply a likelihood function to every particle and renormalize.
    /// Returns the (pre-normalization) total weight — near-zero totals
    /// signal that the cloud is inconsistent with the evidence.
    pub fn reweight<F: Fn(&[f64; 2]) -> f64>(&mut self, likelihood: F) -> f64 {
        let mut total = 0.0;
        for (x, w) in self.xs.iter().zip(self.ws.iter_mut()) {
            *w *= likelihood(x);
            total += *w;
        }
        if total > 0.0 {
            for w in self.ws.iter_mut() {
                *w /= total;
            }
        } else {
            // Degenerate: reset to uniform (evidence contradicts cloud).
            let n = self.ws.len() as f64;
            for w in self.ws.iter_mut() {
                *w = 1.0 / n;
            }
        }
        total
    }

    /// Propagate every particle through a motion step.
    pub fn propagate<F: FnMut(&mut [f64; 2])>(&mut self, mut step: F) {
        for x in self.xs.iter_mut() {
            step(x);
        }
    }

    /// Effective sample size 1/Σw².
    pub fn ess(&self) -> f64 {
        1.0 / self.ws.iter().map(|w| w * w).sum::<f64>()
    }

    /// Systematic resampling to `n` equally-weighted particles.
    pub fn resample(&mut self, n: usize, rng: &mut StdRng) {
        assert!(n >= 1);
        let step = 1.0 / n as f64;
        let start: f64 = rng.gen::<f64>() * step;
        let mut out = Vec::with_capacity(n);
        let mut acc = self.ws[0];
        let mut i = 0usize;
        for k in 0..n {
            let u = start + k as f64 * step;
            while acc < u && i + 1 < self.xs.len() {
                i += 1;
                acc += self.ws[i];
            }
            out.push(self.xs[i]);
        }
        self.xs = out;
        self.ws = vec![1.0 / n as f64; n];
    }

    /// Posterior mean (x, y).
    pub fn mean(&self) -> [f64; 2] {
        let mut m = [0.0f64; 2];
        for (x, w) in self.xs.iter().zip(self.ws.iter()) {
            m[0] += w * x[0];
            m[1] += w * x[1];
        }
        m
    }

    /// Isotropic spread: √(tr(cov)/2) — the compression trigger (§4.1:
    /// "after object particles stabilize in a small region, compression
    /// can further reduce the number of particles").
    pub fn spread(&self) -> f64 {
        let m = self.mean();
        let mut acc = 0.0;
        for (x, w) in self.xs.iter().zip(self.ws.iter()) {
            let dx = x[0] - m[0];
            let dy = x[1] - m[1];
            acc += w * (dx * dx + dy * dy);
        }
        (acc / 2.0).sqrt()
    }

    /// Export as weighted N-d samples for tuple-level conversion (§4.3).
    pub fn to_samples(&self) -> WeightedSamplesNd {
        let mut flat = Vec::with_capacity(self.xs.len() * 2);
        for x in &self.xs {
            flat.extend_from_slice(x);
        }
        WeightedSamplesNd::new(flat, self.ws.clone(), 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_extent() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = ParticleCloud::uniform(2000, (60.0, 40.0), &mut rng);
        let m = c.mean();
        assert!((m[0] - 30.0).abs() < 1.5);
        assert!((m[1] - 20.0).abs() < 1.0);
        assert!(c.spread() > 10.0, "uniform cloud is wide");
    }

    #[test]
    fn reweight_concentrates_on_likely_region() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = ParticleCloud::uniform(5000, (60.0, 60.0), &mut rng);
        // Evidence: object is near (10, 10).
        c.reweight(|p| (-((p[0] - 10.0).powi(2) + (p[1] - 10.0).powi(2)) / 8.0).exp());
        let m = c.mean();
        assert!((m[0] - 10.0).abs() < 1.0, "mean {m:?}");
        assert!((m[1] - 10.0).abs() < 1.0);
        assert!(c.ess() < 5000.0 * 0.5, "evidence reduces ESS");
    }

    #[test]
    fn degenerate_evidence_resets_to_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = ParticleCloud::around(100, [0.0, 0.0], 0.1, &mut rng);
        let total = c.reweight(|_| 0.0);
        assert_eq!(total, 0.0);
        assert!((c.ess() - 100.0).abs() < 1e-9, "reset to uniform weights");
    }

    #[test]
    fn resampling_preserves_posterior_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = ParticleCloud::uniform(4000, (60.0, 60.0), &mut rng);
        c.reweight(|p| (-((p[0] - 20.0).powi(2) + (p[1] - 30.0).powi(2)) / 18.0).exp());
        let before = c.mean();
        c.resample(4000, &mut rng);
        let after = c.mean();
        assert!((before[0] - after[0]).abs() < 0.5);
        assert!((before[1] - after[1]).abs() < 0.5);
        assert!(
            (c.ess() - 4000.0).abs() < 1e-6,
            "equal weights after resample"
        );
    }

    #[test]
    fn resample_down_compresses() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = ParticleCloud::around(500, [5.0, 5.0], 0.3, &mut rng);
        c.resample(50, &mut rng);
        assert_eq!(c.len(), 50);
        let m = c.mean();
        assert!((m[0] - 5.0).abs() < 0.3);
    }

    #[test]
    fn spread_shrinks_with_evidence() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut c = ParticleCloud::uniform(3000, (60.0, 60.0), &mut rng);
        let s0 = c.spread();
        c.reweight(|p| (-((p[0] - 10.0).powi(2) + (p[1] - 10.0).powi(2)) / 2.0).exp());
        assert!(c.spread() < s0 / 3.0);
    }

    #[test]
    fn to_samples_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = ParticleCloud::around(300, [3.0, -2.0], 0.5, &mut rng);
        let s = c.to_samples();
        let m = s.mean();
        assert!((m[0] - 3.0).abs() < 0.15);
        assert!((m[1] + 2.0).abs() < 0.15);
    }
}
