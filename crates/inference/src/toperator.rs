//! The RFID data capture & transformation (T) operator (§3, §4):
//! consumes raw scans, runs the factored particle filter, and emits an
//! object-location tuple stream where every tuple carries its pdf.
//!
//! Output schema: `(time, tag_id, loc, loc_x, loc_y)` —
//! `loc` is the 2-D location distribution (multivariate Gaussian after
//! §4.3 conversion), `loc_x`/`loc_y` are scalar marginals converted under
//! the configured policy (so a recently-moved object's bimodal cloud
//! becomes an AIC/BIC-selected mixture).

use crate::factored_pf::{FactoredConfig, FactoredFilter};
use rfid_sim::{Scan, TagRef};
use std::sync::Arc;
use ustream_core::schema::{DataType, Schema};
use ustream_core::toperator::TransformOperator;
use ustream_core::tuple::Tuple;
use ustream_core::updf::{ConversionPolicy, Updf};
use ustream_core::value::Value;

/// The RFID T operator.
pub struct RfidTOperator {
    filter: FactoredFilter,
    policy: ConversionPolicy,
    schema: Arc<Schema>,
    /// Emit a tuple for an object only when it was read in the scan.
    emit_on_read_only: bool,
    /// Total tuples emitted (diagnostics).
    pub emitted: u64,
}

impl RfidTOperator {
    pub fn new(num_objects: usize, cfg: FactoredConfig, policy: ConversionPolicy) -> Self {
        let schema = Schema::builder()
            .field("time", DataType::Time)
            .field("tag_id", DataType::Int)
            .field("loc", DataType::UncertainVec(2))
            .field("loc_x", DataType::Uncertain)
            .field("loc_y", DataType::Uncertain)
            .build();
        RfidTOperator {
            filter: FactoredFilter::new(num_objects, cfg),
            policy,
            schema,
            emit_on_read_only: true,
            emitted: 0,
        }
    }

    /// Also emit tuples for unread-but-updated objects each scan.
    pub fn emit_all_updated(mut self) -> Self {
        self.emit_on_read_only = false;
        self
    }

    pub fn filter(&self) -> &FactoredFilter {
        &self.filter
    }

    pub fn filter_mut(&mut self) -> &mut FactoredFilter {
        &mut self.filter
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn tuple_for(&self, ts: u64, id: u32) -> Tuple {
        let cloud = self.filter.cloud(id);
        let nd = cloud.to_samples();
        let loc = Updf::MvSamples(nd.clone()).compact(&self.policy);
        let loc_x = Updf::Samples(nd.marginal(0)).compact(&self.policy);
        let loc_y = Updf::Samples(nd.marginal(1)).compact(&self.policy);
        Tuple::new(
            self.schema.clone(),
            vec![
                Value::Time(ts),
                Value::Int(id as i64),
                Value::from(loc),
                Value::from(loc_x),
                Value::from(loc_y),
            ],
            ts,
        )
    }
}

impl TransformOperator for RfidTOperator {
    type Raw = Scan;

    fn ingest(&mut self, scan: Scan) -> Vec<Tuple> {
        let read_objects: Vec<u32> = scan
            .readings
            .iter()
            .filter_map(|r| match r.tag {
                TagRef::Object(id) => Some(id),
                TagRef::Shelf(_) => None,
            })
            .collect();
        // Prefer the reported pose; fall back to truth's reader position
        // only if every reading omitted it (pose dropout).
        let reader_pos = scan
            .readings
            .iter()
            .find_map(|r| r.reader_pos)
            .unwrap_or(scan.truth.reader_pos);
        self.filter.process_scan(reader_pos, &read_objects);

        let ts = scan.truth.ts;
        let emit_ids: Vec<u32> = if self.emit_on_read_only {
            let mut ids = read_objects;
            ids.sort_unstable();
            ids.dedup();
            ids
        } else {
            (0..self.filter.num_objects() as u32).collect()
        };
        let out: Vec<Tuple> = emit_ids
            .into_iter()
            .map(|id| self.tuple_for(ts, id))
            .collect();
        self.emitted += out.len() as u64;
        out
    }

    fn name(&self) -> &str {
        "rfid-t-operator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MotionModel, ObservationModel};
    use rfid_sim::{SensingModel, TraceConfig, TraceGenerator, WorldConfig};
    use ustream_prob::fit::ModelSelection;

    fn setup(policy: ConversionPolicy) -> (TraceGenerator, RfidTOperator) {
        let tc = TraceConfig {
            world: WorldConfig {
                shelf_rows: 4,
                shelf_cols: 4,
                num_objects: 30,
                move_prob: 0.0,
                seed: 21,
                ..Default::default()
            },
            sensing: SensingModel::clean(),
            seed: 23,
            ..Default::default()
        };
        let gen = TraceGenerator::new(tc);
        let shelf_xy: Vec<[f64; 2]> = gen
            .world
            .shelves()
            .iter()
            .map(|s| [s.pos[0], s.pos[1]])
            .collect();
        let cfg = FactoredConfig {
            num_particles: 150,
            extent: gen.world.extent(),
            motion: MotionModel {
                diffusion: 0.05,
                move_prob: 0.0,
                shelf_xy,
                placement_jitter: 0.8,
            },
            obs: ObservationModel::new(*gen.sensing()),
            use_spatial_index: true,
            compression: None,
            negative_evidence: true,
            resample_fraction: 0.5,
            seed: 29,
        };
        let t_op = RfidTOperator::new(30, cfg, policy);
        (gen, t_op)
    }

    #[test]
    fn emits_tuples_with_distributions() {
        let (mut gen, mut t_op) = setup(ConversionPolicy::FitGaussian);
        let mut total = 0usize;
        for _ in 0..100 {
            let out = t_op.ingest(gen.next_scan());
            for tuple in &out {
                let loc = tuple.updf("loc").unwrap();
                assert_eq!(loc.dim(), 2);
                assert!(matches!(loc, Updf::Mv(_)), "compact per policy");
                let lx = tuple.updf("loc_x").unwrap();
                assert!(!lx.is_sample_based());
            }
            total += out.len();
        }
        assert!(total > 50, "T operator emitted {total} tuples");
        assert_eq!(t_op.emitted as usize, total);
    }

    #[test]
    fn keep_samples_policy_ships_particles() {
        let (mut gen, mut t_op) = setup(ConversionPolicy::KeepSamples);
        let mut found = false;
        for _ in 0..50 {
            for tuple in t_op.ingest(gen.next_scan()) {
                let loc = tuple.updf("loc").unwrap();
                assert!(loc.is_sample_based());
                // Sample payloads are enormously larger (§4.3).
                assert!(tuple.uncertain_payload_bytes() > 1000);
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn estimates_track_truth_for_observed_objects() {
        let (mut gen, mut t_op) = setup(ConversionPolicy::FitGaussian);
        let mut last_scan = None;
        for _ in 0..400 {
            let scan = gen.next_scan();
            t_op.ingest(scan.clone());
            last_scan = Some(scan);
        }
        let truth = &last_scan.unwrap().truth;
        let err = t_op.filter().rmse(&truth.object_xy, &[]);
        assert!(err < 6.0, "post-patrol RMSE {err:.2} ft");
    }

    #[test]
    fn mixture_policy_available_for_marginals() {
        let (mut gen, mut t_op) = setup(ConversionPolicy::FitMixture {
            max_k: 2,
            criterion: ModelSelection::Bic,
        });
        // Just verify the pipeline runs and emits parametric payloads.
        for _ in 0..30 {
            for tuple in t_op.ingest(gen.next_scan()) {
                let lx = tuple.updf("loc_x").unwrap();
                assert!(!lx.is_sample_based());
            }
        }
    }
}
