//! The joint particle filter — the unoptimized baseline of §4.1.
//!
//! Each particle is a hypothesis about the positions of *all* objects at
//! once. The state dimension is 2·N, so the number of particles needed
//! for a given accuracy grows explosively with N ("the worst case of an
//! exponential number of particles"), and every update touches every
//! object in every particle: O(P·N) likelihood evaluations and resampling
//! copies per scan. This is the design whose measured throughput anchors
//! the low end of the §4.1 scalability claim.

use crate::model::{MotionModel, ObservationModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Joint-filter configuration.
#[derive(Debug, Clone)]
pub struct JointConfig {
    /// Number of joint particles.
    pub num_particles: usize,
    pub extent: (f64, f64),
    pub motion: MotionModel,
    pub obs: ObservationModel,
    /// Resample when ESS < fraction·P.
    pub resample_fraction: f64,
    pub seed: u64,
}

/// A joint particle filter over `num_objects` positions.
pub struct JointFilter {
    /// particles[p] = positions of all objects in hypothesis p.
    particles: Vec<Vec<[f64; 2]>>,
    weights: Vec<f64>,
    cfg: JointConfig,
    rng: StdRng,
}

impl JointFilter {
    pub fn new(num_objects: usize, cfg: JointConfig) -> Self {
        assert!(num_objects >= 1 && cfg.num_particles >= 2);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let particles = (0..cfg.num_particles)
            .map(|_| {
                (0..num_objects)
                    .map(|_| {
                        [
                            rng.gen::<f64>() * cfg.extent.0,
                            rng.gen::<f64>() * cfg.extent.1,
                        ]
                    })
                    .collect()
            })
            .collect();
        let w = 1.0 / cfg.num_particles as f64;
        JointFilter {
            weights: vec![w; cfg.num_particles],
            particles,
            cfg,
            rng,
        }
    }

    pub fn num_objects(&self) -> usize {
        self.particles[0].len()
    }

    pub fn num_particles(&self) -> usize {
        self.particles.len()
    }

    /// Effective sample size of the joint weights.
    pub fn ess(&self) -> f64 {
        1.0 / self.weights.iter().map(|w| w * w).sum::<f64>()
    }

    /// Process one scan: every object in every particle receives evidence
    /// (positive if read, negative otherwise) — no factorization, no
    /// spatial pruning.
    pub fn process_scan(&mut self, reader_pos: [f64; 3], read_objects: &[u32]) {
        let n = self.num_objects();
        let read_mask: Vec<bool> = {
            let mut m = vec![false; n];
            for &r in read_objects {
                m[r as usize] = true;
            }
            m
        };

        // Motion for every object in every particle.
        for particle in self.particles.iter_mut() {
            for pos in particle.iter_mut() {
                self.cfg.motion.propagate(pos, &mut self.rng);
            }
        }

        // Joint likelihood.
        let mut total = 0.0;
        for (particle, w) in self.particles.iter().zip(self.weights.iter_mut()) {
            let mut like = 1.0f64;
            for (i, pos) in particle.iter().enumerate() {
                like *= if read_mask[i] {
                    self.cfg.obs.likelihood_read(pos, &reader_pos)
                } else {
                    self.cfg.obs.likelihood_missed(pos, &reader_pos)
                };
                if like < 1e-280 {
                    like = 1e-280; // floor against underflow
                }
            }
            *w *= like;
            total += *w;
        }
        if total > 0.0 {
            for w in self.weights.iter_mut() {
                *w /= total;
            }
        } else {
            let u = 1.0 / self.weights.len() as f64;
            for w in self.weights.iter_mut() {
                *w = u;
            }
        }

        if self.ess() < self.cfg.resample_fraction * self.particles.len() as f64 {
            self.resample();
        }
    }

    /// Systematic resampling of whole joint hypotheses (O(P·N) copying).
    fn resample(&mut self) {
        let p = self.particles.len();
        let step = 1.0 / p as f64;
        let start: f64 = self.rng.gen::<f64>() * step;
        let mut out = Vec::with_capacity(p);
        let mut acc = self.weights[0];
        let mut i = 0usize;
        for k in 0..p {
            let u = start + k as f64 * step;
            while acc < u && i + 1 < p {
                i += 1;
                acc += self.weights[i];
            }
            out.push(self.particles[i].clone());
        }
        self.particles = out;
        let w = 1.0 / p as f64;
        self.weights = vec![w; p];
    }

    /// Posterior mean of one object's position.
    pub fn estimate(&self, id: u32) -> [f64; 2] {
        let mut m = [0.0f64; 2];
        for (particle, w) in self.particles.iter().zip(self.weights.iter()) {
            let pos = particle[id as usize];
            m[0] += w * pos[0];
            m[1] += w * pos[1];
        }
        m
    }

    /// XY RMSE against ground truth over all objects.
    pub fn rmse(&self, truth: &[[f64; 2]]) -> f64 {
        let n = self.num_objects();
        let mut acc = 0.0;
        for id in 0..n as u32 {
            let est = self.estimate(id);
            let t = truth[id as usize];
            acc += (est[0] - t[0]).powi(2) + (est[1] - t[1]).powi(2);
        }
        (acc / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::SensingModel;

    fn cfg(p: usize) -> JointConfig {
        JointConfig {
            num_particles: p,
            extent: (30.0, 30.0),
            motion: MotionModel {
                diffusion: 0.05,
                move_prob: 0.0,
                shelf_xy: vec![],
                placement_jitter: 0.5,
            },
            obs: ObservationModel::new(SensingModel::clean()),
            resample_fraction: 0.5,
            seed: 3,
        }
    }

    #[test]
    fn initialization_uniform() {
        let f = JointFilter::new(5, cfg(500));
        assert_eq!(f.num_objects(), 5);
        assert_eq!(f.num_particles(), 500);
        let est = f.estimate(0);
        assert!((est[0] - 15.0).abs() < 2.0, "near floor centre");
    }

    #[test]
    fn repeated_reads_localize_object() {
        let mut f = JointFilter::new(3, cfg(3000));
        // Object 0 is read repeatedly from a reader at (5, 5).
        for _ in 0..30 {
            f.process_scan([5.0, 5.0, 4.0], &[0]);
        }
        let est = f.estimate(0);
        let d = ((est[0] - 5.0).powi(2) + (est[1] - 5.0).powi(2)).sqrt();
        assert!(d < 8.0, "object 0 pulled toward the reader ({d:.1} ft)");
    }

    #[test]
    fn joint_degeneracy_grows_with_objects() {
        // Same particle count, more objects ⇒ joint weights degenerate
        // faster (lower ESS after identical evidence) — the curse of
        // dimensionality that motivates factorization.
        let run = |n_objects: usize| -> f64 {
            let mut f = JointFilter::new(n_objects, cfg(800));
            for step in 0..6 {
                let reader = [5.0 + step as f64 * 2.0, 5.0, 4.0];
                f.process_scan(reader, &[0]);
            }
            f.ess()
        };
        let ess_small = run(2);
        let ess_large = run(24);
        assert!(
            ess_large < ess_small,
            "ESS small-N {ess_small:.0} vs large-N {ess_large:.0}"
        );
    }

    #[test]
    fn estimates_stay_in_bounds() {
        let mut f = JointFilter::new(4, cfg(300));
        for _ in 0..20 {
            f.process_scan([10.0, 10.0, 4.0], &[1, 2]);
        }
        for id in 0..4u32 {
            let e = f.estimate(id);
            assert!(e[0] >= -5.0 && e[0] <= 35.0);
            assert!(e[1] >= -5.0 && e[1] <= 35.0);
        }
    }
}
