//! The probabilistic model (§4.1): motion and observation components of
//! the graphical model, shared by all particle-filter variants.
//!
//! The graphical model factors into (i) how the state of the world
//! changes — objects mostly stay, occasionally jump to another shelf —
//! and (ii) how the sensor generates data from the state — a logistic
//! read-probability over distance/angle. The filter's model deliberately
//! does not know the reader's facing direction (the trace generator
//! does), a realistic model mismatch.

use rand::rngs::StdRng;
use rand::Rng;
use rfid_sim::SensingModel;

/// Object motion: small diffusion plus rare shelf jumps.
#[derive(Debug, Clone)]
pub struct MotionModel {
    /// Per-scan positional diffusion std-dev (ft).
    pub diffusion: f64,
    /// Per-scan probability of a shelf-to-shelf jump.
    pub move_prob: f64,
    /// Known shelf (x, y) positions — jump targets.
    pub shelf_xy: Vec<[f64; 2]>,
    /// Placement jitter around the target shelf (ft).
    pub placement_jitter: f64,
}

impl MotionModel {
    /// Propagate one particle by one scan step.
    pub fn propagate(&self, p: &mut [f64; 2], rng: &mut StdRng) {
        if !self.shelf_xy.is_empty() && rng.gen::<f64>() < self.move_prob {
            let s = self.shelf_xy[rng.gen_range(0..self.shelf_xy.len())];
            p[0] = s[0] + self.placement_jitter * gauss(rng);
            p[1] = s[1] + self.placement_jitter * gauss(rng);
        } else {
            p[0] += self.diffusion * gauss(rng);
            p[1] += self.diffusion * gauss(rng);
        }
    }
}

#[inline]
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Observation model: the filter's belief about the sensing process.
#[derive(Debug, Clone, Copy)]
pub struct ObservationModel {
    pub sensing: SensingModel,
    /// Assumed vertical offset between reader and tags (ft) — the filter
    /// tracks (x, y) only.
    pub z_offset: f64,
    /// Angle (rad) the filter assumes for the unknown reader orientation.
    pub assumed_angle: f64,
}

impl ObservationModel {
    pub fn new(sensing: SensingModel) -> Self {
        ObservationModel {
            sensing,
            z_offset: 1.5,
            assumed_angle: 0.6,
        }
    }

    /// P(tag read | particle at `p`, reader at `reader`).
    #[inline]
    pub fn p_read(&self, p: &[f64; 2], reader: &[f64; 3]) -> f64 {
        let dx = p[0] - reader[0];
        let dy = p[1] - reader[1];
        let d = (dx * dx + dy * dy + self.z_offset * self.z_offset).sqrt();
        self.sensing.read_probability(d, self.assumed_angle)
    }

    /// Positive-evidence likelihood (tag WAS read).
    #[inline]
    pub fn likelihood_read(&self, p: &[f64; 2], reader: &[f64; 3]) -> f64 {
        self.p_read(p, reader).max(1e-9)
    }

    /// Negative-evidence likelihood (tag in range was NOT read).
    #[inline]
    pub fn likelihood_missed(&self, p: &[f64; 2], reader: &[f64; 3]) -> f64 {
        (1.0 - self.p_read(p, reader)).max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn motion() -> MotionModel {
        MotionModel {
            diffusion: 0.05,
            move_prob: 0.0,
            shelf_xy: vec![[0.0, 0.0], [30.0, 30.0]],
            placement_jitter: 0.5,
        }
    }

    #[test]
    fn diffusion_is_small_and_unbiased() {
        let m = motion();
        let mut rng = StdRng::seed_from_u64(1);
        let mut mean = [0.0f64; 2];
        let n = 10_000;
        for _ in 0..n {
            let mut p = [5.0, 5.0];
            m.propagate(&mut p, &mut rng);
            mean[0] += p[0];
            mean[1] += p[1];
        }
        assert!((mean[0] / n as f64 - 5.0).abs() < 0.01);
        assert!((mean[1] / n as f64 - 5.0).abs() < 0.01);
    }

    #[test]
    fn jumps_reach_other_shelves() {
        let mut m = motion();
        m.move_prob = 1.0;
        let mut rng = StdRng::seed_from_u64(2);
        let mut far = 0;
        for _ in 0..100 {
            let mut p = [5.0, 5.0];
            m.propagate(&mut p, &mut rng);
            let d0 = (p[0].powi(2) + p[1].powi(2)).sqrt();
            let d1 = ((p[0] - 30.0).powi(2) + (p[1] - 30.0).powi(2)).sqrt();
            assert!(d0 < 3.0 || d1 < 3.0, "jump lands near a shelf");
            if d1 < 3.0 {
                far += 1;
            }
        }
        assert!(far > 20 && far < 80, "both shelves used ({far})");
    }

    #[test]
    fn likelihoods_favor_correct_geometry() {
        let obs = ObservationModel::new(SensingModel::noisy());
        let reader = [10.0, 10.0, 4.0];
        let near = [11.0, 10.0];
        let far = [28.0, 10.0];
        assert!(obs.likelihood_read(&near, &reader) > obs.likelihood_read(&far, &reader));
        assert!(obs.likelihood_missed(&far, &reader) > obs.likelihood_missed(&near, &reader));
    }

    #[test]
    fn likelihoods_bounded_away_from_zero() {
        let obs = ObservationModel::new(SensingModel::noisy());
        let reader = [0.0, 0.0, 4.0];
        let very_far = [500.0, 500.0];
        assert!(obs.likelihood_read(&very_far, &reader) >= 1e-9);
        assert!(obs.likelihood_missed(&[0.0, 0.0], &reader) >= 1e-9);
    }
}
