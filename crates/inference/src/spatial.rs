//! Uniform-grid spatial index (§4.1: "spatial indexing can further limit
//! the set of variables that must be processed at each time step, since a
//! reader can only observe a small set of objects at a time").

/// A uniform grid over the floor mapping cells → object ids, keyed by
//  each object's current estimated position.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<u32>>,
    /// Current cell of each object (for O(1) relocation).
    locs: Vec<Option<usize>>,
}

impl SpatialGrid {
    pub fn new(extent: (f64, f64), cell: f64, num_objects: usize) -> Self {
        assert!(cell > 0.0);
        let cols = (extent.0 / cell).ceil().max(1.0) as usize;
        let rows = (extent.1 / cell).ceil().max(1.0) as usize;
        SpatialGrid {
            cell,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            locs: vec![None; num_objects],
        }
    }

    fn cell_of(&self, xy: &[f64; 2]) -> usize {
        let cx = ((xy[0] / self.cell) as isize).clamp(0, self.cols as isize - 1) as usize;
        let cy = ((xy[1] / self.cell) as isize).clamp(0, self.rows as isize - 1) as usize;
        cy * self.cols + cx
    }

    /// Insert or move an object to its new estimated position.
    pub fn update(&mut self, id: u32, xy: &[f64; 2]) {
        let new_cell = self.cell_of(xy);
        if let Some(old) = self.locs[id as usize] {
            if old == new_cell {
                return;
            }
            let bucket = &mut self.cells[old];
            if let Some(pos) = bucket.iter().position(|&o| o == id) {
                bucket.swap_remove(pos);
            }
        }
        self.cells[new_cell].push(id);
        self.locs[id as usize] = Some(new_cell);
    }

    /// All objects whose estimated position lies within `radius` of `xy`
    /// (cell-conservative: includes everything in touching cells).
    pub fn candidates(&self, xy: &[f64; 2], radius: f64) -> Vec<u32> {
        let r_cells = (radius / self.cell).ceil() as isize;
        let cx = (xy[0] / self.cell) as isize;
        let cy = (xy[1] / self.cell) as isize;
        let mut out = Vec::new();
        for dy in -r_cells..=r_cells {
            let y = cy + dy;
            if y < 0 || y >= self.rows as isize {
                continue;
            }
            for dx in -r_cells..=r_cells {
                let x = cx + dx;
                if x < 0 || x >= self.cols as isize {
                    continue;
                }
                out.extend_from_slice(&self.cells[y as usize * self.cols + x as usize]);
            }
        }
        out
    }

    /// Number of indexed objects (diagnostic).
    pub fn len(&self) -> usize {
        self.locs.iter().filter(|l| l.is_some()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut g = SpatialGrid::new((60.0, 60.0), 10.0, 10);
        g.update(0, &[5.0, 5.0]);
        g.update(1, &[55.0, 55.0]);
        g.update(2, &[6.0, 7.0]);
        let near = g.candidates(&[5.0, 5.0], 5.0);
        assert!(near.contains(&0) && near.contains(&2));
        assert!(!near.contains(&1));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn relocation_moves_between_cells() {
        let mut g = SpatialGrid::new((60.0, 60.0), 10.0, 4);
        g.update(0, &[5.0, 5.0]);
        g.update(0, &[55.0, 55.0]);
        assert!(!g.candidates(&[5.0, 5.0], 5.0).contains(&0));
        assert!(g.candidates(&[55.0, 55.0], 5.0).contains(&0));
        assert_eq!(g.len(), 1, "still a single entry");
    }

    #[test]
    fn candidates_conservative_over_radius() {
        // Everything within `radius` must be returned (may over-return).
        let mut g = SpatialGrid::new((100.0, 100.0), 7.0, 100);
        for i in 0..100u32 {
            let x = (i % 10) as f64 * 10.0 + 1.0;
            let y = (i / 10) as f64 * 10.0 + 1.0;
            g.update(i, &[x, y]);
        }
        let center = [51.0, 51.0];
        let radius = 15.0;
        let cand = g.candidates(&center, radius);
        for i in 0..100u32 {
            let x = (i % 10) as f64 * 10.0 + 1.0;
            let y = (i / 10) as f64 * 10.0 + 1.0;
            let d = ((x - center[0]).powi(2) + (y - center[1]).powi(2)).sqrt();
            if d <= radius {
                assert!(cand.contains(&i), "object {i} at distance {d:.1} missed");
            }
        }
    }

    #[test]
    fn out_of_bounds_positions_clamped() {
        let mut g = SpatialGrid::new((10.0, 10.0), 5.0, 2);
        g.update(0, &[-3.0, 200.0]); // clamps to a corner cell
        assert_eq!(g.len(), 1);
        let c = g.candidates(&[0.0, 10.0], 6.0);
        assert!(c.contains(&0));
    }

    #[test]
    fn candidate_set_much_smaller_than_population() {
        let mut g = SpatialGrid::new((200.0, 200.0), 10.0, 1000);
        for i in 0..1000u32 {
            let x = (i % 40) as f64 * 5.0;
            let y = (i / 40) as f64 * 8.0;
            g.update(i, &[x, y]);
        }
        let cand = g.candidates(&[100.0, 100.0], 20.0);
        assert!(
            cand.len() < 200,
            "spatial index should prune most of 1000 objects, got {}",
            cand.len()
        );
        assert!(!cand.is_empty());
    }
}
