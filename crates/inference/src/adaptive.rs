//! Adaptive particle-count control using reference tags (§4.2).
//!
//! "To measure inference accuracy dynamically, our system uses reference
//! objects with known true information" — the shelf tags. A
//! [`ReferenceProbe`] runs hidden-variable copies of a few shelf tags
//! through the same filter machinery and compares the estimates with the
//! known positions. The [`AdaptiveController`] implements the paper's
//! feedback scheme: "it starts with a relatively small number of
//! particles and keeps doubling this number before meeting the accuracy
//! requirement. After that, it reduces the number of particles by a
//! constant each time until it finds the smallest number."

use crate::cloud::ParticleCloud;
use crate::model::ObservationModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Controller phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Doubling until the accuracy target is met.
    Doubling,
    /// Walking back down by a constant decrement.
    Decreasing,
    /// Settled at the smallest adequate count.
    Steady,
}

/// The double-then-decrement feedback controller.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    /// Accuracy requirement (max acceptable probe error, ft).
    pub target_error: f64,
    pub min_particles: usize,
    pub max_particles: usize,
    /// Constant step used in the decreasing phase.
    pub decrement: usize,
    phase: Phase,
    current: usize,
    /// (particle count, probe error) after each update — the §4.2
    /// trajectory the `adaptive` harness prints.
    pub history: Vec<(usize, f64)>,
}

impl AdaptiveController {
    pub fn new(target_error: f64, start: usize, max: usize, decrement: usize) -> Self {
        assert!(start >= 2 && max >= start && decrement >= 1);
        AdaptiveController {
            target_error,
            min_particles: 2,
            max_particles: max,
            decrement,
            phase: Phase::Doubling,
            current: start,
            history: Vec::new(),
        }
    }

    pub fn current(&self) -> usize {
        self.current
    }

    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Feed one probe-error measurement; returns the particle count to
    /// use next.
    pub fn update(&mut self, measured_error: f64) -> usize {
        self.history.push((self.current, measured_error));
        match self.phase {
            Phase::Doubling => {
                if measured_error > self.target_error {
                    if self.current < self.max_particles {
                        self.current = (self.current * 2).min(self.max_particles);
                    }
                } else {
                    self.phase = Phase::Decreasing;
                    self.current = self
                        .current
                        .saturating_sub(self.decrement)
                        .max(self.min_particles);
                }
            }
            Phase::Decreasing => {
                if measured_error > self.target_error {
                    // One step too far: back up and settle.
                    self.current = (self.current + self.decrement).min(self.max_particles);
                    self.phase = Phase::Steady;
                } else if self.current > self.min_particles {
                    self.current = self
                        .current
                        .saturating_sub(self.decrement)
                        .max(self.min_particles);
                } else {
                    self.phase = Phase::Steady;
                }
            }
            Phase::Steady => {
                // Re-trigger if accuracy degrades badly (e.g. noise regime
                // change): go back to doubling.
                if measured_error > 1.5 * self.target_error {
                    self.phase = Phase::Doubling;
                    self.current = (self.current * 2).min(self.max_particles);
                }
            }
        }
        self.current
    }
}

/// Reference-tag accuracy probe: a hidden-variable copy of `k` shelf tags
/// whose clouds are updated with the shelf readings of each scan; probe
/// error = mean distance of the posterior means from the known positions.
pub struct ReferenceProbe {
    /// (shelf id, known (x, y)).
    tags: Vec<(u32, [f64; 2])>,
    clouds: Vec<ParticleCloud>,
    obs: ObservationModel,
    extent: (f64, f64),
    rng: StdRng,
}

impl ReferenceProbe {
    pub fn new(
        shelf_tags: Vec<(u32, [f64; 2])>,
        particles: usize,
        extent: (f64, f64),
        obs: ObservationModel,
        seed: u64,
    ) -> Self {
        assert!(!shelf_tags.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let clouds = shelf_tags
            .iter()
            .map(|_| ParticleCloud::uniform(particles, extent, &mut rng))
            .collect();
        ReferenceProbe {
            tags: shelf_tags,
            clouds,
            obs,
            extent,
            rng,
        }
    }

    /// Reset the probe clouds to a new particle count (after the
    /// controller changes the budget).
    pub fn set_particle_count(&mut self, n: usize) {
        for c in self.clouds.iter_mut() {
            c.resample(n, &mut self.rng);
        }
    }

    /// Re-initialize the probe from scratch (fresh uniform clouds) —
    /// used when re-measuring accuracy at a new particle count.
    pub fn reset(&mut self, particles: usize) {
        let extent = self.extent;
        for c in self.clouds.iter_mut() {
            *c = ParticleCloud::uniform(particles, extent, &mut self.rng);
        }
    }

    /// Observe one scan: `read_shelves` holds the shelf ids read.
    pub fn observe_scan(&mut self, reader_pos: [f64; 3], read_shelves: &[u32]) {
        let obs = self.obs;
        for ((tag_id, _), cloud) in self.tags.iter().zip(self.clouds.iter_mut()) {
            let was_read = read_shelves.contains(tag_id);
            if was_read {
                cloud.reweight(|p| obs.likelihood_read(p, &reader_pos));
            } else {
                cloud.reweight(|p| obs.likelihood_missed(p, &reader_pos));
            }
            if cloud.ess() < 0.5 * cloud.len() as f64 {
                let n = cloud.len();
                cloud.resample(n, &mut self.rng);
            }
        }
    }

    /// Mean distance of probe estimates from the known tag positions.
    pub fn current_error(&self) -> f64 {
        let mut acc = 0.0;
        for ((_, truth), cloud) in self.tags.iter().zip(self.clouds.iter()) {
            let est = cloud.mean();
            acc += ((est[0] - truth[0]).powi(2) + (est[1] - truth[1]).powi(2)).sqrt();
        }
        acc / self.tags.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::SensingModel;

    #[test]
    fn controller_doubles_until_target() {
        let mut c = AdaptiveController::new(1.0, 50, 1600, 25);
        // Error model: error = 80/√n (improves with more particles).
        let err = |n: usize| 80.0 / (n as f64).sqrt();
        let mut n = c.current();
        let mut doublings = 0;
        while c.phase() == Phase::Doubling && doublings < 20 {
            n = c.update(err(n));
            doublings += 1;
        }
        // 80/√n ≤ 1 ⇒ n ≥ 6400, capped at 1600 … error never meets target
        // at the cap, so controller rides the cap.
        assert_eq!(n, 1600);
    }

    #[test]
    fn controller_full_trajectory_doubles_then_decrements() {
        let mut c = AdaptiveController::new(2.0, 50, 6400, 50);
        let err = |n: usize| 80.0 / (n as f64).sqrt(); // target met at n≥1600
        let mut n = c.current();
        for _ in 0..60 {
            n = c.update(err(n));
            if c.phase() == Phase::Steady {
                break;
            }
        }
        assert_eq!(c.phase(), Phase::Steady);
        // Smallest adequate count is 1600; controller should settle near
        // it (within one decrement).
        assert!((1550..=1700).contains(&n), "settled at {n}, expected ≈1600");
        // History must show the doubling ramp.
        let counts: Vec<usize> = c.history.iter().map(|(n, _)| *n).collect();
        assert!(counts.windows(2).any(|w| w[1] == 2 * w[0]));
    }

    #[test]
    fn controller_retriggers_on_regime_change() {
        let mut c = AdaptiveController::new(1.0, 100, 3200, 50);
        // Converge first.
        let err = |n: usize| 20.0 / (n as f64).sqrt();
        let mut n = c.current();
        for _ in 0..40 {
            n = c.update(err(n));
            if c.phase() == Phase::Steady {
                break;
            }
        }
        assert_eq!(c.phase(), Phase::Steady);
        // Noise doubles: error now 3× target ⇒ re-enter doubling.
        let before = n;
        let after = c.update(3.0 * c.target_error);
        assert_eq!(c.phase(), Phase::Doubling);
        assert!(after > before);
    }

    #[test]
    fn probe_error_shrinks_with_observations() {
        let obs = ObservationModel::new(SensingModel::clean());
        let tags = vec![(0u32, [10.0, 10.0]), (1u32, [20.0, 20.0])];
        let mut probe = ReferenceProbe::new(tags, 300, (30.0, 30.0), obs, 5);
        let e0 = probe.current_error();
        // Reader sweeps past both tags, reading them when close.
        for step in 0..60 {
            let x = step as f64 * 0.5;
            let reader = [x, x, 4.0];
            let mut read = Vec::new();
            if (x - 10.0).abs() < 6.0 {
                read.push(0);
            }
            if (x - 20.0).abs() < 6.0 {
                read.push(1);
            }
            probe.observe_scan(reader, &read);
        }
        let e1 = probe.current_error();
        assert!(e1 < e0, "probe error {e0:.1} → {e1:.1}");
        assert!(e1 < 5.0, "absolute error {e1:.1} ft");
    }

    #[test]
    fn probe_reset_and_resize() {
        let obs = ObservationModel::new(SensingModel::clean());
        let mut probe = ReferenceProbe::new(vec![(0u32, [5.0, 5.0])], 100, (30.0, 30.0), obs, 6);
        probe.set_particle_count(40);
        probe.reset(60);
        // After reset the error is back to the uniform-prior level.
        assert!(probe.current_error() > 5.0);
    }
}
