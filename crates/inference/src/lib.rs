//! # ustream-inference — particle-filter T operator for RFID streams
//!
//! Implements §4 of the paper: probabilistic inference over a generative
//! model of mobile-RFID sensing, optimized for stream speed.
//!
//! - [`model`] — motion + observation components of the graphical model.
//! - [`cloud`] — per-object weighted particle clouds.
//! - [`joint_pf`] — the unoptimized joint-state baseline (§4.1's 0.1
//!   readings/second design).
//! - [`factored_pf`] — factorization + spatial indexing + compression +
//!   lazy propagation (the >1000 readings/second design).
//! - [`spatial`] — the uniform-grid index.
//! - [`adaptive`] — §4.2 reference-tag probe and double-then-decrement
//!   particle-count controller.
//! - [`toperator`] — the end-to-end T operator emitting uncertain
//!   location tuples into `ustream-core`.

pub mod adaptive;
pub mod cloud;
pub mod factored_pf;
pub mod joint_pf;
pub mod model;
pub mod spatial;
pub mod toperator;

pub use adaptive::{AdaptiveController, Phase, ReferenceProbe};
pub use cloud::ParticleCloud;
pub use factored_pf::{CompressionConfig, FactoredConfig, FactoredFilter, ScanStats};
pub use joint_pf::{JointConfig, JointFilter};
pub use model::{MotionModel, ObservationModel};
pub use spatial::SpatialGrid;
pub use toperator::RfidTOperator;
