//! The factored particle filter with spatial indexing and particle
//! compression — the optimization ladder of §4.1 that takes inference
//! "from processing 0.1 reading per second given 20 objects to over 1000
//! readings per second … given 20,000 objects".
//!
//! - **Factorization**: one independent particle cloud per object instead
//!   of a joint particle over all objects.
//! - **Spatial indexing**: only objects whose estimated position is near
//!   the reader receive (negative) evidence for a scan.
//! - **Compression**: clouds that have stabilized in a small region are
//!   resampled down to a fraction of the particle budget.
//! - **Lazy propagation**: an object's motion model is applied only when
//!   the object is touched, folding the elapsed scans into one step.

use crate::cloud::ParticleCloud;
use crate::model::{MotionModel, ObservationModel};
use crate::spatial::SpatialGrid;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Compression settings (§4.1).
#[derive(Debug, Clone, Copy)]
pub struct CompressionConfig {
    /// Compress when the cloud spread falls below this (ft).
    pub spread_threshold: f64,
    /// Compressed particle count.
    pub min_particles: usize,
}

/// Filter configuration.
#[derive(Debug, Clone)]
pub struct FactoredConfig {
    /// Particle budget per object.
    pub num_particles: usize,
    /// Floor extent (ft).
    pub extent: (f64, f64),
    pub motion: MotionModel,
    pub obs: ObservationModel,
    /// Enable the spatial index (ablation knob).
    pub use_spatial_index: bool,
    /// Enable particle compression (ablation knob).
    pub compression: Option<CompressionConfig>,
    /// Apply negative evidence to unread candidates.
    pub negative_evidence: bool,
    /// Resample when ESS falls below this fraction of the cloud size.
    pub resample_fraction: f64,
    pub seed: u64,
}

/// Per-scan work statistics (ablation measurements).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanStats {
    pub candidates: usize,
    pub clouds_updated: usize,
    pub particles_touched: usize,
}

/// The factored filter over `num_objects` hidden positions.
pub struct FactoredFilter {
    clouds: Vec<ParticleCloud>,
    /// Scan index at which each cloud was last propagated.
    last_step: Vec<u64>,
    step: u64,
    grid: Option<SpatialGrid>,
    cfg: FactoredConfig,
    rng: StdRng,
}

impl FactoredFilter {
    pub fn new(num_objects: usize, cfg: FactoredConfig) -> Self {
        assert!(num_objects >= 1 && cfg.num_particles >= 2);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let clouds: Vec<ParticleCloud> = (0..num_objects)
            .map(|_| ParticleCloud::uniform(cfg.num_particles, cfg.extent, &mut rng))
            .collect();
        let grid = cfg.use_spatial_index.then(|| {
            let mut g = SpatialGrid::new(cfg.extent, cfg.obs.sensing.max_range / 2.0, num_objects);
            for (i, c) in clouds.iter().enumerate() {
                g.update(i as u32, &c.mean());
            }
            g
        });
        FactoredFilter {
            last_step: vec![0; num_objects],
            clouds,
            step: 0,
            grid,
            cfg,
            rng,
        }
    }

    pub fn num_objects(&self) -> usize {
        self.clouds.len()
    }

    pub fn config(&self) -> &FactoredConfig {
        &self.cfg
    }

    /// Posterior mean of an object's position.
    pub fn estimate(&self, id: u32) -> [f64; 2] {
        self.clouds[id as usize].mean()
    }

    pub fn cloud(&self, id: u32) -> &ParticleCloud {
        &self.clouds[id as usize]
    }

    /// Change the per-object particle budget (adaptive control, §4.2).
    /// Existing clouds are resampled to the new count.
    pub fn set_particle_count(&mut self, n: usize) {
        assert!(n >= 2);
        self.cfg.num_particles = n;
        for c in self.clouds.iter_mut() {
            c.resample(n, &mut self.rng);
        }
    }

    /// Fold the scans elapsed since the cloud was last touched into one
    /// motion step (lazy propagation).
    fn propagate_lazy(&mut self, id: usize) {
        let elapsed = self.step - self.last_step[id];
        if elapsed == 0 {
            return;
        }
        self.last_step[id] = self.step;
        let k = elapsed as f64;
        let diffusion = self.cfg.motion.diffusion * k.sqrt();
        let move_prob = 1.0 - (1.0 - self.cfg.motion.move_prob).powf(k);
        let eff = MotionModel {
            diffusion,
            move_prob,
            shelf_xy: self.cfg.motion.shelf_xy.clone(),
            placement_jitter: self.cfg.motion.placement_jitter,
        };
        let rng = &mut self.rng;
        self.clouds[id].propagate(|p| eff.propagate(p, rng));
    }

    /// Process one scan: the reader at `reader_pos` read exactly the
    /// objects in `read_objects` (ids). Returns work statistics.
    pub fn process_scan(&mut self, reader_pos: [f64; 3], read_objects: &[u32]) -> ScanStats {
        self.step += 1;
        let mut stats = ScanStats::default();

        // Candidate set: near the reader per the index, or everyone.
        let mut candidates: Vec<u32> = match &self.grid {
            Some(g) => g.candidates(
                &[reader_pos[0], reader_pos[1]],
                self.cfg.obs.sensing.max_range * 1.25,
            ),
            None => (0..self.clouds.len() as u32).collect(),
        };
        // Read objects are always updated, even if mis-indexed.
        for &r in read_objects {
            if !candidates.contains(&r) {
                candidates.push(r);
            }
        }
        stats.candidates = candidates.len();

        for id in candidates {
            let idx = id as usize;
            let was_read = read_objects.contains(&id);
            if !was_read && !self.cfg.negative_evidence {
                continue;
            }
            self.propagate_lazy(idx);
            let obs = self.cfg.obs;
            let cloud = &mut self.clouds[idx];
            stats.clouds_updated += 1;
            stats.particles_touched += cloud.len();
            if was_read {
                cloud.reweight(|p| obs.likelihood_read(p, &reader_pos));
            } else {
                cloud.reweight(|p| obs.likelihood_missed(p, &reader_pos));
            }
            // Resample on degeneracy.
            if cloud.ess() < self.cfg.resample_fraction * cloud.len() as f64 {
                let n = cloud.len();
                cloud.resample(n, &mut self.rng);
            }
            // Compression / decompression.
            if let Some(comp) = self.cfg.compression {
                let spread = cloud.spread();
                if spread < comp.spread_threshold && cloud.len() > comp.min_particles {
                    cloud.resample(comp.min_particles, &mut self.rng);
                } else if spread > 2.0 * comp.spread_threshold
                    && cloud.len() < self.cfg.num_particles
                {
                    cloud.resample(self.cfg.num_particles, &mut self.rng);
                }
            }
            // Keep the index keyed on fresh estimates.
            if let Some(g) = &mut self.grid {
                g.update(id, &self.clouds[idx].mean());
            }
        }
        stats
    }

    /// XY RMSE of the posterior means against ground truth (Figure 3a's
    /// metric), restricted to `ids` (or all objects when empty).
    pub fn rmse(&self, truth: &[[f64; 2]], ids: &[u32]) -> f64 {
        let all: Vec<u32>;
        let ids = if ids.is_empty() {
            all = (0..self.clouds.len() as u32).collect();
            &all
        } else {
            ids
        };
        let mut acc = 0.0;
        for &id in ids {
            let est = self.estimate(id);
            let t = truth[id as usize];
            acc += (est[0] - t[0]).powi(2) + (est[1] - t[1]).powi(2);
        }
        (acc / ids.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::{SensingModel, TagRef, TraceConfig, TraceGenerator, WorldConfig};

    fn run_filter(
        n_objects: usize,
        particles: usize,
        scans: usize,
        spatial: bool,
        compression: Option<CompressionConfig>,
    ) -> (FactoredFilter, Vec<[f64; 2]>) {
        run_filter_world(n_objects, particles, scans, spatial, compression, 5)
    }

    fn run_filter_world(
        n_objects: usize,
        particles: usize,
        scans: usize,
        spatial: bool,
        compression: Option<CompressionConfig>,
        shelf_grid: usize,
    ) -> (FactoredFilter, Vec<[f64; 2]>) {
        let tc = TraceConfig {
            world: WorldConfig {
                shelf_rows: shelf_grid,
                shelf_cols: shelf_grid,
                num_objects: n_objects,
                move_prob: 0.0,
                seed: 11,
                ..Default::default()
            },
            sensing: SensingModel::clean(),
            seed: 13,
            ..Default::default()
        };
        let mut gen = TraceGenerator::new(tc);
        let shelf_xy: Vec<[f64; 2]> = gen
            .world
            .shelves()
            .iter()
            .map(|s| [s.pos[0], s.pos[1]])
            .collect();
        let cfg = FactoredConfig {
            num_particles: particles,
            extent: gen.world.extent(),
            motion: MotionModel {
                diffusion: 0.05,
                move_prob: 0.0,
                shelf_xy,
                placement_jitter: 0.8,
            },
            obs: ObservationModel::new(*gen.sensing()),
            use_spatial_index: spatial,
            compression,
            negative_evidence: true,
            resample_fraction: 0.5,
            seed: 17,
        };
        let mut filter = FactoredFilter::new(n_objects, cfg);
        let mut last_truth = Vec::new();
        for _ in 0..scans {
            let scan = gen.next_scan();
            let read: Vec<u32> = scan
                .readings
                .iter()
                .filter_map(|r| match r.tag {
                    TagRef::Object(id) => Some(id),
                    TagRef::Shelf(_) => None,
                })
                .collect();
            filter.process_scan(scan.truth.reader_pos, &read);
            last_truth = scan.truth.object_xy.clone();
        }
        (filter, last_truth)
    }

    #[test]
    fn error_decreases_with_observation() {
        let (filter, truth) = run_filter(30, 150, 400, true, None);
        let err = filter.rmse(&truth, &[]);
        // Uniform prior over a 30×30 ft floor would give ~12 ft RMSE;
        // after a full patrol the filter should be far better.
        assert!(err < 6.0, "converged error {err:.2} ft");
    }

    #[test]
    fn more_particles_do_not_hurt() {
        let (f_small, truth_s) = run_filter(20, 30, 300, true, None);
        let (f_large, truth_l) = run_filter(20, 400, 300, true, None);
        let e_small = f_small.rmse(&truth_s, &[]);
        let e_large = f_large.rmse(&truth_l, &[]);
        assert!(
            e_large <= e_small * 1.5,
            "large={e_large:.2} small={e_small:.2}"
        );
    }

    #[test]
    fn spatial_index_limits_candidates() {
        // 15×15 shelves ⇒ a 90×90 ft floor: the 20 ft read range covers
        // only a corner, so the index must prune most objects.
        let (mut filter, _) = run_filter_world(100, 50, 200, true, None, 15);
        let stats = filter.process_scan([5.0, 5.0, 4.0], &[]);
        assert!(
            stats.candidates < 80,
            "index should prune: {} candidates",
            stats.candidates
        );
        let (mut unindexed, _) = run_filter_world(100, 50, 200, false, None, 15);
        let stats2 = unindexed.process_scan([5.0, 5.0, 4.0], &[]);
        assert_eq!(stats2.candidates, 100, "no index ⇒ all candidates");
    }

    #[test]
    fn compression_shrinks_stable_clouds() {
        let comp = CompressionConfig {
            spread_threshold: 2.0,
            min_particles: 25,
        };
        let (filter, _) = run_filter(30, 200, 400, true, Some(comp));
        let compressed = (0..30u32)
            .filter(|&id| filter.cloud(id).len() <= 25)
            .count();
        assert!(
            compressed > 5,
            "{compressed} clouds compressed after convergence"
        );
    }

    #[test]
    fn set_particle_count_resizes_all() {
        let (mut filter, _) = run_filter(10, 100, 50, true, None);
        filter.set_particle_count(40);
        for id in 0..10u32 {
            assert_eq!(filter.cloud(id).len(), 40);
        }
    }

    #[test]
    fn unread_objects_keep_wide_uncertainty() {
        // With no readings at all, clouds stay wide (only negative
        // evidence shapes them).
        let (filter, _) = run_filter(10, 100, 5, true, None);
        let wide = (0..10u32)
            .filter(|&id| filter.cloud(id).spread() > 3.0)
            .count();
        assert!(wide >= 5, "{wide}/10 clouds still wide after 5 scans");
    }
}

#[cfg(test)]
mod failure_injection {
    use super::*;
    use crate::model::{MotionModel, ObservationModel};
    use rfid_sim::SensingModel;

    /// A filter whose sensor model is grossly wrong (believes the reader
    /// range is 3 ft when it is really 20 ft) must degrade gracefully:
    /// estimates stay finite and inside the floor, and the degenerate-
    /// evidence reset path keeps clouds alive.
    #[test]
    fn wrong_sensor_model_degrades_gracefully() {
        let mut wrong_sensing = SensingModel::clean();
        wrong_sensing.max_range = 3.0; // severe mismatch
        let cfg = FactoredConfig {
            num_particles: 80,
            extent: (60.0, 60.0),
            motion: MotionModel {
                diffusion: 0.05,
                move_prob: 0.0,
                shelf_xy: vec![],
                placement_jitter: 0.5,
            },
            obs: ObservationModel::new(wrong_sensing),
            use_spatial_index: true,
            compression: None,
            negative_evidence: true,
            resample_fraction: 0.5,
            seed: 99,
        };
        let mut filter = FactoredFilter::new(20, cfg);
        // Readings claim objects visible from far away — impossible under
        // the filter's (wrong) model.
        for step in 0..100u64 {
            let reader = [30.0 + (step % 7) as f64, 30.0, 4.0];
            let read: Vec<u32> = (0..5).map(|k| (step as u32 + k) % 20).collect();
            filter.process_scan(reader, &read);
        }
        for id in 0..20u32 {
            let est = filter.estimate(id);
            assert!(est[0].is_finite() && est[1].is_finite());
            assert!((-10.0..=70.0).contains(&est[0]), "estimate {est:?}");
            assert!((-10.0..=70.0).contains(&est[1]));
            assert!(filter.cloud(id).ess() >= 1.0);
        }
    }

    /// Readings for a non-existent candidate region (reader outside the
    /// floor) must not panic or corrupt the index.
    #[test]
    fn out_of_floor_reader_positions_are_tolerated() {
        let cfg = FactoredConfig {
            num_particles: 50,
            extent: (30.0, 30.0),
            motion: MotionModel {
                diffusion: 0.05,
                move_prob: 0.0,
                shelf_xy: vec![],
                placement_jitter: 0.5,
            },
            obs: ObservationModel::new(SensingModel::clean()),
            use_spatial_index: true,
            compression: None,
            negative_evidence: true,
            resample_fraction: 0.5,
            seed: 5,
        };
        let mut filter = FactoredFilter::new(5, cfg);
        let stats = filter.process_scan([-100.0, 500.0, 4.0], &[0, 4]);
        assert!(stats.clouds_updated >= 2, "read objects always updated");
        let est = filter.estimate(0);
        assert!(est[0].is_finite());
    }
}
