//! Property suite for the wire codec: arbitrary `Value`/`Updf`/`Tuple`
//! payloads roundtrip byte-exactly through encode→decode, and corrupted
//! or truncated frames decode to typed errors — never a panic.
//!
//! Arbitrary payloads are generated from a seeded `StdRng` (one seed
//! per proptest case), covering every `Updf` variant, every `Dist`
//! family including nested truncations, derived tuples with shrunken
//! existence and unioned lineage, and mixed-schema batches.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use ustream_core::lineage::Lineage;
use ustream_core::schema::{DataType, Field, Schema};
use ustream_core::{Tuple, Updf, Value};
use ustream_prob::dist::{Dist, GaussianMixture, MvGaussian};
use ustream_prob::histogram::HistogramPdf;
use ustream_prob::samples::{WeightedSamples, WeightedSamplesNd};
use ustream_server::protocol::{self, OpStat, Request, Response};
use ustream_server::wire;
use ustream_server::{ErrorCode, MIN_WIRE_VERSION};

fn arb_dist(rng: &mut StdRng, depth: usize) -> Dist {
    let max = if depth == 0 { 8 } else { 7 };
    match rng.gen_range(0..max) {
        0 => Dist::gaussian(rng.gen_range(-50.0..50.0), rng.gen_range(0.01..9.0)),
        1 => {
            let a = rng.gen_range(-20.0..20.0);
            Dist::uniform(a, a + rng.gen_range(0.1..30.0))
        }
        2 => Dist::Exponential(ustream_prob::dist::Exponential::new(
            rng.gen_range(0.01..10.0),
        )),
        3 => Dist::Gamma(ustream_prob::dist::GammaDist::new(
            rng.gen_range(0.2..12.0),
            rng.gen_range(0.1..5.0),
        )),
        4 => Dist::LogNormal(ustream_prob::dist::LogNormal::new(
            rng.gen_range(-2.0..2.0),
            rng.gen_range(0.05..1.5),
        )),
        5 => {
            let a = rng.gen_range(-10.0..10.0);
            let b = a + rng.gen_range(0.5..20.0);
            let c = rng.gen_range(a..b);
            Dist::Triangular(ustream_prob::dist::Triangular::new(a, c, b))
        }
        6 => {
            let k = rng.gen_range(1..4usize);
            let triples: Vec<(f64, f64, f64)> = (0..k)
                .map(|_| {
                    (
                        rng.gen_range(0.05..1.0),
                        rng.gen_range(-30.0..30.0),
                        rng.gen_range(0.1..4.0),
                    )
                })
                .collect();
            Dist::Mixture(GaussianMixture::from_triples(&triples))
        }
        _ => {
            // A truncation of a simpler distribution (possibly nested).
            let inner = arb_dist(rng, depth + 1);
            let center = inner.mean();
            let half = inner.std_dev().max(0.1) * rng.gen_range(0.5..3.0);
            match ustream_prob::dist::Truncated::new(inner, center - half, center + half) {
                Some(t) => Dist::Truncated(t),
                None => Dist::gaussian(0.0, 1.0), // degenerate mass: fall back
            }
        }
    }
}

fn arb_updf(rng: &mut StdRng) -> Updf {
    match rng.gen_range(0..5) {
        0 => Updf::Parametric(arb_dist(rng, 0)),
        1 => {
            let n = rng.gen_range(1..40usize);
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
            let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..5.0)).collect();
            Updf::Samples(WeightedSamples::new(xs, ws))
        }
        2 => {
            let bins = rng.gen_range(1..64usize);
            let masses: Vec<f64> = (0..bins).map(|_| rng.gen_range(0.0..3.0)).collect();
            let masses = if masses.iter().sum::<f64>() <= 0.0 {
                vec![1.0; bins]
            } else {
                masses
            };
            Updf::Histogram(HistogramPdf::from_masses(
                rng.gen_range(-50.0..50.0),
                rng.gen_range(0.01..2.0),
                masses,
            ))
        }
        3 => {
            let d = rng.gen_range(1..4usize);
            let mean: Vec<f64> = (0..d).map(|_| rng.gen_range(-10.0..10.0)).collect();
            // PSD by construction: A·Aᵀ + εI.
            let a: Vec<f64> = (0..d * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut cov = vec![0.0; d * d];
            for i in 0..d {
                for j in 0..d {
                    let mut s = 0.0;
                    for k in 0..d {
                        s += a[i * d + k] * a[j * d + k];
                    }
                    cov[i * d + j] = s + if i == j { 0.05 } else { 0.0 };
                }
            }
            // Mirror to make the matrix exactly symmetric in floating
            // point (A·Aᵀ is symmetric analytically, and s is computed
            // identically for (i,j) and (j,i), but keep it explicit).
            for i in 0..d {
                for j in (i + 1)..d {
                    cov[j * d + i] = cov[i * d + j];
                }
            }
            Updf::Mv(MvGaussian::new(mean, cov))
        }
        _ => {
            let d = rng.gen_range(1..4usize);
            let n = rng.gen_range(1..20usize);
            let xs: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-20.0..20.0)).collect();
            let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..2.0)).collect();
            Updf::MvSamples(WeightedSamplesNd::new(xs, ws, d))
        }
    }
}

fn arb_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..7) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen()),
        2 => Value::Int(rng.gen()),
        3 => Value::Float(f64::from_bits(rng.gen())), // any bits incl. NaN/inf
        4 => {
            let n = rng.gen_range(0..12usize);
            Value::Str(
                (0..n)
                    .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                    .collect(),
            )
        }
        5 => Value::Time(rng.gen()),
        _ => Value::from(arb_updf(rng)),
    }
}

fn arb_tuple(rng: &mut StdRng) -> Tuple {
    let nfields = rng.gen_range(1..6usize);
    let fields: Vec<Field> = (0..nfields)
        .map(|i| Field::new(format!("f{i}"), DataType::Int))
        .collect();
    let schema: Arc<Schema> = Schema::new(fields);
    let values: Vec<Value> = (0..nfields).map(|_| arb_value(rng)).collect();
    let ts: u64 = rng.gen();
    let existence = rng.gen_range(0.0..1.0);
    let mut lineage = Lineage::empty();
    for _ in 0..rng.gen_range(0..6usize) {
        lineage = lineage.union(&Lineage::base(rng.gen()));
    }
    Tuple::derived(schema, values, ts, existence, lineage)
}

fn encode_value_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    wire::encode_value(&mut out, v);
    out
}

/// Arbitrary protocol request, biased toward the fault-tolerance frames
/// (sequenced publishes, replay-from subscribes, resumes).
fn arb_request(rng: &mut StdRng) -> Request {
    match rng.gen_range(0..8) {
        0 => Request::Hello {
            publisher: rng.gen(),
        },
        1 | 2 => Request::Publish {
            source: format!("src{}", rng.gen_range(0..4u8)),
            port: rng.gen_range(0..4u16),
            seq: if rng.gen() { Some(rng.gen()) } else { None },
            tuples: (0..rng.gen_range(0..4usize))
                .map(|_| arb_tuple(rng))
                .collect(),
        },
        3 => Request::Subscribe {
            from: if rng.gen() { Some(rng.gen()) } else { None },
        },
        4 => Request::Finish,
        5 => Request::Heartbeat {
            watermark: rng.gen(),
        },
        6 => Request::Stats,
        _ => Request::Resume {
            token: rng.gen(),
            last_acked_seq: rng.gen(),
        },
    }
}

/// Arbitrary protocol response, biased toward the fault-tolerance
/// frames (tokened hello-acks, sequenced results, resume-oks, gaps).
fn arb_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0..9) {
        0 => Response::HelloAck {
            client_id: rng.gen(),
            token: if rng.gen() { Some(rng.gen()) } else { None },
        },
        1 => Response::Ack { count: rng.gen() },
        2 => Response::Error {
            code: match rng.gen_range(0..6u8) {
                0 => ErrorCode::Malformed,
                1 => ErrorCode::UnknownSource,
                2 => ErrorCode::Finished,
                3 => ErrorCode::Protocol,
                4 => ErrorCode::Expired,
                _ => ErrorCode::Lagging,
            },
            message: format!("m{}", rng.gen_range(0..32u8)),
        },
        3 | 4 => Response::Results {
            sink: rng.gen_range(0..8u32),
            seq: if rng.gen() { Some(rng.gen()) } else { None },
            tuples: (0..rng.gen_range(0..4usize))
                .map(|_| arb_tuple(rng))
                .collect(),
        },
        5 => Response::Eos,
        6 => Response::Stats(
            (0..rng.gen_range(0..3usize))
                .map(|i| OpStat {
                    name: format!("op{i}"),
                    tuples_in: rng.gen(),
                    tuples_out: rng.gen(),
                    busy_ns: rng.gen(),
                    calls: rng.gen(),
                })
                .collect(),
        ),
        7 => Response::ResumeOk {
            session_id: rng.gen(),
            last_seq: rng.gen(),
        },
        _ => Response::Gap { missed: rng.gen() },
    }
}

fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    protocol::write_request(&mut out, req).unwrap();
    out
}

fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    protocol::write_response(&mut out, resp).unwrap();
    out
}

/// Hand-build a frame with an explicit version byte (the public writers
/// always stamp the current version).
fn frame_with_version(version: u8, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::new();
    frame.extend_from_slice(b"US");
    frame.push(version);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode→decode→encode is byte-identical for arbitrary values
    /// (which transitively exercises every Updf and Dist family).
    #[test]
    fn value_roundtrips_byte_exactly(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = arb_value(&mut rng);
        let bytes = encode_value_bytes(&v);
        let mut r = wire::Reader::new(&bytes);
        let back = wire::decode_value(&mut r).expect("valid encoding must decode");
        r.finish().expect("decode must consume the payload exactly");
        prop_assert_eq!(bytes, encode_value_bytes(&back));
    }

    /// Tuples (schema + values + ts + existence + lineage) roundtrip
    /// byte-exactly and preserve all metadata.
    #[test]
    fn tuple_roundtrips_byte_exactly(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = arb_tuple(&mut rng);
        let mut bytes = Vec::new();
        wire::encode_tuple(&mut bytes, &t);
        let mut r = wire::Reader::new(&bytes);
        let back = wire::decode_tuple(&mut r).expect("valid encoding must decode");
        r.finish().expect("decode must consume the payload exactly");
        prop_assert_eq!(back.ts, t.ts);
        prop_assert_eq!(back.existence.to_bits(), t.existence.to_bits());
        prop_assert_eq!(back.lineage.clone(), t.lineage.clone());
        prop_assert_eq!(back.schema().fields(), t.schema().fields());
        let mut again = Vec::new();
        wire::encode_tuple(&mut again, &back);
        prop_assert_eq!(bytes, again);
    }

    /// Batches roundtrip byte-exactly whether or not the tuples share a
    /// schema Arc, and a shared schema survives as one Arc.
    #[test]
    fn batch_roundtrips_byte_exactly(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared: bool = rng.gen();
        let n = rng.gen_range(0..10usize);
        let tuples: Vec<Tuple> = if shared {
            let proto = arb_tuple(&mut rng);
            let schema = proto.schema().clone();
            (0..n)
                .map(|i| {
                    let vals = (0..schema.len()).map(|_| arb_value(&mut rng)).collect();
                    Tuple::new(schema.clone(), vals, i as u64)
                })
                .collect()
        } else {
            (0..n).map(|_| arb_tuple(&mut rng)).collect()
        };
        let mut bytes = Vec::new();
        wire::encode_tuples(&mut bytes, &tuples);
        let mut r = wire::Reader::new(&bytes);
        let back = wire::decode_tuples(&mut r).expect("valid encoding must decode");
        r.finish().expect("decode must consume the payload exactly");
        prop_assert_eq!(back.len(), tuples.len());
        if shared && n > 1 {
            let batch = ustream_core::Batch::from(back.clone());
            prop_assert!(batch.shared_schema().is_some());
        }
        let mut again = Vec::new();
        wire::encode_tuples(&mut again, &back);
        prop_assert_eq!(bytes, again);
    }

    /// Shared-schema frames decode straight into columns — including
    /// heterogeneous columns that demote to row storage — re-encode
    /// byte-identically from the columnar form, and hydrate to exactly
    /// what the row decoder produces.
    #[test]
    fn columnar_decode_roundtrips_byte_exactly(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nfields = rng.gen_range(1..5usize);
        let schema: Arc<Schema> = Schema::new(
            (0..nfields)
                .map(|i| Field::new(format!("f{i}"), DataType::Int))
                .collect(),
        );
        // Per-column payload style: typed columns (Int/Float/Str/
        // Gaussian) or fully arbitrary values, which force that column
        // into the row-fallback representation.
        let styles: Vec<u8> = (0..nfields).map(|_| rng.gen_range(0..5)).collect();
        let n = rng.gen_range(1..30usize);
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| {
                let values: Vec<Value> = styles
                    .iter()
                    .map(|&st| match st {
                        0 => Value::Int(rng.gen()),
                        1 => Value::Float(rng.gen_range(-1e3..1e3)),
                        2 => Value::Str(format!("s{}", rng.gen_range(0..8u8))),
                        3 => Value::from(Updf::Parametric(Dist::gaussian(
                            rng.gen_range(-50.0..50.0),
                            rng.gen_range(0.01..9.0),
                        ))),
                        _ => arb_value(&mut rng),
                    })
                    .collect();
                let mut lineage = Lineage::empty();
                for _ in 0..rng.gen_range(0..4usize) {
                    lineage = lineage.union(&Lineage::base(rng.gen()));
                }
                Tuple::derived(
                    schema.clone(),
                    values,
                    i as u64,
                    rng.gen_range(0.0..1.0),
                    lineage,
                )
            })
            .collect();
        let mut bytes = Vec::new();
        wire::encode_tuples(&mut bytes, &tuples);
        let mut r = wire::Reader::new(&bytes);
        let batch = wire::decode_batch(&mut r).expect("valid encoding must decode");
        r.finish().expect("decode must consume the payload exactly");
        prop_assert!(batch.is_columnar(), "shared-schema frame must decode columnar");
        let mut again = Vec::new();
        wire::encode_batch(&mut again, &batch);
        prop_assert_eq!(&bytes, &again, "columnar re-encode must be byte-identical");
        // Hydration matches the row decoder tuple-for-tuple.
        let rows = batch.into_vec();
        let mut r2 = wire::Reader::new(&bytes);
        let want = wire::decode_tuples(&mut r2).expect("row decode");
        prop_assert_eq!(rows.len(), want.len());
        for (a, b) in rows.iter().zip(&want) {
            prop_assert_eq!(a.ts, b.ts);
            prop_assert_eq!(a.existence.to_bits(), b.existence.to_bits());
            prop_assert_eq!(a.lineage.clone(), b.lineage.clone());
            prop_assert_eq!(format!("{:?}", a.values()), format!("{:?}", b.values()));
        }
    }

    /// Truncating a valid encoding at *any* point yields a typed error
    /// (or, for value payloads, never a panic) — the decoder must not
    /// read past the buffer or allocate from a lying length.
    #[test]
    fn truncated_payloads_are_typed_errors(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = arb_tuple(&mut rng);
        let mut bytes = Vec::new();
        wire::encode_tuple(&mut bytes, &t);
        let cut = rng.gen_range(0..bytes.len());
        let mut r = wire::Reader::new(&bytes[..cut]);
        // Must be an error: a tuple encoding is never a prefix of itself.
        prop_assert!(wire::decode_tuple(&mut r).is_err());
    }

    /// Flipping any single byte of a valid encoding either still decodes
    /// (bit flips inside float payloads are legal) or fails with a typed
    /// error — it never panics and never leaves trailing garbage
    /// unnoticed when it does decode.
    #[test]
    fn corrupted_payloads_never_panic(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = arb_tuple(&mut rng);
        let mut bytes = Vec::new();
        wire::encode_tuple(&mut bytes, &t);
        let idx = rng.gen_range(0..bytes.len());
        let flip: u8 = rng.gen_range(1..=255u8);
        bytes[idx] ^= flip;
        let mut r = wire::Reader::new(&bytes);
        match wire::decode_tuple(&mut r) {
            Ok(_) => {} // e.g. a float payload bit changed value only
            Err(e) => {
                // Typed, displayable error.
                let _ = e.to_string();
            }
        }
    }

    /// Frame-level corruption: headers with bad magic, alien versions,
    /// or oversized lengths are rejected before any payload read.
    #[test]
    fn corrupted_frames_are_typed_errors(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, 0x02, b"some payload").unwrap();
        let idx = rng.gen_range(0..frame.len());
        frame[idx] ^= rng.gen_range(1..=255u8);
        match wire::read_frame(&mut frame.as_slice()) {
            Ok((kind, payload)) => {
                // A flipped magic byte must never parse; the kind byte,
                // a shrunken length field, or payload bytes can — and so
                // can the version byte, but only when the flip lands on
                // another *supported* version (e.g. 2 ^ 3 = 1).
                if idx == 2 {
                    prop_assert!(
                        (MIN_WIRE_VERSION..=wire::WIRE_VERSION).contains(&frame[2]),
                        "unsupported version {} parsed",
                        frame[2]
                    );
                } else {
                    prop_assert!(idx >= 3);
                }
                let _ = (kind, payload);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }

    /// Every protocol frame — including the fault-tolerance additions
    /// (sequenced publishes/results, `Resume`/`ResumeOk`/`Gap`,
    /// replay-from subscribes, tokened hello-acks) — roundtrips through
    /// encode→decode→encode byte-identically.
    #[test]
    fn protocol_frames_roundtrip_byte_exactly(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = arb_request(&mut rng);
        let bytes = encode_request(&req);
        let back = protocol::read_request(&mut bytes.as_slice())
            .expect("valid request must decode");
        prop_assert_eq!(&bytes, &encode_request(&back));

        let resp = arb_response(&mut rng);
        let bytes = encode_response(&resp);
        let back = protocol::read_response(&mut bytes.as_slice())
            .expect("valid response must decode");
        prop_assert_eq!(&bytes, &encode_response(&back));
    }

    /// Truncating any protocol frame at any point yields a typed error,
    /// never a panic and never a bogus success.
    #[test]
    fn truncated_protocol_frames_are_typed_errors(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes = if rng.gen() {
            encode_request(&arb_request(&mut rng))
        } else {
            encode_response(&arb_response(&mut rng))
        };
        let cut = rng.gen_range(0..bytes.len());
        let req = protocol::read_request(&mut bytes[..cut].as_ref());
        let resp = protocol::read_response(&mut bytes[..cut].as_ref());
        prop_assert!(req.is_err(), "truncated request decoded: {:?}", req);
        prop_assert!(resp.is_err(), "truncated response decoded: {:?}", resp);
        let _ = (req.unwrap_err().to_string(), resp.unwrap_err().to_string());
    }

    /// Flipping any byte of a protocol frame never panics: the decoder
    /// either still produces a frame (payload-value flips) or fails
    /// with a typed, displayable error.
    #[test]
    fn corrupted_protocol_frames_never_panic(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let as_request: bool = rng.gen();
        let mut bytes = if as_request {
            encode_request(&arb_request(&mut rng))
        } else {
            encode_response(&arb_response(&mut rng))
        };
        let idx = rng.gen_range(0..bytes.len());
        bytes[idx] ^= rng.gen_range(1..=255u8);
        // Decode under both grammars: untrusted bytes don't announce
        // which side sent them.
        match protocol::read_request(&mut bytes.as_slice()) {
            Ok(frame) => { let _ = format!("{frame:?}"); }
            Err(e) => { let _ = e.to_string(); }
        }
        match protocol::read_response(&mut bytes.as_slice()) {
            Ok(frame) => { let _ = format!("{frame:?}"); }
            Err(e) => { let _ = e.to_string(); }
        }
    }
}

/// Cross-version compatibility: frames a version-1 peer would send —
/// version byte 1, no publish sequences, bare subscribes, 8-byte
/// hello-acks — must still decode on this build, with the extension
/// fields reading as absent.
#[test]
fn version_1_frames_still_decode() {
    // Hello { publisher: true }, version 1.
    let frame = frame_with_version(1, 0x01, &[1]);
    match protocol::read_request(&mut frame.as_slice()).unwrap() {
        Request::Hello { publisher } => assert!(publisher),
        other => panic!("expected Hello, got {other:?}"),
    }

    // Unsequenced Publish: str source, u16 port, empty tuple batch.
    let mut payload = Vec::new();
    payload.extend_from_slice(&2u32.to_be_bytes());
    payload.extend_from_slice(b"in");
    payload.extend_from_slice(&0u16.to_be_bytes());
    wire::encode_tuples(&mut payload, &[]);
    let frame = frame_with_version(1, 0x02, &payload);
    match protocol::read_request(&mut frame.as_slice()).unwrap() {
        Request::Publish {
            source, seq, port, ..
        } => {
            assert_eq!(source, "in");
            assert_eq!(port, 0);
            assert_eq!(seq, None, "a v1 publish carries no sequence");
        }
        other => panic!("expected Publish, got {other:?}"),
    }

    // Bare Subscribe (empty payload): no replay-from.
    let frame = frame_with_version(1, 0x03, &[]);
    match protocol::read_request(&mut frame.as_slice()).unwrap() {
        Request::Subscribe { from } => assert_eq!(from, None),
        other => panic!("expected Subscribe, got {other:?}"),
    }

    // 8-byte HelloAck: client id only, no session token.
    let frame = frame_with_version(1, 0x81, &77u64.to_be_bytes());
    match protocol::read_response(&mut frame.as_slice()).unwrap() {
        Response::HelloAck { client_id, token } => {
            assert_eq!(client_id, 77);
            assert_eq!(token, None, "a v1 hello-ack carries no token");
        }
        other => panic!("expected HelloAck, got {other:?}"),
    }
}
