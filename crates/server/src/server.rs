//! The serving core: a multi-client TCP server running one continuous
//! query on an incremental [`ShardedSession`].
//!
//! Thread layout (all `std::net` + `std::thread`; the deployment
//! environment has no async runtime):
//!
//! - an **accept thread** takes connections and spawns one handler per
//!   client;
//! - each **handler thread** reads framed requests and forwards decoded
//!   publishes into the engine's bounded inbox — a full inbox blocks the
//!   handler *before* it acknowledges, so backpressure reaches the
//!   publisher as a delayed `Ack`;
//! - one **engine thread** owns the session — a
//!   [`ustream_runtime::session::ShardedSession`], the incremental
//!   sharded engine. It merges the per-publisher queues into a single
//!   timestamp-ordered feed (k-way merge gated on per-publisher
//!   watermarks), chunks consecutive same-destination tuples into
//!   [`Batch`]es, pushes them through the session, and streams every
//!   newly collected sink batch to all subscribers as windows close.
//!   With [`ServedQuery::new`] the session wraps a single pipeline
//!   (exact `ExecSession` semantics); with [`ServedQuery::sharded`] the
//!   query's graph factory is compiled into a staged shard plan and the
//!   engine thread becomes a *router* — operator work runs
//!   key-partitioned across the session's worker pool, so serving
//!   throughput scales with cores instead of bottlenecking on one
//!   engine thread.
//!
//! **Idle publishers.** The merge can only release a tuple when every
//! unfinished publisher's watermark has passed it; a connected-but-idle
//! publisher therefore stalls results for everyone. Publishers that may
//! go quiet should send periodic watermark heartbeats
//! ([`crate::Client::heartbeat`]) — a promise that nothing older than
//! the advertised timestamp will be published — which advance the merge
//! without data.
//!
//! **Determinism.** When every publisher ships its stream in
//! non-decreasing timestamp order (the natural property of a live
//! feed), the merged feed the session sees is the timestamp-sorted
//! union of all published tuples — the same feed
//! [`QueryGraph::run_batched`] builds — so the concatenation of every
//! `Results` frame a subscriber receives equals the `run_batched`
//! output over the merged input, values/timestamps/existence/lineage
//! included (ties across publishers break by connection id). The
//! loopback integration suite asserts exactly this.
//!
//! **End of stream.** Each publisher declares itself via `Hello` and
//! closes with `Finish`. When every publisher has finished, the engine
//! flushes open windows ([`ShardedSession::finish`]), streams the final
//! batches, sends `Eos` to every subscriber, and rejects further
//! publishes with a typed error. A publisher that disconnects without
//! finishing is treated as finished so the query still terminates, and
//! the abort is recorded as a typed [`ServerError`] — never a panic.
//!
//! **Subscriptions.** A subscriber receives every sink batch produced
//! *after* it subscribes (plus the flush); the server does not replay
//! history — subscribe before publishing to observe a whole run. Each
//! batch is encoded into its `Results` frame exactly once and the bytes
//! are shared across subscribers. A subscribed connection stays fully
//! duplex: a dedicated relay thread writes result frames (one
//! subscription per connection) while the handler keeps serving
//! publishes, `stats`, and `Finish` on the same socket. A subscriber
//! that stops reading backpressures the engine (bounded outbox); server
//! shutdown breaks that wait and drops the stalled subscriber instead
//! of hanging.

use crate::protocol::{self, ErrorCode, OpStat, Request, Response};
use crate::wire::WireError;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use ustream_core::query::QueryGraph;
use ustream_core::{Batch, EngineError, MetricsHandle, NodeId, Tuple};
use ustream_runtime::session::ShardedSession;
use ustream_runtime::ShardedExecutor;

/// Typed server-side failures, readable from the in-process
/// [`ServerHandle`]. Client misbehavior (malformed frames, abrupt
/// disconnects) lands here; it never panics a server thread and never
/// kills the query.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// A client dropped its connection mid-stream (a publisher without
    /// `Finish`, or a subscriber that stopped reading).
    ClientDisconnected { client_id: u64, role: &'static str },
    /// A client sent bytes that did not decode; the server answered
    /// with an error frame and closed the connection.
    Malformed { client_id: u64, error: WireError },
    /// An operator panicked while the engine processed remote input
    /// (e.g. a published tuple whose schema the query's closures cannot
    /// handle). The query is dead: the session was discarded,
    /// subscribers received `Eos`, and further publishes are rejected —
    /// the serving threads never unwind.
    QueryPanicked { message: String },
    /// Publishes acknowledged in the narrow race window while the
    /// engine was flushing at EOS had to be dropped (the session was
    /// already finishing); recorded so the loss is observable.
    PublishDroppedAtEos { client_id: u64, count: usize },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::ClientDisconnected { client_id, role } => {
                write!(f, "{role} client {client_id} disconnected mid-stream")
            }
            ServerError::Malformed { client_id, error } => {
                write!(f, "client {client_id} sent a malformed frame: {error}")
            }
            ServerError::QueryPanicked { message } => {
                write!(f, "served query panicked on remote input: {message}")
            }
            ServerError::PublishDroppedAtEos { client_id, count } => {
                write!(
                    f,
                    "dropped {count} tuples from client {client_id} acknowledged during the EOS flush"
                )
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// Failure to start a server.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listener failed.
    Io(std::io::Error),
    /// The query graph did not compile (cycle, dangling edge).
    Graph(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "bind failed: {e}"),
            ServeError::Graph(e) => write!(f, "query graph rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A query prepared for serving, optionally with named metrics handles
/// (wrap hot operators in [`ustream_core::Metered`] and register the
/// handles here; the `stats` command serves their snapshots).
pub struct ServedQuery {
    source: QuerySource,
    metrics: Vec<(String, MetricsHandle)>,
}

/// How the engine session is built: from one already-built graph
/// (single pipeline) or from a graph factory (staged sharded session).
enum QuerySource {
    Graph(QueryGraph),
    Factory {
        factory: Box<dyn Fn() -> QueryGraph + Send>,
        shards: usize,
        workers: Option<usize>,
    },
}

impl ServedQuery {
    /// Serve `graph` on one single-threaded pipeline — the exact
    /// incremental-engine semantics, sink arrival order included.
    pub fn new(graph: QueryGraph) -> Self {
        ServedQuery {
            source: QuerySource::Graph(graph),
            metrics: Vec::new(),
        }
    }

    /// Serve the query built by `factory` as a staged sharded session
    /// with `shards` logical partitions: the engine thread routes, the
    /// session's worker pool runs the operator work key-partitioned.
    /// `factory` must build the same graph on every call (the sharded
    /// runtime's factory contract). Results stream in the engine's
    /// canonical `(ts, content)` order per watermark interval — the
    /// same rows `run_batched` would produce over the merged feed.
    pub fn sharded(factory: impl Fn() -> QueryGraph + Send + 'static, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ServedQuery {
            source: QuerySource::Factory {
                factory: Box::new(factory),
                shards,
                workers: None,
            },
            metrics: Vec::new(),
        }
    }

    /// Pin the sharded session's worker-pool size (otherwise
    /// `min(shards, available cores)`); no effect on [`ServedQuery::new`]
    /// single-pipeline serving.
    pub fn with_workers(mut self, n: usize) -> Self {
        assert!(n > 0);
        if let QuerySource::Factory { workers, .. } = &mut self.source {
            *workers = Some(n);
        }
        self
    }

    /// Register a named metrics handle to be served by `stats`.
    pub fn with_metric(mut self, name: impl Into<String>, handle: MetricsHandle) -> Self {
        self.metrics.push((name.into(), handle));
        self
    }
}

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Target tuples per [`Batch`] pushed into the session.
    pub batch_size: usize,
    /// Bound on in-flight engine messages (publish backpressure depth).
    pub inbox_capacity: usize,
    /// Bound on undelivered result batches per subscriber (a slow
    /// subscriber backpressures the engine rather than ballooning
    /// memory).
    pub subscriber_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch_size: 512,
            inbox_capacity: 256,
            subscriber_capacity: 64,
        }
    }
}

/// What handler threads send the engine.
enum EngineMsg {
    /// A connection declared itself a publisher (EOS accounting).
    Joined {
        client: u64,
    },
    Publish {
        client: u64,
        node: NodeId,
        port: usize,
        tuples: Vec<Tuple>,
    },
    /// The publisher is done (explicit `Finish`, or its disconnect).
    Finished {
        client: u64,
    },
    /// A publisher promises to publish nothing older than `watermark` —
    /// the idle-but-alive signal that keeps the k-way merge moving.
    Heartbeat {
        client: u64,
        watermark: u64,
    },
    Subscribe {
        client: u64,
        tx: Sender<SubMsg>,
    },
    Shutdown,
}

/// What the engine streams to a subscriber's relay thread. Result
/// frames arrive pre-encoded (one encode per batch, shared bytes across
/// subscribers).
enum SubMsg {
    Frame(Arc<Vec<u8>>),
    Eos,
}

/// Per-publisher merge state.
#[derive(Default)]
struct PubState {
    queue: VecDeque<(NodeId, usize, Tuple)>,
    /// Highest timestamp enqueued so far — the publisher's watermark: a
    /// ts-ordered stream cannot later deliver anything older.
    last_ts: u64,
    finished: bool,
}

/// State shared between the accept loop and every handler thread.
struct Shared {
    engine_tx: Sender<EngineMsg>,
    /// Named source entries as `(entry node, its input-port count)` —
    /// the port count lets handlers reject out-of-range publish ports
    /// before they can trip an operator's `assert!` on the engine
    /// thread.
    sources: HashMap<String, (NodeId, usize)>,
    metrics: Vec<(String, MetricsHandle)>,
    errors: Mutex<Vec<ServerError>>,
    finished: AtomicBool,
    /// Set by [`ServerHandle::shutdown`]; breaks the engine out of a
    /// backpressure wait on a stalled subscriber and stops the accept
    /// loop.
    shutdown: AtomicBool,
    subscriber_capacity: usize,
}

impl Shared {
    fn record(&self, e: ServerError) {
        self.errors.lock().expect("error log poisoned").push(e);
    }
}

/// The ingest server. [`Server::serve`] binds, spawns the thread
/// complex, and returns a handle.
pub struct Server;

impl Server {
    /// Serve `query` on `addr` with default [`ServerConfig`].
    pub fn serve(addr: impl ToSocketAddrs, query: ServedQuery) -> Result<ServerHandle, ServeError> {
        Server::serve_with(addr, query, ServerConfig::default())
    }

    /// Serve with explicit knobs.
    pub fn serve_with(
        addr: impl ToSocketAddrs,
        query: ServedQuery,
        config: ServerConfig,
    ) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(addr).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;

        let ServedQuery { source, metrics } = query;
        let (sources, session) = match source {
            QuerySource::Graph(graph) => {
                let sources: HashMap<String, (NodeId, usize)> = graph
                    .source_entries()
                    .map(|(name, node)| {
                        (name.to_string(), (node, graph.operator(node).num_ports()))
                    })
                    .collect();
                let session = ShardedSession::single(graph).map_err(ServeError::Graph)?;
                (sources, session)
            }
            QuerySource::Factory {
                factory,
                shards,
                workers,
            } => {
                let prototype = factory();
                let sources: HashMap<String, (NodeId, usize)> = prototype
                    .source_entries()
                    .map(|(name, node)| {
                        (
                            name.to_string(),
                            (node, prototype.operator(node).num_ports()),
                        )
                    })
                    .collect();
                drop(prototype);
                let mut executor = ShardedExecutor::new(shards).with_batch_size(config.batch_size);
                if let Some(w) = workers {
                    executor = executor.with_workers(w);
                }
                let session = executor.session(&*factory).map_err(ServeError::Graph)?;
                (sources, session)
            }
        };

        let (engine_tx, engine_rx) = bounded::<EngineMsg>(config.inbox_capacity);
        let shared = Arc::new(Shared {
            engine_tx: engine_tx.clone(),
            sources,
            metrics,
            errors: Mutex::new(Vec::new()),
            finished: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            subscriber_capacity: config.subscriber_capacity,
        });

        let engine_shared = shared.clone();
        let batch_size = config.batch_size;
        let engine = std::thread::spawn(move || {
            Engine {
                rx: engine_rx,
                session: Some(session),
                pubs: BTreeMap::new(),
                subs: Vec::new(),
                batch_size,
                shared: engine_shared,
            }
            .run()
        });

        let accept_shared = shared.clone();
        let accept = std::thread::spawn(move || {
            let next_id = AtomicU64::new(1);
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let client_id = next_id.fetch_add(1, Ordering::Relaxed);
                let shared = accept_shared.clone();
                std::thread::spawn(move || handle_client(stream, client_id, shared));
            }
        });

        Ok(ServerHandle {
            addr,
            shared,
            engine_tx,
            accept: Some(accept),
            engine: Some(engine),
        })
    }
}

/// In-process handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    engine_tx: Sender<EngineMsg>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use with port 0 to serve on an ephemeral
    /// loopback port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the served query has flushed (EOS reached).
    pub fn is_finished(&self) -> bool {
        self.shared.finished.load(Ordering::SeqCst)
    }

    /// Drain the typed errors recorded so far (malformed frames,
    /// mid-stream disconnects).
    pub fn take_errors(&self) -> Vec<ServerError> {
        std::mem::take(&mut *self.shared.errors.lock().expect("error log poisoned"))
    }

    /// Stop accepting, stop the engine (subscribers receive `Eos` if the
    /// query had not flushed), and join the server threads. Returns any
    /// errors recorded over the server's lifetime.
    pub fn shutdown(mut self) -> Vec<ServerError> {
        // Flag first: an engine parked on a stalled subscriber's full
        // outbox polls this flag and drops the subscriber instead of
        // waiting forever, so the join below cannot hang.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.engine_tx.send(EngineMsg::Shutdown);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        self.take_errors()
    }
}

// ---------------------------------------------------------------------
// Engine thread
// ---------------------------------------------------------------------

struct Engine {
    rx: Receiver<EngineMsg>,
    session: Option<ShardedSession>,
    pubs: BTreeMap<u64, PubState>,
    subs: Vec<(u64, Sender<SubMsg>)>,
    batch_size: usize,
    shared: Arc<Shared>,
}

impl Engine {
    fn run(mut self) {
        loop {
            let msg = match self.rx.recv() {
                Ok(m) => m,
                Err(_) => break, // every handle dropped: server torn down
            };
            match msg {
                EngineMsg::Joined { client } => {
                    self.pubs.entry(client).or_default();
                }
                EngineMsg::Publish {
                    client,
                    node,
                    port,
                    tuples,
                } => {
                    let p = self.pubs.entry(client).or_default();
                    // A finished publisher's tuples would slip in behind
                    // the watermark its Finish released; the handler
                    // already rejects this, so reaching here means a
                    // racing abort — drop, never corrupt the merge.
                    if !p.finished {
                        for t in tuples {
                            p.last_ts = p.last_ts.max(t.ts);
                            p.queue.push_back((node, port, t));
                        }
                    }
                }
                EngineMsg::Finished { client } => {
                    if let Some(p) = self.pubs.get_mut(&client) {
                        p.finished = true;
                    }
                }
                EngineMsg::Heartbeat { client, watermark } => {
                    // Advance the publisher's merge watermark without
                    // data: its queue can stay empty without blocking
                    // other publishers' releases. (Same contract as a
                    // publish at `watermark`: nothing older may follow.)
                    if let Some(p) = self.pubs.get_mut(&client) {
                        if !p.finished {
                            p.last_ts = p.last_ts.max(watermark);
                        }
                    }
                }
                EngineMsg::Subscribe { client, tx } => {
                    self.subs.push((client, tx));
                }
                EngineMsg::Shutdown => {
                    self.broadcast_eos();
                    return;
                }
            }
            if let Err(panic) = self.pump() {
                self.fail(panic);
                return;
            }
            if !self.pubs.is_empty() && self.pubs.values().all(|p| p.finished) {
                self.complete();
                return;
            }
        }
    }

    /// Merge the per-publisher queues up to the collective watermark,
    /// push the merged run through the session in destination-chunked
    /// batches, then stream any newly closed windows to subscribers.
    ///
    /// An entry is safe to emit when no *unfinished* publisher with an
    /// empty queue could still deliver a tuple that precedes it in the
    /// canonical `(ts, connection id)` order — a strictly older
    /// timestamp (watermark below the entry's ts), or an equal one from
    /// a lower-id connection (its next tuple could tie and ties break by
    /// id).
    /// `Err` carries the panic message when an operator panicked on the
    /// pushed input — the session is then poisoned and the caller must
    /// [`Engine::fail`].
    fn pump(&mut self) -> Result<(), String> {
        let drained = {
            let Some(session) = self.session.as_mut() else {
                return Ok(());
            };
            // Remote tuples run user operator code; the session contains
            // panics (on the engine thread and on its pool workers) and
            // reports them as typed errors — the query dies with Eos'd
            // subscribers, the serving threads never unwind.
            let push = |session: &mut ShardedSession,
                        n: NodeId,
                        p: usize,
                        mut b: Batch|
             -> Result<(), String> {
                // Long same-destination runs go columnar so the sharded
                // session routes by key column and operators hit their
                // vectorized paths; short runs stay rows.
                if b.len() >= ustream_core::query::COLUMNAR_MIN_CHUNK {
                    b.columnarize();
                }
                session.push_batch(n, p, b).map_err(|e| e.to_string())
            };
            let mut cur: Option<(NodeId, usize, Batch)> = None;
            loop {
                let mut best: Option<(u64, u64)> = None; // (ts, client)
                for (&id, p) in &self.pubs {
                    if let Some((_, _, t)) = p.queue.front() {
                        let key = (t.ts, id);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                }
                let Some((ts, pid)) = best else { break };
                let blocked = self.pubs.iter().any(|(&id, p)| {
                    id != pid
                        && !p.finished
                        && p.queue.is_empty()
                        && (p.last_ts < ts || (p.last_ts == ts && id < pid))
                });
                if blocked {
                    break;
                }
                let (node, port, tuple) = self
                    .pubs
                    .get_mut(&pid)
                    .expect("candidate publisher exists")
                    .queue
                    .pop_front()
                    .expect("candidate queue non-empty");
                match &mut cur {
                    Some((n, p, b)) if *n == node && *p == port && b.len() < self.batch_size => {
                        b.push(tuple)
                    }
                    slot => {
                        if let Some((n, p, b)) = slot.take() {
                            push(session, n, p, b)?;
                        }
                        *slot = Some((node, port, Batch::one(tuple)));
                    }
                }
            }
            if let Some((n, p, b)) = cur {
                push(session, n, p, b)?;
            }
            // The collective publisher watermark: every unfinished
            // publisher has promised (via data or heartbeats) nothing
            // older, and everything below it is already pushed — so the
            // session's event-time clock may advance past the last
            // pushed tuple. Windows sealed purely by the clock (idle
            // publishers heartbeating past them) close and stream now
            // instead of stalling until the next data push or EOS.
            let watermark = self
                .pubs
                .values()
                .filter(|p| !p.finished)
                .map(|p| p.last_ts)
                .min();
            if let Some(watermark) = watermark {
                session
                    .advance_watermark(watermark)
                    .map_err(|e| e.to_string())?;
            }
            session.drain_collected().map_err(|e| e.to_string())?
        };
        self.broadcast(drained);
        Ok(())
    }

    /// All publishers finished: feed the stragglers, flush the session,
    /// stream the final windows, and send `Eos` to every subscriber.
    fn complete(&mut self) {
        // Flag first: handlers reject new publishes while the (possibly
        // long) flush runs, so nothing can be acknowledged into an
        // engine that is about to stop reading its inbox.
        self.shared.finished.store(true, Ordering::SeqCst);
        if let Err(panic) = self.pump() {
            // Nothing blocks once every publisher is finished.
            self.fail(panic);
            return;
        }
        if let Some(session) = self.session.take() {
            match session.finish() {
                Ok(collected) => {
                    let mut finals: Vec<(NodeId, Vec<Tuple>)> = collected
                        .into_iter()
                        .filter(|(_, tuples)| !tuples.is_empty())
                        .collect();
                    finals.sort_by_key(|(n, _)| n.index());
                    self.broadcast(finals);
                }
                Err(e) => {
                    self.fail(e.to_string());
                    return;
                }
            }
        }
        self.broadcast_eos();
        self.drain_inbox_after_eos();
    }

    /// An operator panicked on remote input: discard the poisoned
    /// session, record the typed error, release subscribers with `Eos`,
    /// and reject everything else — the serving threads keep running.
    fn fail(&mut self, message: String) {
        self.session = None;
        self.shared.record(ServerError::QueryPanicked { message });
        self.shared.finished.store(true, Ordering::SeqCst);
        self.broadcast_eos();
        self.drain_inbox_after_eos();
    }

    /// Drain whatever raced into the inbox while EOS/fail was being
    /// reached: late subscribers still get their `Eos` (no hang), and
    /// acknowledged-but-unprocessable publishes are recorded instead of
    /// vanishing.
    fn drain_inbox_after_eos(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                EngineMsg::Subscribe { tx, .. } => {
                    let _ = tx.send(SubMsg::Eos);
                }
                EngineMsg::Publish { client, tuples, .. } if !tuples.is_empty() => {
                    self.shared.record(ServerError::PublishDroppedAtEos {
                        client_id: client,
                        count: tuples.len(),
                    });
                }
                _ => {}
            }
        }
    }

    fn broadcast(&mut self, batches: Vec<(NodeId, Vec<Tuple>)>) {
        for (sink, tuples) in batches {
            self.broadcast_batch(sink.index() as u32, &tuples);
        }
    }

    /// Encode one result batch into its `Results` frame exactly once and
    /// fan the shared bytes out to every subscriber. A batch whose frame
    /// would exceed the payload cap is split in half recursively.
    fn broadcast_batch(&mut self, sink: u32, tuples: &[Tuple]) {
        if self.subs.is_empty() || tuples.is_empty() {
            return;
        }
        let mut bytes = Vec::new();
        match protocol::write_results(&mut bytes, sink, tuples) {
            Ok(()) => {
                let frame = Arc::new(bytes);
                let shared = self.shared.clone();
                self.subs
                    .retain(|(_, tx)| patient_send(&shared, tx, SubMsg::Frame(frame.clone())));
            }
            Err(WireError::FrameTooLarge(_)) if tuples.len() > 1 => {
                let mid = tuples.len() / 2;
                self.broadcast_batch(sink, &tuples[..mid]);
                self.broadcast_batch(sink, &tuples[mid..]);
            }
            Err(_) => {} // a single tuple too large for any frame: drop it
        }
    }

    fn broadcast_eos(&mut self) {
        let shared = self.shared.clone();
        for (_, tx) in self.subs.drain(..) {
            let _ = patient_send(&shared, &tx, SubMsg::Eos);
        }
    }
}

/// Send to a subscriber's bounded outbox, waiting out a full ring (the
/// documented backpressure: a slow subscriber slows the engine, it does
/// not balloon memory) — but giving up when the subscriber vanished or
/// the server is shutting down, so [`ServerHandle::shutdown`] can never
/// hang behind a subscriber that stopped reading. Returns whether the
/// subscriber should be kept.
fn patient_send(shared: &Shared, tx: &Sender<SubMsg>, msg: SubMsg) -> bool {
    let mut msg = msg;
    loop {
        match tx.try_send(msg) {
            Ok(()) => return true,
            Err(TrySendError::Disconnected(_)) => return false,
            Err(TrySendError::Full(m)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return false;
                }
                msg = m;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Handler threads
// ---------------------------------------------------------------------

/// Serve one connection until it closes. Malformed frames are answered
/// with a typed error response and the connection is dropped (the length
/// prefix can no longer be trusted); a publisher that vanishes without
/// `Finish` is marked finished so the query still reaches EOS, and the
/// abort is recorded.
///
/// The socket's write half is shared (frame-at-a-time, under a mutex)
/// between this thread's replies and the subscription relay thread, so
/// a subscribed connection stays fully duplex — it can keep publishing
/// and issuing `stats`/`Finish` while results stream back.
fn handle_client(mut stream: TcpStream, client_id: u64, shared: Arc<Shared>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let reply_to = |resp: &Response| -> bool {
        let mut w = writer.lock().expect("connection writer poisoned");
        protocol::write_response(&mut *w, resp).is_ok()
    };
    let mut is_publisher = false;
    let mut subscribed = false;
    let mut finish_sent = false;
    let abort_publisher = |finish_sent: bool, is_publisher: bool, why: Option<ServerError>| {
        if let Some(e) = why {
            shared.record(e);
        }
        if is_publisher && !finish_sent {
            let _ = shared
                .engine_tx
                .send(EngineMsg::Finished { client: client_id });
        }
    };
    loop {
        let req = match protocol::read_request(&mut stream) {
            Ok(req) => req,
            Err(WireError::Disconnected) | Err(WireError::Io(_)) => {
                let why =
                    (is_publisher && !finish_sent).then_some(ServerError::ClientDisconnected {
                        client_id,
                        role: "publisher",
                    });
                abort_publisher(finish_sent, is_publisher, why);
                return;
            }
            Err(error) => {
                shared.record(ServerError::Malformed {
                    client_id,
                    error: error.clone(),
                });
                reply_to(&Response::Error {
                    code: ErrorCode::Malformed,
                    message: error.to_string(),
                });
                abort_publisher(finish_sent, is_publisher, None);
                return;
            }
        };
        let reply = match req {
            Request::Hello { publisher } => {
                // Joining after EOS is allowed (the connection can still
                // query stats); only publishes are rejected then.
                if publisher
                    && !is_publisher
                    && shared
                        .engine_tx
                        .send(EngineMsg::Joined { client: client_id })
                        .is_ok()
                {
                    is_publisher = true;
                }
                Response::HelloAck { client_id }
            }
            Request::Publish {
                source,
                port,
                tuples,
            } => match shared.sources.get(&source) {
                _ if shared.finished.load(Ordering::SeqCst) => Response::Error {
                    code: ErrorCode::Finished,
                    message: "query already finished; publish rejected".into(),
                },
                _ if finish_sent => Response::Error {
                    code: ErrorCode::Protocol,
                    message: "this connection already finished publishing".into(),
                },
                None => Response::Error {
                    code: ErrorCode::UnknownSource,
                    message: format!("unknown source `{source}`"),
                },
                Some(&(_, num_ports)) if port as usize >= num_ports => Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!(
                        "source `{source}` enters an operator with {num_ports} input port(s); \
                         port {port} is out of range"
                    ),
                },
                Some(&(node, _)) => {
                    // Publishing implies publisher role even without a
                    // prior Hello, so EOS accounting stays sound.
                    if !is_publisher {
                        if shared
                            .engine_tx
                            .send(EngineMsg::Joined { client: client_id })
                            .is_err()
                        {
                            reply_to(&Response::Error {
                                code: ErrorCode::Finished,
                                message: "query already finished".into(),
                            });
                            continue;
                        }
                        is_publisher = true;
                    }
                    let count = tuples.len() as u32;
                    match shared.engine_tx.send(EngineMsg::Publish {
                        client: client_id,
                        node,
                        port: port as usize,
                        tuples,
                    }) {
                        Ok(()) => Response::Ack { count },
                        Err(_) => Response::Error {
                            code: ErrorCode::Finished,
                            message: "query already finished; publish rejected".into(),
                        },
                    }
                }
            },
            Request::Subscribe => {
                if subscribed {
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "connection already has a subscription".into(),
                    }
                } else {
                    let (tx, rx) = bounded::<SubMsg>(shared.subscriber_capacity);
                    if shared
                        .engine_tx
                        .send(EngineMsg::Subscribe {
                            client: client_id,
                            tx,
                        })
                        .is_err()
                    {
                        Response::Error {
                            code: ErrorCode::Finished,
                            message: "query already finished; no further results".into(),
                        }
                    } else {
                        subscribed = true;
                        let relay_writer = writer.clone();
                        let relay_shared = shared.clone();
                        std::thread::spawn(move || {
                            relay_results(rx, relay_writer, client_id, relay_shared)
                        });
                        Response::Ack { count: 0 }
                    }
                }
            }
            Request::Finish => {
                let _ = shared
                    .engine_tx
                    .send(EngineMsg::Finished { client: client_id });
                finish_sent = true;
                Response::Ack { count: 0 }
            }
            Request::Heartbeat { watermark } => {
                // Only a live publisher's watermark means anything to
                // the merge; after Finish the publisher no longer gates
                // it, and a non-publisher never did.
                if !is_publisher {
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "heartbeat from a connection that never published".into(),
                    }
                } else if finish_sent {
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "heartbeat after finish".into(),
                    }
                } else {
                    let _ = shared.engine_tx.send(EngineMsg::Heartbeat {
                        client: client_id,
                        watermark,
                    });
                    Response::Ack { count: 0 }
                }
            }
            Request::Stats => Response::Stats(
                shared
                    .metrics
                    .iter()
                    .map(|(name, handle)| {
                        let m = handle.snapshot();
                        OpStat {
                            name: name.clone(),
                            tuples_in: m.tuples_in,
                            tuples_out: m.tuples_out,
                            busy_ns: m.busy.as_nanos().min(u64::MAX as u128) as u64,
                            calls: m.calls,
                        }
                    })
                    .collect(),
            ),
        };
        if !reply_to(&reply) {
            let why = (is_publisher && !finish_sent).then_some(ServerError::ClientDisconnected {
                client_id,
                role: "publisher",
            });
            abort_publisher(finish_sent, is_publisher, why);
            return;
        }
    }
}

/// Relay one subscription's engine output onto the shared socket writer
/// until `Eos`, the engine goes away, or the subscriber stops reading.
fn relay_results(
    rx: Receiver<SubMsg>,
    writer: Arc<Mutex<TcpStream>>,
    client_id: u64,
    shared: Arc<Shared>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            SubMsg::Frame(bytes) => {
                let mut w = writer.lock().expect("connection writer poisoned");
                if w.write_all(&bytes).and_then(|_| w.flush()).is_err() {
                    shared.record(ServerError::ClientDisconnected {
                        client_id,
                        role: "subscriber",
                    });
                    return;
                }
            }
            SubMsg::Eos => {
                let mut w = writer.lock().expect("connection writer poisoned");
                let _ = protocol::write_response(&mut *w, &Response::Eos);
                return;
            }
        }
    }
}
