//! The serving core: a multi-client TCP server running one continuous
//! query on an incremental [`ShardedSession`].
//!
//! Thread layout (all `std::net` + `std::thread`; the deployment
//! environment has no async runtime):
//!
//! - an **accept thread** takes connections and spawns one handler per
//!   client;
//! - each **handler thread** reads framed requests and forwards decoded
//!   publishes into the engine's bounded inbox — a full inbox blocks the
//!   handler *before* it acknowledges, so backpressure reaches the
//!   publisher as a delayed `Ack`;
//! - one **engine thread** owns the session — a
//!   [`ustream_runtime::session::ShardedSession`], the incremental
//!   sharded engine. It merges the per-publisher queues into a single
//!   timestamp-ordered feed (k-way merge gated on per-publisher
//!   watermarks), chunks consecutive same-destination tuples into
//!   [`Batch`]es, pushes them through the session, and streams every
//!   newly collected sink batch to all subscribers as windows close.
//!   With [`ServedQuery::new`] the session wraps a single pipeline
//!   (exact `ExecSession` semantics); with [`ServedQuery::sharded`] the
//!   query's graph factory is compiled into a staged shard plan and the
//!   engine thread becomes a *router* — operator work runs
//!   key-partitioned across the session's worker pool, so serving
//!   throughput scales with cores instead of bottlenecking on one
//!   engine thread.
//!
//! **Idle publishers.** The merge can only release a tuple when every
//! unfinished publisher's watermark has passed it; a connected-but-idle
//! publisher therefore stalls results for everyone. Publishers that may
//! go quiet should send periodic watermark heartbeats
//! ([`crate::Client::heartbeat`]) — a promise that nothing older than
//! the advertised timestamp will be published — which advance the merge
//! without data.
//!
//! **Determinism.** When every publisher ships its stream in
//! non-decreasing timestamp order (the natural property of a live
//! feed), the merged feed the session sees is the timestamp-sorted
//! union of all published tuples — the same feed
//! [`QueryGraph::run_batched`] builds — so the concatenation of every
//! `Results` frame a subscriber receives equals the `run_batched`
//! output over the merged input, values/timestamps/existence/lineage
//! included (ties across publishers break by connection id). The
//! loopback integration suite asserts exactly this.
//!
//! **End of stream.** Each publisher declares itself via `Hello` and
//! closes with `Finish`. When every publisher has finished, the engine
//! flushes open windows ([`ShardedSession::finish`]), streams the final
//! batches, sends `Eos` to every subscriber, and rejects further
//! publishes with a typed error.
//!
//! **Fault tolerance.** A publisher that disconnects without finishing
//! is *parked*: its merge slot stays open for [`ServerConfig::lease`],
//! waiting for the client to reconnect and `Resume` with its session
//! token. Publishes carry per-session sequence numbers, so the replay a
//! resuming client sends is applied exactly once (duplicates are acked
//! but not re-merged) and the byte-equality guarantee above survives
//! the disconnect. If the lease runs out, the session degrades to
//! finished — the query still terminates cleanly, and the loss is
//! recorded as a `Fatal` [`ServerError::LeaseExpired`] escalating the
//! `Transient` disconnect. Slow subscribers are governed by
//! [`SubscriberPolicy`], and a bounded replay ring lets a reconnecting
//! subscriber catch up via `Subscribe { from }`.
//!
//! **Subscriptions.** A subscriber receives every sink batch produced
//! *after* it subscribes (plus the flush); the server does not replay
//! history — subscribe before publishing to observe a whole run. Each
//! batch is encoded into its `Results` frame exactly once and the bytes
//! are shared across subscribers. A subscribed connection stays fully
//! duplex: a dedicated relay thread writes result frames (one
//! subscription per connection) while the handler keeps serving
//! publishes, `stats`, and `Finish` on the same socket. A subscriber
//! that stops reading backpressures the engine (bounded outbox); server
//! shutdown breaks that wait and drops the stalled subscriber instead
//! of hanging.

use crate::protocol::{self, ErrorCode, OpStat, Request, Response};
use crate::wire::WireError;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use ustream_core::query::QueryGraph;
use ustream_core::{Batch, EngineError, MetricsHandle, NodeId, Tuple};
use ustream_runtime::session::ShardedSession;
use ustream_runtime::telemetry::SessionTelemetry;
use ustream_runtime::{PlanReport, ShardedExecutor};
use ustream_telemetry::{
    Counter, EventJournal, Gauge, HealthConfig, HealthReport, HealthWatchdog, MetricsRegistry,
    TraceDetail,
};

/// Typed server-side failures, readable from the in-process
/// [`ServerHandle`]. Client misbehavior (malformed frames, abrupt
/// disconnects) lands here; it never panics a server thread and never
/// kills the query.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// A client dropped its connection mid-stream (a publisher without
    /// `Finish`, or a subscriber that stopped reading).
    ClientDisconnected { client_id: u64, role: &'static str },
    /// A client sent bytes that did not decode; the server answered
    /// with an error frame and closed the connection.
    Malformed { client_id: u64, error: WireError },
    /// An operator panicked while the engine processed remote input
    /// (e.g. a published tuple whose schema the query's closures cannot
    /// handle). The query is dead: the session was discarded,
    /// subscribers received `Eos`, and further publishes are rejected —
    /// the serving threads never unwind.
    QueryPanicked { message: String },
    /// Publishes acknowledged in the narrow race window while the
    /// engine was flushing at EOS had to be dropped (the session was
    /// already finishing); recorded so the loss is observable.
    PublishDroppedAtEos { client_id: u64, count: usize },
    /// A parked publisher session's lease ran out with no `Resume`: the
    /// merge slot was released as finished and any unreplayed tail of
    /// that publisher's stream is lost. This is the `Fatal` escalation
    /// of the `Transient` [`ServerError::ClientDisconnected`] recorded
    /// when the publisher dropped.
    LeaseExpired { session_id: u64, lease_ms: u64 },
    /// A subscriber under [`SubscriberPolicy::DropOldest`] fell behind
    /// and `dropped` of its queued result frames were discarded; the
    /// subscriber was told via a `Gap` frame.
    SubscriberLagged { client_id: u64, dropped: u64 },
    /// A subscriber under [`SubscriberPolicy::Disconnect`] fell behind
    /// and its result stream was severed with a typed `Lagging` error.
    SubscriberDropped { client_id: u64 },
}

/// How bad a [`ServerError`] is — the alerting split: `Transient`
/// faults are the expected weather of serving over real networks
/// (clients drop, slow subscribers shed load) and the protocol is built
/// to absorb them; `Fatal` faults mean query output was (or may have
/// been) lost or the query itself died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Absorbed by design: no result data was lost.
    Transient,
    /// Data loss or query death: page somebody.
    Fatal,
}

impl ServerError {
    /// Classify this error for alerting. See [`Severity`].
    pub fn severity(&self) -> Severity {
        match self {
            ServerError::ClientDisconnected { .. }
            | ServerError::SubscriberLagged { .. }
            | ServerError::SubscriberDropped { .. } => Severity::Transient,
            ServerError::Malformed { .. }
            | ServerError::QueryPanicked { .. }
            | ServerError::PublishDroppedAtEos { .. }
            | ServerError::LeaseExpired { .. } => Severity::Fatal,
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::ClientDisconnected { client_id, role } => {
                write!(f, "{role} client {client_id} disconnected mid-stream")
            }
            ServerError::Malformed { client_id, error } => {
                write!(f, "client {client_id} sent a malformed frame: {error}")
            }
            ServerError::QueryPanicked { message } => {
                write!(f, "served query panicked on remote input: {message}")
            }
            ServerError::PublishDroppedAtEos { client_id, count } => {
                write!(
                    f,
                    "dropped {count} tuples from client {client_id} acknowledged during the EOS flush"
                )
            }
            ServerError::LeaseExpired {
                session_id,
                lease_ms,
            } => {
                write!(
                    f,
                    "publisher session {session_id} lease expired after {lease_ms}ms with no resume; \
                     its merge slot was released"
                )
            }
            ServerError::SubscriberLagged { client_id, dropped } => {
                write!(
                    f,
                    "subscriber {client_id} lagged; dropped {dropped} queued result frame(s)"
                )
            }
            ServerError::SubscriberDropped { client_id } => {
                write!(f, "subscriber {client_id} lagged and was disconnected")
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// Failure to start a server.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listener failed.
    Io(std::io::Error),
    /// The query graph did not compile (cycle, dangling edge).
    Graph(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "bind failed: {e}"),
            ServeError::Graph(e) => write!(f, "query graph rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A query prepared for serving, optionally with named metrics handles
/// (wrap hot operators in [`ustream_core::Metered`] and register the
/// handles here; the `stats` command serves their snapshots).
pub struct ServedQuery {
    source: QuerySource,
    metrics: Vec<(String, MetricsHandle)>,
}

/// How the engine session is built: from one already-built graph
/// (single pipeline) or from a graph factory (staged sharded session).
enum QuerySource {
    Graph(QueryGraph),
    Factory {
        factory: Box<dyn Fn() -> QueryGraph + Send>,
        shards: usize,
        workers: Option<usize>,
    },
}

impl ServedQuery {
    /// Serve `graph` on one single-threaded pipeline — the exact
    /// incremental-engine semantics, sink arrival order included.
    pub fn new(graph: QueryGraph) -> Self {
        ServedQuery {
            source: QuerySource::Graph(graph),
            metrics: Vec::new(),
        }
    }

    /// Serve the query built by `factory` as a staged sharded session
    /// with `shards` logical partitions: the engine thread routes, the
    /// session's worker pool runs the operator work key-partitioned.
    /// `factory` must build the same graph on every call (the sharded
    /// runtime's factory contract). Results stream in the engine's
    /// canonical `(ts, content)` order per watermark interval — the
    /// same rows `run_batched` would produce over the merged feed.
    pub fn sharded(factory: impl Fn() -> QueryGraph + Send + 'static, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ServedQuery {
            source: QuerySource::Factory {
                factory: Box::new(factory),
                shards,
                workers: None,
            },
            metrics: Vec::new(),
        }
    }

    /// Pin the sharded session's worker-pool size (otherwise
    /// `min(shards, available cores)`); no effect on [`ServedQuery::new`]
    /// single-pipeline serving.
    pub fn with_workers(mut self, n: usize) -> Self {
        assert!(n > 0);
        if let QuerySource::Factory { workers, .. } = &mut self.source {
            *workers = Some(n);
        }
        self
    }

    /// Register a named metrics handle to be served by `stats`.
    pub fn with_metric(mut self, name: impl Into<String>, handle: MetricsHandle) -> Self {
        self.metrics.push((name.into(), handle));
        self
    }
}

/// What to do when a subscriber's bounded send queue fills up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriberPolicy {
    /// Backpressure: the engine waits for the subscriber to drain (a
    /// slow subscriber slows everyone, but nobody misses a frame).
    Block,
    /// Shed load: discard the oldest queued frames to make room and
    /// tell the subscriber how many it missed with a `Gap` frame
    /// (recorded as a `Transient` [`ServerError::SubscriberLagged`]).
    DropOldest,
    /// Sever: clear the queue and end the subscription with a typed
    /// `Lagging` error frame
    /// (recorded as a `Transient` [`ServerError::SubscriberDropped`]).
    Disconnect,
}

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Target tuples per [`Batch`] pushed into the session.
    pub batch_size: usize,
    /// Bound on in-flight engine messages (publish backpressure depth).
    pub inbox_capacity: usize,
    /// Bound on undelivered result frames per subscriber (a slow
    /// subscriber triggers [`ServerConfig::subscriber_policy`] rather
    /// than ballooning memory).
    pub subscriber_capacity: usize,
    /// How long a publisher's merge slot stays parked after an abrupt
    /// disconnect, waiting for a `Resume`. Zero disables parking: a
    /// disconnect immediately finishes the publisher (the pre-lease
    /// behavior, minus the grace window).
    pub lease: Duration,
    /// What a full subscriber queue does. Default: [`SubscriberPolicy::Block`].
    pub subscriber_policy: SubscriberPolicy,
    /// How many already-broadcast result frames the engine retains for
    /// replay to reconnecting subscribers (`Subscribe { from }`). Zero
    /// disables the ring.
    pub replay_frames: usize,
    /// How often the background watchdog re-evaluates the health checks
    /// (journaling status transitions). Zero disables the ticker —
    /// `Health` requests still evaluate on demand.
    pub health_interval: Duration,
    /// Thresholds for the health checks (the watchdog fills
    /// [`HealthConfig::subscriber_capacity`] in from
    /// [`ServerConfig::subscriber_capacity`] unless already set).
    pub health: HealthConfig,
    /// Trace 1-in-N ingested batches through the engine (pump → route →
    /// seal → emit spans). Zero (the default) disables tracing.
    pub trace_sample_every: u64,
    /// Seed for the trace sampler's residue class and trace IDs.
    pub trace_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch_size: 512,
            inbox_capacity: 256,
            subscriber_capacity: 64,
            lease: Duration::from_secs(5),
            subscriber_policy: SubscriberPolicy::Block,
            replay_frames: 64,
            health_interval: Duration::from_millis(200),
            health: HealthConfig::default(),
            trace_sample_every: 0,
            trace_seed: 0,
        }
    }
}

/// What handler threads send the engine. Publisher-side messages are
/// keyed by *session* id, which survives reconnects — a resumed
/// connection keeps feeding the same merge slot.
enum EngineMsg {
    /// A connection declared itself a publisher (EOS accounting).
    Joined {
        session: u64,
    },
    Publish {
        session: u64,
        node: NodeId,
        port: usize,
        tuples: Vec<Tuple>,
    },
    /// The publisher is done (explicit `Finish`, or lease expiry).
    Finished {
        session: u64,
    },
    /// A publisher promises to publish nothing older than `watermark` —
    /// the idle-but-alive signal that keeps the k-way merge moving.
    Heartbeat {
        session: u64,
        watermark: u64,
    },
    Subscribe {
        client: u64,
        queue: Arc<SubQueue>,
        /// Replay already-broadcast result frames from this sequence
        /// number (a reconnecting subscriber's catch-up request).
        from: Option<u64>,
    },
    Shutdown,
}

/// What the engine hands a subscriber's relay thread. Result frames
/// arrive pre-encoded (one encode per batch, shared bytes across
/// subscribers).
enum SubItem {
    Frame(Arc<Vec<u8>>),
    /// `missed` result frames were dropped before the next one.
    Gap {
        missed: u64,
    },
    /// The subscriber fell behind under [`SubscriberPolicy::Disconnect`].
    Lagged,
    Eos,
}

/// What [`SubQueue::push_frame`] reports back to the engine.
enum PushOutcome {
    Delivered,
    /// Delivered, but `dropped` older frames were shed to make room.
    Lagged {
        dropped: u64,
    },
    /// The queue was severed under [`SubscriberPolicy::Disconnect`].
    Severed,
    /// The relay is gone (subscriber socket died or server shutdown).
    Gone,
}

/// A subscriber's bounded outbox: a policy-aware queue between the
/// engine thread and the relay thread writing that subscriber's socket.
/// Replaces a plain bounded channel so a full queue can shed or sever
/// per [`SubscriberPolicy`] instead of only blocking, and so a gap left
/// by shed frames is reported in-order as a [`SubItem::Gap`].
struct SubQueue {
    inner: Mutex<SubQueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

struct SubQueueInner {
    items: VecDeque<SubItem>,
    /// Frames dropped just behind the current front — delivered as one
    /// `Gap` before the next item. Gaps only ever form at the front:
    /// `DropOldest` pops there, and a replay request older than the
    /// ring starts there.
    front_gap: u64,
    /// No further pushes will be read (relay died, EOS queued, or the
    /// queue was severed).
    closed: bool,
}

impl SubQueue {
    fn new(cap: usize) -> Arc<SubQueue> {
        Arc::new(SubQueue {
            inner: Mutex::new(SubQueueInner {
                items: VecDeque::new(),
                front_gap: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        })
    }

    fn push_frame(
        &self,
        frame: Arc<Vec<u8>>,
        policy: SubscriberPolicy,
        shutdown: &AtomicBool,
    ) -> PushOutcome {
        let mut g = self.inner.lock().expect("subscriber queue poisoned");
        if g.closed {
            return PushOutcome::Gone;
        }
        match policy {
            SubscriberPolicy::Block => {
                while g.items.len() >= self.cap && !g.closed {
                    if shutdown.load(Ordering::SeqCst) {
                        return PushOutcome::Gone;
                    }
                    let (back, _) = self
                        .not_full
                        .wait_timeout(g, Duration::from_millis(5))
                        .expect("subscriber queue poisoned");
                    g = back;
                }
                if g.closed {
                    return PushOutcome::Gone;
                }
                g.items.push_back(SubItem::Frame(frame));
                self.not_empty.notify_one();
                PushOutcome::Delivered
            }
            SubscriberPolicy::DropOldest => {
                let mut dropped = 0u64;
                while g.items.len() >= self.cap {
                    match g.items.pop_front() {
                        Some(SubItem::Frame(_)) => {
                            g.front_gap += 1;
                            dropped += 1;
                        }
                        Some(SubItem::Gap { missed }) => g.front_gap += missed,
                        Some(other) => {
                            // Eos/Lagged never precede a frame push; keep
                            // them rather than corrupt the stream end.
                            g.items.push_front(other);
                            break;
                        }
                        None => break,
                    }
                }
                g.items.push_back(SubItem::Frame(frame));
                self.not_empty.notify_one();
                if dropped > 0 {
                    PushOutcome::Lagged { dropped }
                } else {
                    PushOutcome::Delivered
                }
            }
            SubscriberPolicy::Disconnect => {
                if g.items.len() >= self.cap {
                    g.items.clear();
                    g.front_gap = 0;
                    g.items.push_back(SubItem::Lagged);
                    g.closed = true;
                    self.not_empty.notify_one();
                    PushOutcome::Severed
                } else {
                    g.items.push_back(SubItem::Frame(frame));
                    self.not_empty.notify_one();
                    PushOutcome::Delivered
                }
            }
        }
    }

    /// Record `missed` frames dropped before whatever is pushed next
    /// (the catch-up path: a replay request older than the ring).
    fn push_gap(&self, missed: u64) {
        if missed == 0 {
            return;
        }
        let mut g = self.inner.lock().expect("subscriber queue poisoned");
        if !g.closed {
            g.front_gap += missed;
            self.not_empty.notify_one();
        }
    }

    /// Queue the end-of-stream marker (bypasses the capacity bound so
    /// it can never block the engine) and refuse further pushes.
    fn push_eos(&self) {
        let mut g = self.inner.lock().expect("subscriber queue poisoned");
        if !g.closed {
            g.items.push_back(SubItem::Eos);
            g.closed = true;
            self.not_empty.notify_one();
        }
    }

    /// Relay side: the socket died; unblock and turn away the engine.
    fn sever(&self) {
        let mut g = self.inner.lock().expect("subscriber queue poisoned");
        g.closed = true;
        g.items.clear();
        g.front_gap = 0;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Undelivered items currently queued (the engine samples this into
    /// the subscriber's depth gauge after each broadcast).
    fn depth(&self) -> usize {
        self.inner
            .lock()
            .expect("subscriber queue poisoned")
            .items
            .len()
    }

    /// Relay side: next item, blocking. A closed-and-drained queue
    /// yields `Eos`.
    fn pop(&self) -> SubItem {
        let mut g = self.inner.lock().expect("subscriber queue poisoned");
        loop {
            if g.front_gap > 0 {
                let missed = g.front_gap;
                g.front_gap = 0;
                return SubItem::Gap { missed };
            }
            if let Some(item) = g.items.pop_front() {
                self.not_full.notify_one();
                return item;
            }
            if g.closed {
                return SubItem::Eos;
            }
            g = self.not_empty.wait(g).expect("subscriber queue poisoned");
        }
    }
}

/// A publisher session's lifecycle. Guarded by epoch counters so a
/// stale lease timer or a usurped (replaced-by-resume) connection can
/// never regress the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifecycle {
    /// A live connection owns the session.
    Active,
    /// The owning connection dropped; the merge slot is held open until
    /// a `Resume` arrives or the lease expires.
    Parked,
    /// The lease ran out; the merge slot was released as finished.
    Expired,
    /// The publisher sent `Finish` (or the query reached EOS).
    Finished,
}

/// One publisher session: the unit that survives reconnects.
struct SessionEntry {
    /// The merge-slot key (the original connection's client id — stable
    /// across resumes, so reconnection cannot perturb tie-breaking).
    session_id: u64,
    /// The opaque credential handed out in `HelloAck` and presented in
    /// `Resume`.
    token: u64,
    state: Mutex<SessionState>,
}

struct SessionState {
    /// Next publish sequence expected (sequences start at 1). Anything
    /// below it was already applied to the merge and is acked without
    /// re-application — the exactly-once dedup.
    next_seq: u64,
    lifecycle: Lifecycle,
    /// Bumped by every successful `Resume`; a connection or lease timer
    /// acts only while its captured epoch is current.
    epoch: u64,
}

/// The opaque resume credential for a session id. Injective (odd
/// multiplier), so tokens never collide; not guessable-in-practice
/// without being a secret — the threat model is accidental cross-wiring,
/// not adversaries (the codec itself is unauthenticated).
fn session_token(session_id: u64) -> u64 {
    session_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03
}

/// Per-publisher merge state.
#[derive(Default)]
struct PubState {
    queue: VecDeque<(NodeId, usize, Tuple)>,
    /// Highest timestamp enqueued so far — the publisher's watermark: a
    /// ts-ordered stream cannot later deliver anything older.
    last_ts: u64,
    finished: bool,
}

/// The server's own always-on counters, registered under `server_*`
/// families in the shared [`MetricsRegistry`] at startup. One relaxed
/// atomic bump per serving event; the registry serves the same cells to
/// `StatsV2` and [`MetricsRegistry::render_text`].
struct ServerMetrics {
    /// Publish frames applied to the merge (dedup replays excluded).
    publish_frames: Counter,
    /// Tuples in those frames.
    publish_tuples: Counter,
    /// Every `Ack` response written, any request kind.
    acks: Counter,
    /// Duplicate sequenced publishes re-acked without re-application
    /// (the exactly-once dedup firing during a replay).
    replay_publishes: Counter,
    /// Successful `Resume` handshakes (`ResumeOk` sent).
    resumes: Counter,
    heartbeats: Counter,
    finishes: Counter,
    subscribes: Counter,
    /// Encoded `Results` frames broadcast (splits count individually).
    results_frames: Counter,
    /// `Eos` markers queued to subscribers.
    eos: Counter,
    /// `Gap` frames written to subscribers, and the frames they report
    /// missing.
    gap_frames: Counter,
    gap_missed: Counter,
    /// Lease lifecycle: sessions parked after an abrupt disconnect,
    /// parked sessions picked back up, leases that ran out.
    lease_parked: Counter,
    lease_resumed: Counter,
    lease_expired: Counter,
    /// [`ServerError`]s recorded, split by [`Severity`]. Always equal
    /// to the count of errors handed out by
    /// [`ServerHandle::take_errors`] over the server's lifetime.
    errors_transient: Counter,
    errors_fatal: Counter,
}

impl ServerMetrics {
    fn register(registry: &MetricsRegistry) -> ServerMetrics {
        ServerMetrics {
            publish_frames: registry.counter("server_publish_frames_total"),
            publish_tuples: registry.counter("server_publish_tuples_total"),
            acks: registry.counter("server_acks_total"),
            replay_publishes: registry.counter("server_replay_publishes_total"),
            resumes: registry.counter("server_resumes_total"),
            heartbeats: registry.counter("server_heartbeats_total"),
            finishes: registry.counter("server_finishes_total"),
            subscribes: registry.counter("server_subscribes_total"),
            results_frames: registry.counter("server_results_frames_total"),
            eos: registry.counter("server_eos_total"),
            gap_frames: registry.counter("server_gap_frames_total"),
            gap_missed: registry.counter("server_gap_missed_total"),
            lease_parked: registry.counter("server_lease_parked_total"),
            lease_resumed: registry.counter("server_lease_resumed_total"),
            lease_expired: registry.counter("server_lease_expired_total"),
            errors_transient: registry
                .counter_with("server_errors_total", &[("severity", "transient")]),
            errors_fatal: registry.counter_with("server_errors_total", &[("severity", "fatal")]),
        }
    }
}

/// State shared between the accept loop and every handler thread.
struct Shared {
    engine_tx: Sender<EngineMsg>,
    /// Named source entries as `(entry node, its input-port count)` —
    /// the port count lets handlers reject out-of-range publish ports
    /// before they can trip an operator's `assert!` on the engine
    /// thread.
    sources: HashMap<String, (NodeId, usize)>,
    metrics: Vec<(String, MetricsHandle)>,
    errors: Mutex<Vec<ServerError>>,
    finished: AtomicBool,
    /// Set by [`ServerHandle::shutdown`]; breaks the engine out of a
    /// backpressure wait on a stalled subscriber, disarms pending lease
    /// timers, and stops the accept loop.
    shutdown: AtomicBool,
    subscriber_capacity: usize,
    lease: Duration,
    /// Resumable publisher sessions, keyed by token.
    sessions: Mutex<HashMap<u64, Arc<SessionEntry>>>,
    /// The always-on metrics surface: the engine session's handles are
    /// adopted here at startup, the server's own counters live here,
    /// and `StatsV2` serves a snapshot plus the text exposition.
    registry: MetricsRegistry,
    /// Structured serving events (gaps, lease lifecycle), merged with
    /// the engine session's journal.
    journal: EventJournal,
    /// The engine session's telemetry handle — `Clone` shares the
    /// cells, so `Explain` assembles live numbers without touching the
    /// engine thread.
    telemetry: SessionTelemetry,
    /// The health evaluator; shared between the background ticker and
    /// on-demand `Health` requests so both see one transition history.
    watchdog: HealthWatchdog,
    m: ServerMetrics,
}

impl Shared {
    fn record(&self, e: ServerError) {
        match e.severity() {
            Severity::Transient => self.m.errors_transient.inc(),
            Severity::Fatal => self.m.errors_fatal.inc(),
        }
        self.errors.lock().expect("error log poisoned").push(e);
    }
}

/// The ingest server. [`Server::serve`] binds, spawns the thread
/// complex, and returns a handle.
pub struct Server;

impl Server {
    /// Serve `query` on `addr` with default [`ServerConfig`].
    pub fn serve(addr: impl ToSocketAddrs, query: ServedQuery) -> Result<ServerHandle, ServeError> {
        Server::serve_with(addr, query, ServerConfig::default())
    }

    /// Serve with explicit knobs.
    pub fn serve_with(
        addr: impl ToSocketAddrs,
        query: ServedQuery,
        config: ServerConfig,
    ) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(addr).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;

        let ServedQuery { source, metrics } = query;
        let (sources, session) = match source {
            QuerySource::Graph(graph) => {
                let sources: HashMap<String, (NodeId, usize)> = graph
                    .source_entries()
                    .map(|(name, node)| {
                        (name.to_string(), (node, graph.operator(node).num_ports()))
                    })
                    .collect();
                let session = ShardedSession::single(graph).map_err(ServeError::Graph)?;
                (sources, session)
            }
            QuerySource::Factory {
                factory,
                shards,
                workers,
            } => {
                let prototype = factory();
                let sources: HashMap<String, (NodeId, usize)> = prototype
                    .source_entries()
                    .map(|(name, node)| {
                        (
                            name.to_string(),
                            (node, prototype.operator(node).num_ports()),
                        )
                    })
                    .collect();
                drop(prototype);
                let mut executor = ShardedExecutor::new(shards).with_batch_size(config.batch_size);
                if let Some(w) = workers {
                    executor = executor.with_workers(w);
                }
                let session = executor.session(&*factory).map_err(ServeError::Graph)?;
                (sources, session)
            }
        };

        // One registry serves the whole deployment: the session adopts
        // its engine handles into it here, the server's own counters
        // register beside them, and `StatsV2` snapshots the union. The
        // journal is the session's — serving events (leases, gaps)
        // interleave with engine events (pumps, seals) in one sequence.
        let registry = MetricsRegistry::new();
        session.bind_registry(&registry);
        let telemetry = session.telemetry().clone();
        telemetry
            .traces()
            .configure(config.trace_sample_every, config.trace_seed);
        let journal = telemetry.journal().clone();
        let m = ServerMetrics::register(&registry);
        let mut health = config.health.clone();
        if health.subscriber_capacity == 0 {
            health.subscriber_capacity = config.subscriber_capacity as u64;
        }
        let watchdog = HealthWatchdog::new(health, registry.clone(), journal.clone());

        let (engine_tx, engine_rx) = bounded::<EngineMsg>(config.inbox_capacity);
        let shared = Arc::new(Shared {
            engine_tx: engine_tx.clone(),
            sources,
            metrics,
            errors: Mutex::new(Vec::new()),
            finished: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            subscriber_capacity: config.subscriber_capacity,
            lease: config.lease,
            sessions: Mutex::new(HashMap::new()),
            registry,
            journal,
            telemetry,
            watchdog,
            m,
        });

        let engine_shared = shared.clone();
        let batch_size = config.batch_size;
        let policy = config.subscriber_policy;
        let replay_cap = config.replay_frames;
        let engine = std::thread::spawn(move || {
            Engine {
                rx: engine_rx,
                session: Some(session),
                pubs: BTreeMap::new(),
                subs: Vec::new(),
                batch_size,
                policy,
                next_results_seq: 0,
                replay: VecDeque::new(),
                replay_cap,
                ever_subscribed: false,
                shared: engine_shared,
            }
            .run()
        });

        let accept_shared = shared.clone();
        let accept = std::thread::spawn(move || {
            let next_id = AtomicU64::new(1);
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let client_id = next_id.fetch_add(1, Ordering::Relaxed);
                let shared = accept_shared.clone();
                std::thread::spawn(move || handle_client(stream, client_id, shared));
            }
        });

        // The watchdog ticker: re-evaluate on an interval so status
        // transitions are journaled even when nobody is asking. Sleeps
        // in short slices so shutdown is prompt.
        let watchdog_thread = (config.health_interval > Duration::ZERO).then(|| {
            let shared = shared.clone();
            let interval = config.health_interval;
            std::thread::spawn(move || {
                let slice = Duration::from_millis(25).min(interval);
                let mut elapsed = Duration::ZERO;
                while !shared.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        let _ = shared.watchdog.evaluate();
                    }
                }
            })
        });

        Ok(ServerHandle {
            addr,
            shared,
            engine_tx,
            accept: Some(accept),
            engine: Some(engine),
            watchdog: watchdog_thread,
        })
    }
}

/// In-process handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    engine_tx: Sender<EngineMsg>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use with port 0 to serve on an ephemeral
    /// loopback port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the served query has flushed (EOS reached).
    pub fn is_finished(&self) -> bool {
        self.shared.finished.load(Ordering::SeqCst)
    }

    /// The server's live metrics registry: the engine session's
    /// `engine_*` handles plus the serving-layer `server_*` counters —
    /// the same cells `StatsV2` snapshots remotely. `Clone` shares the
    /// table, so the handle stays valid after [`ServerHandle::shutdown`].
    pub fn registry(&self) -> MetricsRegistry {
        self.shared.registry.clone()
    }

    /// The structured event journal: engine events (batches pumped,
    /// windows sealed, shard routing) interleaved with serving events
    /// (lease lifecycle, subscriber gaps) in one monotonic sequence.
    pub fn journal(&self) -> EventJournal {
        self.shared.journal.clone()
    }

    /// Assemble the live EXPLAIN ANALYZE report in-process — the same
    /// payload a remote [`crate::Client::explain`] receives.
    pub fn explain(&self) -> PlanReport {
        PlanReport::assemble(&self.shared.telemetry)
    }

    /// Evaluate the health checks now (sharing transition history with
    /// the background ticker and remote `Health` requests).
    pub fn health(&self) -> HealthReport {
        self.shared.watchdog.evaluate()
    }

    /// Drain the typed errors recorded so far (malformed frames,
    /// mid-stream disconnects, lease expiries, shed subscribers).
    /// Filter with [`ServerError::severity`] before alerting: the
    /// `Transient` entries are absorbed faults (a disconnected client
    /// whose lease is still running, a lagging subscriber that was told
    /// about its gap); only `Fatal` entries mean result data was lost
    /// or the query died.
    pub fn take_errors(&self) -> Vec<ServerError> {
        std::mem::take(&mut *self.shared.errors.lock().expect("error log poisoned"))
    }

    /// Stop accepting, stop the engine (subscribers receive `Eos` if the
    /// query had not flushed), and join the server threads. Returns any
    /// errors recorded over the server's lifetime.
    pub fn shutdown(mut self) -> Vec<ServerError> {
        // Flag first: an engine parked on a stalled subscriber's full
        // outbox polls this flag and drops the subscriber instead of
        // waiting forever, so the join below cannot hang.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.engine_tx.send(EngineMsg::Shutdown);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        self.take_errors()
    }
}

// ---------------------------------------------------------------------
// Engine thread
// ---------------------------------------------------------------------

/// One attached subscriber: its queue plus the live depth gauge the
/// engine refreshes after every broadcast.
struct Sub {
    client: u64,
    queue: Arc<SubQueue>,
    depth: Gauge,
}

struct Engine {
    rx: Receiver<EngineMsg>,
    session: Option<ShardedSession>,
    pubs: BTreeMap<u64, PubState>,
    subs: Vec<Sub>,
    batch_size: usize,
    policy: SubscriberPolicy,
    /// Sequence number of the next broadcast `Results` frame (frames
    /// are numbered consecutively from 0 once the first subscriber has
    /// ever attached).
    next_results_seq: u64,
    /// The bounded replay ring: the last `replay_cap` broadcast frames,
    /// by sequence number, for `Subscribe { from }` catch-up.
    replay: VecDeque<(u64, Arc<Vec<u8>>)>,
    replay_cap: usize,
    /// Until the first subscriber attaches, result frames are neither
    /// encoded nor ringed (a publisher-only server pays no encode tax);
    /// from then on they are, so reconnectors can catch up even while
    /// no subscriber is currently attached.
    ever_subscribed: bool,
    shared: Arc<Shared>,
}

impl Engine {
    fn run(mut self) {
        // The loop ends when every sender handle drops (server torn
        // down) or an early-return arm fires.
        while let Ok(msg) = self.rx.recv() {
            match msg {
                EngineMsg::Joined { session } => {
                    self.pubs.entry(session).or_default();
                }
                EngineMsg::Publish {
                    session,
                    node,
                    port,
                    tuples,
                } => {
                    let p = self.pubs.entry(session).or_default();
                    // A finished publisher's tuples would slip in behind
                    // the watermark its Finish released; the handler
                    // already rejects this, so reaching here means a
                    // racing abort — drop, never corrupt the merge.
                    if !p.finished {
                        for t in tuples {
                            p.last_ts = p.last_ts.max(t.ts);
                            p.queue.push_back((node, port, t));
                        }
                    }
                }
                EngineMsg::Finished { session } => {
                    if let Some(p) = self.pubs.get_mut(&session) {
                        p.finished = true;
                    }
                }
                EngineMsg::Heartbeat { session, watermark } => {
                    // Advance the publisher's merge watermark without
                    // data: its queue can stay empty without blocking
                    // other publishers' releases. (Same contract as a
                    // publish at `watermark`: nothing older may follow.)
                    if let Some(p) = self.pubs.get_mut(&session) {
                        if !p.finished {
                            p.last_ts = p.last_ts.max(watermark);
                        }
                    }
                }
                EngineMsg::Subscribe {
                    client,
                    queue,
                    from,
                } => {
                    self.ever_subscribed = true;
                    if self.replay_frames_for(&queue, client, from) {
                        let depth = self.shared.registry.gauge_with(
                            "server_subscriber_queue_depth",
                            &[("client", &client.to_string())],
                        );
                        depth.set(queue.depth() as i64);
                        self.subs.push(Sub {
                            client,
                            queue,
                            depth,
                        });
                    }
                }
                EngineMsg::Shutdown => {
                    self.broadcast_eos();
                    return;
                }
            }
            if let Err(panic) = self.pump() {
                self.fail(panic);
                return;
            }
            if !self.pubs.is_empty() && self.pubs.values().all(|p| p.finished) {
                self.complete();
                return;
            }
        }
    }

    /// Merge the per-publisher queues up to the collective watermark,
    /// push the merged run through the session in destination-chunked
    /// batches, then stream any newly closed windows to subscribers.
    ///
    /// An entry is safe to emit when no *unfinished* publisher with an
    /// empty queue could still deliver a tuple that precedes it in the
    /// canonical `(ts, connection id)` order — a strictly older
    /// timestamp (watermark below the entry's ts), or an equal one from
    /// a lower-id connection (its next tuple could tie and ties break by
    /// id).
    /// `Err` carries the panic message when an operator panicked on the
    /// pushed input — the session is then poisoned and the caller must
    /// [`Engine::fail`].
    fn pump(&mut self) -> Result<(), String> {
        let drained = {
            let Some(session) = self.session.as_mut() else {
                return Ok(());
            };
            // Remote tuples run user operator code; the session contains
            // panics (on the engine thread and on its pool workers) and
            // reports them as typed errors — the query dies with Eos'd
            // subscribers, the serving threads never unwind.
            let push = |session: &mut ShardedSession,
                        n: NodeId,
                        p: usize,
                        mut b: Batch|
             -> Result<(), String> {
                // Long same-destination runs go columnar so the sharded
                // session routes by key column and operators hit their
                // vectorized paths; short runs stay rows.
                if b.len() >= ustream_core::query::COLUMNAR_MIN_CHUNK {
                    b.columnarize();
                }
                session.push_batch(n, p, b).map_err(|e| e.to_string())
            };
            let mut cur: Option<(NodeId, usize, Batch)> = None;
            loop {
                let mut best: Option<(u64, u64)> = None; // (ts, client)
                for (&id, p) in &self.pubs {
                    if let Some((_, _, t)) = p.queue.front() {
                        let key = (t.ts, id);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                }
                let Some((ts, pid)) = best else { break };
                let blocked = self.pubs.iter().any(|(&id, p)| {
                    id != pid
                        && !p.finished
                        && p.queue.is_empty()
                        && (p.last_ts < ts || (p.last_ts == ts && id < pid))
                });
                if blocked {
                    break;
                }
                let (node, port, tuple) = self
                    .pubs
                    .get_mut(&pid)
                    .expect("candidate publisher exists")
                    .queue
                    .pop_front()
                    .expect("candidate queue non-empty");
                match &mut cur {
                    Some((n, p, b)) if *n == node && *p == port && b.len() < self.batch_size => {
                        b.push(tuple)
                    }
                    slot => {
                        if let Some((n, p, b)) = slot.take() {
                            push(session, n, p, b)?;
                        }
                        *slot = Some((node, port, Batch::one(tuple)));
                    }
                }
            }
            if let Some((n, p, b)) = cur {
                push(session, n, p, b)?;
            }
            // The collective publisher watermark: every unfinished
            // publisher has promised (via data or heartbeats) nothing
            // older, and everything below it is already pushed — so the
            // session's event-time clock may advance past the last
            // pushed tuple. Windows sealed purely by the clock (idle
            // publishers heartbeating past them) close and stream now
            // instead of stalling until the next data push or EOS.
            let watermark = self
                .pubs
                .values()
                .filter(|p| !p.finished)
                .map(|p| p.last_ts)
                .min();
            if let Some(watermark) = watermark {
                session
                    .advance_watermark(watermark)
                    .map_err(|e| e.to_string())?;
            }
            session.drain_collected().map_err(|e| e.to_string())?
        };
        self.broadcast(drained);
        Ok(())
    }

    /// All publishers finished: feed the stragglers, flush the session,
    /// stream the final windows, and send `Eos` to every subscriber.
    fn complete(&mut self) {
        // Flag first: handlers reject new publishes while the (possibly
        // long) flush runs, so nothing can be acknowledged into an
        // engine that is about to stop reading its inbox.
        self.shared.finished.store(true, Ordering::SeqCst);
        if let Err(panic) = self.pump() {
            // Nothing blocks once every publisher is finished.
            self.fail(panic);
            return;
        }
        if let Some(session) = self.session.take() {
            match session.finish() {
                Ok(collected) => {
                    let mut finals: Vec<(NodeId, Vec<Tuple>)> = collected
                        .into_iter()
                        .filter(|(_, tuples)| !tuples.is_empty())
                        .collect();
                    finals.sort_by_key(|(n, _)| n.index());
                    self.broadcast(finals);
                }
                Err(e) => {
                    self.fail(e.to_string());
                    return;
                }
            }
        }
        self.broadcast_eos();
        self.post_eos_loop();
    }

    /// An operator panicked on remote input: discard the poisoned
    /// session, record the typed error, release subscribers with `Eos`,
    /// and reject everything else — the serving threads keep running.
    fn fail(&mut self, message: String) {
        self.session = None;
        self.shared.record(ServerError::QueryPanicked { message });
        self.shared.finished.store(true, Ordering::SeqCst);
        self.broadcast_eos();
        self.post_eos_loop();
    }

    /// Keep serving the inbox after EOS until shutdown (or teardown):
    /// late subscribers still get a ring replay and their `Eos` (no
    /// hang, no race with the flush), lease expiries for sessions parked
    /// across the flush land here as ignored no-ops instead of re-opening
    /// the merge gate, and acknowledged-but-unprocessable publishes are
    /// recorded instead of vanishing.
    fn post_eos_loop(&mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                EngineMsg::Subscribe {
                    client,
                    queue,
                    from,
                } => {
                    self.replay_frames_for(&queue, client, from);
                    queue.push_eos();
                }
                EngineMsg::Publish {
                    session, tuples, ..
                } if !tuples.is_empty() => {
                    self.shared.record(ServerError::PublishDroppedAtEos {
                        client_id: session,
                        count: tuples.len(),
                    });
                }
                EngineMsg::Shutdown => return,
                _ => {}
            }
        }
    }

    /// Serve a new subscriber's `from` catch-up request out of the
    /// replay ring: one `Gap` for whatever aged out, then every retained
    /// frame at or past `from`. Returns whether the subscriber is still
    /// attached (its policy may sever it mid-replay).
    fn replay_frames_for(&self, queue: &Arc<SubQueue>, client: u64, from: Option<u64>) -> bool {
        let Some(from) = from else { return true };
        let ring_start = self
            .replay
            .front()
            .map(|(seq, _)| *seq)
            .unwrap_or(self.next_results_seq);
        // `from` beyond the live sequence is a confused client; nothing
        // to replay and nothing was missed yet.
        if from < ring_start {
            queue.push_gap(ring_start - from);
        }
        for (seq, frame) in &self.replay {
            if *seq >= from && !deliver(&self.shared, self.policy, client, queue, frame.clone()) {
                return false;
            }
        }
        true
    }

    fn broadcast(&mut self, batches: Vec<(NodeId, Vec<Tuple>)>) {
        for (sink, tuples) in batches {
            self.broadcast_batch(sink.index() as u32, &tuples);
        }
    }

    /// Encode one result batch into its sequenced `Results` frame
    /// exactly once, remember it in the replay ring, and fan the shared
    /// bytes out to every subscriber under the configured policy. A
    /// batch whose frame would exceed the payload cap is split in half
    /// recursively (each half gets its own sequence number).
    fn broadcast_batch(&mut self, sink: u32, tuples: &[Tuple]) {
        if tuples.is_empty() || (self.subs.is_empty() && !self.ever_subscribed) {
            return;
        }
        let mut bytes = Vec::new();
        match protocol::write_results(&mut bytes, sink, Some(self.next_results_seq), tuples) {
            Ok(()) => {
                let seq = self.next_results_seq;
                self.next_results_seq += 1;
                self.shared.m.results_frames.inc();
                let frame = Arc::new(bytes);
                if self.replay_cap > 0 {
                    if self.replay.len() == self.replay_cap {
                        self.replay.pop_front();
                    }
                    self.replay.push_back((seq, frame.clone()));
                }
                let shared = self.shared.clone();
                let policy = self.policy;
                self.subs.retain(|sub| {
                    let keep = deliver(&shared, policy, sub.client, &sub.queue, frame.clone());
                    sub.depth.set(sub.queue.depth() as i64);
                    keep
                });
            }
            Err(WireError::FrameTooLarge(_)) if tuples.len() > 1 => {
                let mid = tuples.len() / 2;
                self.broadcast_batch(sink, &tuples[..mid]);
                self.broadcast_batch(sink, &tuples[mid..]);
            }
            Err(_) => {} // a single tuple too large for any frame: drop it
        }
    }

    fn broadcast_eos(&mut self) {
        for sub in self.subs.drain(..) {
            sub.queue.push_eos();
            sub.depth.set(sub.queue.depth() as i64);
            self.shared.m.eos.inc();
        }
    }
}

/// Push one frame into a subscriber's queue, recording the policy
/// outcome. Returns whether the subscriber should stay attached.
fn deliver(
    shared: &Arc<Shared>,
    policy: SubscriberPolicy,
    client: u64,
    queue: &Arc<SubQueue>,
    frame: Arc<Vec<u8>>,
) -> bool {
    match queue.push_frame(frame, policy, &shared.shutdown) {
        PushOutcome::Delivered => true,
        PushOutcome::Lagged { dropped } => {
            shared.record(ServerError::SubscriberLagged {
                client_id: client,
                dropped,
            });
            true
        }
        PushOutcome::Severed => {
            shared.record(ServerError::SubscriberDropped { client_id: client });
            false
        }
        PushOutcome::Gone => false,
    }
}

// ---------------------------------------------------------------------
// Handler threads
// ---------------------------------------------------------------------

/// What became of a publisher connection that stopped cleanly or not:
/// park (or immediately expire) its session so the merge slot either
/// waits for a `Resume` under the lease or degrades to finished.
///
/// Epoch-guarded: if the session was already resumed by a newer
/// connection (usurped), parked, expired, or finished, this is a no-op.
fn park_publisher(
    shared: &Arc<Shared>,
    client_id: u64,
    is_publisher: bool,
    finish_sent: bool,
    session: &Option<Arc<SessionEntry>>,
    my_epoch: u64,
    why: Option<ServerError>,
) {
    if let Some(e) = why {
        shared.record(e);
    }
    if !is_publisher || finish_sent {
        return;
    }
    let Some(entry) = session else {
        // Legacy sessionless publisher: finished immediately (the
        // pre-lease behavior — nothing to resume onto).
        let _ = shared
            .engine_tx
            .send(EngineMsg::Finished { session: client_id });
        return;
    };
    let mut st = entry.state.lock().expect("session state poisoned");
    if st.lifecycle != Lifecycle::Active || st.epoch != my_epoch {
        return;
    }
    if shared.finished.load(Ordering::SeqCst) {
        // EOS already flushed: the merge gate is closed for good; a
        // disconnect after that must not be allowed to re-open it (or
        // to count as a lost lease).
        st.lifecycle = Lifecycle::Finished;
        return;
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        st.lifecycle = Lifecycle::Expired;
        return;
    }
    if shared.lease.is_zero() {
        st.lifecycle = Lifecycle::Expired;
        drop(st);
        expire_session(shared, entry);
        return;
    }
    st.lifecycle = Lifecycle::Parked;
    let epoch = st.epoch;
    drop(st);
    shared.m.lease_parked.inc();
    shared.journal.record(TraceDetail::LeaseParked {
        session: entry.session_id,
    });
    let shared = shared.clone();
    let entry = entry.clone();
    std::thread::spawn(move || {
        std::thread::sleep(shared.lease);
        let mut st = entry.state.lock().expect("session state poisoned");
        if st.lifecycle == Lifecycle::Parked
            && st.epoch == epoch
            && !shared.shutdown.load(Ordering::SeqCst)
            && !shared.finished.load(Ordering::SeqCst)
        {
            st.lifecycle = Lifecycle::Expired;
            drop(st);
            expire_session(&shared, &entry);
        }
    });
}

/// The lease ran out (or was zero): escalate the earlier `Transient`
/// disconnect to a `Fatal` [`ServerError::LeaseExpired`] and release
/// the merge slot as finished so the query still reaches a clean EOS.
fn expire_session(shared: &Arc<Shared>, entry: &Arc<SessionEntry>) {
    shared.m.lease_expired.inc();
    shared.journal.record(TraceDetail::LeaseExpired {
        session: entry.session_id,
    });
    shared.record(ServerError::LeaseExpired {
        session_id: entry.session_id,
        lease_ms: shared.lease.as_millis().min(u64::MAX as u128) as u64,
    });
    let _ = shared.engine_tx.send(EngineMsg::Finished {
        session: entry.session_id,
    });
}

/// Serve one connection until it closes. Malformed frames are answered
/// with a typed error response and the connection is dropped (the length
/// prefix can no longer be trusted); a publisher that vanishes without
/// `Finish` has its session parked under the lease (see
/// [`park_publisher`]) so a `Resume` can pick the stream back up.
///
/// The socket's write half is shared (frame-at-a-time, under a mutex)
/// between this thread's replies and the subscription relay thread, so
/// a subscribed connection stays fully duplex — it can keep publishing
/// and issuing `stats`/`Finish` while results stream back.
fn handle_client(mut stream: TcpStream, client_id: u64, shared: Arc<Shared>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let reply_to = |resp: &Response| -> bool {
        let mut w = writer.lock().expect("connection writer poisoned");
        protocol::write_response(&mut *w, resp).is_ok()
    };
    let mut is_publisher = false;
    let mut subscribed = false;
    let mut finish_sent = false;
    // The resumable session this connection owns (every sequenced
    // publisher has one; `my_epoch` proves ownership against resumes).
    let mut session: Option<Arc<SessionEntry>> = None;
    let mut my_epoch = 0u64;
    loop {
        let req = match protocol::read_request(&mut stream) {
            Ok(req) => req,
            Err(WireError::Disconnected) | Err(WireError::Io(_)) => {
                let why =
                    (is_publisher && !finish_sent).then_some(ServerError::ClientDisconnected {
                        client_id,
                        role: "publisher",
                    });
                park_publisher(
                    &shared,
                    client_id,
                    is_publisher,
                    finish_sent,
                    &session,
                    my_epoch,
                    why,
                );
                return;
            }
            Err(error) => {
                shared.record(ServerError::Malformed {
                    client_id,
                    error: error.clone(),
                });
                reply_to(&Response::Error {
                    code: ErrorCode::Malformed,
                    message: error.to_string(),
                });
                park_publisher(
                    &shared,
                    client_id,
                    is_publisher,
                    finish_sent,
                    &session,
                    my_epoch,
                    None,
                );
                return;
            }
        };
        let reply = match req {
            Request::Hello { publisher } => {
                // Joining after EOS is allowed (the connection can still
                // query stats); only publishes are rejected then.
                if publisher
                    && !is_publisher
                    && shared
                        .engine_tx
                        .send(EngineMsg::Joined { session: client_id })
                        .is_ok()
                {
                    is_publisher = true;
                    session = Some(register_session(&shared, client_id));
                    my_epoch = 0;
                }
                Response::HelloAck {
                    client_id,
                    token: session.as_ref().map(|e| e.token),
                }
            }
            Request::Resume {
                token,
                last_acked_seq: _,
            } => {
                // The server's applied high-water mark is authoritative
                // (the client's view can only lag it); `last_acked_seq`
                // is advisory.
                if is_publisher {
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "connection already has a publisher session".into(),
                    }
                } else {
                    let entry = shared
                        .sessions
                        .lock()
                        .expect("session map poisoned")
                        .get(&token)
                        .cloned();
                    match entry {
                        None => Response::Error {
                            code: ErrorCode::Protocol,
                            message: "unknown session token".into(),
                        },
                        Some(entry) => {
                            let mut st = entry.state.lock().expect("session state poisoned");
                            match st.lifecycle {
                                Lifecycle::Expired => Response::Error {
                                    code: ErrorCode::Expired,
                                    message: "session lease expired; its slot was released".into(),
                                },
                                Lifecycle::Finished => {
                                    // Idempotent: a client retrying a
                                    // `Finish` whose ack it never saw may
                                    // resume a finished session; only
                                    // further publishes are refused.
                                    let last_seq = st.next_seq - 1;
                                    let session_id = entry.session_id;
                                    drop(st);
                                    is_publisher = true;
                                    finish_sent = true;
                                    session = Some(entry);
                                    shared.m.resumes.inc();
                                    Response::ResumeOk {
                                        session_id,
                                        last_seq,
                                    }
                                }
                                Lifecycle::Active | Lifecycle::Parked => {
                                    let was_parked = st.lifecycle == Lifecycle::Parked;
                                    // Usurp: the epoch bump turns the
                                    // previous owner's park (and any
                                    // pending lease timer) into a no-op.
                                    st.lifecycle = Lifecycle::Active;
                                    st.epoch += 1;
                                    my_epoch = st.epoch;
                                    let last_seq = st.next_seq - 1;
                                    let session_id = entry.session_id;
                                    drop(st);
                                    is_publisher = true;
                                    finish_sent = false;
                                    session = Some(entry);
                                    shared.m.resumes.inc();
                                    if was_parked {
                                        shared.m.lease_resumed.inc();
                                        shared.journal.record(TraceDetail::LeaseResumed {
                                            session: session_id,
                                        });
                                    }
                                    Response::ResumeOk {
                                        session_id,
                                        last_seq,
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Request::Publish {
                source,
                port,
                seq,
                tuples,
            } => match shared.sources.get(&source) {
                _ if shared.finished.load(Ordering::SeqCst) => Response::Error {
                    code: ErrorCode::Finished,
                    message: "query already finished; publish rejected".into(),
                },
                _ if finish_sent => Response::Error {
                    code: ErrorCode::Protocol,
                    message: "this connection already finished publishing".into(),
                },
                None => Response::Error {
                    code: ErrorCode::UnknownSource,
                    message: format!("unknown source `{source}`"),
                },
                Some(&(_, num_ports)) if port as usize >= num_ports => Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!(
                        "source `{source}` enters an operator with {num_ports} input port(s); \
                         port {port} is out of range"
                    ),
                },
                Some(&(node, _)) => {
                    // Publishing implies publisher role even without a
                    // prior Hello, so EOS accounting stays sound.
                    if !is_publisher {
                        if shared
                            .engine_tx
                            .send(EngineMsg::Joined { session: client_id })
                            .is_err()
                        {
                            reply_to(&Response::Error {
                                code: ErrorCode::Finished,
                                message: "query already finished".into(),
                            });
                            continue;
                        }
                        is_publisher = true;
                        session = Some(register_session(&shared, client_id));
                        my_epoch = 0;
                    }
                    let count = tuples.len() as u32;
                    let sid = session.as_ref().map(|e| e.session_id).unwrap_or(client_id);
                    match (&session, seq) {
                        (Some(entry), Some(seq)) => {
                            // Exactly-once: the state lock is held across
                            // the engine send, so a duplicate of this
                            // sequence racing in from a usurped
                            // connection observes the bumped `next_seq`
                            // only after this send is ordered — each
                            // sequence is applied to the merge once, in
                            // order, no matter how many connections
                            // replay it.
                            let mut st = entry.state.lock().expect("session state poisoned");
                            if st.lifecycle == Lifecycle::Finished {
                                Response::Error {
                                    code: ErrorCode::Protocol,
                                    message: "session already finished publishing".into(),
                                }
                            } else if seq < st.next_seq {
                                // Replay of an already-applied batch:
                                // re-ack, never re-apply.
                                shared.m.replay_publishes.inc();
                                Response::Ack { count }
                            } else if seq > st.next_seq {
                                Response::Error {
                                    code: ErrorCode::Protocol,
                                    message: format!(
                                        "publish sequence gap: got {seq}, expected {}",
                                        st.next_seq
                                    ),
                                }
                            } else {
                                match shared.engine_tx.send(EngineMsg::Publish {
                                    session: sid,
                                    node,
                                    port: port as usize,
                                    tuples,
                                }) {
                                    Ok(()) => {
                                        st.next_seq += 1;
                                        shared.m.publish_frames.inc();
                                        shared.m.publish_tuples.add(count as u64);
                                        Response::Ack { count }
                                    }
                                    Err(_) => Response::Error {
                                        code: ErrorCode::Finished,
                                        message: "query already finished; publish rejected".into(),
                                    },
                                }
                            }
                        }
                        _ => match shared.engine_tx.send(EngineMsg::Publish {
                            session: sid,
                            node,
                            port: port as usize,
                            tuples,
                        }) {
                            Ok(()) => {
                                shared.m.publish_frames.inc();
                                shared.m.publish_tuples.add(count as u64);
                                Response::Ack { count }
                            }
                            Err(_) => Response::Error {
                                code: ErrorCode::Finished,
                                message: "query already finished; publish rejected".into(),
                            },
                        },
                    }
                }
            },
            Request::Subscribe { from } => {
                if subscribed {
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "connection already has a subscription".into(),
                    }
                } else {
                    let queue = SubQueue::new(shared.subscriber_capacity);
                    if shared
                        .engine_tx
                        .send(EngineMsg::Subscribe {
                            client: client_id,
                            queue: queue.clone(),
                            from,
                        })
                        .is_err()
                    {
                        Response::Error {
                            code: ErrorCode::Finished,
                            message: "query already finished; no further results".into(),
                        }
                    } else {
                        subscribed = true;
                        shared.m.subscribes.inc();
                        let relay_writer = writer.clone();
                        let relay_shared = shared.clone();
                        std::thread::spawn(move || {
                            relay_results(queue, relay_writer, client_id, relay_shared)
                        });
                        Response::Ack { count: 0 }
                    }
                }
            }
            Request::Finish => {
                let sid = session.as_ref().map(|e| e.session_id).unwrap_or(client_id);
                let _ = shared.engine_tx.send(EngineMsg::Finished { session: sid });
                finish_sent = true;
                shared.m.finishes.inc();
                if let Some(entry) = &session {
                    entry
                        .state
                        .lock()
                        .expect("session state poisoned")
                        .lifecycle = Lifecycle::Finished;
                }
                Response::Ack { count: 0 }
            }
            Request::Heartbeat { watermark } => {
                // Only a live publisher's watermark means anything to
                // the merge; after Finish the publisher no longer gates
                // it, and a non-publisher never did.
                if !is_publisher {
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "heartbeat from a connection that never published".into(),
                    }
                } else if finish_sent {
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "heartbeat after finish".into(),
                    }
                } else {
                    let sid = session.as_ref().map(|e| e.session_id).unwrap_or(client_id);
                    let _ = shared.engine_tx.send(EngineMsg::Heartbeat {
                        session: sid,
                        watermark,
                    });
                    shared.m.heartbeats.inc();
                    Response::Ack { count: 0 }
                }
            }
            Request::Stats => Response::Stats(
                shared
                    .metrics
                    .iter()
                    .map(|(name, handle)| {
                        let m = handle.snapshot();
                        OpStat {
                            name: name.clone(),
                            tuples_in: m.tuples_in,
                            tuples_out: m.tuples_out,
                            busy_ns: m.busy.as_nanos().min(u64::MAX as u128) as u64,
                            calls: m.calls,
                        }
                    })
                    .collect(),
            ),
            Request::StatsV2 => Response::StatsV2 {
                metrics: shared.registry.snapshot(),
                text: shared.registry.render_text(),
            },
            Request::Explain => Response::Explain(PlanReport::assemble(&shared.telemetry)),
            Request::Health => Response::Health(shared.watchdog.evaluate()),
            Request::JournalTail { n } => Response::JournalTail {
                recorded: shared.journal.recorded(),
                events: shared.journal.recent(n as usize),
            },
        };
        if matches!(reply, Response::Ack { .. }) {
            shared.m.acks.inc();
        }
        if !reply_to(&reply) {
            let why = (is_publisher && !finish_sent).then_some(ServerError::ClientDisconnected {
                client_id,
                role: "publisher",
            });
            park_publisher(
                &shared,
                client_id,
                is_publisher,
                finish_sent,
                &session,
                my_epoch,
                why,
            );
            return;
        }
    }
}

/// Create and index the resumable session for a newly declared
/// publisher connection.
fn register_session(shared: &Arc<Shared>, client_id: u64) -> Arc<SessionEntry> {
    let token = session_token(client_id);
    let entry = Arc::new(SessionEntry {
        session_id: client_id,
        token,
        state: Mutex::new(SessionState {
            next_seq: 1,
            lifecycle: Lifecycle::Active,
            epoch: 0,
        }),
    });
    shared
        .sessions
        .lock()
        .expect("session map poisoned")
        .insert(token, entry.clone());
    entry
}

/// Relay one subscription's engine output onto the shared socket writer
/// until `Eos`, a policy severance, or the subscriber stops reading.
fn relay_results(
    queue: Arc<SubQueue>,
    writer: Arc<Mutex<TcpStream>>,
    client_id: u64,
    shared: Arc<Shared>,
) {
    let write = |resp: &Response| -> bool {
        let mut w = writer.lock().expect("connection writer poisoned");
        protocol::write_response(&mut *w, resp).is_ok()
    };
    loop {
        match queue.pop() {
            SubItem::Frame(bytes) => {
                let mut w = writer.lock().expect("connection writer poisoned");
                let gone = w.write_all(&bytes).and_then(|_| w.flush()).is_err();
                drop(w);
                if gone {
                    shared.record(ServerError::ClientDisconnected {
                        client_id,
                        role: "subscriber",
                    });
                    queue.sever();
                    return;
                }
            }
            SubItem::Gap { missed } => {
                if !write(&Response::Gap { missed }) {
                    shared.record(ServerError::ClientDisconnected {
                        client_id,
                        role: "subscriber",
                    });
                    queue.sever();
                    return;
                }
                shared.m.gap_frames.inc();
                shared.m.gap_missed.add(missed);
                shared.journal.record(TraceDetail::GapEmitted {
                    subscriber: client_id,
                    missed,
                });
            }
            SubItem::Lagged => {
                let _ = write(&Response::Error {
                    code: ErrorCode::Lagging,
                    message: "subscriber fell behind; subscription severed".into(),
                });
                return;
            }
            SubItem::Eos => {
                let _ = write(&Response::Eos);
                return;
            }
        }
    }
}
