//! The client↔server message layer on top of the wire codec: typed
//! requests and responses, each carried in one framed payload.
//!
//! A connection speaks a strict request/response discipline with one
//! exception: once a client sends [`Request::Subscribe`], the server may
//! push [`Response::Results`] and [`Response::Eos`] frames at any time
//! (the connection becomes a result stream). Clients therefore treat
//! `Results`/`Eos` as events that may arrive while awaiting any reply.

use crate::wire::{self, put_str, read_frame, write_frame, Reader, WireError, WireResult};
use std::io::{Read, Write};
use ustream_core::Tuple;
use ustream_runtime::{OpReport, PlanReport, StageReport};
use ustream_telemetry::{
    HealthCheck, HealthReport, HealthStatus, HistogramSnapshot, MetricSnapshot, MetricValue,
    SketchSnapshot, TraceDetail, TraceEvent,
};

// Frame kinds. Requests have the high bit clear, responses set.
const KIND_HELLO: u8 = 0x01;
const KIND_PUBLISH: u8 = 0x02;
const KIND_SUBSCRIBE: u8 = 0x03;
const KIND_FINISH: u8 = 0x04;
const KIND_STATS: u8 = 0x05;
const KIND_HEARTBEAT: u8 = 0x06;
const KIND_RESUME: u8 = 0x07;
const KIND_PUBLISH_SEQ: u8 = 0x08;
const KIND_STATS_V2: u8 = 0x09;
const KIND_EXPLAIN: u8 = 0x0A;
const KIND_HEALTH: u8 = 0x0B;
const KIND_JOURNAL_TAIL: u8 = 0x0C;
const KIND_HELLO_ACK: u8 = 0x81;
const KIND_ACK: u8 = 0x82;
const KIND_ERROR: u8 = 0x83;
const KIND_RESULTS: u8 = 0x84;
const KIND_EOS: u8 = 0x85;
const KIND_STATS_REPLY: u8 = 0x86;
const KIND_RESUME_OK: u8 = 0x87;
const KIND_GAP: u8 = 0x88;
const KIND_RESULTS_SEQ: u8 = 0x89;
const KIND_STATS_V2_REPLY: u8 = 0x8A;
const KIND_EXPLAIN_REPLY: u8 = 0x8B;
const KIND_HEALTH_REPLY: u8 = 0x8C;
const KIND_JOURNAL_REPLY: u8 = 0x8D;

// Metric-value tags inside a StatsV2 reply.
const METRIC_COUNTER: u8 = 0;
const METRIC_GAUGE: u8 = 1;
const METRIC_HISTOGRAM: u8 = 2;
const METRIC_SKETCH: u8 = 3;

/// What a client asks of the server.
#[derive(Debug, Clone)]
pub enum Request {
    /// First frame on every connection. Publishers participate in
    /// end-of-stream accounting; subscribers do not.
    Hello { publisher: bool },
    /// Append tuples to the named source stream of the served query.
    ///
    /// `seq` is the per-publisher sequence number (starting at 1) that
    /// makes replay after a reconnect exactly-once: the server acks but
    /// does not re-apply a sequence it has already seen. `None` is the
    /// legacy (version-1) unsequenced publish, which bypasses dedup.
    Publish {
        source: String,
        port: u16,
        seq: Option<u64>,
        tuples: Vec<Tuple>,
    },
    /// Turn this connection into a result stream: every sink batch the
    /// engine produces from now on is pushed as a [`Response::Results`]
    /// frame, terminated by [`Response::Eos`]. `from: Some(seq)` asks
    /// the server to replay its bounded ring of already-broadcast result
    /// frames starting at that sequence number (a reconnecting
    /// subscriber passes one past the last frame it saw); frames that
    /// have aged out of the ring are summarized by a [`Response::Gap`].
    Subscribe { from: Option<u64> },
    /// This publisher is done; when every publisher has finished, the
    /// server flushes the query and streams the final windows.
    Finish,
    /// A publisher's idle-but-alive promise: it will publish nothing
    /// with `ts < watermark`. Advances the server's k-way timestamp
    /// merge without data, so a quiet publisher does not stall results
    /// for everyone else. Publishers that may go idle should send this
    /// periodically with their current clock.
    Heartbeat { watermark: u64 },
    /// Snapshot the served query's per-operator metrics.
    Stats,
    /// Snapshot the server's full metrics registry: every engine and
    /// serving counter/gauge/histogram/sketch, typed, plus the
    /// Prometheus-style text exposition. The modern superset of
    /// [`Request::Stats`] (which remains served for old clients).
    StatsV2,
    /// EXPLAIN ANALYZE the served query: the static shard-plan topology
    /// annotated with live per-stage and per-operator counters
    /// ([`ustream_runtime::PlanReport`]).
    Explain,
    /// Evaluate the server's health watchdog now and return the typed
    /// report (independent of the periodic background evaluation, but
    /// sharing its transition state).
    Health,
    /// The newest `n` events from the server's structured event
    /// journal, oldest first.
    JournalTail { n: u32 },
    /// Re-attach to a parked publisher session after a disconnect. The
    /// `token` came from [`Response::HelloAck`]; `last_acked_seq` is the
    /// highest publish sequence the client saw acked. The server answers
    /// [`Response::ResumeOk`] with its own high-water mark so the client
    /// can drop acked-but-unconfirmed buffered publishes before
    /// replaying the rest.
    Resume { token: u64, last_acked_seq: u64 },
}

/// Error categories a server can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame could not be decoded.
    Malformed = 0,
    /// `Publish` named a source the query does not declare.
    UnknownSource = 1,
    /// The query already flushed; no more input is accepted.
    Finished = 2,
    /// The request was well-formed but illegal in this connection state.
    Protocol = 3,
    /// `Resume` presented a token whose lease already expired; the
    /// session's slot was released and cannot be re-attached.
    Expired = 4,
    /// A subscriber fell too far behind under the `Disconnect` policy
    /// and its result stream was severed.
    Lagging = 5,
}

impl ErrorCode {
    fn from_u8(tag: u8) -> WireResult<ErrorCode> {
        match tag {
            0 => Ok(ErrorCode::Malformed),
            1 => Ok(ErrorCode::UnknownSource),
            2 => Ok(ErrorCode::Finished),
            3 => Ok(ErrorCode::Protocol),
            4 => Ok(ErrorCode::Expired),
            5 => Ok(ErrorCode::Lagging),
            tag => Err(WireError::UnknownTag {
                what: "ErrorCode",
                tag,
            }),
        }
    }
}

/// One operator's metrics snapshot as served by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStat {
    pub name: String,
    pub tuples_in: u64,
    pub tuples_out: u64,
    /// Total busy time in nanoseconds.
    pub busy_ns: u64,
    pub calls: u64,
}

/// What the server answers.
#[derive(Debug, Clone)]
pub enum Response {
    /// Reply to `Hello`: the server-assigned connection id, plus (for
    /// publishers) a session token to present in [`Request::Resume`]
    /// after a disconnect. Version-1 servers omit the token.
    HelloAck { client_id: u64, token: Option<u64> },
    /// Generic success; `count` echoes how many tuples were accepted for
    /// a publish (0 otherwise).
    Ack { count: u32 },
    /// Typed failure — the server's answer to malformed or illegal
    /// requests (it never just drops the connection, and never panics).
    Error { code: ErrorCode, message: String },
    /// A batch of result tuples from the sink with the given node index.
    /// `seq` numbers broadcast frames consecutively from 0 so a
    /// reconnecting subscriber can ask for a replay; `None` is the
    /// legacy unsequenced form.
    Results {
        sink: u32,
        seq: Option<u64>,
        tuples: Vec<Tuple>,
    },
    /// End of stream: the query flushed; no further results will come.
    Eos,
    /// Reply to `Stats`.
    Stats(Vec<OpStat>),
    /// Reply to `StatsV2`: the registry snapshot (typed, sorted by
    /// family then labels) plus its text exposition rendered
    /// server-side, so a scraper can forward `text` verbatim while a
    /// programmatic client works the typed list.
    StatsV2 {
        metrics: Vec<MetricSnapshot>,
        text: String,
    },
    /// Reply to `Explain`: the live plan report.
    Explain(PlanReport),
    /// Reply to `Health`: the watchdog's fresh evaluation.
    Health(HealthReport),
    /// Reply to `JournalTail`: the retained tail (oldest first) plus
    /// the journal's lifetime event count, so a client can tell how
    /// much history the bounded ring has already evicted.
    JournalTail {
        recorded: u64,
        events: Vec<TraceEvent>,
    },
    /// Reply to `Resume`: the session is re-attached. `last_seq` is the
    /// highest publish sequence the server has applied — the client must
    /// drop buffered publishes at or below it and replay the rest.
    ResumeOk { session_id: u64, last_seq: u64 },
    /// Pushed to a subscriber when result frames were dropped between
    /// the previous frame it saw and the next one (the `DropOldest`
    /// policy, or a replay request older than the ring). `missed` counts
    /// the dropped frames.
    Gap { missed: u64 },
}

/// Serialize and frame one publish without taking ownership of the
/// tuples — the client hot path ([`crate::Client::publish`] takes a
/// borrowed slice; cloning heavyweight `Updf` payloads just to build an
/// owned [`Request`] would dominate the codec cost).
pub fn write_publish<W: Write>(
    w: &mut W,
    source: &str,
    port: u16,
    seq: Option<u64>,
    tuples: &[Tuple],
) -> WireResult<()> {
    let mut payload = Vec::new();
    let kind = match seq {
        Some(seq) => {
            payload.extend_from_slice(&seq.to_be_bytes());
            KIND_PUBLISH_SEQ
        }
        None => KIND_PUBLISH,
    };
    put_str(&mut payload, source);
    payload.extend_from_slice(&port.to_be_bytes());
    wire::encode_tuples(&mut payload, tuples);
    write_frame(w, kind, &payload)
}

/// Serialize and frame one request into `w`.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> WireResult<()> {
    let mut payload = Vec::new();
    let kind = match req {
        Request::Hello { publisher } => {
            payload.push(*publisher as u8);
            KIND_HELLO
        }
        Request::Publish {
            source,
            port,
            seq,
            tuples,
        } => return write_publish(w, source, *port, *seq, tuples),
        Request::Subscribe { from } => {
            // Length-discriminated: an empty payload is the version-1
            // subscribe; 8 bytes carry the replay-from sequence.
            if let Some(from) = from {
                payload.extend_from_slice(&from.to_be_bytes());
            }
            KIND_SUBSCRIBE
        }
        Request::Finish => KIND_FINISH,
        Request::Heartbeat { watermark } => {
            payload.extend_from_slice(&watermark.to_be_bytes());
            KIND_HEARTBEAT
        }
        Request::Stats => KIND_STATS,
        Request::StatsV2 => KIND_STATS_V2,
        Request::Explain => KIND_EXPLAIN,
        Request::Health => KIND_HEALTH,
        Request::JournalTail { n } => {
            payload.extend_from_slice(&n.to_be_bytes());
            KIND_JOURNAL_TAIL
        }
        Request::Resume {
            token,
            last_acked_seq,
        } => {
            payload.extend_from_slice(&token.to_be_bytes());
            payload.extend_from_slice(&last_acked_seq.to_be_bytes());
            KIND_RESUME
        }
    };
    write_frame(w, kind, &payload)
}

/// Read and decode one request frame from `r`.
pub fn read_request<R: Read>(r: &mut R) -> WireResult<Request> {
    let (kind, payload) = read_frame(r)?;
    let mut rd = Reader::new(&payload);
    let req = match kind {
        KIND_HELLO => Request::Hello {
            publisher: rd.u8()? != 0,
        },
        KIND_PUBLISH => {
            let source = rd.str()?;
            let port = rd.u16()?;
            let tuples = wire::decode_tuples(&mut rd)?;
            Request::Publish {
                source,
                port,
                seq: None,
                tuples,
            }
        }
        KIND_PUBLISH_SEQ => {
            let seq = rd.u64()?;
            let source = rd.str()?;
            let port = rd.u16()?;
            let tuples = wire::decode_tuples(&mut rd)?;
            Request::Publish {
                source,
                port,
                seq: Some(seq),
                tuples,
            }
        }
        KIND_SUBSCRIBE => Request::Subscribe {
            from: if rd.remaining() == 0 {
                None
            } else {
                Some(rd.u64()?)
            },
        },
        KIND_FINISH => Request::Finish,
        KIND_HEARTBEAT => Request::Heartbeat {
            watermark: rd.u64()?,
        },
        KIND_STATS => Request::Stats,
        KIND_STATS_V2 => Request::StatsV2,
        KIND_EXPLAIN => Request::Explain,
        KIND_HEALTH => Request::Health,
        KIND_JOURNAL_TAIL => Request::JournalTail { n: rd.u32()? },
        KIND_RESUME => Request::Resume {
            token: rd.u64()?,
            last_acked_seq: rd.u64()?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                what: "Request",
                tag,
            })
        }
    };
    rd.finish()?;
    Ok(req)
}

/// Append one registry metric: family, labels, then a tagged value.
fn put_metric(out: &mut Vec<u8>, m: &MetricSnapshot) {
    put_str(out, &m.family);
    out.extend_from_slice(&(m.labels.len() as u16).to_be_bytes());
    for (k, v) in &m.labels {
        put_str(out, k);
        put_str(out, v);
    }
    match &m.value {
        MetricValue::Counter(v) => {
            out.push(METRIC_COUNTER);
            out.extend_from_slice(&v.to_be_bytes());
        }
        MetricValue::Gauge(v) => {
            out.push(METRIC_GAUGE);
            out.extend_from_slice(&v.to_be_bytes());
        }
        MetricValue::Histogram(h) => {
            out.push(METRIC_HISTOGRAM);
            out.extend_from_slice(&(h.buckets.len() as u32).to_be_bytes());
            for (bound, count) in &h.buckets {
                out.extend_from_slice(&bound.to_be_bytes());
                out.extend_from_slice(&count.to_be_bytes());
            }
            out.extend_from_slice(&h.overflow.to_be_bytes());
            out.extend_from_slice(&h.sum.to_be_bytes());
            out.extend_from_slice(&h.count.to_be_bytes());
        }
        MetricValue::Sketch(s) => {
            out.push(METRIC_SKETCH);
            put_sketch(out, s);
        }
    }
}

/// Append one sketch snapshot: count + six `f64`s as raw bits (56
/// bytes, fixed).
fn put_sketch(out: &mut Vec<u8>, s: &SketchSnapshot) {
    out.extend_from_slice(&s.count.to_be_bytes());
    for v in [s.min, s.max, s.p50, s.p90, s.p95, s.p99] {
        out.extend_from_slice(&v.to_bits().to_be_bytes());
    }
}

fn read_sketch(rd: &mut Reader<'_>) -> WireResult<SketchSnapshot> {
    Ok(SketchSnapshot {
        count: rd.u64()?,
        min: rd.f64()?,
        max: rd.f64()?,
        p50: rd.f64()?,
        p90: rd.f64()?,
        p95: rd.f64()?,
        p99: rd.f64()?,
    })
}

fn read_metric(rd: &mut Reader<'_>) -> WireResult<MetricSnapshot> {
    let family = rd.str()?;
    let n_labels = rd.u16()? as usize;
    let mut labels = Vec::with_capacity(n_labels.min(64));
    for _ in 0..n_labels {
        labels.push((rd.str()?, rd.str()?));
    }
    let value = match rd.u8()? {
        METRIC_COUNTER => MetricValue::Counter(rd.u64()?),
        METRIC_GAUGE => MetricValue::Gauge(rd.i64()?),
        METRIC_HISTOGRAM => {
            let n = rd.u32()? as usize;
            let floor = n
                .checked_mul(16)
                .ok_or(WireError::InvalidPayload("length overflow"))?;
            if floor > rd.remaining() {
                return Err(WireError::Truncated {
                    needed: floor,
                    have: rd.remaining(),
                });
            }
            let mut buckets = Vec::with_capacity(n);
            for _ in 0..n {
                buckets.push((rd.u64()?, rd.u64()?));
            }
            MetricValue::Histogram(HistogramSnapshot {
                buckets,
                overflow: rd.u64()?,
                sum: rd.u64()?,
                count: rd.u64()?,
            })
        }
        METRIC_SKETCH => MetricValue::Sketch(read_sketch(rd)?),
        tag => {
            return Err(WireError::UnknownTag {
                what: "MetricValue",
                tag,
            })
        }
    };
    Ok(MetricSnapshot {
        family,
        labels,
        value,
    })
}

fn put_plan_report(out: &mut Vec<u8>, r: &PlanReport) {
    put_str(out, &r.topology);
    out.extend_from_slice(&r.batches_pushed.to_be_bytes());
    out.extend_from_slice(&r.tuples_pushed.to_be_bytes());
    out.extend_from_slice(&r.watermark_sealed.to_be_bytes());
    put_sketch(out, &r.lag_merged);
    out.extend_from_slice(&r.spans_recorded.to_be_bytes());
    out.extend_from_slice(&r.traces_sampled.to_be_bytes());
    out.extend_from_slice(&(r.stages.len() as u32).to_be_bytes());
    for s in &r.stages {
        out.extend_from_slice(&(s.stage as u32).to_be_bytes());
        out.extend_from_slice(&(s.routed.len() as u32).to_be_bytes());
        for &n in &s.routed {
            out.extend_from_slice(&n.to_be_bytes());
        }
        out.extend_from_slice(&s.exchange_forwarded.to_be_bytes());
        out.extend_from_slice(&s.eager_forwards.to_be_bytes());
        out.extend_from_slice(&s.interval_depth.to_be_bytes());
        out.extend_from_slice(&s.pool_depth.to_be_bytes());
        put_sketch(out, &s.lag);
        out.extend_from_slice(&s.skew.to_bits().to_be_bytes());
        out.extend_from_slice(&(s.ops.len() as u32).to_be_bytes());
        for op in &s.ops {
            put_str(out, &op.op);
            out.extend_from_slice(&(op.node as u32).to_be_bytes());
            out.extend_from_slice(&(op.stage as u32).to_be_bytes());
            out.extend_from_slice(&(op.shard as u32).to_be_bytes());
            for v in [
                op.tuples_in,
                op.tuples_out,
                op.batches,
                op.busy_ns,
                op.columnar_batches,
                op.row_batches,
            ] {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
    }
}

fn read_plan_report(rd: &mut Reader<'_>) -> WireResult<PlanReport> {
    let topology = rd.str()?;
    let batches_pushed = rd.u64()?;
    let tuples_pushed = rd.u64()?;
    let watermark_sealed = rd.i64()?;
    let lag_merged = read_sketch(rd)?;
    let spans_recorded = rd.u64()?;
    let traces_sampled = rd.u64()?;
    let n_stages = rd.u32()? as usize;
    // Each stage is at least 108 bytes (ids + counters + one sketch).
    let floor = n_stages
        .checked_mul(108)
        .ok_or(WireError::InvalidPayload("length overflow"))?;
    if floor > rd.remaining() {
        return Err(WireError::Truncated {
            needed: floor,
            have: rd.remaining(),
        });
    }
    let mut stages = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        let stage = rd.u32()? as usize;
        let n_shards = rd.u32()? as usize;
        let shard_floor = n_shards
            .checked_mul(8)
            .ok_or(WireError::InvalidPayload("length overflow"))?;
        if shard_floor > rd.remaining() {
            return Err(WireError::Truncated {
                needed: shard_floor,
                have: rd.remaining(),
            });
        }
        let mut routed = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            routed.push(rd.u64()?);
        }
        let exchange_forwarded = rd.u64()?;
        let eager_forwards = rd.u64()?;
        let interval_depth = rd.i64()?;
        let pool_depth = rd.i64()?;
        let lag = read_sketch(rd)?;
        let skew = rd.f64()?;
        let n_ops = rd.u32()? as usize;
        // Each op is at least 64 bytes (empty name + ids + 6 counters).
        let op_floor = n_ops
            .checked_mul(64)
            .ok_or(WireError::InvalidPayload("length overflow"))?;
        if op_floor > rd.remaining() {
            return Err(WireError::Truncated {
                needed: op_floor,
                have: rd.remaining(),
            });
        }
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            ops.push(OpReport {
                op: rd.str()?,
                node: rd.u32()? as usize,
                stage: rd.u32()? as usize,
                shard: rd.u32()? as usize,
                tuples_in: rd.u64()?,
                tuples_out: rd.u64()?,
                batches: rd.u64()?,
                busy_ns: rd.u64()?,
                columnar_batches: rd.u64()?,
                row_batches: rd.u64()?,
            });
        }
        stages.push(StageReport {
            stage,
            routed,
            exchange_forwarded,
            eager_forwards,
            interval_depth,
            pool_depth,
            lag,
            skew,
            ops,
        });
    }
    Ok(PlanReport {
        topology,
        stages,
        batches_pushed,
        tuples_pushed,
        watermark_sealed,
        lag_merged,
        spans_recorded,
        traces_sampled,
    })
}

fn health_status(tag: u8) -> WireResult<HealthStatus> {
    HealthStatus::from_u8(tag).ok_or(WireError::UnknownTag {
        what: "HealthStatus",
        tag,
    })
}

fn put_health_report(out: &mut Vec<u8>, r: &HealthReport) {
    out.push(r.status.as_u8());
    out.extend_from_slice(&r.evaluations.to_be_bytes());
    out.extend_from_slice(&(r.checks.len() as u32).to_be_bytes());
    for c in &r.checks {
        put_str(out, &c.name);
        out.push(c.status.as_u8());
        out.extend_from_slice(&c.value.to_bits().to_be_bytes());
        out.extend_from_slice(&c.threshold.to_bits().to_be_bytes());
        put_str(out, &c.detail);
    }
}

fn read_health_report(rd: &mut Reader<'_>) -> WireResult<HealthReport> {
    let status = health_status(rd.u8()?)?;
    let evaluations = rd.u64()?;
    let n = rd.u32()? as usize;
    // Each check is at least 25 bytes (two empty strings + status +
    // two f64s).
    let floor = n
        .checked_mul(25)
        .ok_or(WireError::InvalidPayload("length overflow"))?;
    if floor > rd.remaining() {
        return Err(WireError::Truncated {
            needed: floor,
            have: rd.remaining(),
        });
    }
    let mut checks = Vec::with_capacity(n);
    for _ in 0..n {
        checks.push(HealthCheck {
            name: rd.str()?,
            status: health_status(rd.u8()?)?,
            value: rd.f64()?,
            threshold: rd.f64()?,
            detail: rd.str()?,
        });
    }
    Ok(HealthReport {
        status,
        checks,
        evaluations,
    })
}

// Journal-event detail tags inside a JournalTail reply.
const EVENT_BATCH_PUMPED: u8 = 0;
const EVENT_WINDOW_SEALED: u8 = 1;
const EVENT_SHARD_ROUTED: u8 = 2;
const EVENT_EXCHANGE_FORWARDED: u8 = 3;
const EVENT_LEASE_PARKED: u8 = 4;
const EVENT_LEASE_RESUMED: u8 = 5;
const EVENT_LEASE_EXPIRED: u8 = 6;
const EVENT_GAP_EMITTED: u8 = 7;
const EVENT_HEALTH_CHANGED: u8 = 8;

fn put_journal_event(out: &mut Vec<u8>, e: &TraceEvent) {
    out.extend_from_slice(&e.seq.to_be_bytes());
    match &e.detail {
        TraceDetail::BatchPumped { node, port, tuples } => {
            out.push(EVENT_BATCH_PUMPED);
            out.extend_from_slice(&(*node as u32).to_be_bytes());
            out.extend_from_slice(&(*port as u32).to_be_bytes());
            out.extend_from_slice(&(*tuples as u64).to_be_bytes());
        }
        TraceDetail::WindowSealed {
            stage,
            watermark,
            released,
        } => {
            out.push(EVENT_WINDOW_SEALED);
            out.extend_from_slice(&(*stage as u32).to_be_bytes());
            out.extend_from_slice(&watermark.to_be_bytes());
            out.extend_from_slice(&(*released as u64).to_be_bytes());
        }
        TraceDetail::ShardRouted {
            stage,
            shard,
            tuples,
        } => {
            out.push(EVENT_SHARD_ROUTED);
            out.extend_from_slice(&(*stage as u32).to_be_bytes());
            out.extend_from_slice(&(*shard as u32).to_be_bytes());
            out.extend_from_slice(&(*tuples as u64).to_be_bytes());
        }
        TraceDetail::ExchangeForwarded { stage, tuples } => {
            out.push(EVENT_EXCHANGE_FORWARDED);
            out.extend_from_slice(&(*stage as u32).to_be_bytes());
            out.extend_from_slice(&(*tuples as u64).to_be_bytes());
        }
        TraceDetail::LeaseParked { session } => {
            out.push(EVENT_LEASE_PARKED);
            out.extend_from_slice(&session.to_be_bytes());
        }
        TraceDetail::LeaseResumed { session } => {
            out.push(EVENT_LEASE_RESUMED);
            out.extend_from_slice(&session.to_be_bytes());
        }
        TraceDetail::LeaseExpired { session } => {
            out.push(EVENT_LEASE_EXPIRED);
            out.extend_from_slice(&session.to_be_bytes());
        }
        TraceDetail::GapEmitted { subscriber, missed } => {
            out.push(EVENT_GAP_EMITTED);
            out.extend_from_slice(&subscriber.to_be_bytes());
            out.extend_from_slice(&missed.to_be_bytes());
        }
        TraceDetail::HealthChanged { from, to } => {
            out.push(EVENT_HEALTH_CHANGED);
            out.push(from.as_u8());
            out.push(to.as_u8());
        }
    }
}

fn read_journal_event(rd: &mut Reader<'_>) -> WireResult<TraceEvent> {
    let seq = rd.u64()?;
    let detail = match rd.u8()? {
        EVENT_BATCH_PUMPED => TraceDetail::BatchPumped {
            node: rd.u32()? as usize,
            port: rd.u32()? as usize,
            tuples: rd.u64()? as usize,
        },
        EVENT_WINDOW_SEALED => TraceDetail::WindowSealed {
            stage: rd.u32()? as usize,
            watermark: rd.u64()?,
            released: rd.u64()? as usize,
        },
        EVENT_SHARD_ROUTED => TraceDetail::ShardRouted {
            stage: rd.u32()? as usize,
            shard: rd.u32()? as usize,
            tuples: rd.u64()? as usize,
        },
        EVENT_EXCHANGE_FORWARDED => TraceDetail::ExchangeForwarded {
            stage: rd.u32()? as usize,
            tuples: rd.u64()? as usize,
        },
        EVENT_LEASE_PARKED => TraceDetail::LeaseParked { session: rd.u64()? },
        EVENT_LEASE_RESUMED => TraceDetail::LeaseResumed { session: rd.u64()? },
        EVENT_LEASE_EXPIRED => TraceDetail::LeaseExpired { session: rd.u64()? },
        EVENT_GAP_EMITTED => TraceDetail::GapEmitted {
            subscriber: rd.u64()?,
            missed: rd.u64()?,
        },
        EVENT_HEALTH_CHANGED => TraceDetail::HealthChanged {
            from: health_status(rd.u8()?)?,
            to: health_status(rd.u8()?)?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                what: "TraceDetail",
                tag,
            })
        }
    };
    Ok(TraceEvent { seq, detail })
}

/// Serialize and frame one `Results` push without taking ownership of
/// the tuples — the server broadcast path encodes each batch exactly
/// once and shares the bytes across subscribers.
pub fn write_results<W: Write>(
    w: &mut W,
    sink: u32,
    seq: Option<u64>,
    tuples: &[Tuple],
) -> WireResult<()> {
    let mut payload = Vec::new();
    let kind = match seq {
        Some(seq) => {
            payload.extend_from_slice(&seq.to_be_bytes());
            KIND_RESULTS_SEQ
        }
        None => KIND_RESULTS,
    };
    payload.extend_from_slice(&sink.to_be_bytes());
    wire::encode_tuples(&mut payload, tuples);
    write_frame(w, kind, &payload)
}

/// Serialize and frame one response into `w`.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> WireResult<()> {
    let mut payload = Vec::new();
    let kind = match resp {
        Response::HelloAck { client_id, token } => {
            // Length-discriminated: 8 bytes is the version-1 ack, 16
            // bytes append the publisher session token.
            payload.extend_from_slice(&client_id.to_be_bytes());
            if let Some(token) = token {
                payload.extend_from_slice(&token.to_be_bytes());
            }
            KIND_HELLO_ACK
        }
        Response::Ack { count } => {
            payload.extend_from_slice(&count.to_be_bytes());
            KIND_ACK
        }
        Response::Error { code, message } => {
            payload.push(*code as u8);
            put_str(&mut payload, message);
            KIND_ERROR
        }
        Response::Results { sink, seq, tuples } => return write_results(w, *sink, *seq, tuples),
        Response::Eos => KIND_EOS,
        Response::Stats(stats) => {
            payload.extend_from_slice(&(stats.len() as u32).to_be_bytes());
            for s in stats {
                put_str(&mut payload, &s.name);
                payload.extend_from_slice(&s.tuples_in.to_be_bytes());
                payload.extend_from_slice(&s.tuples_out.to_be_bytes());
                payload.extend_from_slice(&s.busy_ns.to_be_bytes());
                payload.extend_from_slice(&s.calls.to_be_bytes());
            }
            KIND_STATS_REPLY
        }
        Response::StatsV2 { metrics, text } => {
            payload.extend_from_slice(&(metrics.len() as u32).to_be_bytes());
            for m in metrics {
                put_metric(&mut payload, m);
            }
            put_str(&mut payload, text);
            KIND_STATS_V2_REPLY
        }
        Response::ResumeOk {
            session_id,
            last_seq,
        } => {
            payload.extend_from_slice(&session_id.to_be_bytes());
            payload.extend_from_slice(&last_seq.to_be_bytes());
            KIND_RESUME_OK
        }
        Response::Gap { missed } => {
            payload.extend_from_slice(&missed.to_be_bytes());
            KIND_GAP
        }
        Response::Explain(report) => {
            put_plan_report(&mut payload, report);
            KIND_EXPLAIN_REPLY
        }
        Response::Health(report) => {
            put_health_report(&mut payload, report);
            KIND_HEALTH_REPLY
        }
        Response::JournalTail { recorded, events } => {
            payload.extend_from_slice(&recorded.to_be_bytes());
            payload.extend_from_slice(&(events.len() as u32).to_be_bytes());
            for e in events {
                put_journal_event(&mut payload, e);
            }
            KIND_JOURNAL_REPLY
        }
    };
    write_frame(w, kind, &payload)
}

/// Read and decode one response frame from `r`.
pub fn read_response<R: Read>(r: &mut R) -> WireResult<Response> {
    let (kind, payload) = read_frame(r)?;
    let mut rd = Reader::new(&payload);
    let resp = match kind {
        KIND_HELLO_ACK => {
            let client_id = rd.u64()?;
            let token = if rd.remaining() == 0 {
                None
            } else {
                Some(rd.u64()?)
            };
            Response::HelloAck { client_id, token }
        }
        KIND_ACK => Response::Ack { count: rd.u32()? },
        KIND_ERROR => Response::Error {
            code: ErrorCode::from_u8(rd.u8()?)?,
            message: rd.str()?,
        },
        KIND_RESULTS => {
            let sink = rd.u32()?;
            let tuples = wire::decode_tuples(&mut rd)?;
            Response::Results {
                sink,
                seq: None,
                tuples,
            }
        }
        KIND_RESULTS_SEQ => {
            let seq = rd.u64()?;
            let sink = rd.u32()?;
            let tuples = wire::decode_tuples(&mut rd)?;
            Response::Results {
                sink,
                seq: Some(seq),
                tuples,
            }
        }
        KIND_EOS => Response::Eos,
        KIND_RESUME_OK => Response::ResumeOk {
            session_id: rd.u64()?,
            last_seq: rd.u64()?,
        },
        KIND_GAP => Response::Gap { missed: rd.u64()? },
        KIND_STATS_REPLY => {
            let n = rd.u32()? as usize;
            // Each stat is at least 36 bytes (empty name + 4 counters).
            let floor = n
                .checked_mul(36)
                .ok_or(WireError::InvalidPayload("length overflow"))?;
            if floor > rd.remaining() {
                return Err(WireError::Truncated {
                    needed: floor,
                    have: rd.remaining(),
                });
            }
            let mut stats = Vec::with_capacity(n);
            for _ in 0..n {
                stats.push(OpStat {
                    name: rd.str()?,
                    tuples_in: rd.u64()?,
                    tuples_out: rd.u64()?,
                    busy_ns: rd.u64()?,
                    calls: rd.u64()?,
                });
            }
            Response::Stats(stats)
        }
        KIND_STATS_V2_REPLY => {
            let n = rd.u32()? as usize;
            // Each metric is at least 15 bytes (empty family, no
            // labels, tag + the smallest 8-byte value).
            let floor = n
                .checked_mul(15)
                .ok_or(WireError::InvalidPayload("length overflow"))?;
            if floor > rd.remaining() {
                return Err(WireError::Truncated {
                    needed: floor,
                    have: rd.remaining(),
                });
            }
            let mut metrics = Vec::with_capacity(n);
            for _ in 0..n {
                metrics.push(read_metric(&mut rd)?);
            }
            let text = rd.str()?;
            Response::StatsV2 { metrics, text }
        }
        KIND_EXPLAIN_REPLY => Response::Explain(read_plan_report(&mut rd)?),
        KIND_HEALTH_REPLY => Response::Health(read_health_report(&mut rd)?),
        KIND_JOURNAL_REPLY => {
            let recorded = rd.u64()?;
            let n = rd.u32()? as usize;
            // Each event is at least 9 bytes (seq + detail tag).
            let floor = n
                .checked_mul(9)
                .ok_or(WireError::InvalidPayload("length overflow"))?;
            if floor > rd.remaining() {
                return Err(WireError::Truncated {
                    needed: floor,
                    have: rd.remaining(),
                });
            }
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(read_journal_event(&mut rd)?);
            }
            Response::JournalTail { recorded, events }
        }
        tag => {
            return Err(WireError::UnknownTag {
                what: "Response",
                tag,
            })
        }
    };
    rd.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ustream_core::schema::{DataType, Schema};
    use ustream_core::Value;

    fn schema() -> Arc<Schema> {
        Schema::builder().field("v", DataType::Int).build()
    }

    fn roundtrip_req(req: Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        read_request(&mut buf.as_slice()).unwrap()
    }

    fn roundtrip_resp(resp: Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        read_response(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        assert!(matches!(
            roundtrip_req(Request::Hello { publisher: true }),
            Request::Hello { publisher: true }
        ));
        assert!(matches!(
            roundtrip_req(Request::Subscribe { from: None }),
            Request::Subscribe { from: None }
        ));
        assert!(matches!(
            roundtrip_req(Request::Subscribe { from: Some(41) }),
            Request::Subscribe { from: Some(41) }
        ));
        assert!(matches!(roundtrip_req(Request::Finish), Request::Finish));
        assert!(matches!(roundtrip_req(Request::Stats), Request::Stats));
        assert!(matches!(
            roundtrip_req(Request::Heartbeat { watermark: 12345 }),
            Request::Heartbeat { watermark: 12345 }
        ));
        assert!(matches!(
            roundtrip_req(Request::Resume {
                token: 0xDEAD_BEEF,
                last_acked_seq: 7,
            }),
            Request::Resume {
                token: 0xDEAD_BEEF,
                last_acked_seq: 7,
            }
        ));
        let t = Tuple::new(schema(), vec![Value::Int(3)], 17);
        for seq in [None, Some(9u64)] {
            match roundtrip_req(Request::Publish {
                source: "in".into(),
                port: 1,
                seq,
                tuples: vec![t.clone()],
            }) {
                Request::Publish {
                    source,
                    port,
                    seq: back_seq,
                    tuples,
                } => {
                    assert_eq!(source, "in");
                    assert_eq!(port, 1);
                    assert_eq!(back_seq, seq);
                    assert_eq!(tuples[0].int("v").unwrap(), 3);
                    assert_eq!(tuples[0].lineage, t.lineage);
                }
                other => panic!("wrong decode: {other:?}"),
            }
        }
    }

    #[test]
    fn responses_roundtrip() {
        assert!(matches!(
            roundtrip_resp(Response::HelloAck {
                client_id: 9,
                token: None,
            }),
            Response::HelloAck {
                client_id: 9,
                token: None,
            }
        ));
        assert!(matches!(
            roundtrip_resp(Response::HelloAck {
                client_id: 9,
                token: Some(77),
            }),
            Response::HelloAck {
                client_id: 9,
                token: Some(77),
            }
        ));
        assert!(matches!(
            roundtrip_resp(Response::Ack { count: 4 }),
            Response::Ack { count: 4 }
        ));
        assert!(matches!(roundtrip_resp(Response::Eos), Response::Eos));
        assert!(matches!(
            roundtrip_resp(Response::ResumeOk {
                session_id: 5,
                last_seq: 12,
            }),
            Response::ResumeOk {
                session_id: 5,
                last_seq: 12,
            }
        ));
        assert!(matches!(
            roundtrip_resp(Response::Gap { missed: 3 }),
            Response::Gap { missed: 3 }
        ));
        match roundtrip_resp(Response::Error {
            code: ErrorCode::UnknownSource,
            message: "no such stream".into(),
        }) {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::UnknownSource);
                assert_eq!(message, "no such stream");
            }
            other => panic!("wrong decode: {other:?}"),
        }
        let stats = vec![OpStat {
            name: "select".into(),
            tuples_in: 10,
            tuples_out: 7,
            busy_ns: 1234,
            calls: 10,
        }];
        match roundtrip_resp(Response::Stats(stats.clone())) {
            Response::Stats(back) => assert_eq!(back, stats),
            other => panic!("wrong decode: {other:?}"),
        }
        let t = Tuple::new(schema(), vec![Value::Int(1)], 2);
        for seq in [None, Some(6u64)] {
            match roundtrip_resp(Response::Results {
                sink: 3,
                seq,
                tuples: vec![t.clone()],
            }) {
                Response::Results {
                    sink,
                    seq: back_seq,
                    tuples,
                } => {
                    assert_eq!(sink, 3);
                    assert_eq!(back_seq, seq);
                    assert_eq!(tuples.len(), 1);
                }
                other => panic!("wrong decode: {other:?}"),
            }
        }
    }

    #[test]
    fn stats_v2_roundtrips_every_metric_kind() {
        assert!(matches!(roundtrip_req(Request::StatsV2), Request::StatsV2));
        let metrics = vec![
            MetricSnapshot {
                family: "engine_tuples_pushed_total".into(),
                labels: vec![],
                value: MetricValue::Counter(42),
            },
            MetricSnapshot {
                family: "engine_stage_pool_depth".into(),
                labels: vec![("stage".into(), "1".into())],
                value: MetricValue::Gauge(-3),
            },
            MetricSnapshot {
                family: "op_latency_ns".into(),
                labels: vec![("op".into(), "select".into()), ("shard".into(), "0".into())],
                value: MetricValue::Histogram(HistogramSnapshot {
                    buckets: vec![(1_000, 5), (10_000, 2)],
                    overflow: 1,
                    sum: 123_456,
                    count: 8,
                }),
            },
            MetricSnapshot {
                family: "engine_watermark_lag".into(),
                labels: vec![("stage".into(), "0".into())],
                value: MetricValue::Sketch(SketchSnapshot {
                    count: 100,
                    min: 0.5,
                    max: 99.5,
                    p50: 48.0,
                    p90: 90.25,
                    p95: 95.0,
                    p99: 99.0,
                }),
            },
        ];
        let text = "# TYPE engine_tuples_pushed_total counter\n\
                    engine_tuples_pushed_total 42\n";
        match roundtrip_resp(Response::StatsV2 {
            metrics: metrics.clone(),
            text: text.into(),
        }) {
            Response::StatsV2 {
                metrics: back,
                text: back_text,
            } => {
                assert_eq!(back, metrics);
                assert_eq!(back_text, text);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    fn sample_sketch() -> SketchSnapshot {
        SketchSnapshot {
            count: 12,
            min: 1.0,
            max: 240.0,
            p50: 40.0,
            p90: 200.5,
            p95: 220.0,
            p99: 239.0,
        }
    }

    #[test]
    fn explain_roundtrips_the_full_report() {
        assert!(matches!(roundtrip_req(Request::Explain), Request::Explain));
        let report = PlanReport {
            topology: "stage 0: shard by key(k)\n  exchange -> stage 1\n".into(),
            stages: vec![
                StageReport {
                    stage: 0,
                    routed: vec![500, 480, 20],
                    exchange_forwarded: 0,
                    eager_forwards: 0,
                    interval_depth: 0,
                    pool_depth: 0,
                    lag: sample_sketch(),
                    skew: 1.5,
                    ops: vec![OpReport {
                        op: "select".into(),
                        node: 1,
                        stage: 0,
                        shard: 2,
                        tuples_in: 1000,
                        tuples_out: 700,
                        batches: 4,
                        busy_ns: 98_765,
                        columnar_batches: 3,
                        row_batches: 1,
                    }],
                },
                StageReport {
                    stage: 1,
                    routed: vec![],
                    exchange_forwarded: 700,
                    eager_forwards: 9,
                    interval_depth: 3,
                    pool_depth: -2,
                    lag: SketchSnapshot {
                        count: 0,
                        min: 0.0,
                        max: 0.0,
                        p50: 0.0,
                        p90: 0.0,
                        p95: 0.0,
                        p99: 0.0,
                    },
                    skew: 0.0,
                    ops: vec![],
                },
            ],
            batches_pushed: 9,
            tuples_pushed: 1000,
            watermark_sealed: 170,
            lag_merged: sample_sketch(),
            spans_recorded: 31,
            traces_sampled: 3,
        };
        match roundtrip_resp(Response::Explain(report.clone())) {
            Response::Explain(back) => assert_eq!(back, report),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn health_roundtrips_every_status() {
        assert!(matches!(roundtrip_req(Request::Health), Request::Health));
        let report = HealthReport {
            status: HealthStatus::Critical,
            checks: vec![
                HealthCheck {
                    name: "lag_slo".into(),
                    status: HealthStatus::Degraded,
                    value: 120.0,
                    threshold: 100.0,
                    detail: "stage 1 watermark-lag p99 over SLO".into(),
                },
                HealthCheck {
                    name: "stuck_stage".into(),
                    status: HealthStatus::Critical,
                    value: 5.0,
                    threshold: 0.0,
                    detail: "pool depth 5 with no seal progress".into(),
                },
            ],
            evaluations: 17,
        };
        match roundtrip_resp(Response::Health(report.clone())) {
            Response::Health(back) => assert_eq!(back, report),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn journal_tail_roundtrips_every_detail_variant() {
        match roundtrip_req(Request::JournalTail { n: 64 }) {
            Request::JournalTail { n } => assert_eq!(n, 64),
            other => panic!("wrong decode: {other:?}"),
        }
        let details = vec![
            TraceDetail::BatchPumped {
                node: 1,
                port: 0,
                tuples: 128,
            },
            TraceDetail::WindowSealed {
                stage: 1,
                watermark: 500,
                released: 42,
            },
            TraceDetail::ShardRouted {
                stage: 0,
                shard: 3,
                tuples: 77,
            },
            TraceDetail::ExchangeForwarded {
                stage: 1,
                tuples: 9,
            },
            TraceDetail::LeaseParked { session: 11 },
            TraceDetail::LeaseResumed { session: 11 },
            TraceDetail::LeaseExpired { session: 12 },
            TraceDetail::GapEmitted {
                subscriber: 4,
                missed: 6,
            },
            TraceDetail::HealthChanged {
                from: HealthStatus::Healthy,
                to: HealthStatus::Degraded,
            },
        ];
        let events: Vec<TraceEvent> = details
            .into_iter()
            .enumerate()
            .map(|(i, detail)| TraceEvent {
                seq: 100 + i as u64,
                detail,
            })
            .collect();
        match roundtrip_resp(Response::JournalTail {
            recorded: 1000,
            events: events.clone(),
        }) {
            Response::JournalTail {
                recorded,
                events: back,
            } => {
                assert_eq!(recorded, 1000);
                assert_eq!(back, events);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn oversized_counts_are_length_errors_not_allocations() {
        // Each hostile frame claims far more elements than its payload
        // could hold; the decoder must fail on the length floor before
        // reserving anything.
        let cases: [(u8, Vec<u8>); 3] = [
            // Explain: valid prefix, then stage count u32::MAX.
            (KIND_EXPLAIN_REPLY, {
                let mut p = Vec::new();
                put_str(&mut p, "");
                p.extend_from_slice(&[0u8; 24]); // batches/tuples/sealed
                put_sketch(&mut p, &sample_sketch());
                p.extend_from_slice(&[0u8; 16]); // spans/sampled
                p.extend_from_slice(&u32::MAX.to_be_bytes());
                p
            }),
            // Health: status + evaluations, then check count u32::MAX.
            (KIND_HEALTH_REPLY, {
                let mut p = vec![0u8];
                p.extend_from_slice(&[0u8; 8]);
                p.extend_from_slice(&u32::MAX.to_be_bytes());
                p
            }),
            // JournalTail: recorded, then event count u32::MAX.
            (KIND_JOURNAL_REPLY, {
                let mut p = Vec::new();
                p.extend_from_slice(&[0u8; 8]);
                p.extend_from_slice(&u32::MAX.to_be_bytes());
                p
            }),
        ];
        for (kind, payload) in cases {
            let mut buf = Vec::new();
            write_frame(&mut buf, kind, &payload).unwrap();
            assert!(
                matches!(
                    read_response(&mut buf.as_slice()),
                    Err(WireError::Truncated { .. })
                ),
                "kind {kind:#x} should truncate"
            );
        }
    }

    #[test]
    fn unknown_journal_detail_tag_is_typed() {
        let mut p = Vec::new();
        p.extend_from_slice(&[0u8; 8]); // recorded
        p.extend_from_slice(&1u32.to_be_bytes());
        p.extend_from_slice(&[0u8; 8]); // event seq
        p.push(0xEE); // bogus detail tag
        let mut buf = Vec::new();
        write_frame(&mut buf, KIND_JOURNAL_REPLY, &p).unwrap();
        assert!(matches!(
            read_response(&mut buf.as_slice()),
            Err(WireError::UnknownTag {
                what: "TraceDetail",
                tag: 0xEE,
            })
        ));
    }

    #[test]
    fn request_response_kinds_disjoint() {
        // A response frame fed to the request decoder is a typed error.
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Eos).unwrap();
        assert!(matches!(
            read_request(&mut buf.as_slice()),
            Err(WireError::UnknownTag {
                what: "Request",
                ..
            })
        ));
    }
}
