//! # ustream-server — the continuous-query ingest server
//!
//! The serving subsystem the paper's architecture implies but the
//! engine never had: until now every entry point took a pre-materialized
//! `Vec<Tuple>` in-process. This crate lets uncertain tuples arrive
//! from *outside* the process and results leave it *while the query
//! runs* — the shape edge deployments of this line of work assume
//! (many remote producers pushing uncertain streams at a resident
//! engine that streams answers back).
//!
//! Three layers:
//!
//! - [`wire`] — a versioned, length-prefixed binary codec for
//!   [`ustream_core::Value`], every [`ustream_core::Updf`] variant,
//!   [`ustream_core::Tuple`] (values + timestamp + existence +
//!   lineage), and batches. Decoding untrusted bytes yields typed
//!   [`wire::WireError`]s — never a panic, never an unbounded
//!   allocation — and encode→decode→encode is byte-identical.
//! - [`server`] — a multi-client TCP server (`std::net` threads; the
//!   deployment image has no async runtime) driving one incremental
//!   [`ustream_runtime::session::ShardedSession`]: per-client framed
//!   readers feed bounded channels (backpressure), a per-query engine
//!   thread merges publisher streams in timestamp order and pushes
//!   batches through the session — single-pipeline for
//!   [`server::ServedQuery::new`], key-partitioned across the
//!   session's worker pool for [`server::ServedQuery::sharded`] — and
//!   a subscription protocol streams sink output to any number of
//!   subscribers as windows close.
//! - [`client`] — [`client::Client`] with `publish` / `subscribe` /
//!   `finish` (EOS) / `heartbeat` (idle-publisher watermark) / `stats`
//!   (engine [`ustream_core::OpMetrics`] snapshots over the wire).
//!
//! See the repo README's *Serving* section for the frame format table
//! and `examples/serve_quickstart.rs` for an end-to-end loopback run.

pub mod chaos;
pub mod client;
pub mod protocol;
pub mod server;
pub mod wire;

pub use chaos::{ChaosProxy, Fault};
pub use client::{Client, ClientConfig, ClientError, Event};
pub use protocol::{ErrorCode, OpStat, Request, Response};
pub use server::{
    ServeError, ServedQuery, Server, ServerConfig, ServerError, ServerHandle, Severity,
    SubscriberPolicy,
};
pub use wire::{WireError, WireResult, MAX_FRAME_LEN, MIN_WIRE_VERSION, WIRE_VERSION};
