//! The client library: a small synchronous API over the framed
//! protocol. One [`Client`] wraps one TCP connection.
//!
//! Publishers: [`Client::publisher`] → [`Client::publish`]… →
//! [`Client::finish`]. Each publish blocks until the server
//! acknowledges, so engine backpressure (a full inbox) reaches the
//! producer as publish latency rather than unbounded buffering.
//!
//! Subscribers: [`Client::subscriber`] → [`Client::next_event`] until
//! [`Event::Eos`]. Result frames that arrive while a different reply is
//! awaited are queued, so a connection may publish and subscribe at
//! once.

use crate::protocol::{self, ErrorCode, OpStat, Request, Response};
use crate::wire::WireError;
use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use ustream_core::Tuple;

/// Client-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server { code: ErrorCode, message: String },
    /// The server answered with a frame that makes no sense here.
    UnexpectedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "transport: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected server response: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e.kind()))
    }
}

pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A streamed server event delivered to subscribers.
#[derive(Debug, Clone)]
pub enum Event {
    /// A batch of result tuples from the sink with node index `sink`.
    Results { sink: usize, tuples: Vec<Tuple> },
    /// The query flushed; no further results will arrive.
    Eos,
}

/// One connection to an ingest server.
pub struct Client {
    stream: TcpStream,
    client_id: u64,
    /// Result/Eos frames that arrived while awaiting another reply.
    queued: VecDeque<Event>,
}

impl Client {
    /// Connect in the publisher role: this connection participates in
    /// end-of-stream accounting and must eventually [`Client::finish`].
    pub fn publisher(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        Client::connect(addr, true)
    }

    /// Connect in the subscriber role and subscribe to the query's sink
    /// streams; read with [`Client::next_event`].
    pub fn subscriber(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let mut c = Client::connect(addr, false)?;
        c.subscribe()?;
        Ok(c)
    }

    fn connect(addr: impl ToSocketAddrs, publisher: bool) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        let mut c = Client {
            stream,
            client_id: 0,
            queued: VecDeque::new(),
        };
        protocol::write_request(&mut c.stream, &Request::Hello { publisher })?;
        match c.await_reply()? {
            Response::HelloAck { client_id } => {
                c.client_id = client_id;
                Ok(c)
            }
            other => Err(unexpected(other)),
        }
    }

    /// The server-assigned connection id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Bound how long reads may block (tests use this to fail instead of
    /// hanging when a server drops the ball). `None` blocks forever.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> ClientResult<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Append tuples to the named source stream (input `port` of the
    /// source's entry operator; 0 for unary entries). Blocks until the
    /// server acknowledges; returns the accepted tuple count.
    pub fn publish(&mut self, source: &str, port: u16, tuples: &[Tuple]) -> ClientResult<usize> {
        protocol::write_publish(&mut self.stream, source, port, tuples)?;
        match self.await_reply()? {
            Response::Ack { count } => Ok(count as usize),
            other => Err(unexpected(other)),
        }
    }

    /// Subscribe this connection to the query's sink streams.
    pub fn subscribe(&mut self) -> ClientResult<()> {
        protocol::write_request(&mut self.stream, &Request::Subscribe)?;
        match self.await_reply()? {
            Response::Ack { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Declare end of stream for this publisher. Once every publisher
    /// has finished, the server flushes the query and streams the final
    /// windows to subscribers.
    pub fn finish(&mut self) -> ClientResult<()> {
        protocol::write_request(&mut self.stream, &Request::Finish)?;
        match self.await_reply()? {
            Response::Ack { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Promise the server that this publisher will publish nothing
    /// older than `watermark` — the idle-but-alive signal. A publisher
    /// that goes quiet while others keep publishing stalls the server's
    /// timestamp merge (results are gated on every unfinished
    /// publisher's progress); sending a heartbeat with the current
    /// event-time clock, periodically while idle, keeps results
    /// flowing. Publishing a tuple older than an advertised watermark
    /// afterwards violates the ts-ordered stream contract, exactly as
    /// publishing out of order would.
    pub fn heartbeat(&mut self, watermark: u64) -> ClientResult<()> {
        protocol::write_request(&mut self.stream, &Request::Heartbeat { watermark })?;
        match self.await_reply()? {
            Response::Ack { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot the served query's registered per-operator metrics.
    pub fn stats(&mut self) -> ClientResult<Vec<OpStat>> {
        protocol::write_request(&mut self.stream, &Request::Stats)?;
        match self.await_reply()? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Next streamed event (subscribers). Blocks until a result batch or
    /// EOS arrives.
    pub fn next_event(&mut self) -> ClientResult<Event> {
        if let Some(ev) = self.queued.pop_front() {
            return Ok(ev);
        }
        match protocol::read_response(&mut self.stream)? {
            Response::Results { sink, tuples } => Ok(Event::Results {
                sink: sink as usize,
                tuples,
            }),
            Response::Eos => Ok(Event::Eos),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(unexpected(other)),
        }
    }

    /// Collect streamed results until EOS, concatenated per sink index
    /// in arrival order — the convenient shape for tests and examples.
    pub fn collect_until_eos(&mut self) -> ClientResult<Vec<(usize, Vec<Tuple>)>> {
        let mut per_sink: Vec<(usize, Vec<Tuple>)> = Vec::new();
        loop {
            match self.next_event()? {
                Event::Results { sink, tuples } => {
                    match per_sink.iter_mut().find(|(s, _)| *s == sink) {
                        Some((_, bucket)) => bucket.extend(tuples),
                        None => per_sink.push((sink, tuples)),
                    }
                }
                Event::Eos => return Ok(per_sink),
            }
        }
    }

    /// Read frames until a non-stream reply arrives, queueing any
    /// `Results`/`Eos` pushed in between.
    fn await_reply(&mut self) -> ClientResult<Response> {
        loop {
            match protocol::read_response(&mut self.stream)? {
                Response::Results { sink, tuples } => self.queued.push_back(Event::Results {
                    sink: sink as usize,
                    tuples,
                }),
                Response::Eos => self.queued.push_back(Event::Eos),
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                reply => return Ok(reply),
            }
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::UnexpectedResponse(format!("{resp:?}"))
}
