//! The client library: a small synchronous API over the framed
//! protocol. One [`Client`] wraps one TCP connection.
//!
//! Publishers: [`Client::publisher`] → [`Client::publish`]… →
//! [`Client::finish`]. Each publish blocks until the server
//! acknowledges, so engine backpressure (a full inbox) reaches the
//! producer as publish latency rather than unbounded buffering.
//!
//! Subscribers: [`Client::subscriber`] → [`Client::next_event`] until
//! [`Event::Eos`]. Result frames that arrive while a different reply is
//! awaited are queued, so a connection may publish and subscribe at
//! once.
//!
//! ## Fault tolerance
//!
//! With [`ClientConfig::reconnect`] (the default), a broken connection
//! heals transparently: publishes are buffered until acked, and on a
//! connection loss the client redials with capped exponential backoff +
//! jitter (deterministic when [`ClientConfig::backoff_seed`] is set),
//! presents its session token via `Resume`, drops whatever the server
//! already applied (the `ResumeOk` high-water mark), and replays the
//! rest — the per-publish sequence numbers make the replay exactly-once
//! on the server. Subscribers resubscribe with `from:` the next result
//! sequence they expect, so the server's replay ring fills the hole (or
//! reports it as [`Event::Gap`]). Read timeouts do *not* trigger
//! reconnection — only genuine connection losses do.
//!
//! ## Auto-heartbeat
//!
//! An idle-but-alive publisher stalls the server's k-way merge: results
//! are gated on every unfinished publisher's watermark, so one quiet
//! connection delays every subscriber's windows. Publisher connections
//! therefore run a background heartbeat timer by default: the client
//! tracks the publisher's event-time clock (the highest timestamp it
//! has published, ratcheted further by [`Client::advance_watermark`])
//! and the timer advertises it to the server whenever it advances — the
//! application no longer has to remember to call [`Client::heartbeat`]
//! on a schedule of its own. The timer never *invents* time: it only
//! repeats what this process has already published or explicitly
//! promised, so synthetic-timestamp streams are never corrupted by a
//! wall clock. Opt out with [`Client::publisher_manual`] when the
//! application owns all watermark advertisement.

use crate::protocol::{self, ErrorCode, OpStat, Request, Response};
use crate::wire::WireError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, TryLockError, Weak};
use std::time::Duration;
use ustream_core::Tuple;
use ustream_runtime::PlanReport;
use ustream_telemetry::{HealthReport, MetricSnapshot, TraceEvent};

/// How often the background timer checks whether the publisher's clock
/// advanced past the last advertised watermark.
const HEARTBEAT_TICK: Duration = Duration::from_millis(50);

/// Connection-robustness knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Bound on each dial attempt.
    pub connect_timeout: Duration,
    /// Socket read timeout (`None` blocks forever). A read timing out
    /// surfaces as a typed error; it does not trigger reconnection.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout (`None` blocks forever).
    pub write_timeout: Option<Duration>,
    /// Heal broken connections transparently (resume + replay for
    /// publishers, resubscribe-from for subscribers).
    pub reconnect: bool,
    /// Dial attempts per reestablishment before giving up and surfacing
    /// the underlying error.
    pub max_retries: u32,
    /// First backoff delay; attempt `n` waits `base << n`, jittered.
    pub backoff_base: Duration,
    /// Ceiling on the backoff delay.
    pub backoff_cap: Duration,
    /// Seed for the backoff jitter; `None` derives one from the clock.
    /// Set it for deterministic retry timing in tests.
    pub backoff_seed: Option<u64>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            reconnect: true,
            max_retries: 8,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            backoff_seed: None,
        }
    }
}

/// Client-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server { code: ErrorCode, message: String },
    /// The server answered with a frame that makes no sense here.
    UnexpectedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "transport: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected server response: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e.kind()))
    }
}

pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// Does this error mean the connection itself is gone (as opposed to a
/// timeout, a typed server refusal, or a codec problem)? Only these
/// trigger auto-reconnection.
fn is_connection_loss(e: &ClientError) -> bool {
    match e {
        ClientError::Wire(WireError::Disconnected) => true,
        ClientError::Wire(WireError::Io(kind)) => !matches!(
            kind,
            std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::Interrupted
        ),
        _ => false,
    }
}

/// A streamed server event delivered to subscribers.
#[derive(Debug, Clone)]
pub enum Event {
    /// A batch of result tuples from the sink with node index `sink`.
    Results { sink: usize, tuples: Vec<Tuple> },
    /// `missed` result frames were dropped before the next one (the
    /// server shed them under `DropOldest`, or a reconnect outran the
    /// replay ring).
    Gap { missed: u64 },
    /// The query flushed; no further results will arrive.
    Eos,
}

/// One publish not yet acknowledged: the encoded frame is kept verbatim
/// so a replay after reconnection is byte-identical.
struct PendingPublish {
    seq: u64,
    count: u32,
    frame: Vec<u8>,
}

/// The connection state every request/reply cycle needs: holding the
/// lock for the whole cycle keeps the strict request/response discipline
/// intact when the heartbeat timer shares the stream with the
/// application thread (each party's reply can never be consumed by the
/// other).
struct Conn {
    stream: TcpStream,
    /// Result/Eos frames that arrived while awaiting another reply.
    queued: VecDeque<Event>,
    /// Resolved server addresses, for redialing.
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    publisher: bool,
    /// The resumable-session credential from `HelloAck`.
    token: Option<u64>,
    /// Next publish sequence number (sequences start at 1).
    next_seq: u64,
    /// Highest sequence the server has acknowledged.
    last_acked: u64,
    /// Publishes written but not yet acked, oldest first.
    unacked: VecDeque<PendingPublish>,
    subscribed: bool,
    /// Next result-frame sequence this subscriber expects — the `from`
    /// of a resubscribe.
    results_from: u64,
    /// Backoff jitter source.
    rng: StdRng,
}

/// Shared state between a publisher [`Client`] and its heartbeat timer.
struct HeartbeatState {
    /// The publisher's event-time clock: the highest timestamp published
    /// on this connection, ratcheted further by
    /// [`Client::advance_watermark`]. Zero means "no clock yet" — the
    /// timer stays silent.
    clock: AtomicU64,
    /// Highest watermark already advertised (by the timer or a manual
    /// [`Client::heartbeat`]); the timer only speaks when the clock
    /// moves past this.
    advertised: AtomicU64,
    /// Set by [`Client::finish`] (and drop) before the Finish frame goes
    /// out, so the timer never heartbeats a finished publisher.
    stop: AtomicBool,
}

/// One connection to an ingest server.
pub struct Client {
    conn: Arc<Mutex<Conn>>,
    client_id: u64,
    /// Present on publisher connections with the background timer.
    heartbeat: Option<Arc<HeartbeatState>>,
}

impl Client {
    /// Connect in the publisher role: this connection participates in
    /// end-of-stream accounting and must eventually [`Client::finish`].
    /// Runs the background heartbeat timer (see the module docs); use
    /// [`Client::publisher_manual`] to opt out.
    pub fn publisher(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        Client::publisher_with(addr, ClientConfig::default())
    }

    /// [`Client::publisher`] with explicit robustness knobs.
    pub fn publisher_with(addr: impl ToSocketAddrs, config: ClientConfig) -> ClientResult<Client> {
        let mut c = Client::connect(addr, true, config)?;
        let state = Arc::new(HeartbeatState {
            clock: AtomicU64::new(0),
            advertised: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let weak = Arc::downgrade(&c.conn);
        let thread_state = state.clone();
        std::thread::spawn(move || heartbeat_loop(weak, thread_state));
        c.heartbeat = Some(state);
        Ok(c)
    }

    /// Connect in the publisher role without the background heartbeat
    /// timer: the application owns all watermark advertisement via
    /// [`Client::heartbeat`].
    pub fn publisher_manual(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        Client::connect(addr, true, ClientConfig::default())
    }

    /// [`Client::publisher_manual`] with explicit robustness knobs.
    pub fn publisher_manual_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> ClientResult<Client> {
        Client::connect(addr, true, config)
    }

    /// Connect in the subscriber role and subscribe to the query's sink
    /// streams; read with [`Client::next_event`].
    pub fn subscriber(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        Client::subscriber_with(addr, ClientConfig::default())
    }

    /// [`Client::subscriber`] with explicit robustness knobs.
    pub fn subscriber_with(addr: impl ToSocketAddrs, config: ClientConfig) -> ClientResult<Client> {
        let mut c = Client::connect(addr, false, config)?;
        c.subscribe()?;
        Ok(c)
    }

    fn connect(
        addr: impl ToSocketAddrs,
        publisher: bool,
        config: ClientConfig,
    ) -> ClientResult<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = dial(&addrs, &config)?;
        let seed = config.backoff_seed.unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0x5EED)
        });
        let mut conn = Conn {
            stream,
            queued: VecDeque::new(),
            addrs,
            config,
            publisher,
            token: None,
            next_seq: 1,
            last_acked: 0,
            unacked: VecDeque::new(),
            subscribed: false,
            results_from: 0,
            rng: StdRng::seed_from_u64(seed),
        };
        protocol::write_request(&mut conn.stream, &Request::Hello { publisher })?;
        match await_reply(&mut conn)? {
            Response::HelloAck { client_id, token } => {
                conn.token = token;
                Ok(Client {
                    conn: Arc::new(Mutex::new(conn)),
                    client_id,
                    heartbeat: None,
                })
            }
            other => Err(unexpected(other)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Conn> {
        // A panic mid-reply on another thread leaves the stream out of
        // frame sync anyway; inheriting the poisoned state's data is the
        // best a sync client can do.
        match self.conn.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The server-assigned connection id (of the first connection; it
    /// does not change across resumes).
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Bound how long reads may block (tests use this to fail instead of
    /// hanging when a server drops the ball). `None` blocks forever.
    /// Remembered across reconnects.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> ClientResult<()> {
        let mut conn = self.lock();
        conn.config.read_timeout = timeout;
        conn.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Append tuples to the named source stream (input `port` of the
    /// source's entry operator; 0 for unary entries). Blocks until the
    /// server acknowledges; returns the accepted tuple count. Ratchets
    /// the auto-heartbeat clock to the batch's highest timestamp. With
    /// reconnection enabled, a connection loss here is healed by
    /// resume-and-replay — the server applies this batch exactly once.
    pub fn publish(&mut self, source: &str, port: u16, tuples: &[Tuple]) -> ClientResult<usize> {
        let max_ts = tuples.iter().map(|t| t.ts).max();
        let mut conn = self.lock();
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let mut frame = Vec::new();
        protocol::write_publish(&mut frame, source, port, Some(seq), tuples)?;
        conn.unacked.push_back(PendingPublish {
            seq,
            count: tuples.len() as u32,
            frame,
        });
        let count = flush_unacked(&mut conn)?;
        drop(conn);
        if let (Some(state), Some(ts)) = (&self.heartbeat, max_ts) {
            state.clock.fetch_max(ts, Ordering::AcqRel);
            // Published data already carries this watermark to the
            // merge; no need for the timer to repeat it.
            state.advertised.fetch_max(ts, Ordering::AcqRel);
        }
        Ok(count)
    }

    /// Subscribe this connection to the query's sink streams.
    pub fn subscribe(&mut self) -> ClientResult<()> {
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::Subscribe { from: None })?;
        match await_reply(&mut conn)? {
            Response::Ack { .. } => {
                conn.subscribed = true;
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    /// Declare end of stream for this publisher. Once every publisher
    /// has finished, the server flushes the query and streams the final
    /// windows to subscribers. Stops the auto-heartbeat timer first, so
    /// no heartbeat can trail the Finish frame.
    pub fn finish(&mut self) -> ClientResult<()> {
        if let Some(state) = &self.heartbeat {
            state.stop.store(true, Ordering::Release);
        }
        let mut conn = self.lock();
        loop {
            let attempt = (|conn: &mut Conn| -> ClientResult<()> {
                protocol::write_request(&mut conn.stream, &Request::Finish)?;
                match await_reply(conn)? {
                    Response::Ack { .. } => Ok(()),
                    other => Err(unexpected(other)),
                }
            })(&mut conn);
            match attempt {
                Ok(()) => return Ok(()),
                Err(e) if conn.config.reconnect && is_connection_loss(&e) => {
                    reestablish(&mut conn, e)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Advance this publisher's event-time clock without publishing or
    /// blocking: a promise that nothing older than `watermark` will ever
    /// be published here. The background timer advertises the new clock
    /// to the server on its next tick — the non-blocking analogue of
    /// [`Client::heartbeat`], and the one call an idle publisher needs
    /// so it stops delaying everyone else's results. No-op on
    /// connections without the timer (use [`Client::heartbeat`] there).
    pub fn advance_watermark(&self, watermark: u64) {
        if let Some(state) = &self.heartbeat {
            state.clock.fetch_max(watermark, Ordering::AcqRel);
        }
    }

    /// Promise the server that this publisher will publish nothing
    /// older than `watermark` — the idle-but-alive signal, sent
    /// synchronously. A publisher that goes quiet while others keep
    /// publishing stalls the server's timestamp merge (results are
    /// gated on every unfinished publisher's progress); advertising the
    /// current event-time clock keeps results flowing. Publishing a
    /// tuple older than an advertised watermark afterwards violates the
    /// ts-ordered stream contract, exactly as publishing out of order
    /// would. Publishers with the background timer can use the
    /// non-blocking [`Client::advance_watermark`] instead.
    pub fn heartbeat(&mut self, watermark: u64) -> ClientResult<()> {
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::Heartbeat { watermark })?;
        match await_reply(&mut conn)? {
            Response::Ack { .. } => {
                drop(conn);
                if let Some(state) = &self.heartbeat {
                    state.clock.fetch_max(watermark, Ordering::AcqRel);
                    state.advertised.fetch_max(watermark, Ordering::AcqRel);
                }
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot the served query's registered per-operator metrics.
    pub fn stats(&mut self) -> ClientResult<Vec<OpStat>> {
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::Stats)?;
        match await_reply(&mut conn)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot the server's full metrics registry: every `engine_*`
    /// and `server_*` counter/gauge/histogram/sketch as typed
    /// [`MetricSnapshot`]s (sorted by family then labels) plus the
    /// Prometheus-style text exposition rendered server-side. The
    /// modern superset of [`Client::stats`].
    pub fn stats_v2(&mut self) -> ClientResult<(Vec<MetricSnapshot>, String)> {
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::StatsV2)?;
        match await_reply(&mut conn)? {
            Response::StatsV2 { metrics, text } => Ok((metrics, text)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the live EXPLAIN ANALYZE report: the static plan topology
    /// annotated with per-stage routing/skew/lag and per-operator
    /// counters, assembled server-side from the same cells the engine
    /// bumps. Render with [`PlanReport::render`].
    pub fn explain(&mut self) -> ClientResult<PlanReport> {
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::Explain)?;
        match await_reply(&mut conn)? {
            Response::Explain(report) => Ok(report),
            other => Err(unexpected(other)),
        }
    }

    /// Evaluate the server's health checks now and fetch the typed
    /// report (overall status, per-check findings, evaluation count).
    pub fn health(&mut self) -> ClientResult<HealthReport> {
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::Health)?;
        match await_reply(&mut conn)? {
            Response::Health(report) => Ok(report),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the newest `n` structured journal events (oldest first)
    /// plus the journal's lifetime recorded count — the tail of the
    /// merged engine + serving event sequence.
    pub fn journal_tail(&mut self, n: u32) -> ClientResult<(u64, Vec<TraceEvent>)> {
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::JournalTail { n })?;
        match await_reply(&mut conn)? {
            Response::JournalTail { recorded, events } => Ok((recorded, events)),
            other => Err(unexpected(other)),
        }
    }

    /// Next streamed event (subscribers). Blocks until a result batch,
    /// gap notice, or EOS arrives. Holds the connection for the wait, so
    /// a combined publisher+subscriber connection pauses its heartbeat
    /// timer while blocked here (the timer skips contended ticks). With
    /// reconnection enabled, a connection loss here resubscribes from
    /// the next expected result sequence.
    pub fn next_event(&mut self) -> ClientResult<Event> {
        let mut conn = self.lock();
        loop {
            if let Some(ev) = conn.queued.pop_front() {
                return Ok(ev);
            }
            let read = read_event(&mut conn);
            match read {
                Ok(ev) => return Ok(ev),
                Err(e) if conn.subscribed && conn.config.reconnect && is_connection_loss(&e) => {
                    reestablish(&mut conn, e)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Collect streamed results until EOS, concatenated per sink index
    /// in arrival order — the convenient shape for tests and examples.
    /// [`Event::Gap`] notices are skipped (lossy subscriptions know what
    /// they signed up for); use [`Client::next_event`] to observe them.
    pub fn collect_until_eos(&mut self) -> ClientResult<Vec<(usize, Vec<Tuple>)>> {
        let mut per_sink: Vec<(usize, Vec<Tuple>)> = Vec::new();
        loop {
            match self.next_event()? {
                Event::Results { sink, tuples } => {
                    match per_sink.iter_mut().find(|(s, _)| *s == sink) {
                        Some((_, bucket)) => bucket.extend(tuples),
                        None => per_sink.push((sink, tuples)),
                    }
                }
                Event::Gap { .. } => {}
                Event::Eos => return Ok(per_sink),
            }
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        if let Some(state) = &self.heartbeat {
            state.stop.store(true, Ordering::Release);
        }
    }
}

/// Dial the first reachable address within the configured timeout and
/// apply the socket timeouts.
fn dial(addrs: &[SocketAddr], config: &ClientConfig) -> ClientResult<TcpStream> {
    let mut last: Option<std::io::Error> = None;
    for addr in addrs {
        match TcpStream::connect_timeout(addr, config.connect_timeout) {
            Ok(stream) => {
                stream.set_read_timeout(config.read_timeout)?;
                stream.set_write_timeout(config.write_timeout)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last
        .map(ClientError::from)
        .unwrap_or(ClientError::Wire(WireError::Io(
            std::io::ErrorKind::AddrNotAvailable,
        ))))
}

/// Write every unacked publish in sequence order and await one ack per
/// frame, healing connection losses by reestablishing (which drops the
/// server-acked prefix) and retrying. Returns the accepted count of the
/// *last* pending publish — the one the caller just queued. When a
/// resume reveals the server already applied that frame (its ack was
/// lost in flight), the locally recorded tuple count stands in for the
/// ack that never arrived.
fn flush_unacked(conn: &mut Conn) -> ClientResult<usize> {
    let own = conn.unacked.back().map(|p| p.count as usize).unwrap_or(0);
    loop {
        let attempt = try_flush(conn);
        match attempt {
            Ok(Some(count)) => return Ok(count),
            Ok(None) => return Ok(own),
            Err(e) if conn.config.reconnect && is_connection_loss(&e) => {
                reestablish(conn, e)?;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One pass over the unacked queue; `Ok(None)` means the queue drained
/// without any ack arriving on this pass (everything was dropped by a
/// resume's high-water mark).
fn try_flush(conn: &mut Conn) -> ClientResult<Option<usize>> {
    let mut count = None;
    while let Some(pending) = conn.unacked.front() {
        let seq = pending.seq;
        conn.stream
            .write_all(&pending.frame)
            .and_then(|_| conn.stream.flush())
            .map_err(ClientError::from)?;
        match await_reply(conn) {
            Ok(Response::Ack { count: c }) => {
                count = Some(c as usize);
                conn.unacked.pop_front();
                conn.last_acked = conn.last_acked.max(seq);
            }
            Ok(other) => return Err(unexpected(other)),
            Err(e) => {
                // A typed server refusal is this publish's final answer:
                // drop the refused frame, and — since a refusal never
                // consumes a sequence number on the server — give the
                // number back so the next publish lines up. (Safe:
                // publish is synchronous, so the refused frame is always
                // the only and newest unacked entry.)
                if matches!(e, ClientError::Server { .. }) {
                    conn.unacked.pop_front();
                    if conn.unacked.is_empty() && seq == conn.next_seq - 1 {
                        conn.next_seq -= 1;
                    }
                }
                return Err(e);
            }
        }
    }
    Ok(count)
}

/// Redial with capped exponential backoff + jitter, resume the
/// publisher session (dropping publishes the server already applied)
/// and/or resubscribe from the next expected result sequence. Returns
/// the original `cause` when every retry fails; a typed server refusal
/// (e.g. an expired lease) surfaces immediately.
fn reestablish(conn: &mut Conn, cause: ClientError) -> ClientResult<()> {
    if conn.publisher && conn.token.is_none() {
        // Nothing to resume onto (a pre-lease server): healing would
        // fork a new merge slot and corrupt EOS accounting.
        return Err(cause);
    }
    let mut last = cause;
    for attempt in 0..conn.config.max_retries {
        std::thread::sleep(backoff_delay(
            &mut conn.rng,
            conn.config.backoff_base,
            conn.config.backoff_cap,
            attempt,
        ));
        match try_reestablish(conn) {
            Ok(()) => return Ok(()),
            Err(e)
                if is_connection_loss(&e) || matches!(e, ClientError::Wire(WireError::Io(_))) =>
            {
                last = e;
            }
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

fn backoff_delay(rng: &mut StdRng, base: Duration, cap: Duration, attempt: u32) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let capped = exp.min(cap);
    // Jitter in [0.5, 1.0]× so synchronized clients fan out.
    capped.mul_f64(0.5 + 0.5 * rng.gen::<f64>())
}

fn try_reestablish(conn: &mut Conn) -> ClientResult<()> {
    let mut stream = dial(&conn.addrs, &conn.config)?;
    if conn.publisher {
        let token = conn.token.expect("checked by reestablish");
        protocol::write_request(
            &mut stream,
            &Request::Resume {
                token,
                last_acked_seq: conn.last_acked,
            },
        )?;
        match await_reply_on(&mut stream, conn)? {
            Response::ResumeOk { last_seq, .. } => {
                // Drop what the server already applied (acks lost in
                // flight); everything after it will be replayed.
                while conn.unacked.front().is_some_and(|p| p.seq <= last_seq) {
                    conn.unacked.pop_front();
                }
                conn.last_acked = conn.last_acked.max(last_seq);
            }
            other => return Err(unexpected(other)),
        }
    } else {
        protocol::write_request(&mut stream, &Request::Hello { publisher: false })?;
        match await_reply_on(&mut stream, conn)? {
            Response::HelloAck { .. } => {}
            other => return Err(unexpected(other)),
        }
    }
    if conn.subscribed {
        protocol::write_request(
            &mut stream,
            &Request::Subscribe {
                from: Some(conn.results_from),
            },
        )?;
        match await_reply_on(&mut stream, conn)? {
            Response::Ack { .. } => {}
            other => return Err(unexpected(other)),
        }
    }
    conn.stream = stream;
    Ok(())
}

/// Read frames until a non-stream reply arrives, queueing any
/// `Results`/`Gap`/`Eos` pushed in between.
fn await_reply(conn: &mut Conn) -> ClientResult<Response> {
    let mut stream = conn.stream.try_clone()?;
    await_reply_on(&mut stream, conn)
}

/// [`await_reply`] against an explicit stream (used mid-reestablish,
/// when the replacement socket is not yet installed in `conn`).
fn await_reply_on(stream: &mut TcpStream, conn: &mut Conn) -> ClientResult<Response> {
    loop {
        match protocol::read_response(stream)? {
            Response::Results { sink, seq, tuples } => {
                if let Some(seq) = seq {
                    conn.results_from = conn.results_from.max(seq + 1);
                }
                conn.queued.push_back(Event::Results {
                    sink: sink as usize,
                    tuples,
                });
            }
            Response::Gap { missed } => conn.queued.push_back(Event::Gap { missed }),
            Response::Eos => conn.queued.push_back(Event::Eos),
            Response::Error { code, message } => return Err(ClientError::Server { code, message }),
            reply => return Ok(reply),
        }
    }
}

/// Read the next subscriber event off the wire (no queue check — the
/// caller does that).
fn read_event(conn: &mut Conn) -> ClientResult<Event> {
    let mut stream = conn.stream.try_clone()?;
    match protocol::read_response(&mut stream)? {
        Response::Results { sink, seq, tuples } => {
            if let Some(seq) = seq {
                conn.results_from = conn.results_from.max(seq + 1);
            }
            Ok(Event::Results {
                sink: sink as usize,
                tuples,
            })
        }
        Response::Gap { missed } => Ok(Event::Gap { missed }),
        Response::Eos => Ok(Event::Eos),
        Response::Error { code, message } => Err(ClientError::Server { code, message }),
        other => Err(unexpected(other)),
    }
}

/// The background heartbeat timer: whenever the publisher's clock moves
/// past the last advertised watermark, send one heartbeat. Exits when
/// the client finishes, drops, or the connection errors in a
/// non-recoverable way; a connection loss just skips the tick (the
/// application path owns reconnection, and its next call will heal the
/// stream this timer shares).
fn heartbeat_loop(weak: Weak<Mutex<Conn>>, state: Arc<HeartbeatState>) {
    loop {
        std::thread::sleep(HEARTBEAT_TICK);
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        let clock = state.clock.load(Ordering::Acquire);
        if clock == 0 || clock <= state.advertised.load(Ordering::Acquire) {
            continue;
        }
        let Some(conn) = weak.upgrade() else { return };
        let mut conn = match conn.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => continue,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        };
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        if protocol::write_request(&mut conn.stream, &Request::Heartbeat { watermark: clock })
            .is_err()
        {
            if conn.config.reconnect {
                continue; // the app path will heal the stream
            }
            return;
        }
        match await_reply(&mut conn) {
            Ok(Response::Ack { .. }) => {
                state.advertised.fetch_max(clock, Ordering::AcqRel);
            }
            Err(e) if conn.config.reconnect && is_connection_loss(&e) => continue,
            // Any other outcome (typed error, timeout) means this
            // connection no longer wants heartbeats; the application's
            // own calls surface the real condition.
            _ => return,
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::UnexpectedResponse(format!("{resp:?}"))
}
