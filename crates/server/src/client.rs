//! The client library: a small synchronous API over the framed
//! protocol. One [`Client`] wraps one TCP connection.
//!
//! Publishers: [`Client::publisher`] → [`Client::publish`]… →
//! [`Client::finish`]. Each publish blocks until the server
//! acknowledges, so engine backpressure (a full inbox) reaches the
//! producer as publish latency rather than unbounded buffering.
//!
//! Subscribers: [`Client::subscriber`] → [`Client::next_event`] until
//! [`Event::Eos`]. Result frames that arrive while a different reply is
//! awaited are queued, so a connection may publish and subscribe at
//! once.
//!
//! ## Auto-heartbeat
//!
//! An idle-but-alive publisher stalls the server's k-way merge: results
//! are gated on every unfinished publisher's watermark, so one quiet
//! connection delays every subscriber's windows. Publisher connections
//! therefore run a background heartbeat timer by default: the client
//! tracks the publisher's event-time clock (the highest timestamp it
//! has published, ratcheted further by [`Client::advance_watermark`])
//! and the timer advertises it to the server whenever it advances — the
//! application no longer has to remember to call [`Client::heartbeat`]
//! on a schedule of its own. The timer never *invents* time: it only
//! repeats what this process has already published or explicitly
//! promised, so synthetic-timestamp streams are never corrupted by a
//! wall clock. Opt out with [`Client::publisher_manual`] when the
//! application owns all watermark advertisement.

use crate::protocol::{self, ErrorCode, OpStat, Request, Response};
use crate::wire::WireError;
use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, TryLockError, Weak};
use ustream_core::Tuple;

/// How often the background timer checks whether the publisher's clock
/// advanced past the last advertised watermark.
const HEARTBEAT_TICK: std::time::Duration = std::time::Duration::from_millis(50);

/// Client-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server { code: ErrorCode, message: String },
    /// The server answered with a frame that makes no sense here.
    UnexpectedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "transport: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected server response: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e.kind()))
    }
}

pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A streamed server event delivered to subscribers.
#[derive(Debug, Clone)]
pub enum Event {
    /// A batch of result tuples from the sink with node index `sink`.
    Results { sink: usize, tuples: Vec<Tuple> },
    /// The query flushed; no further results will arrive.
    Eos,
}

/// The connection state every request/reply cycle needs: holding the
/// lock for the whole cycle keeps the strict request/response discipline
/// intact when the heartbeat timer shares the stream with the
/// application thread (each party's reply can never be consumed by the
/// other).
struct Conn {
    stream: TcpStream,
    /// Result/Eos frames that arrived while awaiting another reply.
    queued: VecDeque<Event>,
}

/// Shared state between a publisher [`Client`] and its heartbeat timer.
struct HeartbeatState {
    /// The publisher's event-time clock: the highest timestamp published
    /// on this connection, ratcheted further by
    /// [`Client::advance_watermark`]. Zero means "no clock yet" — the
    /// timer stays silent.
    clock: AtomicU64,
    /// Highest watermark already advertised (by the timer or a manual
    /// [`Client::heartbeat`]); the timer only speaks when the clock
    /// moves past this.
    advertised: AtomicU64,
    /// Set by [`Client::finish`] (and drop) before the Finish frame goes
    /// out, so the timer never heartbeats a finished publisher.
    stop: AtomicBool,
}

/// One connection to an ingest server.
pub struct Client {
    conn: Arc<Mutex<Conn>>,
    client_id: u64,
    /// Present on publisher connections with the background timer.
    heartbeat: Option<Arc<HeartbeatState>>,
}

impl Client {
    /// Connect in the publisher role: this connection participates in
    /// end-of-stream accounting and must eventually [`Client::finish`].
    /// Runs the background heartbeat timer (see the module docs); use
    /// [`Client::publisher_manual`] to opt out.
    pub fn publisher(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let mut c = Client::connect(addr, true)?;
        let state = Arc::new(HeartbeatState {
            clock: AtomicU64::new(0),
            advertised: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let weak = Arc::downgrade(&c.conn);
        let thread_state = state.clone();
        std::thread::spawn(move || heartbeat_loop(weak, thread_state));
        c.heartbeat = Some(state);
        Ok(c)
    }

    /// Connect in the publisher role without the background heartbeat
    /// timer: the application owns all watermark advertisement via
    /// [`Client::heartbeat`].
    pub fn publisher_manual(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        Client::connect(addr, true)
    }

    /// Connect in the subscriber role and subscribe to the query's sink
    /// streams; read with [`Client::next_event`].
    pub fn subscriber(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let mut c = Client::connect(addr, false)?;
        c.subscribe()?;
        Ok(c)
    }

    fn connect(addr: impl ToSocketAddrs, publisher: bool) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        let mut conn = Conn {
            stream,
            queued: VecDeque::new(),
        };
        protocol::write_request(&mut conn.stream, &Request::Hello { publisher })?;
        match await_reply(&mut conn)? {
            Response::HelloAck { client_id } => Ok(Client {
                conn: Arc::new(Mutex::new(conn)),
                client_id,
                heartbeat: None,
            }),
            other => Err(unexpected(other)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Conn> {
        // A panic mid-reply on another thread leaves the stream out of
        // frame sync anyway; inheriting the poisoned state's data is the
        // best a sync client can do.
        match self.conn.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The server-assigned connection id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Bound how long reads may block (tests use this to fail instead of
    /// hanging when a server drops the ball). `None` blocks forever.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> ClientResult<()> {
        self.lock().stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Append tuples to the named source stream (input `port` of the
    /// source's entry operator; 0 for unary entries). Blocks until the
    /// server acknowledges; returns the accepted tuple count. Ratchets
    /// the auto-heartbeat clock to the batch's highest timestamp.
    pub fn publish(&mut self, source: &str, port: u16, tuples: &[Tuple]) -> ClientResult<usize> {
        let max_ts = tuples.iter().map(|t| t.ts).max();
        let mut conn = self.lock();
        protocol::write_publish(&mut conn.stream, source, port, tuples)?;
        match await_reply(&mut conn)? {
            Response::Ack { count } => {
                drop(conn);
                if let (Some(state), Some(ts)) = (&self.heartbeat, max_ts) {
                    state.clock.fetch_max(ts, Ordering::AcqRel);
                    // Published data already carries this watermark to
                    // the merge; no need for the timer to repeat it.
                    state.advertised.fetch_max(ts, Ordering::AcqRel);
                }
                Ok(count as usize)
            }
            other => Err(unexpected(other)),
        }
    }

    /// Subscribe this connection to the query's sink streams.
    pub fn subscribe(&mut self) -> ClientResult<()> {
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::Subscribe)?;
        match await_reply(&mut conn)? {
            Response::Ack { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Declare end of stream for this publisher. Once every publisher
    /// has finished, the server flushes the query and streams the final
    /// windows to subscribers. Stops the auto-heartbeat timer first, so
    /// no heartbeat can trail the Finish frame.
    pub fn finish(&mut self) -> ClientResult<()> {
        if let Some(state) = &self.heartbeat {
            state.stop.store(true, Ordering::Release);
        }
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::Finish)?;
        match await_reply(&mut conn)? {
            Response::Ack { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Advance this publisher's event-time clock without publishing or
    /// blocking: a promise that nothing older than `watermark` will ever
    /// be published here. The background timer advertises the new clock
    /// to the server on its next tick — the non-blocking analogue of
    /// [`Client::heartbeat`], and the one call an idle publisher needs
    /// so it stops delaying everyone else's results. No-op on
    /// connections without the timer (use [`Client::heartbeat`] there).
    pub fn advance_watermark(&self, watermark: u64) {
        if let Some(state) = &self.heartbeat {
            state.clock.fetch_max(watermark, Ordering::AcqRel);
        }
    }

    /// Promise the server that this publisher will publish nothing
    /// older than `watermark` — the idle-but-alive signal, sent
    /// synchronously. A publisher that goes quiet while others keep
    /// publishing stalls the server's timestamp merge (results are
    /// gated on every unfinished publisher's progress); advertising the
    /// current event-time clock keeps results flowing. Publishing a
    /// tuple older than an advertised watermark afterwards violates the
    /// ts-ordered stream contract, exactly as publishing out of order
    /// would. Publishers with the background timer can use the
    /// non-blocking [`Client::advance_watermark`] instead.
    pub fn heartbeat(&mut self, watermark: u64) -> ClientResult<()> {
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::Heartbeat { watermark })?;
        match await_reply(&mut conn)? {
            Response::Ack { .. } => {
                drop(conn);
                if let Some(state) = &self.heartbeat {
                    state.clock.fetch_max(watermark, Ordering::AcqRel);
                    state.advertised.fetch_max(watermark, Ordering::AcqRel);
                }
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot the served query's registered per-operator metrics.
    pub fn stats(&mut self) -> ClientResult<Vec<OpStat>> {
        let mut conn = self.lock();
        protocol::write_request(&mut conn.stream, &Request::Stats)?;
        match await_reply(&mut conn)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Next streamed event (subscribers). Blocks until a result batch or
    /// EOS arrives. Holds the connection for the wait, so a combined
    /// publisher+subscriber connection pauses its heartbeat timer while
    /// blocked here (the timer skips contended ticks).
    pub fn next_event(&mut self) -> ClientResult<Event> {
        let mut conn = self.lock();
        if let Some(ev) = conn.queued.pop_front() {
            return Ok(ev);
        }
        match protocol::read_response(&mut conn.stream)? {
            Response::Results { sink, tuples } => Ok(Event::Results {
                sink: sink as usize,
                tuples,
            }),
            Response::Eos => Ok(Event::Eos),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(unexpected(other)),
        }
    }

    /// Collect streamed results until EOS, concatenated per sink index
    /// in arrival order — the convenient shape for tests and examples.
    pub fn collect_until_eos(&mut self) -> ClientResult<Vec<(usize, Vec<Tuple>)>> {
        let mut per_sink: Vec<(usize, Vec<Tuple>)> = Vec::new();
        loop {
            match self.next_event()? {
                Event::Results { sink, tuples } => {
                    match per_sink.iter_mut().find(|(s, _)| *s == sink) {
                        Some((_, bucket)) => bucket.extend(tuples),
                        None => per_sink.push((sink, tuples)),
                    }
                }
                Event::Eos => return Ok(per_sink),
            }
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        if let Some(state) = &self.heartbeat {
            state.stop.store(true, Ordering::Release);
        }
    }
}

/// Read frames until a non-stream reply arrives, queueing any
/// `Results`/`Eos` pushed in between.
fn await_reply(conn: &mut Conn) -> ClientResult<Response> {
    loop {
        match protocol::read_response(&mut conn.stream)? {
            Response::Results { sink, tuples } => conn.queued.push_back(Event::Results {
                sink: sink as usize,
                tuples,
            }),
            Response::Eos => conn.queued.push_back(Event::Eos),
            Response::Error { code, message } => return Err(ClientError::Server { code, message }),
            reply => return Ok(reply),
        }
    }
}

/// The background heartbeat timer: whenever the publisher's clock moves
/// past the last advertised watermark, send one heartbeat. Exits when
/// the client finishes, drops, or the connection errors; skips ticks
/// while the application thread holds the connection (its own traffic
/// is advancing the merge anyway).
fn heartbeat_loop(weak: Weak<Mutex<Conn>>, state: Arc<HeartbeatState>) {
    loop {
        std::thread::sleep(HEARTBEAT_TICK);
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        let clock = state.clock.load(Ordering::Acquire);
        if clock == 0 || clock <= state.advertised.load(Ordering::Acquire) {
            continue;
        }
        let Some(conn) = weak.upgrade() else { return };
        let mut conn = match conn.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => continue,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        };
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        if protocol::write_request(&mut conn.stream, &Request::Heartbeat { watermark: clock })
            .is_err()
        {
            return;
        }
        match await_reply(&mut conn) {
            Ok(Response::Ack { .. }) => {
                state.advertised.fetch_max(clock, Ordering::AcqRel);
            }
            // Any other outcome (typed error, transport failure) means
            // this connection no longer wants heartbeats; the
            // application's own calls surface the real condition.
            _ => return,
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::UnexpectedResponse(format!("{resp:?}"))
}
