//! Deterministic fault injection: a TCP proxy that sits between a
//! client and the server and breaks the connection the way real edge
//! links do — added latency, resets at frame boundaries, cuts in the
//! middle of a frame — from a seed, reproducibly.
//!
//! The proxy understands the wire framing just enough to count frames
//! on the client→server direction (magic + version + kind + length
//! prefix), so faults land at *meaningful* places: `CutAtFrame` drops
//! the connection exactly on a frame boundary (the server sees a clean
//! truncation between requests), `CutMidFrame` forwards the header and
//! half the payload before cutting (the server sees a torn frame),
//! `Delay` stalls delivery of one frame. The server→client direction is
//! relayed verbatim.
//!
//! Two construction modes:
//!
//! - [`ChaosProxy::scripted`] — an explicit per-connection fault list,
//!   for tests that need one precise failure;
//! - [`ChaosProxy::seeded`] — a deterministic schedule derived from a
//!   seed and the connection index, for matrix tests that want *many*
//!   reproducible failure patterns. Frame 0 (the `Hello`/`Resume`
//!   handshake) is never cut, so every connection at least identifies
//!   itself — cutting earlier would only test the client's connect
//!   retry, which `examples/serve_resilient.rs` covers separately.
//!
//! Determinism caveat: the schedule is deterministic per `(seed,
//! connection index)`; the *interleaving* of concurrent connections is
//! still the OS scheduler's. Byte-equality of served results holds
//! regardless (that is the point of the suite in
//! `tests/server_chaos.rs`).

use crate::wire::FRAME_HEADER_LEN;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One injected fault, anchored to a client→server frame index
/// (0-based, counted per connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Hold frame `frame` for `millis` before forwarding it.
    Delay { frame: u64, millis: u64 },
    /// Drop the connection cleanly *before* forwarding frame `frame`
    /// (a reset on a frame boundary).
    CutAtFrame { frame: u64 },
    /// Forward frame `frame`'s header and half its payload, then drop
    /// the connection (a torn frame mid-flight).
    CutMidFrame { frame: u64 },
}

impl Fault {
    fn frame(&self) -> u64 {
        match *self {
            Fault::Delay { frame, .. }
            | Fault::CutAtFrame { frame }
            | Fault::CutMidFrame { frame } => frame,
        }
    }
}

/// How a proxied connection gets its fault schedule.
enum Schedule {
    /// Derived per connection index from the seed.
    Seeded(u64),
    /// Explicit per-connection scripts; connections past the end of the
    /// list run clean.
    Scripted(Vec<Vec<Fault>>),
}

/// A fault-injecting TCP proxy in front of `upstream`. Point a client
/// at [`ChaosProxy::addr`] instead of the server.
pub struct ChaosProxy {
    addr: SocketAddr,
    connections: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ChaosProxy {
    /// Proxy to `upstream` with a deterministic per-connection fault
    /// schedule derived from `seed`.
    pub fn seeded(upstream: SocketAddr, seed: u64) -> std::io::Result<ChaosProxy> {
        ChaosProxy::start(upstream, Schedule::Seeded(seed))
    }

    /// Proxy to `upstream` with explicit fault scripts: connection `i`
    /// suffers `scripts[i]`; connections beyond the list run clean.
    pub fn scripted(upstream: SocketAddr, scripts: Vec<Vec<Fault>>) -> std::io::Result<ChaosProxy> {
        ChaosProxy::start(upstream, Schedule::Scripted(scripts))
    }

    fn start(upstream: SocketAddr, schedule: Schedule) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let connections = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let conn_counter = connections.clone();
        let stop_flag = stop.clone();
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { continue };
                let index = conn_counter.fetch_add(1, Ordering::SeqCst);
                let faults = match &schedule {
                    Schedule::Seeded(seed) => seeded_faults(*seed, index as u64),
                    Schedule::Scripted(scripts) => scripts.get(index).cloned().unwrap_or_default(),
                };
                std::thread::spawn(move || proxy_connection(client, upstream, faults));
            }
        });
        Ok(ChaosProxy {
            addr,
            connections,
            stop,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many connections have been accepted so far (== how many
    /// fault schedules were consumed).
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// Stop accepting. In-flight proxied connections run to completion.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self
            .accept
            .lock()
            .expect("chaos accept handle poisoned")
            .take()
        {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// The seeded per-connection fault profile. Deterministic in
/// `(seed, index)`: index is mixed in with an odd multiplier so nearby
/// connections get unrelated schedules. Roughly: a few chances of a
/// small delay on an early frame, then a 60% chance the connection dies
/// — half the time cleanly between frames, half mid-frame — somewhere
/// in its first several frames (but never frame 0: the handshake always
/// completes).
fn seeded_faults(seed: u64, index: u64) -> Vec<Fault> {
    let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut faults = Vec::new();
    for frame in 1..=3u64 {
        if rng.gen_bool(0.35) {
            faults.push(Fault::Delay {
                frame,
                millis: rng.gen_range(1..20u64),
            });
        }
    }
    if rng.gen_bool(0.6) {
        let frame = rng.gen_range(1..8u64);
        if rng.gen_bool(0.5) {
            faults.push(Fault::CutAtFrame { frame });
        } else {
            faults.push(Fault::CutMidFrame { frame });
        }
    }
    faults
}

/// Pump one proxied connection: frame-parse client→server applying the
/// faults, raw-copy server→client, and tear both directions down when
/// either side ends or a cut fires.
fn proxy_connection(client: TcpStream, upstream: SocketAddr, faults: Vec<Fault>) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    // Server→client: verbatim relay.
    let client_w = client;
    let back = std::thread::spawn(move || {
        copy_until_eof(server_r, &client_w);
        let _ = client_w.shutdown(Shutdown::Both);
    });
    // Client→server: frame-by-frame with faults.
    pump_frames(client_r, &server, &faults);
    let _ = server.shutdown(Shutdown::Both);
    let _ = back.join();
}

fn copy_until_eof(mut from: TcpStream, mut to: &TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => {
                if to.write_all(&buf[..n]).and_then(|_| to.flush()).is_err() {
                    return;
                }
            }
        }
    }
}

/// Forward whole frames from `client` to `server`, applying each fault
/// at its frame index. Returns when the client closes, a cut fires, or
/// the server stops accepting bytes.
fn pump_frames(mut client: TcpStream, mut server: &TcpStream, faults: &[Fault]) {
    let mut frame_index = 0u64;
    let mut header = [0u8; FRAME_HEADER_LEN];
    loop {
        if client.read_exact(&mut header).is_err() {
            return;
        }
        let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
        let mut payload = vec![0u8; len];
        if client.read_exact(&mut payload).is_err() {
            return;
        }
        for fault in faults.iter().filter(|f| f.frame() == frame_index) {
            match *fault {
                Fault::Delay { millis, .. } => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                Fault::CutAtFrame { .. } => {
                    let _ = client.shutdown(Shutdown::Both);
                    return;
                }
                Fault::CutMidFrame { .. } => {
                    let torn = &payload[..len / 2];
                    let _ = server
                        .write_all(&header)
                        .and_then(|_| server.write_all(torn));
                    let _ = server.flush();
                    let _ = client.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        if server
            .write_all(&header)
            .and_then(|_| server.write_all(&payload))
            .and_then(|_| server.flush())
            .is_err()
        {
            return;
        }
        frame_index += 1;
    }
}
