//! The wire codec: a versioned, length-prefixed binary frame format for
//! everything the engine ships over a socket — [`Value`]s, [`Updf`]
//! payloads (all five variants), [`Tuple`]s (values + timestamp +
//! existence + lineage), and batches of tuples.
//!
//! Design rules:
//!
//! - **Deterministic bytes.** Encoding is a pure function of the input,
//!   and decoding reconstructs exactly what was encoded: every numeric
//!   field travels as raw big-endian bits (floats via `to_bits`), and
//!   the decode path uses non-renormalizing constructors
//!   ([`WeightedSamples::from_normalized`] and friends) so
//!   encode→decode→encode is byte-identical. The equivalence and
//!   property suites lean on this.
//! - **Typed errors, never panics.** Every invariant the in-memory
//!   constructors `assert!` is validated here first and surfaced as a
//!   [`WireError`]; truncated or bit-flipped frames must decode to an
//!   `Err`, not unwind a server thread. Length fields are checked
//!   against the remaining payload *before* any allocation, so a
//!   corrupted count cannot balloon memory.
//! - **Versioned frames.** Every frame starts with magic bytes, a codec
//!   version, a frame kind, and a payload length
//!   ([`FRAME_HEADER_LEN`] bytes total); unknown versions are rejected
//!   up front so the format can evolve.

use std::io::{Read, Write};
use std::sync::Arc;
use ustream_core::lineage::Lineage;
use ustream_core::schema::{DataType, Field, Schema};
use ustream_core::{Batch, Column, Columns, Tuple, Updf, Value};
use ustream_prob::dist::{Dist, Gaussian, GaussianMixture, MixtureComponent, MvGaussian};
use ustream_prob::histogram::HistogramPdf;
use ustream_prob::samples::{WeightedSamples, WeightedSamplesNd};

/// First magic byte of every frame (`b"US"` = uncertain streams).
pub const MAGIC: [u8; 2] = *b"US";
/// Codec version this build writes. Version 2 added the fault-tolerance
/// frames (`Resume`/`ResumeOk`/`Gap`, sequenced publishes, sequenced
/// results, session tokens in `HelloAck`).
pub const WIRE_VERSION: u8 = 2;
/// Oldest codec version this build still accepts. Version-1 frames
/// (e.g. a `Hello` from a pre-lease client) decode unchanged — the new
/// payloads all live behind new frame kinds or are length-discriminated,
/// so old shapes stay valid.
pub const MIN_WIRE_VERSION: u8 = 1;
/// Frame header: magic(2) + version(1) + kind(1) + payload length(4).
pub const FRAME_HEADER_LEN: usize = 8;
/// Upper bound on a single frame's payload — a corrupted length field
/// must not make a reader allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 64 << 20;
/// Nesting bound for recursive payloads (truncations of truncations):
/// real pipelines nest once or twice; a hostile frame must not recurse
/// the decoder off the stack.
const MAX_DIST_DEPTH: u8 = 16;

/// Typed decode/transport failures. Decoding untrusted bytes returns
/// these; it never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field could be read.
    Truncated { needed: usize, have: usize },
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 2]),
    /// The frame's codec version is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// A variant tag byte was out of range for its type.
    UnknownTag { what: &'static str, tag: u8 },
    /// A field violated a semantic invariant (negative weight, existence
    /// outside [0, 1], unsorted lineage, indefinite covariance…).
    InvalidPayload(&'static str),
    /// The frame header announced a payload longer than [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes(usize),
    /// The peer closed the connection at a frame boundary.
    Disconnected,
    /// An I/O error while reading or writing a frame.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated payload: needed {needed} bytes, have {have}")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {MIN_WIRE_VERSION}..={WIRE_VERSION})"
                )
            }
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::InvalidPayload(msg) => write!(f, "invalid payload: {msg}"),
            WireError::FrameTooLarge(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::Disconnected => write!(f, "peer disconnected"),
            WireError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

pub type WireResult<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------
// Cursor over a payload slice: every read checks the remaining length
// first, so a lying count field yields `Truncated`, not a panic or an
// unbounded allocation.
// ---------------------------------------------------------------------

/// Bounds-checked reader over one frame payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if n > self.remaining() {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.bytes(1)?[0])
    }

    pub fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_be_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> WireResult<i64> {
        Ok(i64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32` length prefix followed by that many UTF-8 bytes.
    pub fn str(&mut self) -> WireResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidPayload("non-UTF-8 string"))
    }

    /// `n` raw f64s (the count was validated against `remaining` here,
    /// before allocation).
    pub fn f64_vec(&mut self, n: usize) -> WireResult<Vec<f64>> {
        let bytes_needed = n
            .checked_mul(8)
            .ok_or(WireError::InvalidPayload("length overflow"))?;
        if bytes_needed > self.remaining() {
            return Err(WireError::Truncated {
                needed: bytes_needed,
                have: self.remaining(),
            });
        }
        (0..n).map(|_| self.f64()).collect()
    }

    /// Look ahead `n` bytes without consuming them (`None` when fewer
    /// remain) — lets the batch decoder recognize a fixed tag sequence
    /// and take a columnar fast path.
    pub fn peek(&self, n: usize) -> Option<&'a [u8]> {
        self.buf.get(self.pos..self.pos + n)
    }

    /// Error unless the payload was consumed exactly.
    pub fn finish(self) -> WireResult<()> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_bits().to_be_bytes());
}

// ---------------------------------------------------------------------
// Dist
// ---------------------------------------------------------------------

const DIST_GAUSSIAN: u8 = 0;
const DIST_UNIFORM: u8 = 1;
const DIST_EXPONENTIAL: u8 = 2;
const DIST_GAMMA: u8 = 3;
const DIST_LOGNORMAL: u8 = 4;
const DIST_TRIANGULAR: u8 = 5;
const DIST_MIXTURE: u8 = 6;
const DIST_TRUNCATED: u8 = 7;

/// Encode a parametric distribution. Truncations encode `(inner, lo,
/// hi)` only; the decode side reconstructs the cached mass/moments
/// deterministically.
pub fn encode_dist(out: &mut Vec<u8>, d: &Dist) {
    match d {
        Dist::Gaussian(g) => {
            out.push(DIST_GAUSSIAN);
            put_f64(out, g.mean());
            put_f64(out, g.std_dev());
        }
        Dist::Uniform(u) => {
            out.push(DIST_UNIFORM);
            put_f64(out, u.lo());
            put_f64(out, u.hi());
        }
        Dist::Exponential(e) => {
            out.push(DIST_EXPONENTIAL);
            put_f64(out, e.rate());
        }
        Dist::Gamma(g) => {
            out.push(DIST_GAMMA);
            put_f64(out, g.shape());
            put_f64(out, g.scale());
        }
        Dist::LogNormal(l) => {
            out.push(DIST_LOGNORMAL);
            put_f64(out, l.mu());
            put_f64(out, l.sigma());
        }
        Dist::Triangular(t) => {
            out.push(DIST_TRIANGULAR);
            put_f64(out, t.lo());
            put_f64(out, t.mode());
            put_f64(out, t.hi());
        }
        Dist::Mixture(m) => {
            out.push(DIST_MIXTURE);
            out.extend_from_slice(&(m.num_components() as u32).to_be_bytes());
            for c in m.components() {
                put_f64(out, c.weight);
                put_f64(out, c.dist.mean());
                put_f64(out, c.dist.std_dev());
            }
        }
        Dist::Truncated(t) => {
            out.push(DIST_TRUNCATED);
            encode_dist(out, t.inner());
            let (lo, hi) = t.bounds();
            put_f64(out, lo);
            put_f64(out, hi);
        }
    }
}

fn decode_gaussian(mean: f64, sd: f64) -> WireResult<Gaussian> {
    if !(mean.is_finite() && sd > 0.0 && sd.is_finite()) {
        return Err(WireError::InvalidPayload(
            "gaussian needs finite mean, sd > 0",
        ));
    }
    Ok(Gaussian::new(mean, sd))
}

pub fn decode_dist(r: &mut Reader<'_>) -> WireResult<Dist> {
    decode_dist_depth(r, 0)
}

fn decode_dist_depth(r: &mut Reader<'_>, depth: u8) -> WireResult<Dist> {
    if depth >= MAX_DIST_DEPTH {
        return Err(WireError::InvalidPayload("distribution nesting too deep"));
    }
    let tag = r.u8()?;
    match tag {
        DIST_GAUSSIAN => Ok(Dist::Gaussian(decode_gaussian(r.f64()?, r.f64()?)?)),
        DIST_UNIFORM => {
            let (a, b) = (r.f64()?, r.f64()?);
            if !(a.is_finite() && b.is_finite() && b > a) {
                return Err(WireError::InvalidPayload("uniform needs finite b > a"));
            }
            Ok(Dist::uniform(a, b))
        }
        DIST_EXPONENTIAL => {
            let rate = r.f64()?;
            if !(rate > 0.0 && rate.is_finite()) {
                return Err(WireError::InvalidPayload("exponential needs rate > 0"));
            }
            Ok(Dist::Exponential(ustream_prob::dist::Exponential::new(
                rate,
            )))
        }
        DIST_GAMMA => {
            let (shape, scale) = (r.f64()?, r.f64()?);
            if !(shape > 0.0 && shape.is_finite() && scale > 0.0 && scale.is_finite()) {
                return Err(WireError::InvalidPayload("gamma needs shape, scale > 0"));
            }
            Ok(Dist::Gamma(ustream_prob::dist::GammaDist::new(
                shape, scale,
            )))
        }
        DIST_LOGNORMAL => {
            let (mu, sigma) = (r.f64()?, r.f64()?);
            if !(mu.is_finite() && sigma > 0.0 && sigma.is_finite()) {
                return Err(WireError::InvalidPayload(
                    "lognormal needs finite mu, sigma > 0",
                ));
            }
            Ok(Dist::LogNormal(ustream_prob::dist::LogNormal::new(
                mu, sigma,
            )))
        }
        DIST_TRIANGULAR => {
            let (a, c, b) = (r.f64()?, r.f64()?, r.f64()?);
            let finite = a.is_finite() && b.is_finite() && c.is_finite();
            if !(finite && a <= c && c <= b && a < b) {
                return Err(WireError::InvalidPayload(
                    "triangular needs a <= c <= b, a < b",
                ));
            }
            Ok(Dist::Triangular(ustream_prob::dist::Triangular::new(
                a, c, b,
            )))
        }
        DIST_MIXTURE => {
            let n = r.u32()? as usize;
            // Each component is 24 bytes; reject lying counts up front.
            let needed = n
                .checked_mul(24)
                .ok_or(WireError::InvalidPayload("length overflow"))?;
            if needed > r.remaining() {
                return Err(WireError::Truncated {
                    needed,
                    have: r.remaining(),
                });
            }
            let mut comps = Vec::with_capacity(n);
            for _ in 0..n {
                let weight = r.f64()?;
                let dist = decode_gaussian(r.f64()?, r.f64()?)?;
                comps.push(MixtureComponent { weight, dist });
            }
            GaussianMixture::from_normalized(comps)
                .map(Dist::Mixture)
                .ok_or(WireError::InvalidPayload("mixture weights not normalized"))
        }
        DIST_TRUNCATED => {
            let inner = decode_dist_depth(r, depth + 1)?;
            let (lo, hi) = (r.f64()?, r.f64()?);
            // NaN bounds must be rejected too, hence the explicit
            // partial comparison instead of `hi <= lo`.
            if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
                return Err(WireError::InvalidPayload("truncation needs hi > lo"));
            }
            ustream_prob::dist::Truncated::new(inner, lo, hi)
                .map(Dist::Truncated)
                .ok_or(WireError::InvalidPayload(
                    "truncation interval carries no mass",
                ))
        }
        tag => Err(WireError::UnknownTag { what: "Dist", tag }),
    }
}

// ---------------------------------------------------------------------
// Updf
// ---------------------------------------------------------------------

const UPDF_PARAMETRIC: u8 = 0;
const UPDF_SAMPLES: u8 = 1;
const UPDF_HISTOGRAM: u8 = 2;
const UPDF_MV: u8 = 3;
const UPDF_MV_SAMPLES: u8 = 4;

/// Encode a tuple-level distribution payload (all five variants).
pub fn encode_updf(out: &mut Vec<u8>, u: &Updf) {
    match u {
        Updf::Parametric(d) => {
            out.push(UPDF_PARAMETRIC);
            encode_dist(out, d);
        }
        Updf::Samples(s) => {
            out.push(UPDF_SAMPLES);
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            for &x in s.values() {
                put_f64(out, x);
            }
            for &w in s.weights() {
                put_f64(out, w);
            }
        }
        Updf::Histogram(h) => {
            out.push(UPDF_HISTOGRAM);
            put_f64(out, h.lo());
            put_f64(out, h.bin_width());
            out.extend_from_slice(&(h.num_bins() as u32).to_be_bytes());
            for &m in h.masses() {
                put_f64(out, m);
            }
        }
        Updf::Mv(mv) => {
            out.push(UPDF_MV);
            out.extend_from_slice(&(mv.dim() as u32).to_be_bytes());
            for &m in mv.mean() {
                put_f64(out, m);
            }
            for &c in mv.cov() {
                put_f64(out, c);
            }
        }
        Updf::MvSamples(s) => {
            out.push(UPDF_MV_SAMPLES);
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(&(s.dim() as u32).to_be_bytes());
            for i in 0..s.len() {
                for &x in s.point(i) {
                    put_f64(out, x);
                }
            }
            for i in 0..s.len() {
                put_f64(out, s.weight(i));
            }
        }
    }
}

pub fn decode_updf(r: &mut Reader<'_>) -> WireResult<Updf> {
    let tag = r.u8()?;
    match tag {
        UPDF_PARAMETRIC => Ok(Updf::Parametric(decode_dist(r)?)),
        UPDF_SAMPLES => {
            let n = r.u32()? as usize;
            let xs = r.f64_vec(n)?;
            let ws = r.f64_vec(n)?;
            WeightedSamples::from_normalized(xs, ws)
                .map(Updf::Samples)
                .ok_or(WireError::InvalidPayload("sample weights not normalized"))
        }
        UPDF_HISTOGRAM => {
            let lo = r.f64()?;
            let width = r.f64()?;
            let bins = r.u32()? as usize;
            let masses = r.f64_vec(bins)?;
            HistogramPdf::from_normalized_masses(lo, width, masses)
                .map(Updf::Histogram)
                .ok_or(WireError::InvalidPayload("histogram masses not normalized"))
        }
        UPDF_MV => {
            let d = r.u32()? as usize;
            let mean = r.f64_vec(d)?;
            let cov_len = d
                .checked_mul(d)
                .ok_or(WireError::InvalidPayload("length overflow"))?;
            let cov = r.f64_vec(cov_len)?;
            MvGaussian::try_new(mean, cov)
                .map(Updf::Mv)
                .ok_or(WireError::InvalidPayload(
                    "covariance not symmetric positive definite",
                ))
        }
        UPDF_MV_SAMPLES => {
            let n = r.u32()? as usize;
            let d = r.u32()? as usize;
            let xs_len = n
                .checked_mul(d)
                .ok_or(WireError::InvalidPayload("length overflow"))?;
            let xs = r.f64_vec(xs_len)?;
            let ws = r.f64_vec(n)?;
            WeightedSamplesNd::from_normalized(xs, ws, d)
                .map(Updf::MvSamples)
                .ok_or(WireError::InvalidPayload(
                    "mv sample weights not normalized",
                ))
        }
        tag => Err(WireError::UnknownTag { what: "Updf", tag }),
    }
}

// ---------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------

const VALUE_NULL: u8 = 0;
const VALUE_BOOL: u8 = 1;
const VALUE_INT: u8 = 2;
const VALUE_FLOAT: u8 = 3;
const VALUE_STR: u8 = 4;
const VALUE_TIME: u8 = 5;
const VALUE_UNCERTAIN: u8 = 6;

pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(VALUE_NULL),
        Value::Bool(b) => {
            out.push(VALUE_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(VALUE_INT);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            out.push(VALUE_FLOAT);
            put_f64(out, *f);
        }
        Value::Str(s) => {
            out.push(VALUE_STR);
            put_str(out, s);
        }
        Value::Time(t) => {
            out.push(VALUE_TIME);
            out.extend_from_slice(&t.to_be_bytes());
        }
        Value::Uncertain(u) => {
            out.push(VALUE_UNCERTAIN);
            encode_updf(out, u);
        }
    }
}

pub fn decode_value(r: &mut Reader<'_>) -> WireResult<Value> {
    let tag = r.u8()?;
    match tag {
        VALUE_NULL => Ok(Value::Null),
        VALUE_BOOL => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            tag => Err(WireError::UnknownTag { what: "Bool", tag }),
        },
        VALUE_INT => Ok(Value::Int(r.i64()?)),
        VALUE_FLOAT => Ok(Value::Float(r.f64()?)),
        VALUE_STR => Ok(Value::Str(r.str()?)),
        VALUE_TIME => Ok(Value::Time(r.u64()?)),
        VALUE_UNCERTAIN => Ok(Value::Uncertain(Box::new(decode_updf(r)?))),
        tag => Err(WireError::UnknownTag { what: "Value", tag }),
    }
}

// ---------------------------------------------------------------------
// Schema / Tuple / Batch
// ---------------------------------------------------------------------

const DTYPE_BOOL: u8 = 0;
const DTYPE_INT: u8 = 1;
const DTYPE_FLOAT: u8 = 2;
const DTYPE_STR: u8 = 3;
const DTYPE_TIME: u8 = 4;
const DTYPE_UNCERTAIN: u8 = 5;
const DTYPE_UNCERTAIN_VEC: u8 = 6;

pub fn encode_schema(out: &mut Vec<u8>, s: &Schema) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    for f in s.fields() {
        put_str(out, &f.name);
        match f.dtype {
            DataType::Bool => out.push(DTYPE_BOOL),
            DataType::Int => out.push(DTYPE_INT),
            DataType::Float => out.push(DTYPE_FLOAT),
            DataType::Str => out.push(DTYPE_STR),
            DataType::Time => out.push(DTYPE_TIME),
            DataType::Uncertain => out.push(DTYPE_UNCERTAIN),
            DataType::UncertainVec(d) => {
                out.push(DTYPE_UNCERTAIN_VEC);
                out.extend_from_slice(&(d as u32).to_be_bytes());
            }
        }
    }
}

pub fn decode_schema(r: &mut Reader<'_>) -> WireResult<Arc<Schema>> {
    let n = r.u32()? as usize;
    // Each field costs at least 5 bytes (empty name + dtype tag).
    let floor = n
        .checked_mul(5)
        .ok_or(WireError::InvalidPayload("length overflow"))?;
    if floor > r.remaining() {
        return Err(WireError::Truncated {
            needed: floor,
            have: r.remaining(),
        });
    }
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let dtype = match r.u8()? {
            DTYPE_BOOL => DataType::Bool,
            DTYPE_INT => DataType::Int,
            DTYPE_FLOAT => DataType::Float,
            DTYPE_STR => DataType::Str,
            DTYPE_TIME => DataType::Time,
            DTYPE_UNCERTAIN => DataType::Uncertain,
            DTYPE_UNCERTAIN_VEC => DataType::UncertainVec(r.u32()? as usize),
            tag => {
                return Err(WireError::UnknownTag {
                    what: "DataType",
                    tag,
                })
            }
        };
        if fields.iter().any(|f: &Field| f.name == name) {
            return Err(WireError::InvalidPayload("duplicate schema field name"));
        }
        fields.push(Field::new(name, dtype));
    }
    Ok(Schema::new(fields))
}

/// Tuple body: the per-tuple part that follows a schema (values in
/// schema order, then ts, existence, lineage).
fn encode_tuple_body(out: &mut Vec<u8>, t: &Tuple) {
    for v in t.values() {
        encode_value(out, v);
    }
    out.extend_from_slice(&t.ts.to_be_bytes());
    put_f64(out, t.existence);
    let ids = t.lineage.ids();
    out.extend_from_slice(&(ids.len() as u32).to_be_bytes());
    for &id in ids {
        out.extend_from_slice(&id.to_be_bytes());
    }
}

fn decode_tuple_body(r: &mut Reader<'_>, schema: Arc<Schema>) -> WireResult<Tuple> {
    let mut values = Vec::with_capacity(schema.len());
    for _ in 0..schema.len() {
        values.push(decode_value(r)?);
    }
    let ts = r.u64()?;
    let existence = r.f64()?;
    if !(0.0..=1.0).contains(&existence) {
        return Err(WireError::InvalidPayload("existence outside [0, 1]"));
    }
    let n_ids = r.u32()? as usize;
    let id_bytes = n_ids
        .checked_mul(8)
        .ok_or(WireError::InvalidPayload("length overflow"))?;
    if id_bytes > r.remaining() {
        return Err(WireError::Truncated {
            needed: id_bytes,
            have: r.remaining(),
        });
    }
    let ids: Vec<u64> = (0..n_ids).map(|_| r.u64()).collect::<WireResult<_>>()?;
    let lineage = Lineage::from_sorted_ids(ids).ok_or(WireError::InvalidPayload(
        "lineage ids not strictly increasing",
    ))?;
    Ok(Tuple::derived(schema, values, ts, existence, lineage))
}

/// Encode one tuple with its schema.
pub fn encode_tuple(out: &mut Vec<u8>, t: &Tuple) {
    encode_schema(out, t.schema());
    encode_tuple_body(out, t);
}

pub fn decode_tuple(r: &mut Reader<'_>) -> WireResult<Tuple> {
    let schema = decode_schema(r)?;
    decode_tuple_body(r, schema)
}

const BATCH_MIXED: u8 = 0;
const BATCH_SHARED_SCHEMA: u8 = 1;

/// Encode a run of tuples. When every tuple shares one schema `Arc` the
/// schema is written once and the decoded batch shares a single `Arc`
/// again, preserving the engine's [`Batch::shared_schema`] fast path
/// end to end across the wire.
pub fn encode_tuples(out: &mut Vec<u8>, tuples: &[Tuple]) {
    let shared = match tuples.first() {
        Some(first) => tuples
            .iter()
            .skip(1)
            .all(|t| Arc::ptr_eq(t.schema(), first.schema()))
            .then(|| first.schema().clone()),
        None => None,
    };
    match shared {
        Some(schema) => {
            out.push(BATCH_SHARED_SCHEMA);
            encode_schema(out, &schema);
            out.extend_from_slice(&(tuples.len() as u32).to_be_bytes());
            for t in tuples {
                encode_tuple_body(out, t);
            }
        }
        None => {
            out.push(BATCH_MIXED);
            out.extend_from_slice(&(tuples.len() as u32).to_be_bytes());
            for t in tuples {
                encode_tuple(out, t);
            }
        }
    }
}

pub fn decode_tuples(r: &mut Reader<'_>) -> WireResult<Vec<Tuple>> {
    match r.u8()? {
        BATCH_SHARED_SCHEMA => {
            let schema = decode_schema(r)?;
            let n = r.u32()? as usize;
            let mut tuples = Vec::new();
            for _ in 0..n {
                tuples.push(decode_tuple_body(r, schema.clone())?);
            }
            Ok(tuples)
        }
        BATCH_MIXED => {
            let n = r.u32()? as usize;
            let mut tuples = Vec::new();
            for _ in 0..n {
                tuples.push(decode_tuple(r)?);
            }
            Ok(tuples)
        }
        tag => Err(WireError::UnknownTag { what: "Batch", tag }),
    }
}

/// [`encode_tuples`] over a [`Batch`]. A columnar batch is encoded
/// straight from its columns without materializing tuples; the
/// decomposition is lossless, so the bytes are identical to hydrating
/// first.
pub fn encode_batch(out: &mut Vec<u8>, batch: &Batch) {
    match batch.columns() {
        Some(cols) if !cols.is_empty() => encode_columns(out, cols),
        Some(_) => encode_tuples(out, &[]),
        None => encode_tuples(out, batch.as_slice()),
    }
}

/// Row-major encode from columns. A `Columns` always carries one shared
/// schema `Arc`, so this is always the [`BATCH_SHARED_SCHEMA`] framing —
/// the same branch [`encode_tuples`] takes for the hydrated rows.
fn encode_columns(out: &mut Vec<u8>, cols: &Columns) {
    out.push(BATCH_SHARED_SCHEMA);
    encode_schema(out, cols.schema());
    out.extend_from_slice(&(cols.len() as u32).to_be_bytes());
    for r in 0..cols.len() {
        for c in 0..cols.num_cols() {
            encode_cell(out, cols.col(c), r);
        }
        out.extend_from_slice(&cols.ts()[r].to_be_bytes());
        put_f64(out, cols.existence()[r]);
        let ids = cols.lineage()[r].ids();
        out.extend_from_slice(&(ids.len() as u32).to_be_bytes());
        for &id in ids {
            out.extend_from_slice(&id.to_be_bytes());
        }
    }
}

/// Encode one column cell exactly as [`encode_value`] would encode the
/// reconstructed `Value`.
fn encode_cell(out: &mut Vec<u8>, col: &Column, r: usize) {
    match col {
        Column::Int(xs) => {
            out.push(VALUE_INT);
            out.extend_from_slice(&xs[r].to_be_bytes());
        }
        Column::Float(xs) => {
            out.push(VALUE_FLOAT);
            put_f64(out, xs[r]);
        }
        Column::Time(xs) => {
            out.push(VALUE_TIME);
            out.extend_from_slice(&xs[r].to_be_bytes());
        }
        Column::Str { codes, dict } => {
            out.push(VALUE_STR);
            put_str(out, &dict[codes[r] as usize]);
        }
        Column::Gaussian { mean, sd } => {
            out.push(VALUE_UNCERTAIN);
            out.push(UPDF_PARAMETRIC);
            out.push(DIST_GAUSSIAN);
            put_f64(out, mean[r]);
            put_f64(out, sd[r]);
        }
        Column::Rows(vs) => encode_value(out, &vs[r]),
    }
}

/// The three-byte tag prefix of a parametric-Gaussian uncertain value —
/// the cell shape the columnar decoder turns into `(mean, sd)` column
/// entries without boxing an `Updf`.
const GAUSSIAN_CELL_TAGS: [u8; 3] = [VALUE_UNCERTAIN, UPDF_PARAMETRIC, DIST_GAUSSIAN];

/// Decode one shared-schema tuple body directly into columns, applying
/// the same validation as [`decode_tuple_body`].
///
/// Once a column has settled on a typed layout, a cell whose wire tag
/// matches it decodes straight into the column vector — no
/// intermediate `Value`. Mismatched tags (and the first row, while
/// columns are still untyped) fall back to the generic
/// decode-then-push path, which carries the demotion logic. The fast
/// paths read exactly the bytes [`decode_value`] would and apply the
/// same validation (Int/Float/Time cells have none), so accepted
/// payloads and resulting columns are identical.
fn decode_row_into(r: &mut Reader<'_>, cols: &mut Columns) -> WireResult<()> {
    for c in 0..cols.num_cols() {
        match cols.col_mut(c) {
            Column::Int(xs) if r.peek(1) == Some(&[VALUE_INT]) => {
                r.bytes(1)?;
                xs.push(r.i64()?);
            }
            Column::Float(xs) if r.peek(1) == Some(&[VALUE_FLOAT]) => {
                r.bytes(1)?;
                xs.push(r.f64()?);
            }
            Column::Time(xs) if r.peek(1) == Some(&[VALUE_TIME]) => {
                r.bytes(1)?;
                xs.push(r.u64()?);
            }
            col => {
                if r.peek(3) == Some(&GAUSSIAN_CELL_TAGS) {
                    r.bytes(3)?;
                    let (mean, sd) = (r.f64()?, r.f64()?);
                    decode_gaussian(mean, sd)?;
                    col.push_gaussian(mean, sd);
                } else {
                    let v = decode_value(r)?;
                    col.push_value(v);
                }
            }
        }
    }
    let ts = r.u64()?;
    let existence = r.f64()?;
    if !(0.0..=1.0).contains(&existence) {
        return Err(WireError::InvalidPayload("existence outside [0, 1]"));
    }
    let n_ids = r.u32()? as usize;
    let id_bytes = n_ids
        .checked_mul(8)
        .ok_or(WireError::InvalidPayload("length overflow"))?;
    if id_bytes > r.remaining() {
        return Err(WireError::Truncated {
            needed: id_bytes,
            have: r.remaining(),
        });
    }
    let ids: Vec<u64> = (0..n_ids).map(|_| r.u64()).collect::<WireResult<_>>()?;
    let lineage = Lineage::from_sorted_ids(ids).ok_or(WireError::InvalidPayload(
        "lineage ids not strictly increasing",
    ))?;
    cols.push_meta(ts, existence, lineage);
    Ok(())
}

/// Decode a batch. Shared-schema frames decode **in place into the
/// columnar layout**: each value lands directly in its typed column
/// (parametric Gaussians as raw `(mean, sd)` pairs), so downstream
/// operators get vectorized input without a row → column conversion
/// pass. Mixed-schema frames decode to rows as before. Validation is
/// identical to [`decode_tuples`] either way.
pub fn decode_batch(r: &mut Reader<'_>) -> WireResult<Batch> {
    match r.u8()? {
        BATCH_SHARED_SCHEMA => {
            let schema = decode_schema(r)?;
            let n = r.u32()? as usize;
            if n == 0 {
                return Ok(Batch::new());
            }
            let mut cols = Columns::with_capacity(schema, n);
            for _ in 0..n {
                decode_row_into(r, &mut cols)?;
            }
            Ok(Batch::from_columns(cols))
        }
        BATCH_MIXED => {
            let n = r.u32()? as usize;
            let mut tuples = Vec::new();
            for _ in 0..n {
                tuples.push(decode_tuple(r)?);
            }
            Ok(Batch::from(tuples))
        }
        tag => Err(WireError::UnknownTag { what: "Batch", tag }),
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Write one `[magic, version, kind, len, payload]` frame.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> WireResult<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(payload.len()));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..2].copy_from_slice(&MAGIC);
    header[2] = WIRE_VERSION;
    header[3] = kind;
    header[4..8].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, returning `(kind, payload)`. A connection closed
/// cleanly *between* frames yields [`WireError::Disconnected`]; closed
/// mid-frame yields an I/O error.
pub fn read_frame<R: Read>(r: &mut R) -> WireResult<(u8, Vec<u8>)> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < FRAME_HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(WireError::Disconnected),
            Ok(0) => return Err(WireError::Io(std::io::ErrorKind::UnexpectedEof)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1]]));
    }
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&header[2]) {
        return Err(WireError::UnsupportedVersion(header[2]));
    }
    let kind = header[3];
    let len = u32::from_be_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_prob::dist::Truncated;

    fn roundtrip_value(v: &Value) -> Value {
        let mut bytes = Vec::new();
        encode_value(&mut bytes, v);
        let mut r = Reader::new(&bytes);
        let back = decode_value(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        // Byte-exactness: re-encoding the decoded value reproduces the
        // original bytes.
        let mut again = Vec::new();
        encode_value(&mut again, &back);
        assert_eq!(bytes, again, "encode→decode→encode must be byte-stable");
        back
    }

    #[test]
    fn scalar_values_roundtrip() {
        roundtrip_value(&Value::Null);
        roundtrip_value(&Value::Bool(true));
        roundtrip_value(&Value::Int(-913));
        roundtrip_value(&Value::Float(3.5e-9));
        roundtrip_value(&Value::Float(f64::NAN)); // bits survive
        roundtrip_value(&Value::Str("zone-α".into()));
        roundtrip_value(&Value::Time(88_000));
    }

    #[test]
    fn every_dist_variant_roundtrips() {
        let dists = vec![
            Dist::gaussian(1.5, 0.5),
            Dist::uniform(-1.0, 4.0),
            Dist::Exponential(ustream_prob::dist::Exponential::new(0.25)),
            Dist::Gamma(ustream_prob::dist::GammaDist::new(2.0, 1.5)),
            Dist::LogNormal(ustream_prob::dist::LogNormal::new(0.1, 0.9)),
            Dist::Triangular(ustream_prob::dist::Triangular::new(0.0, 1.0, 3.0)),
            Dist::Mixture(GaussianMixture::from_triples(&[
                (0.25, -2.0, 0.5),
                (0.75, 3.0, 1.0),
            ])),
            Dist::Truncated(Truncated::new(Dist::gaussian(0.0, 1.0), -1.0, 2.0).unwrap()),
        ];
        for d in &dists {
            let v = roundtrip_value(&Value::from(Updf::Parametric(d.clone())));
            let u = v.as_updf().unwrap();
            assert!((u.mean() - Updf::Parametric(d.clone()).mean()).abs() < 1e-12);
        }
    }

    #[test]
    fn every_updf_variant_roundtrips() {
        let mv = MvGaussian::new(vec![1.0, -1.0], vec![1.0, 0.3, 0.3, 2.0]);
        let updfs = vec![
            Updf::Parametric(Dist::gaussian(0.0, 1.0)),
            Updf::Samples(WeightedSamples::new(
                vec![1.0, 2.0, 4.0],
                vec![1.0, 2.0, 1.0],
            )),
            Updf::Histogram(HistogramPdf::from_masses(0.0, 0.5, vec![1.0, 3.0, 1.0])),
            Updf::Mv(mv.clone()),
            Updf::MvSamples(WeightedSamplesNd::new(
                vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
                vec![1.0, 1.0, 2.0],
                2,
            )),
        ];
        for u in &updfs {
            let v = roundtrip_value(&Value::from(u.clone()));
            assert_eq!(v.as_updf().unwrap().dim(), u.dim());
        }
    }

    #[test]
    fn tuple_roundtrip_preserves_metadata() {
        let s = Schema::builder()
            .field("tag", DataType::Int)
            .field("loc", DataType::UncertainVec(2))
            .build();
        let base = Tuple::new(
            s.clone(),
            vec![
                Value::Int(7),
                Value::from(Updf::Mv(MvGaussian::isotropic(vec![0.0, 1.0], 2.0))),
            ],
            123,
        );
        let derived = Tuple::derived(
            s,
            base.values().to_vec(),
            456,
            0.25,
            base.lineage.union(&Lineage::base(u64::MAX)),
        );
        let mut bytes = Vec::new();
        encode_tuple(&mut bytes, &derived);
        let mut r = Reader::new(&bytes);
        let back = decode_tuple(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.ts, 456);
        assert_eq!(back.existence, 0.25);
        assert_eq!(back.lineage, derived.lineage);
        assert_eq!(back.schema().fields(), derived.schema().fields());
        let mut again = Vec::new();
        encode_tuple(&mut again, &back);
        assert_eq!(bytes, again);
    }

    #[test]
    fn shared_schema_batches_stay_shared() {
        let s = Schema::builder().field("v", DataType::Int).build();
        let tuples: Vec<Tuple> = (0..5)
            .map(|i| Tuple::new(s.clone(), vec![Value::Int(i)], i as u64))
            .collect();
        let mut bytes = Vec::new();
        encode_tuples(&mut bytes, &tuples);
        assert_eq!(bytes[0], BATCH_SHARED_SCHEMA);
        let mut r = Reader::new(&bytes);
        let back = decode_tuples(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), 5);
        let batch = Batch::from(back);
        assert!(batch.shared_schema().is_some(), "one Arc after decode");
    }

    #[test]
    fn mixed_schema_batches_roundtrip() {
        let s1 = Schema::builder().field("a", DataType::Int).build();
        let s2 = Schema::builder().field("b", DataType::Float).build();
        let tuples = vec![
            Tuple::new(s1, vec![Value::Int(1)], 0),
            Tuple::new(s2, vec![Value::Float(2.0)], 1),
        ];
        let mut bytes = Vec::new();
        encode_tuples(&mut bytes, &tuples);
        assert_eq!(bytes[0], BATCH_MIXED);
        let mut r = Reader::new(&bytes);
        let back = decode_tuples(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back[1].float("b").unwrap(), 2.0);
    }

    #[test]
    fn shared_schema_frames_decode_columnar_and_reencode_byte_identically() {
        let s = Schema::builder()
            .field("tag", DataType::Int)
            .field("zone", DataType::Str)
            .field("x", DataType::Uncertain)
            .field("mixed", DataType::Uncertain)
            .build();
        let tuples: Vec<Tuple> = (0..9)
            .map(|i| {
                // `mixed` alternates payload shapes, forcing that column
                // into the row fallback while the others stay typed.
                let mixed = if i % 2 == 0 {
                    Value::from(Updf::Parametric(Dist::gaussian(i as f64, 1.0)))
                } else {
                    Value::from(Updf::Samples(WeightedSamples::new(
                        vec![i as f64, i as f64 + 1.0],
                        vec![1.0, 3.0],
                    )))
                };
                Tuple::derived(
                    s.clone(),
                    vec![
                        Value::Int(i),
                        Value::Str(format!("z{}", i % 3)),
                        Value::from(Updf::Parametric(Dist::gaussian(0.5 * i as f64, 2.0))),
                        mixed,
                    ],
                    i as u64 * 10,
                    1.0 - 0.05 * (i % 4) as f64,
                    Lineage::base(i as u64),
                )
            })
            .collect();
        let mut bytes = Vec::new();
        encode_tuples(&mut bytes, &tuples);
        assert_eq!(bytes[0], BATCH_SHARED_SCHEMA);

        let mut r = Reader::new(&bytes);
        let batch = decode_batch(&mut r).unwrap();
        r.finish().unwrap();
        assert!(batch.is_columnar(), "shared-schema frame decodes in place");
        let cols = batch.columns().unwrap();
        assert!(cols.col(0).as_int().is_some());
        assert!(cols.col(1).as_str_dict().is_some());
        assert!(
            cols.col(2).as_gaussian().is_some(),
            "parametric gaussians land in the typed column"
        );
        assert!(
            cols.col(3).as_rows().is_some(),
            "heterogeneous payloads fall back to rows"
        );

        // Re-encoding straight from columns reproduces the frame.
        let mut again = Vec::new();
        encode_batch(&mut again, &batch);
        assert_eq!(bytes, again, "columnar encode must be byte-identical");

        // And the hydrated rows match the row decoder exactly.
        let rows = decode_tuples(&mut Reader::new(&bytes)).unwrap();
        let hydrated = batch.into_vec();
        assert_eq!(format!("{hydrated:?}"), format!("{rows:?}"));
    }

    #[test]
    fn columnar_decode_validates_like_the_row_decoder() {
        let s = Schema::builder().field("x", DataType::Uncertain).build();
        let t = Tuple::new(
            s,
            vec![Value::from(Updf::Parametric(Dist::gaussian(1.0, 2.0)))],
            5,
        );
        let mut bytes = Vec::new();
        encode_tuples(&mut bytes, std::slice::from_ref(&t));
        // Corrupt the sd bits (the trailing 8 bytes before ts/existence/
        // lineage = last 8+8+4+8 = 28 bytes; sd sits just before them).
        let sd_at = bytes.len() - 28 - 8;
        bytes[sd_at..sd_at + 8].copy_from_slice(&(-1.0f64).to_bits().to_be_bytes());
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            decode_batch(&mut r),
            Err(WireError::InvalidPayload(_))
        ));
    }

    #[test]
    fn typed_errors_not_panics() {
        // Truncated payload.
        let mut bytes = Vec::new();
        encode_value(&mut bytes, &Value::Str("hello".into()));
        let mut r = Reader::new(&bytes[..3]);
        assert!(matches!(
            decode_value(&mut r),
            Err(WireError::Truncated { .. })
        ));
        // Unknown tag.
        let mut r = Reader::new(&[0xEE]);
        assert!(matches!(
            decode_value(&mut r),
            Err(WireError::UnknownTag { what: "Value", .. })
        ));
        // Invalid gaussian (sd <= 0).
        let mut bad = vec![VALUE_UNCERTAIN, UPDF_PARAMETRIC, DIST_GAUSSIAN];
        bad.extend_from_slice(&1.0f64.to_bits().to_be_bytes());
        bad.extend_from_slice(&(-1.0f64).to_bits().to_be_bytes());
        let mut r = Reader::new(&bad);
        assert!(matches!(
            decode_value(&mut r),
            Err(WireError::InvalidPayload(_))
        ));
        // Lying sample count must not allocate: n = u32::MAX.
        let mut lying = vec![UPDF_SAMPLES];
        lying.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = Reader::new(&lying);
        assert!(matches!(
            decode_updf(&mut r),
            Err(WireError::Truncated { .. })
        ));
        // Unsorted lineage.
        let s = Schema::builder().field("v", DataType::Int).build();
        let t = Tuple::new(s, vec![Value::Int(1)], 9);
        let mut bytes = Vec::new();
        encode_tuple(&mut bytes, &t);
        // Lineage is the trailing [count=1, id]; duplicate the id with a
        // smaller one by rewriting count=2 is fiddly — instead corrupt
        // existence (trailing 12 bytes are count+id; existence is the 8
        // bytes before ts... simpler: craft body directly).
        let mut crafted = Vec::new();
        encode_schema(&mut crafted, t.schema());
        encode_value(&mut crafted, &Value::Int(1));
        crafted.extend_from_slice(&9u64.to_be_bytes());
        crafted.extend_from_slice(&1.0f64.to_bits().to_be_bytes());
        crafted.extend_from_slice(&2u32.to_be_bytes());
        crafted.extend_from_slice(&5u64.to_be_bytes());
        crafted.extend_from_slice(&5u64.to_be_bytes()); // not strictly increasing
        let mut r = Reader::new(&crafted);
        assert!(matches!(
            decode_tuple(&mut r),
            Err(WireError::InvalidPayload(_))
        ));
    }

    #[test]
    fn frame_roundtrip_and_header_validation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x42, b"payload").unwrap();
        let (kind, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(kind, 0x42);
        assert_eq!(payload, b"payload");

        // Clean EOF at a frame boundary.
        assert!(matches!(
            read_frame(&mut (&[][..])),
            Err(WireError::Disconnected)
        ));
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(WireError::BadMagic(_))
        ));
        // Future version.
        let mut newer = buf.clone();
        newer[2] = 9;
        assert!(matches!(
            read_frame(&mut newer.as_slice()),
            Err(WireError::UnsupportedVersion(9))
        ));
        // Oversized length field.
        let mut huge = buf.clone();
        huge[4..8].copy_from_slice(&(u32::MAX).to_be_bytes());
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(WireError::FrameTooLarge(_))
        ));
        // Mid-frame EOF.
        assert!(matches!(
            read_frame(&mut &buf[..buf.len() - 2]),
            Err(WireError::Io(std::io::ErrorKind::UnexpectedEof))
        ));
    }

    #[test]
    fn deep_truncation_nesting_rejected() {
        let bytes = vec![DIST_TRUNCATED; 40];
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            decode_dist(&mut r),
            Err(WireError::InvalidPayload(_))
        ));
    }
}
