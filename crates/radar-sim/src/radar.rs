//! Radar node: geometry, sector scanning, and per-pulse I/Q synthesis.
//!
//! Each pulse yields one time-series data item per range gate holding
//! four 32-bit floats (§2.2) — here two consecutive complex voltage
//! samples (I₀,Q₀,I₁,Q₁), which is exactly what pulse-pair moment
//! estimation consumes. At the paper's parameters (2000 pulses/s, 832
//! gates) this reproduces the 1.66 M items/s ≈ 205 Mb/s raw rate.

use crate::weather::WeatherField;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Static radar parameters.
#[derive(Debug, Clone, Copy)]
pub struct RadarParams {
    /// Pulse repetition frequency (Hz).
    pub prf: f64,
    /// Wavelength (m) — X band ≈ 0.032 m.
    pub wavelength: f64,
    /// Number of range gates.
    pub gates: usize,
    /// Range-gate spacing (m).
    pub gate_spacing: f64,
    /// Antenna rotation rate while scanning (deg/s).
    pub rotation_deg_s: f64,
    /// Receiver noise standard deviation (linear units).
    pub noise_sd: f64,
    /// Phase-jitter per pulse (rad) — produces non-zero spectral width.
    pub phase_jitter: f64,
}

impl Default for RadarParams {
    fn default() -> Self {
        RadarParams {
            prf: 2_000.0,
            wavelength: 0.032,
            gates: 832,
            gate_spacing: 48.0,
            rotation_deg_s: 20.0,
            noise_sd: 0.35,
            phase_jitter: 0.25,
        }
    }
}

impl RadarParams {
    /// Nyquist (maximum unambiguous) velocity λ·PRF/4.
    pub fn nyquist_velocity(&self) -> f64 {
        self.wavelength * self.prf / 4.0
    }

    /// Raw data rate in bits per second (items × 4 × f32).
    pub fn raw_bits_per_second(&self) -> f64 {
        self.prf * self.gates as f64 * 4.0 * 32.0
    }
}

/// One pulse's raw data: the azimuth it was fired at and per-gate items.
#[derive(Debug, Clone)]
pub struct Pulse {
    /// Azimuth (rad, math convention: 0 = +x, counter-clockwise).
    pub azimuth: f64,
    /// Time within the scenario (s).
    pub t: f64,
    /// Per-gate (I₀, Q₀, I₁, Q₁).
    pub gates: Vec<[f32; 4]>,
}

/// A radar node at a fixed site.
#[derive(Debug, Clone)]
pub struct RadarNode {
    pub id: u32,
    /// Site position (m).
    pub pos: [f64; 2],
    pub params: RadarParams,
}

impl RadarNode {
    pub fn new(id: u32, pos: [f64; 2], params: RadarParams) -> Self {
        RadarNode { id, pos, params }
    }

    /// Synthesize the pulses of one sector scan sweeping
    /// [az_start, az_end] (radians) starting at scenario time `t0`.
    ///
    /// The phase progression between the two intra-item samples encodes
    /// the radial velocity: Δφ = 4π·v_r·T/λ (positive away).
    pub fn sector_scan(
        &self,
        field: &WeatherField,
        az_start: f64,
        az_end: f64,
        t0: f64,
        seed: u64,
    ) -> Vec<Pulse> {
        assert!(az_end > az_start);
        let p = &self.params;
        let omega = p.rotation_deg_s.to_radians();
        let duration = (az_end - az_start) / omega;
        let n_pulses = (duration * p.prf).floor() as usize;
        let dt = 1.0 / p.prf;
        let mut rng = StdRng::seed_from_u64(seed ^ (self.id as u64) << 32);

        let mut pulses = Vec::with_capacity(n_pulses);
        for k in 0..n_pulses {
            let t = t0 + k as f64 * dt;
            let az = az_start + omega * (k as f64 * dt);
            let (sin_az, cos_az) = az.sin_cos();
            let mut gates = Vec::with_capacity(p.gates);
            for g in 0..p.gates {
                let range = (g as f64 + 0.5) * p.gate_spacing;
                let point = [self.pos[0] + range * cos_az, self.pos[1] + range * sin_az];
                let dbz = field.reflectivity(point, t);
                // Signal amplitude from reflectivity; range-normalized so
                // gates are comparable (calibration folded in).
                let amp = 10f64.powf((dbz - 20.0) / 20.0);
                let wind = field.wind(point, t);
                // Radial velocity: positive = away from the radar.
                let v_r = wind[0] * cos_az + wind[1] * sin_az;
                let dphi = 4.0 * std::f64::consts::PI * v_r * dt / p.wavelength;
                let phi0: f64 = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                let jitter: f64 = (rng.gen::<f64>() - 0.5) * 2.0 * p.phase_jitter;
                let (s0, c0) = phi0.sin_cos();
                let (s1, c1) = (phi0 + dphi + jitter).sin_cos();
                let mut noise = || (rng.gen::<f64>() - 0.5) * 2.0 * p.noise_sd * 1.732;
                gates.push([
                    (amp * c0 + noise()) as f32,
                    (amp * s0 + noise()) as f32,
                    (amp * c1 + noise()) as f32,
                    (amp * s1 + noise()) as f32,
                ]);
            }
            pulses.push(Pulse {
                azimuth: az,
                t,
                gates,
            });
        }
        pulses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> RadarParams {
        RadarParams {
            gates: 64,
            gate_spacing: 200.0,
            ..Default::default()
        }
    }

    #[test]
    fn raw_rate_matches_paper() {
        let p = RadarParams::default();
        // 2000 pulses/s × 832 gates = 1.664 M items/s.
        let items_per_s = p.prf * p.gates as f64;
        assert!((items_per_s - 1_664_000.0).abs() < 1.0);
        // ≈ 213 Mb/s (paper rounds to 205 Mb/s).
        let mbps = p.raw_bits_per_second() / 1e6;
        assert!((200.0..225.0).contains(&mbps), "raw rate {mbps:.0} Mb/s");
    }

    #[test]
    fn nyquist_velocity() {
        let p = RadarParams::default();
        assert!((p.nyquist_velocity() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn sector_scan_pulse_count_and_rotation() {
        let node = RadarNode::new(0, [0.0, 0.0], small_params());
        let field = WeatherField::quiet();
        let pulses = node.sector_scan(&field, 0.0, 0.1, 0.0, 1);
        // 0.1 rad at 20°/s (0.349 rad/s) ⇒ ~0.286 s ⇒ ~573 pulses.
        assert!(
            (560..=580).contains(&pulses.len()),
            "{} pulses",
            pulses.len()
        );
        assert!(pulses[0].azimuth < pulses.last().unwrap().azimuth);
        assert_eq!(pulses[0].gates.len(), 64);
    }

    #[test]
    fn phase_shift_encodes_radial_velocity() {
        // A field with pure +x wind: a beam along +x sees positive v_r,
        // which must show up as a positive mean phase shift.
        let mut field = WeatherField::quiet();
        field.ambient_wind = [10.0, 0.0];
        field.cells[0].peak_dbz = 60.0; // strong signal
        field.cells[0].center = [3_000.0, 0.0];
        field.cells[0].motion = [0.0, 0.0];
        let mut params = small_params();
        params.noise_sd = 0.01;
        params.phase_jitter = 0.0;
        let node = RadarNode::new(0, [0.0, 0.0], params);
        let pulses = node.sector_scan(&field, -0.005, 0.005, 0.0, 2);
        // Pulse-pair estimate over gates near the storm (gates ~10-20).
        let mut re = 0.0f64;
        let mut im = 0.0f64;
        for p in &pulses {
            for g in 10..20 {
                let v = p.gates[g];
                // conj(s0)·s1
                re += (v[0] * v[2] + v[1] * v[3]) as f64;
                im += (v[0] * v[3] - v[1] * v[2]) as f64;
            }
        }
        let dphi = im.atan2(re);
        let p = &node.params;
        let v_est = dphi * p.wavelength * p.prf / (4.0 * std::f64::consts::PI);
        assert!((v_est - 10.0).abs() < 1.0, "estimated v_r = {v_est:.2} m/s");
    }

    #[test]
    fn noise_floor_visible_outside_storm() {
        let node = RadarNode::new(0, [0.0, 0.0], small_params());
        let field = WeatherField::quiet();
        let pulses = node.sector_scan(&field, 1.0, 1.02, 0.0, 3);
        // Far gates (background only): power near the noise floor.
        let far_power: f64 = pulses
            .iter()
            .flat_map(|p| p.gates[50..].iter())
            .map(|v| (v[0] * v[0] + v[1] * v[1]) as f64)
            .sum::<f64>()
            / (pulses.len() * 14) as f64;
        assert!(far_power < 1.0, "far-gate power {far_power:.3}");
    }

    #[test]
    fn deterministic_given_seed() {
        let node = RadarNode::new(0, [0.0, 0.0], small_params());
        let field = WeatherField::tornadic_default();
        let a = node.sector_scan(&field, 0.0, 0.02, 0.0, 9);
        let b = node.sector_scan(&field, 0.0, 0.02, 0.0, 9);
        assert_eq!(a[0].gates[0], b[0].gates[0]);
    }
}
