//! The closed-loop scenario runner behind Table 1.
//!
//! "We obtained 38 seconds of raw data taken in the CASA testbed on May
//! 9th 2007 during a tornadic event … the number of raw pulses used for
//! averaging was varied … detection results … averaged over 4 sector
//! scans." Two system constraints gate feasibility: the 4 Mb/s wireless
//! link between radar and central node, and the ~20 s slice of each 60 s
//! epoch available for detection.

use crate::detect::{detect_tornados, false_negatives, DetectionResult, DetectorConfig};
use crate::moments::compute_moments;
use crate::radar::{RadarNode, RadarParams};
use crate::weather::WeatherField;

/// Scenario configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub params: RadarParams,
    pub detector: DetectorConfig,
    /// Number of sector scans ("4 sector scans in the 38 second period").
    pub num_scans: usize,
    /// Sector half-width around the storm bearing (rad).
    pub sector_half_width: f64,
    /// Seconds between scan starts.
    pub scan_period_s: f64,
    /// Link budget (bits per second) for moment-data transmission.
    pub link_bps: f64,
    /// Detection deadline within the epoch (s).
    pub detection_deadline_s: f64,
    /// Detector work budget in cells per scenario, calibrated so that the
    /// paper's feasibility crossover (only N ≥ 500 fits the 20 s window
    /// on the 2007 testbed hardware) is reproduced independently of this
    /// machine's speed. Wall-clock runtime is still reported.
    pub detection_cell_budget: usize,
    /// Match radius for false-negative accounting (m).
    pub match_radius_m: f64,
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            params: RadarParams::default(),
            detector: DetectorConfig::default(),
            num_scans: 4,
            sector_half_width: 0.12,
            scan_period_s: 9.5,
            link_bps: 4.0e6,
            detection_deadline_s: 20.0,
            detection_cell_budget: 18_000,
            match_radius_m: 2_000.0,
            seed: 4242,
        }
    }
}

/// One row of Table 1 (plus feasibility columns).
#[derive(Debug, Clone)]
pub struct AveragingRow {
    pub averaging_size: usize,
    /// Total moment data across all scans (MB).
    pub moment_mb: f64,
    /// Total detection runtime across all scans (s).
    pub detection_secs: f64,
    /// Mean number of reported tornados per scan.
    pub reported_tornados: f64,
    /// Mean false negatives per scan.
    pub false_negatives: f64,
    /// Total detector work (cells examined) across all scans.
    pub cells_examined: usize,
    /// Would the moment data fit the wireless link during the scenario?
    pub fits_link: bool,
    /// Does detection fit the epoch's detection window (work-budget
    /// model calibrated to the paper's testbed; see config)?
    pub fits_deadline: bool,
}

/// Run the tornadic scenario at one averaging size.
pub fn run_scenario(field: &WeatherField, n_avg: usize, cfg: &ScenarioConfig) -> AveragingRow {
    let radar = RadarNode::new(0, [0.0, 0.0], cfg.params);
    let mut total_mb = 0.0;
    let mut total_runtime = 0.0;
    let mut reported = 0.0;
    let mut fns = 0.0;
    let mut cells = 0usize;

    for scan_idx in 0..cfg.num_scans {
        let t0 = scan_idx as f64 * cfg.scan_period_s;
        // Re-aim the sector at the (moving) storm each scan — the
        // closed-loop re-steering of the CASA system.
        let truth = field.active_tornados(t0);
        let aim = truth
            .first()
            .map(|v| v.center_at(t0))
            .unwrap_or([12_000.0, 9_000.0]);
        let bearing = (aim[1] - radar.pos[1]).atan2(aim[0] - radar.pos[0]);
        let pulses = radar.sector_scan(
            field,
            bearing - cfg.sector_half_width,
            bearing + cfg.sector_half_width,
            t0,
            cfg.seed + scan_idx as u64,
        );
        let moments = compute_moments(&pulses, &cfg.params, n_avg);
        total_mb += moments.size_mb();
        let result: DetectionResult = detect_tornados(&moments, radar.pos, &cfg.detector);
        total_runtime += result.runtime_secs;
        cells += result.cells_examined;
        reported += result.detections.len() as f64;
        let truth_pos: Vec<[f64; 2]> = truth.iter().map(|v| v.center_at(t0)).collect();
        fns += false_negatives(&result.detections, &truth_pos, cfg.match_radius_m) as f64;
    }

    let scans = cfg.num_scans as f64;
    let scenario_secs = scans * cfg.scan_period_s;
    AveragingRow {
        averaging_size: n_avg,
        moment_mb: total_mb,
        detection_secs: total_runtime,
        reported_tornados: reported / scans,
        false_negatives: fns / scans,
        cells_examined: cells,
        fits_link: total_mb * 8.0e6 <= cfg.link_bps * scenario_secs,
        fits_deadline: total_runtime <= cfg.detection_deadline_s
            && cells <= cfg.detection_cell_budget,
    }
}

/// Run the full Table 1 sweep.
pub fn table1_sweep(
    field: &WeatherField,
    averaging_sizes: &[usize],
    cfg: &ScenarioConfig,
) -> Vec<AveragingRow> {
    averaging_sizes
        .iter()
        .map(|&n| run_scenario(field, n, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> ScenarioConfig {
        ScenarioConfig {
            params: RadarParams {
                gates: 416,
                gate_spacing: 48.0,
                ..Default::default()
            },
            num_scans: 2,
            scan_period_s: 2.0,
            sector_half_width: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn fine_averaging_finds_tornado_coarse_loses_it() {
        let field = WeatherField::tornadic_default();
        let cfg = fast_cfg();
        let fine = run_scenario(&field, 40, &cfg);
        let coarse = run_scenario(&field, 1000, &cfg);
        assert!(
            fine.reported_tornados >= 0.5,
            "fine: {:?}",
            fine.reported_tornados
        );
        assert!(
            coarse.reported_tornados < fine.reported_tornados,
            "coarse ({}) should lose detections vs fine ({})",
            coarse.reported_tornados,
            fine.reported_tornados
        );
        assert!(coarse.false_negatives >= fine.false_negatives);
    }

    #[test]
    fn moment_size_monotone_in_averaging() {
        let field = WeatherField::tornadic_default();
        let cfg = fast_cfg();
        let rows = table1_sweep(&field, &[40, 100, 500], &cfg);
        assert!(rows[0].moment_mb > rows[1].moment_mb);
        assert!(rows[1].moment_mb > rows[2].moment_mb);
    }

    #[test]
    fn link_feasibility_improves_with_averaging() {
        let field = WeatherField::tornadic_default();
        let mut cfg = fast_cfg();
        // Tight link so fine averaging cannot fit.
        cfg.link_bps = 2.0e5;
        let fine = run_scenario(&field, 40, &cfg);
        let coarse = run_scenario(&field, 1000, &cfg);
        assert!(!fine.fits_link, "fine data should overflow a 0.2 Mb/s link");
        assert!(coarse.fits_link, "coarse data fits");
    }

    #[test]
    fn quiet_scene_reports_nothing_any_averaging() {
        let field = WeatherField::quiet();
        let cfg = fast_cfg();
        for n in [40, 200] {
            let row = run_scenario(&field, n, &cfg);
            assert_eq!(row.reported_tornados, 0.0, "false alarm at N={n}");
            assert_eq!(row.false_negatives, 0.0, "no truth ⇒ no FN");
        }
    }

    #[test]
    fn detection_work_shrinks_with_averaging() {
        let field = WeatherField::tornadic_default();
        let cfg = fast_cfg();
        let fine = run_scenario(&field, 40, &cfg);
        let coarse = run_scenario(&field, 500, &cfg);
        // Wall-clock can be noisy; data volume is the robust proxy and
        // the runtime should at least not grow.
        assert!(coarse.moment_mb < fine.moment_mb / 5.0);
        assert!(coarse.detection_secs <= fine.detection_secs * 1.5);
    }
}
