//! # radar-sim — CASA-style radar network simulator
//!
//! The substrate substituting for the paper's CASA testbed data (§2.2):
//! a synthetic tornadic atmosphere scanned by X-band radar nodes at the
//! paper's raw data rate (2000 pulses/s × 832 gates × 4 f32 ≈ 205 Mb/s),
//! pulse-pair moment estimation with configurable averaging size (the
//! Table 1 knob), polar→Cartesian merging, an azimuthal-shear tornado
//! detector, and the closed-loop scenario runner that regenerates
//! Table 1's rows.
//!
//! - [`weather`] — reflectivity/wind fields with Rankine-vortex tornados.
//! - [`radar`] — radar geometry and per-pulse I/Q synthesis.
//! - [`moments`] — pulse-pair estimators over N-pulse averaging groups.
//! - [`merge`] — Cartesian compositing and multi-radar fusion.
//! - [`detect`] — velocity-couplet detector + false-negative accounting.
//! - [`epoch`] — the 38-second / 4-sector-scan Table 1 scenario.
//! - [`uncertainty`] — the §4.4 radar T operator (MA-CLT velocity pdfs).

pub mod detect;
pub mod epoch;
pub mod merge;
pub mod moments;
pub mod radar;
pub mod uncertainty;
pub mod weather;

pub use detect::{
    detect_tornados, false_negatives, merge_detections, Detection, DetectionResult, DetectorConfig,
    MergedDetection,
};
pub use epoch::{run_scenario, table1_sweep, AveragingRow, ScenarioConfig};
pub use merge::{merge_scan, CartesianGrid};
pub use moments::{
    compute_moments, per_pulse_velocity_series, MomentCell, MomentRadial, MomentScan,
};
pub use radar::{Pulse, RadarNode, RadarParams};
pub use uncertainty::{RadarTOperator, VelocityUq};
pub use weather::{StormCell, Tornado, WeatherField};
