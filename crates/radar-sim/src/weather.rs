//! Synthetic atmosphere: reflectivity + wind fields with embedded
//! Rankine-vortex tornados (the stand-in for the May 9 2007 tornadic
//! event of Table 1).
//!
//! Units: meters, seconds, m/s, dBZ. The coordinate origin is arbitrary;
//! radars are placed in the same frame.

/// Ground-truth description of one tornado vortex.
#[derive(Debug, Clone, Copy)]
pub struct Tornado {
    /// Vortex centre at t = 0 (m).
    pub center: [f64; 2],
    /// Translation velocity (m/s).
    pub motion: [f64; 2],
    /// Peak tangential wind (m/s).
    pub v_max: f64,
    /// Core radius (m) — tangential wind peaks here.
    pub r_core: f64,
    /// Seconds after scenario start when the vortex forms.
    pub onset_s: f64,
}

impl Tornado {
    /// Centre position at time t.
    pub fn center_at(&self, t: f64) -> [f64; 2] {
        [
            self.center[0] + self.motion[0] * t,
            self.center[1] + self.motion[1] * t,
        ]
    }

    /// Rankine tangential wind speed at distance r from the centre.
    pub fn tangential(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        if r < self.r_core {
            self.v_max * r / self.r_core
        } else {
            self.v_max * self.r_core / r
        }
    }

    /// Vortex wind vector at point p and time t (counter-clockwise).
    pub fn wind_at(&self, p: [f64; 2], t: f64) -> [f64; 2] {
        if t < self.onset_s {
            return [0.0, 0.0];
        }
        let c = self.center_at(t);
        let dx = p[0] - c[0];
        let dy = p[1] - c[1];
        let r = (dx * dx + dy * dy).sqrt();
        let vt = self.tangential(r);
        if r < 1e-9 {
            return [0.0, 0.0];
        }
        // Tangential direction (counter-clockwise): (−dy, dx)/r.
        [-vt * dy / r, vt * dx / r]
    }
}

/// A storm cell contributing reflectivity.
#[derive(Debug, Clone, Copy)]
pub struct StormCell {
    pub center: [f64; 2],
    pub motion: [f64; 2],
    /// Peak reflectivity (dBZ).
    pub peak_dbz: f64,
    /// Spatial spread (m).
    pub sigma: f64,
}

impl StormCell {
    pub fn dbz_at(&self, p: [f64; 2], t: f64) -> f64 {
        let c = [
            self.center[0] + self.motion[0] * t,
            self.center[1] + self.motion[1] * t,
        ];
        let dx = p[0] - c[0];
        let dy = p[1] - c[1];
        self.peak_dbz * (-(dx * dx + dy * dy) / (2.0 * self.sigma * self.sigma)).exp()
    }
}

/// The full scene.
#[derive(Debug, Clone)]
pub struct WeatherField {
    /// Background reflectivity (dBZ).
    pub background_dbz: f64,
    /// Uniform ambient wind (m/s).
    pub ambient_wind: [f64; 2],
    pub cells: Vec<StormCell>,
    pub tornados: Vec<Tornado>,
}

impl WeatherField {
    /// The default tornadic scenario used by Table 1: one supercell with
    /// an embedded vortex, translating slowly east-northeast.
    pub fn tornadic_default() -> WeatherField {
        WeatherField {
            background_dbz: 8.0,
            ambient_wind: [4.0, 1.5],
            cells: vec![StormCell {
                center: [12_000.0, 9_000.0],
                motion: [8.0, 3.0],
                peak_dbz: 52.0,
                sigma: 4_000.0,
            }],
            tornados: vec![Tornado {
                center: [12_000.0, 9_000.0],
                motion: [8.0, 3.0],
                v_max: 12.0,
                r_core: 900.0,
                onset_s: 0.0,
            }],
        }
    }

    /// A quiet (non-tornadic) scene for false-positive testing.
    pub fn quiet() -> WeatherField {
        WeatherField {
            background_dbz: 8.0,
            ambient_wind: [4.0, 1.5],
            cells: vec![StormCell {
                center: [12_000.0, 9_000.0],
                motion: [8.0, 3.0],
                peak_dbz: 45.0,
                sigma: 4_000.0,
            }],
            tornados: vec![],
        }
    }

    /// Reflectivity at point p, time t (dBZ, additive in linear Z).
    pub fn reflectivity(&self, p: [f64; 2], t: f64) -> f64 {
        let mut z_lin = 10f64.powf(self.background_dbz / 10.0);
        for c in &self.cells {
            z_lin += 10f64.powf(c.dbz_at(p, t).max(0.0) / 10.0) - 1.0;
        }
        10.0 * z_lin.log10()
    }

    /// Total wind vector at p, t.
    pub fn wind(&self, p: [f64; 2], t: f64) -> [f64; 2] {
        let mut w = self.ambient_wind;
        for v in &self.tornados {
            let tw = v.wind_at(p, t);
            w[0] += tw[0];
            w[1] += tw[1];
        }
        w
    }

    /// Tornados active at time t (ground truth for false negatives).
    pub fn active_tornados(&self, t: f64) -> Vec<Tornado> {
        self.tornados
            .iter()
            .copied()
            .filter(|v| t >= v.onset_s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rankine_profile_peaks_at_core() {
        let v = Tornado {
            center: [0.0, 0.0],
            motion: [0.0, 0.0],
            v_max: 12.0,
            r_core: 900.0,
            onset_s: 0.0,
        };
        assert!(v.tangential(450.0) < v.tangential(900.0));
        assert_eq!(v.tangential(900.0), 12.0);
        assert!(v.tangential(1800.0) < 12.0);
        assert!((v.tangential(1800.0) - 6.0).abs() < 1e-12, "1/r decay");
    }

    #[test]
    fn vortex_wind_is_tangential() {
        let v = Tornado {
            center: [0.0, 0.0],
            motion: [0.0, 0.0],
            v_max: 10.0,
            r_core: 500.0,
            onset_s: 0.0,
        };
        // East of the centre, CCW rotation blows north (+y).
        let w = v.wind_at([500.0, 0.0], 0.0);
        assert!(w[0].abs() < 1e-9);
        assert!((w[1] - 10.0).abs() < 1e-9);
        // West of the centre: south.
        let w2 = v.wind_at([-500.0, 0.0], 0.0);
        assert!((w2[1] + 10.0).abs() < 1e-9);
    }

    #[test]
    fn vortex_advects() {
        let v = Tornado {
            center: [0.0, 0.0],
            motion: [10.0, 0.0],
            v_max: 10.0,
            r_core: 500.0,
            onset_s: 0.0,
        };
        let c = v.center_at(30.0);
        assert_eq!(c, [300.0, 0.0]);
    }

    #[test]
    fn onset_suppresses_early_wind() {
        let v = Tornado {
            center: [0.0, 0.0],
            motion: [0.0, 0.0],
            v_max: 10.0,
            r_core: 500.0,
            onset_s: 100.0,
        };
        assert_eq!(v.wind_at([500.0, 0.0], 50.0), [0.0, 0.0]);
        assert!(v.wind_at([500.0, 0.0], 150.0)[1] > 0.0);
    }

    #[test]
    fn reflectivity_peaks_in_storm() {
        let f = WeatherField::tornadic_default();
        let in_storm = f.reflectivity([12_000.0, 9_000.0], 0.0);
        let outside = f.reflectivity([40_000.0, 40_000.0], 0.0);
        assert!(in_storm > 45.0, "storm core {in_storm:.1} dBZ");
        assert!(outside < 12.0, "background {outside:.1} dBZ");
    }

    #[test]
    fn wind_includes_ambient_and_vortex() {
        let f = WeatherField::tornadic_default();
        let far = f.wind([60_000.0, 60_000.0], 0.0);
        assert!((far[0] - 4.0).abs() < 0.2, "ambient only far away");
        let near = f.wind([12_900.0, 9_000.0], 0.0);
        let speed = (near[0].powi(2) + near[1].powi(2)).sqrt();
        assert!(speed > 10.0, "vortex boosts wind to {speed:.1} m/s");
    }

    #[test]
    fn quiet_scene_has_no_tornados() {
        let f = WeatherField::quiet();
        assert!(f.active_tornados(100.0).is_empty());
        assert_eq!(
            WeatherField::tornadic_default().active_tornados(10.0).len(),
            1
        );
    }
}
