//! The radar T operator (§4.4): voxel tuples with quantified uncertainty.
//!
//! "We can obtain the transformed moment data stream and characterize its
//! uncertainty using a relatively simple time series model" — the
//! per-pulse velocity observations of a voxel form a short correlated
//! series; identify whether MA(≤ q) holds via k-lag autocorrelations (two
//! scans), then the CLT for MA processes gives the asymptotic Gaussian of
//! the averaged velocity. Emits `ustream-core` tuples:
//! `(time, radar_id, azimuth, range, velocity ~ Updf, reflectivity)`.

use crate::moments::per_pulse_velocity_series;
use crate::radar::{Pulse, RadarParams};
use std::sync::Arc;
use ustream_core::schema::{DataType, Schema};
use ustream_core::tuple::Tuple;
use ustream_core::updf::Updf;
use ustream_core::value::Value;
use ustream_prob::dist::Dist;
use ustream_ts::clt::{iid_clt_mean, ma_clt_pipeline};

/// Uncertainty-quantification mode for the averaged velocity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VelocityUq {
    /// §4.4: identify MA order, apply the MA CLT.
    MaClt { max_order: usize },
    /// Naive iid CLT (underestimates variance on correlated dwells) —
    /// the ablation baseline.
    IidClt,
}

/// The radar T operator.
pub struct RadarTOperator {
    params: RadarParams,
    uq: VelocityUq,
    schema: Arc<Schema>,
    /// Number of voxels whose window failed the MA-adequacy check.
    pub ma_inadequate: u64,
}

impl RadarTOperator {
    pub fn new(params: RadarParams, uq: VelocityUq) -> Self {
        let schema = Schema::builder()
            .field("time", DataType::Time)
            .field("radar_id", DataType::Int)
            .field("azimuth", DataType::Float)
            .field("range", DataType::Float)
            .field("velocity", DataType::Uncertain)
            .field("reflectivity", DataType::Float)
            .build();
        RadarTOperator {
            params,
            uq,
            schema,
            ma_inadequate: 0,
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Transform one averaging group of pulses into voxel tuples for the
    /// selected gates (`gates`; empty = all).
    pub fn transform_group(
        &mut self,
        radar_id: u32,
        pulses: &[Pulse],
        gates: &[usize],
    ) -> Vec<Tuple> {
        assert!(pulses.len() >= 4, "need a few pulses per group");
        let all: Vec<usize>;
        let gates = if gates.is_empty() {
            all = (0..pulses[0].gates.len()).collect();
            &all
        } else {
            gates
        };
        let az = pulses.iter().map(|p| p.azimuth).sum::<f64>() / pulses.len() as f64;
        let t_ms = (pulses[0].t * 1000.0) as u64;

        let mut out = Vec::with_capacity(gates.len());
        for &g in gates {
            let series = per_pulse_velocity_series(pulses, &self.params, g);
            if series.len() < 4 {
                continue;
            }
            let dist = match self.uq {
                VelocityUq::MaClt { max_order } => {
                    let res = ma_clt_pipeline(&series, max_order, 3.0);
                    if !res.ma_adequate {
                        self.ma_inadequate += 1;
                    }
                    res.mean_dist
                }
                VelocityUq::IidClt => iid_clt_mean(&series),
            };
            // Mean power over the group for the reflectivity column.
            let power: f64 = pulses
                .iter()
                .map(|p| {
                    let v = p.gates[g];
                    0.5 * ((v[0] * v[0] + v[1] * v[1] + v[2] * v[2] + v[3] * v[3]) as f64)
                })
                .sum::<f64>()
                / pulses.len() as f64;
            let range = (g as f64 + 0.5) * self.params.gate_spacing;
            out.push(Tuple::new(
                self.schema.clone(),
                vec![
                    Value::Time(t_ms),
                    Value::Int(radar_id as i64),
                    Value::Float(az),
                    Value::Float(range),
                    Value::from(Updf::Parametric(Dist::Gaussian(dist))),
                    Value::Float(10.0 * power.max(1e-12).log10()),
                ],
                t_ms,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radar::RadarNode;
    use crate::weather::WeatherField;

    fn pulses_with_wind(vx: f64, seed: u64) -> (Vec<Pulse>, RadarParams) {
        let mut field = WeatherField::quiet();
        field.ambient_wind = [vx, 0.0];
        field.cells[0].center = [5_000.0, 0.0];
        field.cells[0].motion = [0.0, 0.0];
        field.cells[0].peak_dbz = 55.0;
        let params = RadarParams {
            gates: 128,
            gate_spacing: 100.0,
            noise_sd: 0.1,
            phase_jitter: 0.2,
            ..Default::default()
        };
        let node = RadarNode::new(0, [0.0, 0.0], params);
        (node.sector_scan(&field, -0.01, 0.01, 0.0, seed), params)
    }

    #[test]
    fn emits_voxel_tuples_with_velocity_pdf() {
        let (pulses, params) = pulses_with_wind(8.0, 41);
        let mut t_op = RadarTOperator::new(params, VelocityUq::MaClt { max_order: 3 });
        let group = &pulses[..100];
        let tuples = t_op.transform_group(0, group, &[49, 50, 51]);
        assert_eq!(tuples.len(), 3);
        for tuple in &tuples {
            let v = tuple.updf("velocity").unwrap();
            assert!((v.mean() - 8.0).abs() < 2.0, "velocity mean {}", v.mean());
            assert!(v.std_dev() > 0.0 && v.std_dev() < 3.0);
            assert!(tuple.float("reflectivity").unwrap() > 0.0);
        }
    }

    #[test]
    fn ma_clt_wider_than_iid_on_correlated_dwell() {
        // The per-pulse velocity series is serially correlated (shared
        // weather + jitter), so the MA-CLT variance should not be smaller
        // than the iid one on average.
        let (pulses, params) = pulses_with_wind(8.0, 43);
        let group = &pulses[..pulses.len().min(110)];
        let mut ma_op = RadarTOperator::new(params, VelocityUq::MaClt { max_order: 4 });
        let mut iid_op = RadarTOperator::new(params, VelocityUq::IidClt);
        let gates: Vec<usize> = (45..55).collect();
        let ma: f64 = ma_op
            .transform_group(0, group, &gates)
            .iter()
            .map(|t| t.updf("velocity").unwrap().variance())
            .sum();
        let iid: f64 = iid_op
            .transform_group(0, group, &gates)
            .iter()
            .map(|t| t.updf("velocity").unwrap().variance())
            .sum();
        assert!(ma >= iid * 0.8, "MA-CLT total var {ma:.4} vs iid {iid:.4}");
    }

    #[test]
    fn empty_gate_list_means_all_gates() {
        let (pulses, params) = pulses_with_wind(5.0, 44);
        let mut t_op = RadarTOperator::new(params, VelocityUq::IidClt);
        let tuples = t_op.transform_group(0, &pulses[..40], &[]);
        assert_eq!(tuples.len(), 128);
    }

    #[test]
    fn tuple_metadata_consistent() {
        let (pulses, params) = pulses_with_wind(5.0, 45);
        let mut t_op = RadarTOperator::new(params, VelocityUq::IidClt);
        let tuples = t_op.transform_group(7, &pulses[..40], &[10]);
        let t = &tuples[0];
        assert_eq!(t.int("radar_id").unwrap(), 7);
        assert!((t.float("range").unwrap() - 1_050.0).abs() < 1e-9);
        assert!(t.float("azimuth").unwrap().abs() < 0.02);
    }
}
