//! Merging moment data from multiple radars (§2.2): polar → Cartesian
//! conversion and fusion of spatially-overlapping measurements ("in the
//! database terminology, joins").
//!
//! The conversion "can cause uneven distribution of data density in the
//! Cartesian system": near a radar many polar cells map into one grid
//! cell; far away, grid cells may receive none. The merge tracks the
//! per-cell sample count so that quality effect is observable.

use crate::moments::MomentScan;

/// A Cartesian composite grid.
#[derive(Debug, Clone)]
pub struct CartesianGrid {
    /// Grid origin (m).
    pub origin: [f64; 2],
    /// Cell edge length (m).
    pub cell: f64,
    pub nx: usize,
    pub ny: usize,
    /// Per-cell mean reflectivity (dB); NaN when empty.
    pub reflectivity: Vec<f32>,
    /// Per-cell mean radial velocity magnitude contribution (m/s).
    pub velocity: Vec<f32>,
    /// Number of polar samples fused into each cell (density measure).
    pub samples: Vec<u32>,
    /// Number of distinct radars contributing to each cell.
    pub radar_count: Vec<u8>,
}

impl CartesianGrid {
    pub fn new(origin: [f64; 2], cell: f64, nx: usize, ny: usize) -> Self {
        assert!(cell > 0.0 && nx > 0 && ny > 0);
        CartesianGrid {
            origin,
            cell,
            nx,
            ny,
            reflectivity: vec![f32::NAN; nx * ny],
            velocity: vec![0.0; nx * ny],
            samples: vec![0; nx * ny],
            radar_count: vec![0; nx * ny],
        }
    }

    pub fn index_of(&self, p: [f64; 2]) -> Option<usize> {
        let ix = ((p[0] - self.origin[0]) / self.cell).floor();
        let iy = ((p[1] - self.origin[1]) / self.cell).floor();
        if ix < 0.0 || iy < 0.0 {
            return None;
        }
        let (ix, iy) = (ix as usize, iy as usize);
        if ix >= self.nx || iy >= self.ny {
            None
        } else {
            Some(iy * self.nx + ix)
        }
    }

    pub fn cell_center(&self, idx: usize) -> [f64; 2] {
        let ix = idx % self.nx;
        let iy = idx / self.nx;
        [
            self.origin[0] + (ix as f64 + 0.5) * self.cell,
            self.origin[1] + (iy as f64 + 0.5) * self.cell,
        ]
    }

    /// Fraction of cells that received no data (coverage gap metric).
    pub fn empty_fraction(&self) -> f64 {
        self.samples.iter().filter(|&&s| s == 0).count() as f64 / self.samples.len() as f64
    }

    /// Fraction of covered cells observed by ≥2 radars.
    pub fn overlap_fraction(&self) -> f64 {
        let covered = self.samples.iter().filter(|&&s| s > 0).count();
        if covered == 0 {
            return 0.0;
        }
        self.radar_count.iter().filter(|&&c| c >= 2).count() as f64 / covered as f64
    }
}

/// Merge one radar's moment scan into the grid (call once per radar; the
/// grid accumulates). Each polar cell deposits into the Cartesian cell
/// containing it (running means).
pub fn merge_scan(grid: &mut CartesianGrid, scan: &MomentScan, radar_pos: [f64; 2], radar_tag: u8) {
    // Track which cells this radar touched to update radar_count once.
    let mut touched: Vec<usize> = Vec::new();
    for radial in &scan.radials {
        let (sin_az, cos_az) = radial.azimuth.sin_cos();
        for cell in &radial.cells {
            let p = [
                radar_pos[0] + cell.range * cos_az,
                radar_pos[1] + cell.range * sin_az,
            ];
            let Some(idx) = grid.index_of(p) else {
                continue;
            };
            let n = grid.samples[idx] as f32;
            let refl = if grid.reflectivity[idx].is_nan() {
                cell.reflectivity
            } else {
                (grid.reflectivity[idx] * n + cell.reflectivity) / (n + 1.0)
            };
            grid.reflectivity[idx] = refl;
            grid.velocity[idx] = (grid.velocity[idx] * n + cell.velocity.abs()) / (n + 1.0);
            grid.samples[idx] += 1;
            if !touched.contains(&idx) {
                touched.push(idx);
            }
        }
    }
    let _ = radar_tag;
    for idx in touched {
        grid.radar_count[idx] = grid.radar_count[idx].saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::compute_moments;
    use crate::radar::{RadarNode, RadarParams};
    use crate::weather::WeatherField;

    fn params() -> RadarParams {
        RadarParams {
            gates: 200,
            gate_spacing: 100.0,
            ..Default::default()
        }
    }

    fn scan_from(pos: [f64; 2], az0: f64, az1: f64, seed: u64) -> MomentScan {
        let field = WeatherField::tornadic_default();
        let node = RadarNode::new(seed as u32, pos, params());
        let pulses = node.sector_scan(&field, az0, az1, 0.0, seed);
        compute_moments(&pulses, &params(), 100)
    }

    #[test]
    fn grid_indexing() {
        let g = CartesianGrid::new([0.0, 0.0], 500.0, 40, 40);
        assert_eq!(g.index_of([250.0, 250.0]), Some(0));
        assert_eq!(g.index_of([750.0, 250.0]), Some(1));
        assert_eq!(g.index_of([250.0, 750.0]), Some(40));
        assert_eq!(g.index_of([-1.0, 0.0]), None);
        assert_eq!(g.index_of([25_000.0, 0.0]), None);
        let c = g.cell_center(41);
        assert_eq!(c, [750.0, 750.0]);
    }

    #[test]
    fn merge_fills_cells_along_beams() {
        let mut g = CartesianGrid::new([0.0, 0.0], 500.0, 40, 40);
        let scan = scan_from([0.0, 0.0], 0.5, 0.7, 1);
        merge_scan(&mut g, &scan, [0.0, 0.0], 0);
        assert!(g.empty_fraction() < 1.0, "some cells filled");
        let filled = g.samples.iter().filter(|&&s| s > 0).count();
        assert!(filled > 20, "{filled} cells covered");
    }

    #[test]
    fn density_uneven_near_vs_far() {
        // The §2.2 quality issue: polar sampling is denser near the radar.
        let mut g = CartesianGrid::new([0.0, 0.0], 500.0, 40, 40);
        let scan = scan_from([0.0, 0.0], 0.3, 0.9, 2);
        merge_scan(&mut g, &scan, [0.0, 0.0], 0);
        // Compare sample counts in near (≤5 km) vs far (≥15 km) covered cells.
        let mut near = Vec::new();
        let mut far = Vec::new();
        for (idx, &s) in g.samples.iter().enumerate() {
            if s == 0 {
                continue;
            }
            let c = g.cell_center(idx);
            let r = (c[0] * c[0] + c[1] * c[1]).sqrt();
            if r < 5_000.0 {
                near.push(s);
            } else if r > 15_000.0 {
                far.push(s);
            }
        }
        let mean = |v: &[u32]| v.iter().sum::<u32>() as f64 / v.len().max(1) as f64;
        assert!(
            mean(&near) > 2.0 * mean(&far),
            "near density {} vs far {}",
            mean(&near),
            mean(&far)
        );
    }

    #[test]
    fn two_radars_overlap() {
        let mut g = CartesianGrid::new([0.0, 0.0], 500.0, 60, 60);
        // Radar A at origin looks northeast; radar B east of the scene
        // looks northwest; they overlap over the storm.
        let a = scan_from([0.0, 0.0], 0.5, 0.8, 3);
        merge_scan(&mut g, &a, [0.0, 0.0], 0);
        let b_node_pos = [24_000.0, 0.0];
        let field = WeatherField::tornadic_default();
        let node = RadarNode::new(9, b_node_pos, params());
        let pulses = node.sector_scan(&field, 2.2, 2.6, 0.0, 4);
        let b = compute_moments(&pulses, &params(), 100);
        merge_scan(&mut g, &b, b_node_pos, 1);
        assert!(
            g.overlap_fraction() > 0.0,
            "some cells observed by both radars"
        );
        let multi = g.radar_count.iter().filter(|&&c| c >= 2).count();
        assert!(multi > 0, "{multi} multi-radar cells");
    }

    #[test]
    fn merged_reflectivity_shows_storm() {
        let mut g = CartesianGrid::new([0.0, 0.0], 500.0, 60, 60);
        // Aim right at the storm (bearing ≈ 0.6435 rad).
        let scan = scan_from([0.0, 0.0], 0.5, 0.8, 5);
        merge_scan(&mut g, &scan, [0.0, 0.0], 0);
        // The storm cell near (12 km, 9 km) should be the hottest region.
        let storm_idx = g.index_of([12_000.0, 9_000.0]).unwrap();
        if g.samples[storm_idx] > 0 {
            let bg: Vec<f32> = g
                .reflectivity
                .iter()
                .zip(g.samples.iter())
                .filter(|(_, &s)| s > 0)
                .map(|(&r, _)| r)
                .collect();
            let mean_bg = bg.iter().sum::<f32>() / bg.len() as f32;
            assert!(g.reflectivity[storm_idx] > mean_bg);
        }
    }
}
